#!/usr/bin/env bash
# Bench trajectory guard: fail when a headline throughput metric regresses
# more than the tolerance against the committed baseline.
#
#   usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]
#
# The baseline under ci/bench_baseline/ is a committed snapshot of a Release
# run; refresh it deliberately (re-run the bench, commit the new JSON) when a
# change legitimately moves the number. Tolerance is a percentage, default 20,
# overridable via BENCH_TRAJECTORY_TOLERANCE for noisier runners.
set -euo pipefail

current="${1:?usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]}"
baseline="${2:?usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]}"
metric="${3:-txs_per_wall_second}"
tolerance="${BENCH_TRAJECTORY_TOLERANCE:-20}"

python3 - "$current" "$baseline" "$metric" "$tolerance" <<'PY'
import json
import sys

current_path, baseline_path, metric, tolerance = sys.argv[1:5]
tolerance = float(tolerance)

def load(path):
    with open(path) as f:
        return json.load(f)

current = load(current_path)
baseline = load(baseline_path)
for name, report in (("current", current), ("baseline", baseline)):
    if metric not in report:
        sys.exit(f"trajectory guard: metric '{metric}' missing from {name} report")

cur = float(current[metric])
base = float(baseline[metric])
floor = base * (1.0 - tolerance / 100.0)
print(f"trajectory guard: {metric} current={cur:.1f} baseline={base:.1f} "
      f"floor={floor:.1f} (tolerance {tolerance:.0f}%)")
if cur < floor:
    sys.exit(f"trajectory guard: {metric} regressed {100.0 * (1.0 - cur / base):.1f}% "
             f"(> {tolerance:.0f}% allowed) vs committed baseline {baseline_path}")
print("trajectory guard: ok")
PY
