#!/usr/bin/env bash
# Bench trajectory guard: fail when a headline throughput metric regresses
# more than the tolerance against the committed baseline.
#
#   usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]
#
# Besides the primary metric, every socket_* rate field present in both
# reports (socket_msgs_per_second, socket_mib_per_second, ...) is guarded at
# the same tolerance, so a transport-layer regression fails the gate even
# when protocol throughput holds.
#
# The baseline under ci/bench_baseline/ is a committed snapshot of a Release
# run; refresh it deliberately (re-run the bench, commit the new JSON) when a
# change legitimately moves the number. Tolerance is a percentage, default 20,
# overridable via BENCH_TRAJECTORY_TOLERANCE for noisier runners.
set -euo pipefail

current="${1:?usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]}"
baseline="${2:?usage: check_bench_trajectory.sh <current.json> <baseline.json> [metric]}"
metric="${3:-txs_per_wall_second}"
tolerance="${BENCH_TRAJECTORY_TOLERANCE:-20}"

python3 - "$current" "$baseline" "$metric" "$tolerance" <<'PY'
import json
import sys

current_path, baseline_path, metric, tolerance = sys.argv[1:5]
tolerance = float(tolerance)

def load(path):
    with open(path) as f:
        return json.load(f)

current = load(current_path)
baseline = load(baseline_path)
for name, report in (("current", current), ("baseline", baseline)):
    if metric not in report:
        sys.exit(f"trajectory guard: metric '{metric}' missing from {name} report")

# The primary metric plus every socket-layer rate field the two reports
# share: message-rate regressions in the transport must fail the gate too.
metrics = [metric]
metrics += sorted(
    name for name in baseline
    if name.startswith("socket_") and name.endswith("_per_second")
    and name in current and name not in metrics)

failures = []
for name in metrics:
    cur = float(current[name])
    base = float(baseline[name])
    floor = base * (1.0 - tolerance / 100.0)
    print(f"trajectory guard: {name} current={cur:.1f} baseline={base:.1f} "
          f"floor={floor:.1f} (tolerance {tolerance:.0f}%)")
    if cur < floor:
        failures.append(
            f"trajectory guard: {name} regressed {100.0 * (1.0 - cur / base):.1f}% "
            f"(> {tolerance:.0f}% allowed) vs committed baseline {baseline_path}")
if failures:
    sys.exit("\n".join(failures))
print("trajectory guard: ok")
PY
