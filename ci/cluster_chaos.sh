#!/usr/bin/env bash
# Kill/restart convergence golden with every byte routed through the
# wire_proxy chaos intermediary: recurring forwarding stalls plus a
# truncate-then-reset of the respawned node's first dial attempt (the
# driver's bounded respawn loop must retry through it). CI runs this under
# TSan with a bounded wall-clock; on failure the node logs and the
# convergence diff land in the artifact directory.
#
#   usage: cluster_chaos.sh <tools-dir> <artifact-dir> [--multi]
#
# --multi switches to the overlapping double-kill schedule (victims 1 and 2
# down at once — quorum loss on the 3-governor mixed golden): the driver
# must ride out the stall window and converge after both respawns, with the
# first respawn dial still truncated+reset by the proxy.
set -euo pipefail

tools="${1:?usage: cluster_chaos.sh <tools-dir> <artifact-dir> [--multi]}"
artifacts="${2:?usage: cluster_chaos.sh <tools-dir> <artifact-dir> [--multi]}"
kills=(--kill=1@2:4)
if [[ "${3:-}" == "--multi" ]]; then
  kills=(--kill=1@2:4 --kill=2@2:3)
fi
mkdir -p "$artifacts"

# PID-derived ports keep concurrent ctest invocations off each other.
driver_port=$((20000 + $$ % 20000))
proxy_port=$((driver_port + 1))
state_root="$(mktemp -d /tmp/repchain_chaos_XXXXXX)"

# Stall all forwarding 80ms out of every 200ms, and truncate+reset the
# respawn dial (connection #3: the three initial admissions are #0-#2)
# after 24 bytes — a partial welcome followed by an RST.
"$tools/wire_proxy" --listen="$proxy_port" --connect="$driver_port" \
  --stall=200:80 --reset-conn=3@24 2>"$artifacts/wire_proxy.log" &
proxy_pid=$!
cleanup() {
  kill "$proxy_pid" 2>/dev/null || true
  wait "$proxy_pid" 2>/dev/null || true
  rm -rf "$state_root"
}
trap cleanup EXIT

# Wait for the proxy's readiness line rather than probing with a TCP
# connect: a probe sits in the listen backlog until the proxy's event loop
# accepts it, and if the driver is up by then the spliced probe would shift
# the fault schedule's connection numbering.
for _ in $(seq 50); do
  if grep -q "listening on" "$artifacts/wire_proxy.log" 2>/dev/null; then
    break
  fi
  sleep 0.1
done

"$tools/cluster_driver" --scenario=mixed --mode=converge "${kills[@]}" \
  --listen-port="$driver_port" --node-port="$proxy_port" \
  --state-root="$state_root" --artifact-dir="$artifacts"
