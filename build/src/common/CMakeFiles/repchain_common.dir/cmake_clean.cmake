file(REMOVE_RECURSE
  "CMakeFiles/repchain_common.dir/bytes.cpp.o"
  "CMakeFiles/repchain_common.dir/bytes.cpp.o.d"
  "CMakeFiles/repchain_common.dir/rng.cpp.o"
  "CMakeFiles/repchain_common.dir/rng.cpp.o.d"
  "CMakeFiles/repchain_common.dir/stats.cpp.o"
  "CMakeFiles/repchain_common.dir/stats.cpp.o.d"
  "librepchain_common.a"
  "librepchain_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
