# Empty dependencies file for repchain_common.
# This may be replaced when dependencies are built.
