file(REMOVE_RECURSE
  "librepchain_common.a"
)
