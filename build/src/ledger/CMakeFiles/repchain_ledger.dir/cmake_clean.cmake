file(REMOVE_RECURSE
  "CMakeFiles/repchain_ledger.dir/block.cpp.o"
  "CMakeFiles/repchain_ledger.dir/block.cpp.o.d"
  "CMakeFiles/repchain_ledger.dir/chain.cpp.o"
  "CMakeFiles/repchain_ledger.dir/chain.cpp.o.d"
  "CMakeFiles/repchain_ledger.dir/transaction.cpp.o"
  "CMakeFiles/repchain_ledger.dir/transaction.cpp.o.d"
  "CMakeFiles/repchain_ledger.dir/validation_oracle.cpp.o"
  "CMakeFiles/repchain_ledger.dir/validation_oracle.cpp.o.d"
  "librepchain_ledger.a"
  "librepchain_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
