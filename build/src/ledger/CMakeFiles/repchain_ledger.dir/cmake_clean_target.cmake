file(REMOVE_RECURSE
  "librepchain_ledger.a"
)
