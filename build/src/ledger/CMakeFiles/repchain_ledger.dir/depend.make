# Empty dependencies file for repchain_ledger.
# This may be replaced when dependencies are built.
