# Empty compiler generated dependencies file for repchain_net.
# This may be replaced when dependencies are built.
