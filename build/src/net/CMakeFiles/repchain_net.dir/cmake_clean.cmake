file(REMOVE_RECURSE
  "CMakeFiles/repchain_net.dir/atomic_broadcast.cpp.o"
  "CMakeFiles/repchain_net.dir/atomic_broadcast.cpp.o.d"
  "CMakeFiles/repchain_net.dir/event_queue.cpp.o"
  "CMakeFiles/repchain_net.dir/event_queue.cpp.o.d"
  "CMakeFiles/repchain_net.dir/network.cpp.o"
  "CMakeFiles/repchain_net.dir/network.cpp.o.d"
  "librepchain_net.a"
  "librepchain_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
