file(REMOVE_RECURSE
  "librepchain_net.a"
)
