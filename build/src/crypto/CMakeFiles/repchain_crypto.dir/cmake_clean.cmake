file(REMOVE_RECURSE
  "CMakeFiles/repchain_crypto.dir/batch_verify.cpp.o"
  "CMakeFiles/repchain_crypto.dir/batch_verify.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/chacha20poly1305.cpp.o"
  "CMakeFiles/repchain_crypto.dir/chacha20poly1305.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/repchain_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/fe25519.cpp.o"
  "CMakeFiles/repchain_crypto.dir/fe25519.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/hmac.cpp.o"
  "CMakeFiles/repchain_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/merkle.cpp.o"
  "CMakeFiles/repchain_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/sc25519.cpp.o"
  "CMakeFiles/repchain_crypto.dir/sc25519.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/sha256.cpp.o"
  "CMakeFiles/repchain_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/sha512.cpp.o"
  "CMakeFiles/repchain_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/vrf.cpp.o"
  "CMakeFiles/repchain_crypto.dir/vrf.cpp.o.d"
  "CMakeFiles/repchain_crypto.dir/x25519.cpp.o"
  "CMakeFiles/repchain_crypto.dir/x25519.cpp.o.d"
  "librepchain_crypto.a"
  "librepchain_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
