file(REMOVE_RECURSE
  "librepchain_crypto.a"
)
