
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/batch_verify.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/batch_verify.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/batch_verify.cpp.o.d"
  "/root/repo/src/crypto/chacha20poly1305.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/chacha20poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/chacha20poly1305.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/fe25519.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/fe25519.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/fe25519.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/sc25519.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/sc25519.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/sc25519.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/vrf.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/vrf.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/vrf.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/repchain_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/repchain_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
