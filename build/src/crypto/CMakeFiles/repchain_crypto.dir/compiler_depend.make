# Empty compiler generated dependencies file for repchain_crypto.
# This may be replaced when dependencies are built.
