file(REMOVE_RECURSE
  "librepchain_reputation.a"
)
