file(REMOVE_RECURSE
  "CMakeFiles/repchain_reputation.dir/gamma.cpp.o"
  "CMakeFiles/repchain_reputation.dir/gamma.cpp.o.d"
  "CMakeFiles/repchain_reputation.dir/reputation_table.cpp.o"
  "CMakeFiles/repchain_reputation.dir/reputation_table.cpp.o.d"
  "CMakeFiles/repchain_reputation.dir/rwm.cpp.o"
  "CMakeFiles/repchain_reputation.dir/rwm.cpp.o.d"
  "librepchain_reputation.a"
  "librepchain_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
