
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reputation/gamma.cpp" "src/reputation/CMakeFiles/repchain_reputation.dir/gamma.cpp.o" "gcc" "src/reputation/CMakeFiles/repchain_reputation.dir/gamma.cpp.o.d"
  "/root/repo/src/reputation/reputation_table.cpp" "src/reputation/CMakeFiles/repchain_reputation.dir/reputation_table.cpp.o" "gcc" "src/reputation/CMakeFiles/repchain_reputation.dir/reputation_table.cpp.o.d"
  "/root/repo/src/reputation/rwm.cpp" "src/reputation/CMakeFiles/repchain_reputation.dir/rwm.cpp.o" "gcc" "src/reputation/CMakeFiles/repchain_reputation.dir/rwm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/repchain_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
