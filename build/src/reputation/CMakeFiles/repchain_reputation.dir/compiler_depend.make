# Empty compiler generated dependencies file for repchain_reputation.
# This may be replaced when dependencies are built.
