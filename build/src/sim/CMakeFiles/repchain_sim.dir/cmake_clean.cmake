file(REMOVE_RECURSE
  "CMakeFiles/repchain_sim.dir/scenario.cpp.o"
  "CMakeFiles/repchain_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/repchain_sim.dir/topology.cpp.o"
  "CMakeFiles/repchain_sim.dir/topology.cpp.o.d"
  "librepchain_sim.a"
  "librepchain_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
