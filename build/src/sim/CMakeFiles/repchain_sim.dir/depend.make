# Empty dependencies file for repchain_sim.
# This may be replaced when dependencies are built.
