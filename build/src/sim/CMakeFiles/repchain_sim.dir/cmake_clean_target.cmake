file(REMOVE_RECURSE
  "librepchain_sim.a"
)
