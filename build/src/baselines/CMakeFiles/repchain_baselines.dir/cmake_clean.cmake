file(REMOVE_RECURSE
  "CMakeFiles/repchain_baselines.dir/pbft.cpp.o"
  "CMakeFiles/repchain_baselines.dir/pbft.cpp.o.d"
  "CMakeFiles/repchain_baselines.dir/policies.cpp.o"
  "CMakeFiles/repchain_baselines.dir/policies.cpp.o.d"
  "CMakeFiles/repchain_baselines.dir/policy_simulator.cpp.o"
  "CMakeFiles/repchain_baselines.dir/policy_simulator.cpp.o.d"
  "CMakeFiles/repchain_baselines.dir/raft.cpp.o"
  "CMakeFiles/repchain_baselines.dir/raft.cpp.o.d"
  "librepchain_baselines.a"
  "librepchain_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
