
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/pbft.cpp" "src/baselines/CMakeFiles/repchain_baselines.dir/pbft.cpp.o" "gcc" "src/baselines/CMakeFiles/repchain_baselines.dir/pbft.cpp.o.d"
  "/root/repo/src/baselines/policies.cpp" "src/baselines/CMakeFiles/repchain_baselines.dir/policies.cpp.o" "gcc" "src/baselines/CMakeFiles/repchain_baselines.dir/policies.cpp.o.d"
  "/root/repo/src/baselines/policy_simulator.cpp" "src/baselines/CMakeFiles/repchain_baselines.dir/policy_simulator.cpp.o" "gcc" "src/baselines/CMakeFiles/repchain_baselines.dir/policy_simulator.cpp.o.d"
  "/root/repo/src/baselines/raft.cpp" "src/baselines/CMakeFiles/repchain_baselines.dir/raft.cpp.o" "gcc" "src/baselines/CMakeFiles/repchain_baselines.dir/raft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reputation/CMakeFiles/repchain_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repchain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/identity/CMakeFiles/repchain_identity.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/repchain_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
