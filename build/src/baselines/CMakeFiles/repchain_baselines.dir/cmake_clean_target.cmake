file(REMOVE_RECURSE
  "librepchain_baselines.a"
)
