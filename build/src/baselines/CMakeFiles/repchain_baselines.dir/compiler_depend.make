# Empty compiler generated dependencies file for repchain_baselines.
# This may be replaced when dependencies are built.
