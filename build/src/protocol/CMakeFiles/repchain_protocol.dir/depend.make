# Empty dependencies file for repchain_protocol.
# This may be replaced when dependencies are built.
