
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/argue_buffer.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/argue_buffer.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/argue_buffer.cpp.o.d"
  "/root/repo/src/protocol/collector.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/collector.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/collector.cpp.o.d"
  "/root/repo/src/protocol/directory.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/directory.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/directory.cpp.o.d"
  "/root/repo/src/protocol/governor.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/governor.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/governor.cpp.o.d"
  "/root/repo/src/protocol/leader_election.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/leader_election.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/leader_election.cpp.o.d"
  "/root/repo/src/protocol/messages.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/messages.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/messages.cpp.o.d"
  "/root/repo/src/protocol/provider.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/provider.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/provider.cpp.o.d"
  "/root/repo/src/protocol/screening.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/screening.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/screening.cpp.o.d"
  "/root/repo/src/protocol/stake.cpp" "src/protocol/CMakeFiles/repchain_protocol.dir/stake.cpp.o" "gcc" "src/protocol/CMakeFiles/repchain_protocol.dir/stake.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repchain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/identity/CMakeFiles/repchain_identity.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/repchain_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/repchain_reputation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
