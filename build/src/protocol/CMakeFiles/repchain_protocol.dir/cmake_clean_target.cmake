file(REMOVE_RECURSE
  "librepchain_protocol.a"
)
