file(REMOVE_RECURSE
  "CMakeFiles/repchain_protocol.dir/argue_buffer.cpp.o"
  "CMakeFiles/repchain_protocol.dir/argue_buffer.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/collector.cpp.o"
  "CMakeFiles/repchain_protocol.dir/collector.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/directory.cpp.o"
  "CMakeFiles/repchain_protocol.dir/directory.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/governor.cpp.o"
  "CMakeFiles/repchain_protocol.dir/governor.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/leader_election.cpp.o"
  "CMakeFiles/repchain_protocol.dir/leader_election.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/messages.cpp.o"
  "CMakeFiles/repchain_protocol.dir/messages.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/provider.cpp.o"
  "CMakeFiles/repchain_protocol.dir/provider.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/screening.cpp.o"
  "CMakeFiles/repchain_protocol.dir/screening.cpp.o.d"
  "CMakeFiles/repchain_protocol.dir/stake.cpp.o"
  "CMakeFiles/repchain_protocol.dir/stake.cpp.o.d"
  "librepchain_protocol.a"
  "librepchain_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
