file(REMOVE_RECURSE
  "librepchain_identity.a"
)
