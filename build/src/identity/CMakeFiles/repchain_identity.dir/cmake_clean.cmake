file(REMOVE_RECURSE
  "CMakeFiles/repchain_identity.dir/certificate.cpp.o"
  "CMakeFiles/repchain_identity.dir/certificate.cpp.o.d"
  "CMakeFiles/repchain_identity.dir/identity_manager.cpp.o"
  "CMakeFiles/repchain_identity.dir/identity_manager.cpp.o.d"
  "librepchain_identity.a"
  "librepchain_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repchain_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
