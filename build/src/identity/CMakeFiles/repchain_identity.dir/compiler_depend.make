# Empty compiler generated dependencies file for repchain_identity.
# This may be replaced when dependencies are built.
