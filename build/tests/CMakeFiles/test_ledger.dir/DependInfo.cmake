
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ledger/test_block_chain.cpp" "tests/CMakeFiles/test_ledger.dir/ledger/test_block_chain.cpp.o" "gcc" "tests/CMakeFiles/test_ledger.dir/ledger/test_block_chain.cpp.o.d"
  "/root/repo/tests/ledger/test_transaction.cpp" "tests/CMakeFiles/test_ledger.dir/ledger/test_transaction.cpp.o" "gcc" "tests/CMakeFiles/test_ledger.dir/ledger/test_transaction.cpp.o.d"
  "/root/repo/tests/ledger/test_validation_oracle.cpp" "tests/CMakeFiles/test_ledger.dir/ledger/test_validation_oracle.cpp.o" "gcc" "tests/CMakeFiles/test_ledger.dir/ledger/test_validation_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ledger/CMakeFiles/repchain_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
