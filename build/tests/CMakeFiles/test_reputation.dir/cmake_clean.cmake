file(REMOVE_RECURSE
  "CMakeFiles/test_reputation.dir/reputation/test_gamma.cpp.o"
  "CMakeFiles/test_reputation.dir/reputation/test_gamma.cpp.o.d"
  "CMakeFiles/test_reputation.dir/reputation/test_reputation_table.cpp.o"
  "CMakeFiles/test_reputation.dir/reputation/test_reputation_table.cpp.o.d"
  "CMakeFiles/test_reputation.dir/reputation/test_rwm.cpp.o"
  "CMakeFiles/test_reputation.dir/reputation/test_rwm.cpp.o.d"
  "test_reputation"
  "test_reputation.pdb"
  "test_reputation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
