file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_batch_verify.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_batch_verify.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_chacha20poly1305.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_chacha20poly1305.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_ed25519.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_ed25519.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_fe25519.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_fe25519.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_hmac.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_hmac.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_merkle.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_merkle.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_sc25519.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_sc25519.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_sha.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_sha.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_vrf.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_vrf.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_x25519.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_x25519.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
