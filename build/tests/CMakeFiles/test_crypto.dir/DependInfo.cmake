
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_batch_verify.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_batch_verify.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_batch_verify.cpp.o.d"
  "/root/repo/tests/crypto/test_chacha20poly1305.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_chacha20poly1305.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_chacha20poly1305.cpp.o.d"
  "/root/repo/tests/crypto/test_ed25519.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_ed25519.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_ed25519.cpp.o.d"
  "/root/repo/tests/crypto/test_fe25519.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_fe25519.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_fe25519.cpp.o.d"
  "/root/repo/tests/crypto/test_hmac.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_hmac.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_hmac.cpp.o.d"
  "/root/repo/tests/crypto/test_merkle.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_merkle.cpp.o.d"
  "/root/repo/tests/crypto/test_sc25519.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_sc25519.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_sc25519.cpp.o.d"
  "/root/repo/tests/crypto/test_sha.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha.cpp.o.d"
  "/root/repo/tests/crypto/test_vrf.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_vrf.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_vrf.cpp.o.d"
  "/root/repo/tests/crypto/test_x25519.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_x25519.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
