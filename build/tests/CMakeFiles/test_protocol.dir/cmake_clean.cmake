file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/protocol/test_components.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_components.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_equivocation.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_equivocation.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_governor.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_governor.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_integration.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_integration.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_leader_election.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_leader_election.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_messages.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_messages.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_partial_visibility.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_partial_visibility.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_provider_sync.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/test_provider_sync.cpp.o.d"
  "test_protocol"
  "test_protocol.pdb"
  "test_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
