file(REMOVE_RECURSE
  "CMakeFiles/car_sharing.dir/car_sharing.cpp.o"
  "CMakeFiles/car_sharing.dir/car_sharing.cpp.o.d"
  "car_sharing"
  "car_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
