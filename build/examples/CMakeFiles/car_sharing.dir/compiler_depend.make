# Empty compiler generated dependencies file for car_sharing.
# This may be replaced when dependencies are built.
