# Empty dependencies file for private_payloads.
# This may be replaced when dependencies are built.
