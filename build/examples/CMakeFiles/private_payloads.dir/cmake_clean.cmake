file(REMOVE_RECURSE
  "CMakeFiles/private_payloads.dir/private_payloads.cpp.o"
  "CMakeFiles/private_payloads.dir/private_payloads.cpp.o.d"
  "private_payloads"
  "private_payloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_payloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
