file(REMOVE_RECURSE
  "CMakeFiles/adversarial_alliance.dir/adversarial_alliance.cpp.o"
  "CMakeFiles/adversarial_alliance.dir/adversarial_alliance.cpp.o.d"
  "adversarial_alliance"
  "adversarial_alliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_alliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
