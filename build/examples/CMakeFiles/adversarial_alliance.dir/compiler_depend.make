# Empty compiler generated dependencies file for adversarial_alliance.
# This may be replaced when dependencies are built.
