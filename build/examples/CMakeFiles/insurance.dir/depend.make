# Empty dependencies file for insurance.
# This may be replaced when dependencies are built.
