# Empty dependencies file for alliance_cli.
# This may be replaced when dependencies are built.
