file(REMOVE_RECURSE
  "CMakeFiles/alliance_cli.dir/alliance_cli.cpp.o"
  "CMakeFiles/alliance_cli.dir/alliance_cli.cpp.o.d"
  "alliance_cli"
  "alliance_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alliance_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
