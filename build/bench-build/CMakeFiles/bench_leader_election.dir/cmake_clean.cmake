file(REMOVE_RECURSE
  "../bench/bench_leader_election"
  "../bench/bench_leader_election.pdb"
  "CMakeFiles/bench_leader_election.dir/bench_leader_election.cpp.o"
  "CMakeFiles/bench_leader_election.dir/bench_leader_election.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
