file(REMOVE_RECURSE
  "../bench/bench_unchecked"
  "../bench/bench_unchecked.pdb"
  "CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o"
  "CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unchecked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
