# Empty compiler generated dependencies file for bench_unchecked.
# This may be replaced when dependencies are built.
