
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_unchecked.cpp" "bench-build/CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o" "gcc" "bench-build/CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/repchain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/repchain_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/repchain_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/repchain_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/repchain_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repchain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/identity/CMakeFiles/repchain_identity.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/repchain_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
