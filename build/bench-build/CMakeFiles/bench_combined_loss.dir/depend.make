# Empty dependencies file for bench_combined_loss.
# This may be replaced when dependencies are built.
