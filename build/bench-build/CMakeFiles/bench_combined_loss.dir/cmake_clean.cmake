file(REMOVE_RECURSE
  "../bench/bench_combined_loss"
  "../bench/bench_combined_loss.pdb"
  "CMakeFiles/bench_combined_loss.dir/bench_combined_loss.cpp.o"
  "CMakeFiles/bench_combined_loss.dir/bench_combined_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
