# Empty dependencies file for bench_argue_latency.
# This may be replaced when dependencies are built.
