file(REMOVE_RECURSE
  "../bench/bench_argue_latency"
  "../bench/bench_argue_latency.pdb"
  "CMakeFiles/bench_argue_latency.dir/bench_argue_latency.cpp.o"
  "CMakeFiles/bench_argue_latency.dir/bench_argue_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_argue_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
