#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/event_queue.hpp"
#include "runtime/message.hpp"
#include "runtime/transport.hpp"

namespace repchain::net {

// Message vocabulary lives in the runtime layer (protocol nodes speak it
// without seeing the simulator); aliased here for the net-facing code.
using runtime::Message;
using runtime::MsgKind;

/// Uniform link latency in [min_delay, max_delay]; max_delay is the
/// synchrony bound Delta the paper assumes known.
struct LatencyModel {
  SimDuration min_delay = 1 * kMillisecond;
  SimDuration max_delay = 10 * kMillisecond;
};

/// Per-kind and aggregate traffic counters.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Re-deliveries of an already-sequenced broadcast copy suppressed by the
  /// per-link guard in deliver_direct (fault-injected duplication).
  std::uint64_t duplicates_ignored = 0;
  std::map<MsgKind, std::uint64_t> by_kind;
  std::map<MsgKind, std::uint64_t> bytes_by_kind;
};

/// Simulated point-to-point network with bounded delays, optional lossy
/// links for fault injection, and traffic accounting. All sends are
/// unicast; broadcast is a loop (each copy is a counted message, which is
/// what the paper's communication-complexity claims count too).
///
/// Implements runtime::Transport, the interface protocol nodes are written
/// against.
class SimNetwork final : public runtime::Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(EventQueue& queue, Rng rng, LatencyModel latency);

  /// Register a new node; the handler may be installed later (two-phase
  /// construction lets nodes capture their own id).
  NodeId add_node();
  void set_handler(NodeId node, Handler handler);

  /// Send a message; it is delivered after a bounded random delay unless the
  /// link drops it.
  void send(NodeId from, NodeId to, MsgKind kind, Bytes payload) override;

  /// `copies` deliveries of one message, each with its own drawn delay and
  /// per-copy drop/accounting, all sharing one underlying Message buffer —
  /// fault-injected duplication without the per-copy payload deep copy.
  void send_copies(NodeId from, NodeId to, MsgKind kind, Bytes payload,
                   std::size_t copies) override;

  /// Unicast to each destination.
  void multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                 const Bytes& payload) override;

  /// Fault injection: fraction of messages lost on the (from, to) link.
  /// `p` is clamped into [0, 1] (a NaN clamps to 0).
  void set_drop_probability(NodeId from, NodeId to, double p);
  /// Fault injection: all messages sent by `node` are lost (crash).
  void set_node_down(NodeId node, bool down);
  /// Fault injection: add `extra` to every delay drawn on the (from, to)
  /// link (a slow link). 0 removes the entry. The fault-schedule engine
  /// reuses this hook for per-link delay specs.
  void set_link_delay(NodeId from, NodeId to, SimDuration extra);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] runtime::TimerService& timers() override { return queue_; }
  [[nodiscard]] SimDuration max_delay() const override { return latency_.max_delay; }
  [[nodiscard]] std::size_t node_count() const { return handlers_.size(); }

  /// Draw one link delay (exposed for the atomic-broadcast layer).
  [[nodiscard]] SimDuration draw_delay() override;

  /// Invoke the destination handler for a fully-formed message now. Used by
  /// the atomic-broadcast layer, which schedules and orders deliveries
  /// itself. Respects node-down fault injection.
  void deliver_direct(const Message& msg) override;

  /// Account for `copies` unicast copies of a broadcast in the traffic stats.
  void count_broadcast(MsgKind kind, std::size_t copies,
                       std::size_t payload_bytes) override;

 private:
  EventQueue& queue_;
  Rng rng_;
  LatencyModel latency_;
  std::vector<Handler> handlers_;
  std::vector<bool> down_;
  std::unordered_map<std::uint64_t, double> drop_;  // key = from<<32 | to
  std::unordered_map<std::uint64_t, SimDuration> link_delay_;   // same key
  // Highest broadcast sequence delivered per (from, to): group sequences are
  // monotone per sender, so anything at or below the mark is a re-delivery.
  std::unordered_map<std::uint64_t, std::uint64_t> delivered_seq_;
  NetworkStats stats_;
};

}  // namespace repchain::net
