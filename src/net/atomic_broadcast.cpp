#include "net/atomic_broadcast.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace repchain::net {

AtomicBroadcastGroup::AtomicBroadcastGroup(SimNetwork& net, std::vector<NodeId> members)
    : net_(net), members_(std::move(members)) {
  if (members_.empty()) throw ConfigError("atomic broadcast group needs members");
}

void AtomicBroadcastGroup::broadcast(NodeId from, MsgKind kind, const Bytes& payload) {
  ++next_seq_;
  auto& queue = net_.queue();
  for (NodeId member : members_) {
    // Count the copy in network statistics (atomic broadcast costs one
    // message per member in this sequencer realization).
    // Delivery respects both the link delay and the group's total order.
    const SimTime arrival = queue.now() + net_.draw_delay();
    SimTime& last = last_delivery_[member];
    const SimTime deliver_at = std::max(arrival, last);
    last = deliver_at;

    Message msg;
    msg.from = from;
    msg.to = member;
    msg.kind = kind;
    msg.payload = payload;
    msg.sent_at = queue.now();
    msg.delivered_at = deliver_at;

    queue.schedule_at(deliver_at, [&net = net_, msg = std::move(msg)]() {
      net.deliver_direct(msg);
    });
  }
  net_.count_broadcast(kind, members_.size(), payload.size());
}

}  // namespace repchain::net
