#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"
#include "runtime/timer.hpp"

namespace repchain::net {

/// Deterministic discrete-event scheduler. Events scheduled for the same
/// simulated time fire in scheduling order (FIFO tie-break), which makes
/// whole-protocol runs bit-reproducible from the scenario seed.
///
/// This is the substrate for the paper's synchronous system model: message
/// transmission and processing delays are realized as bounded event delays.
/// It implements runtime::TimerService, so protocol nodes schedule their
/// phase deadlines against it without depending on the simulator.
class EventQueue final : public runtime::TimerService {
 public:
  using Callback = runtime::TimerService::Callback;

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedule `cb` at absolute simulated time `t` (>= now).
  void schedule_at(SimTime t, Callback cb) override;

  /// Process events until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Process events with time <= `until`.
  std::size_t run_until(SimTime until);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace repchain::net
