#pragma once

// The deterministic discrete-event scheduler moved to the runtime layer as
// runtime::EventLoop (it owns time, the priority queue, and the explicit
// (time, seq) tie-break key; every timer consumer schedules through it).
// net:: keeps this thin alias so existing includes and spellings keep
// compiling during the migration.

#include "runtime/event_loop.hpp"

namespace repchain::net {

using EventLoop = runtime::EventLoop;
using EventQueue = runtime::EventLoop;

}  // namespace repchain::net
