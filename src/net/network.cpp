#include "net/network.hpp"

#include <algorithm>
#include <memory>

#include "common/errors.hpp"

namespace repchain::net {

namespace {
std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}
}  // namespace

SimNetwork::SimNetwork(EventQueue& queue, Rng rng, LatencyModel latency)
    : queue_(queue), rng_(rng), latency_(latency) {
  if (latency.min_delay > latency.max_delay) {
    throw ConfigError("latency min_delay > max_delay");
  }
}

NodeId SimNetwork::add_node() {
  handlers_.emplace_back();
  down_.push_back(false);
  return NodeId(static_cast<std::uint32_t>(handlers_.size() - 1));
}

void SimNetwork::set_handler(NodeId node, Handler handler) {
  handlers_.at(node.value()) = std::move(handler);
}

SimDuration SimNetwork::draw_delay() {
  const SimDuration span = latency_.max_delay - latency_.min_delay;
  return latency_.min_delay + (span == 0 ? 0 : rng_.uniform(span + 1));
}

void SimNetwork::send(NodeId from, NodeId to, MsgKind kind, Bytes payload) {
  send_copies(from, to, kind, std::move(payload), 1);
}

void SimNetwork::send_copies(NodeId from, NodeId to, MsgKind kind, Bytes payload,
                             std::size_t copies) {
  if (from.value() >= handlers_.size() || to.value() >= handlers_.size()) {
    throw NetError("send to/from unregistered node");
  }
  const std::size_t payload_bytes = payload.size();
  // One shared Message backs every scheduled copy: duplicated traffic costs
  // one extra delivery record, not an extra payload buffer. Each delivery
  // stamps delivered_at just before invoking the handler; deliveries are
  // synchronous and single-threaded, so the shared stamp cannot race.
  std::shared_ptr<Message> msg;
  for (std::size_t c = 0; c < copies; ++c) {
    ++stats_.messages_sent;
    stats_.bytes_sent += payload_bytes;
    ++stats_.by_kind[kind];
    stats_.bytes_by_kind[kind] += payload_bytes;

    if (down_[from.value()] || down_[to.value()]) {
      ++stats_.messages_dropped;
      continue;
    }
    if (const auto it = drop_.find(link_key(from, to));
        it != drop_.end() && rng_.bernoulli(it->second)) {
      ++stats_.messages_dropped;
      continue;
    }

    if (!msg) {
      msg = std::make_shared<Message>();
      msg->from = from;
      msg->to = to;
      msg->kind = kind;
      msg->payload = std::move(payload);
      msg->sent_at = queue_.now();
    }

    SimTime deliver_at = queue_.now() + draw_delay();
    if (const auto slow = link_delay_.find(link_key(from, to));
        slow != link_delay_.end()) {
      deliver_at += slow->second;
    }
    queue_.schedule_at(deliver_at, [this, msg, deliver_at] {
      msg->delivered_at = deliver_at;
      auto& handler = handlers_.at(msg->to.value());
      if (handler && !down_[msg->to.value()]) handler(*msg);
    });
  }
}

void SimNetwork::multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                           const Bytes& payload) {
  if (from.value() >= handlers_.size()) {
    throw NetError("send to/from unregistered node");
  }
  const std::size_t payload_bytes = payload.size();
  // One shared Message backs every destination's copy (see send_copies): the
  // fan-out costs one payload buffer, not one per destination. to and
  // delivered_at are stamped just before each delivery; deliveries are
  // synchronous and single-threaded, so the shared stamps cannot race.
  std::shared_ptr<Message> msg;
  for (NodeId dest : to) {
    if (dest.value() >= handlers_.size()) {
      throw NetError("send to/from unregistered node");
    }
    ++stats_.messages_sent;
    stats_.bytes_sent += payload_bytes;
    ++stats_.by_kind[kind];
    stats_.bytes_by_kind[kind] += payload_bytes;

    if (down_[from.value()] || down_[dest.value()]) {
      ++stats_.messages_dropped;
      continue;
    }
    if (const auto it = drop_.find(link_key(from, dest));
        it != drop_.end() && rng_.bernoulli(it->second)) {
      ++stats_.messages_dropped;
      continue;
    }

    if (!msg) {
      msg = std::make_shared<Message>();
      msg->from = from;
      msg->kind = kind;
      msg->payload = payload;
      msg->sent_at = queue_.now();
    }

    SimTime deliver_at = queue_.now() + draw_delay();
    if (const auto slow = link_delay_.find(link_key(from, dest));
        slow != link_delay_.end()) {
      deliver_at += slow->second;
    }
    queue_.schedule_at(deliver_at, [this, msg, dest, deliver_at] {
      msg->to = dest;
      msg->delivered_at = deliver_at;
      auto& handler = handlers_.at(dest.value());
      if (handler && !down_[dest.value()]) handler(*msg);
    });
  }
}

void SimNetwork::set_drop_probability(NodeId from, NodeId to, double p) {
  // Clamp rather than throw: fault scripts sweep probabilities and a value a
  // hair outside [0,1] (or a NaN) must not tear the run down mid-flight.
  if (!(p > 0.0)) p = 0.0;
  drop_[link_key(from, to)] = std::min(p, 1.0);
}

void SimNetwork::set_node_down(NodeId node, bool down) {
  down_.at(node.value()) = down;
}

void SimNetwork::set_link_delay(NodeId from, NodeId to, SimDuration extra) {
  if (extra == 0) {
    link_delay_.erase(link_key(from, to));
  } else {
    link_delay_[link_key(from, to)] = extra;
  }
}

void SimNetwork::deliver_direct(const Message& msg) {
  auto& handler = handlers_.at(msg.to.value());
  if (!handler || down_[msg.to.value()] || down_[msg.from.value()]) return;
  if (msg.seq != 0) {
    // Sequenced (atomic-broadcast) copy: group sequences rise monotonically
    // per sender, so a sequence at or below the per-link mark is a
    // re-delivery (fault-injected duplication) — ignore it rather than
    // double-apply.
    std::uint64_t& high = delivered_seq_[link_key(msg.from, msg.to)];
    if (msg.seq <= high) {
      ++stats_.duplicates_ignored;
      return;
    }
    high = msg.seq;
  }
  handler(msg);
}

void SimNetwork::count_broadcast(MsgKind kind, std::size_t copies,
                                 std::size_t payload_bytes) {
  stats_.messages_sent += copies;
  stats_.bytes_sent += copies * payload_bytes;
  stats_.by_kind[kind] += copies;
  stats_.bytes_by_kind[kind] += copies * payload_bytes;
}

}  // namespace repchain::net
