#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace repchain::adversary {

/// Declarative, round-windowed Byzantine behavior specs, in the same style
/// as sim::FaultScheduleSpec: every window is half-open [from_round,
/// until_round) over 1-based protocol rounds and is lowered to absolute
/// activation times by the scenario harness. Indices address nodes by their
/// topology position (governor i / collector i / provider i).

/// Governor `governor` equivocates on block proposals whenever it wins the
/// election inside the window.
struct EquivocatingLeaderSpec {
  Round from_round = 0;
  Round until_round = 0;
  std::size_t governor = 0;
};

/// Governor `governor` serves forged blocks to sync_chain callers inside
/// the window.
struct LyingSyncSpec {
  Round from_round = 0;
  Round until_round = 0;
  std::size_t governor = 0;
};

/// Collector `collector` deviates inside the window: label flips at
/// `flip_probability` (optionally targeted per provider), forged uploads at
/// `forge_probability`, and cross-governor label equivocation when
/// `equivocate` is set. Outside the window the collector's configured
/// baseline behavior is restored.
struct ByzantineCollectorSpec {
  Round from_round = 0;
  Round until_round = 0;
  std::size_t collector = 0;
  double flip_probability = 0.0;
  double forge_probability = 0.0;
  bool equivocate = false;
  /// Per-provider misreport overrides (provider topology index, flip
  /// probability); unlisted providers use `flip_probability`.
  std::vector<std::pair<std::uint32_t, double>> flip_by_provider;
};

/// Provider `provider` double-spends inside the window: with `probability`
/// per submission it signs a second transaction reusing the same sequence
/// number and sends each twin to a disjoint half of its collectors.
struct DoubleSpendSpec {
  Round from_round = 0;
  Round until_round = 0;
  std::size_t provider = 0;
  double probability = 0.0;
};

/// The full adversary plan for one scenario. Non-empty specs switch the
/// governors' Byzantine defenses on (ScenarioConfig wiring).
struct AdversarySpec {
  std::vector<EquivocatingLeaderSpec> equivocating_leaders;
  std::vector<LyingSyncSpec> lying_sync_peers;
  std::vector<ByzantineCollectorSpec> byzantine_collectors;
  std::vector<DoubleSpendSpec> double_spenders;

  [[nodiscard]] bool empty() const {
    return equivocating_leaders.empty() && lying_sync_peers.empty() &&
           byzantine_collectors.empty() && double_spenders.empty();
  }
};

}  // namespace repchain::adversary
