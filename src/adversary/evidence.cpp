#include "adversary/evidence.hpp"

#include <string_view>

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::adversary {

namespace {
constexpr std::string_view kMagic = "repchain-block-equivocation-v1";
}  // namespace

Bytes BlockEquivocationEvidence::encode() const {
  BinaryWriter w;
  w.str(kMagic);
  w.bytes(a.encode());
  w.bytes(b.encode());
  return std::move(w).take();
}

BlockEquivocationEvidence BlockEquivocationEvidence::decode(BytesView data) {
  BinaryReader r(data);
  if (r.str() != kMagic) throw DecodeError("not block-equivocation evidence");
  BlockEquivocationEvidence ev;
  ev.a = ledger::Block::decode(r.bytes());
  ev.b = ledger::Block::decode(r.bytes());
  r.expect_done();
  return ev;
}

bool BlockEquivocationEvidence::verify(const identity::IdentityManager& im,
                                       NodeId accused_node, GovernorId accused) const {
  if (a.leader != accused || b.leader != accused) return false;
  if (a.serial != b.serial) return false;
  if (a.hash() == b.hash()) return false;
  return im.authorize(accused_node, identity::Role::kGovernor, a.signed_preimage(),
                      a.leader_sig) &&
         im.authorize(accused_node, identity::Role::kGovernor, b.signed_preimage(),
                      b.leader_sig);
}

}  // namespace repchain::adversary
