#pragma once

#include <cstdint>

namespace repchain::adversary {

/// Classes of active misbehavior the adversary layer can inject and the
/// defenses report. The numeric value rides in kByzantineEvidence trace
/// events as arg0, so it is part of the observable surface — append only.
enum class ByzantineKind : std::uint8_t {
  kProposalEquivocation = 1,  // leader sent conflicting proposals (arg1 = governor)
  kLyingSync = 2,             // sync peer served a forged/stale chain (arg1 = governor)
  kCollectorEquivocation = 3, // conflicting signed labels across governors (arg1 = collector)
  kForgedUpload = 4,          // invalid provider signature on an upload (arg1 = collector)
  kDoubleSpend = 5,           // provider reused a serial across collectors (arg1 = provider)
};

[[nodiscard]] inline const char* byzantine_kind_name(ByzantineKind k) {
  switch (k) {
    case ByzantineKind::kProposalEquivocation: return "proposal-equivocation";
    case ByzantineKind::kLyingSync: return "lying-sync";
    case ByzantineKind::kCollectorEquivocation: return "collector-equivocation";
    case ByzantineKind::kForgedUpload: return "forged-upload";
    case ByzantineKind::kDoubleSpend: return "double-spend";
  }
  return "unknown";
}

/// In-protocol misbehavior toggles for a governor. Installed by the scenario
/// harness (Governor::set_byzantine); every flag defaults to honest so the
/// fault-free goldens are untouched.
struct GovernorByzantine {
  /// When this governor wins the election it assembles two conflicting
  /// blocks for the same serial and sends each variant to a disjoint half of
  /// its peers.
  bool equivocate_proposals = false;
  /// Answer kBlockRequest with an internally-forged block (tampered TXList,
  /// re-signed by this governor) instead of the committed one.
  bool lying_sync = false;

  [[nodiscard]] bool any() const { return equivocate_proposals || lying_sync; }
};

}  // namespace repchain::adversary
