#pragma once

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/block.hpp"

namespace repchain::adversary {

/// Self-contained proof that a leader equivocated: two blocks for the same
/// serial, both carrying the accused leader's valid signature, with
/// different hashes. Carried in ExpelMsg::evidence (the magic prefix
/// distinguishes it from the stake-consensus StateProposalMsg evidence
/// format) so any governor can verify the accusation offline.
struct BlockEquivocationEvidence {
  ledger::Block a;
  ledger::Block b;

  [[nodiscard]] Bytes encode() const;
  /// Throws DecodeError when the payload is not this format (wrong magic,
  /// truncation, trailing bytes).
  [[nodiscard]] static BlockEquivocationEvidence decode(BytesView data);

  /// True iff both blocks claim the same serial from `accused` (enrolled as
  /// a governor at `accused_node`), both signatures authenticate, and the
  /// block hashes differ — i.e. the evidence proves equivocation.
  [[nodiscard]] bool verify(const identity::IdentityManager& im, NodeId accused_node,
                            GovernorId accused) const;
};

}  // namespace repchain::adversary
