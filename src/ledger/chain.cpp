#include "ledger/chain.hpp"

#include <fstream>

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::ledger {

void ChainStore::append(Block block) {
  const BlockSerial expected = blocks_.size() + 1;
  if (block.serial != expected) {
    throw ProtocolError("no-skipping violation: expected serial " +
                        std::to_string(expected) + ", got " +
                        std::to_string(block.serial));
  }
  if (!ct_equal(view(block.prev_hash), view(head_hash()))) {
    throw ProtocolError("chain-integrity violation: prev_hash mismatch at serial " +
                        std::to_string(block.serial));
  }
  if (!ct_equal(view(block.tx_root), view(block.compute_tx_root()))) {
    throw ProtocolError("tx_root does not commit to TXList at serial " +
                        std::to_string(block.serial));
  }
  blocks_.push_back(std::move(block));
}

std::optional<Block> ChainStore::retrieve(BlockSerial serial) const {
  if (serial == 0 || serial > blocks_.size()) return std::nullopt;
  return blocks_[serial - 1];
}

crypto::Hash256 ChainStore::head_hash() const {
  if (blocks_.empty()) return crypto::Hash256{};
  return blocks_.back().hash();
}

const Block& ChainStore::head() const {
  if (blocks_.empty()) throw ProtocolError("head() on empty chain");
  return blocks_.back();
}

bool ChainStore::audit() const {
  crypto::Hash256 prev{};
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.serial != i + 1) return false;
    if (!ct_equal(view(b.prev_hash), view(prev))) return false;
    if (!ct_equal(view(b.tx_root), view(b.compute_tx_root()))) return false;
    prev = b.hash();
  }
  return true;
}

bool ChainStore::same_prefix(const ChainStore& a, const ChainStore& b) {
  const std::size_t common = std::min(a.height(), b.height());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.blocks_[i].encode() != b.blocks_[i].encode()) return false;
  }
  return true;
}

namespace {
constexpr char kMagic[] = "repchain-chain-v1";
}  // namespace

void ChainStore::save(const std::filesystem::path& path) const {
  BinaryWriter w;
  w.str(kMagic);
  w.u64(blocks_.size());
  for (const Block& b : blocks_) w.bytes(b.encode());
  const Bytes data = std::move(w).take();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ProtocolError("cannot open chain file for writing: " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw ProtocolError("failed writing chain file: " + path.string());
}

ChainStore ChainStore::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ProtocolError("cannot open chain file for reading: " + path.string());
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  BinaryReader r(data);
  if (r.str() != kMagic) throw DecodeError("bad chain file magic");
  const std::uint64_t count = r.u64();
  r.expect_count(count, 4);

  ChainStore store;
  for (std::uint64_t i = 0; i < count; ++i) {
    // append() re-validates serials, hash links and tx roots.
    store.append(Block::decode(r.bytes()));
  }
  r.expect_done();
  return store;
}

std::size_t ChainStore::count_status(TxStatus status) const {
  std::size_t n = 0;
  for (const auto& b : blocks_) {
    for (const auto& rec : b.txs) {
      if (rec.status == status) ++n;
    }
  }
  return n;
}

}  // namespace repchain::ledger
