#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "ledger/transaction.hpp"

namespace repchain::ledger {

/// Application-semantics substrate behind validate(tx).
///
/// The paper treats transaction validity as an application-level ground
/// truth that a governor can learn exactly — at a cost — by running
/// validate(tx), and that a collector observes (possibly imperfectly or
/// adversarially) when labeling. We realize it as a registry populated by
/// the workload generator: each transaction has a hidden true-validity bit.
/// `validate` reveals it and charges the configured validation cost, which
/// is the quantity the f-tunable screening saves (experiments E2/E7).
class ValidationOracle {
 public:
  /// Cost charged per validate() call, in simulated time units.
  explicit ValidationOracle(SimDuration validation_cost = 1 * kMillisecond)
      : validation_cost_(validation_cost) {}

  /// Record ground truth for a transaction (workload generator only).
  void register_tx(const TxId& id, bool valid);

  /// Invoked on every register_tx (after the truth is recorded). The cluster
  /// driver uses it to forward each truth to the replica oracles living in
  /// governor node processes; a fresh registration reaches them before any
  /// message that could trigger validating the transaction.
  void set_register_hook(std::function<void(const TxId&, bool)> hook) {
    register_hook_ = std::move(hook);
  }

  [[nodiscard]] bool is_registered(const TxId& id) const;

  /// The governor's validate(tx): exact, counted, costed.
  [[nodiscard]] bool validate(const TxId& id);

  /// A collector's observation: ground truth flipped with probability
  /// (1 - accuracy). Does not count as a governor validation.
  [[nodiscard]] Label observe(const TxId& id, double accuracy, Rng& rng) const;

  /// Ground truth without cost accounting (for metrics/tests only).
  [[nodiscard]] bool true_validity(const TxId& id) const;

  /// Full ground-truth registry (read-only). The cluster driver replays it
  /// to a respawned node process, whose fresh oracle replica lost every
  /// registration made before the crash.
  [[nodiscard]] const std::unordered_map<TxId, bool, TxIdHash>& truth() const {
    return truth_;
  }

  [[nodiscard]] std::uint64_t validations() const { return validations_; }
  [[nodiscard]] SimDuration total_cost() const { return validations_ * validation_cost_; }
  [[nodiscard]] SimDuration validation_cost() const { return validation_cost_; }
  [[nodiscard]] std::size_t registered_count() const { return truth_.size(); }

  void reset_counters() { validations_ = 0; }

 private:
  SimDuration validation_cost_;
  std::unordered_map<TxId, bool, TxIdHash> truth_;
  std::uint64_t validations_ = 0;
  std::function<void(const TxId&, bool)> register_hook_;
};

}  // namespace repchain::ledger
