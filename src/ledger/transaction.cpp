#include "ledger/transaction.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::ledger {

Bytes Transaction::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-tx-v1");
  w.u32(provider.value());
  w.u64(seq);
  w.u64(timestamp);
  w.bytes(payload);
  return std::move(w).take();
}

TxId Transaction::id() const { return crypto::Sha256::hash(signed_preimage()); }

Bytes Transaction::encode() const {
  BinaryWriter w;
  w.u32(provider.value());
  w.u64(seq);
  w.u64(timestamp);
  w.bytes(payload);
  w.raw(view(provider_sig.bytes));
  return std::move(w).take();
}

Transaction Transaction::decode(BytesView data) {
  BinaryReader r(data);
  Transaction tx;
  tx.provider = ProviderId(r.u32());
  tx.seq = r.u64();
  tx.timestamp = r.u64();
  tx.payload = r.bytes();
  tx.provider_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return tx;
}

Transaction make_transaction(ProviderId provider, std::uint64_t seq, SimTime timestamp,
                             Bytes payload, const crypto::SigningKey& key) {
  Transaction tx;
  tx.provider = provider;
  tx.seq = seq;
  tx.timestamp = timestamp;
  tx.payload = std::move(payload);
  tx.provider_sig = key.sign(tx.signed_preimage());
  return tx;
}

Bytes LabeledTransaction::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-labeled-tx-v1");
  w.bytes(tx.encode());
  w.u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(label)));
  w.u32(collector.value());
  return std::move(w).take();
}

Bytes LabeledTransaction::encode() const {
  BinaryWriter w;
  w.bytes(tx.encode());
  w.u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(label)));
  w.u32(collector.value());
  w.raw(view(collector_sig.bytes));
  return std::move(w).take();
}

LabeledTransaction LabeledTransaction::decode(BytesView data) {
  BinaryReader r(data);
  LabeledTransaction ltx;
  ltx.tx = Transaction::decode(r.bytes());
  const auto raw = static_cast<std::int8_t>(r.u8());
  if (raw != +1 && raw != -1) throw DecodeError("label must be +1 or -1");
  ltx.label = static_cast<Label>(raw);
  ltx.collector = CollectorId(r.u32());
  ltx.collector_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return ltx;
}

LabeledTransaction make_labeled(const Transaction& tx, Label label, CollectorId collector,
                                const crypto::SigningKey& key) {
  LabeledTransaction ltx;
  ltx.tx = tx;
  ltx.label = label;
  ltx.collector = collector;
  ltx.collector_sig = key.sign(ltx.signed_preimage());
  return ltx;
}

}  // namespace repchain::ledger
