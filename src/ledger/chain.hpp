#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "ledger/block.hpp"

namespace repchain::ledger {

/// Append-only hash-chained block store enforcing, at append time, the
/// safety properties of §3.1:
///  - Agreement is per-store trivially (one copy per governor); cross-store
///    agreement is checked by `same_prefix`;
///  - Chain Integrity: prev_hash of each appended block must equal H(head);
///  - No Skipping: serials are 1, 2, 3, ... with no gaps.
class ChainStore {
 public:
  /// Append a block. Throws ProtocolError on serial gap or hash mismatch.
  void append(Block block);

  /// retrieve(s) of §3.1. Nullopt if the serial is beyond the head.
  [[nodiscard]] std::optional<Block> retrieve(BlockSerial serial) const;

  [[nodiscard]] std::size_t height() const { return blocks_.size(); }
  [[nodiscard]] bool empty() const { return blocks_.empty(); }

  /// Hash of the latest block; the genesis predecessor hash (all zero) when
  /// empty.
  [[nodiscard]] crypto::Hash256 head_hash() const;
  [[nodiscard]] const Block& head() const;
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Full audit of the stored chain: serials contiguous from 1, every link's
  /// prev_hash correct, every tx_root consistent with its TXList.
  [[nodiscard]] bool audit() const;

  /// Agreement check between two replicas: identical blocks at every common
  /// serial.
  [[nodiscard]] static bool same_prefix(const ChainStore& a, const ChainStore& b);

  /// Count of transactions across all blocks with the given status.
  [[nodiscard]] std::size_t count_status(TxStatus status) const;

  /// Persist the chain to a file (length-prefixed block encodings behind a
  /// magic header). Throws ProtocolError on I/O failure.
  void save(const std::filesystem::path& path) const;

  /// Load a chain from a file. Every block is re-verified through append()
  /// on the way in, so a tampered file fails with ProtocolError/DecodeError
  /// rather than producing a corrupt store.
  [[nodiscard]] static ChainStore load(const std::filesystem::path& path);

 private:
  std::vector<Block> blocks_;
};

}  // namespace repchain::ledger
