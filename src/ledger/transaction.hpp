#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"

namespace repchain::ledger {

/// Identifier of a transaction: SHA-256 over the provider-signed fields.
/// Two uploads of the same provider transaction (possibly with different
/// collector labels) share one TxId, which is what lets a governor aggregate
/// reports per transaction in the screening step.
using TxId = crypto::Hash256;

/// A provider transaction: payload signed together with the timestamp so no
/// collector can forge or replay one (§3.1: "they sign on transactions
/// together with the timestamp").
struct Transaction {
  ProviderId provider;
  std::uint64_t seq = 0;  // provider-local sequence number
  SimTime timestamp = 0;
  Bytes payload;
  crypto::Signature provider_sig;

  /// Provider's signing preimage (all fields except the signature).
  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] TxId id() const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Transaction decode(BytesView data);

  bool operator==(const Transaction& other) const { return encode() == other.encode(); }
};

/// Create and sign a transaction with the provider's key.
[[nodiscard]] Transaction make_transaction(ProviderId provider, std::uint64_t seq,
                                           SimTime timestamp, Bytes payload,
                                           const crypto::SigningKey& key);

/// Collector's verdict on a transaction (+1 valid / -1 invalid, §3.3).
enum class Label : std::int8_t {
  kValid = +1,
  kInvalid = -1,
};

[[nodiscard]] inline Label opposite(Label l) {
  return l == Label::kValid ? Label::kInvalid : Label::kValid;
}

/// A transaction with a collector's label and signature — the unit uploaded
/// to governors in Algorithm 1.
struct LabeledTransaction {
  Transaction tx;
  Label label = Label::kValid;
  CollectorId collector;
  crypto::Signature collector_sig;

  /// Collector's signing preimage: the signed transaction plus the label.
  [[nodiscard]] Bytes signed_preimage() const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static LabeledTransaction decode(BytesView data);
};

/// Label and sign an upload with the collector's key.
[[nodiscard]] LabeledTransaction make_labeled(const Transaction& tx, Label label,
                                              CollectorId collector,
                                              const crypto::SigningKey& key);

/// Hash functor for using TxId as an unordered_map key.
struct TxIdHash {
  std::size_t operator()(const TxId& id) const noexcept {
    std::size_t out;
    std::memcpy(&out, id.data(), sizeof(out));
    return out;
  }
};

}  // namespace repchain::ledger
