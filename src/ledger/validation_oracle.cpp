#include "ledger/validation_oracle.hpp"

#include "common/errors.hpp"

namespace repchain::ledger {

void ValidationOracle::register_tx(const TxId& id, bool valid) {
  const auto [it, inserted] = truth_.emplace(id, valid);
  if (!inserted && it->second != valid) {
    throw ConfigError("conflicting ground truth for transaction");
  }
  if (inserted && register_hook_) register_hook_(id, valid);
}

bool ValidationOracle::is_registered(const TxId& id) const { return truth_.contains(id); }

bool ValidationOracle::validate(const TxId& id) {
  ++validations_;
  return true_validity(id);
}

Label ValidationOracle::observe(const TxId& id, double accuracy, Rng& rng) const {
  const bool truth = true_validity(id);
  const bool observed = rng.bernoulli(accuracy) ? truth : !truth;
  return observed ? Label::kValid : Label::kInvalid;
}

bool ValidationOracle::true_validity(const TxId& id) const {
  const auto it = truth_.find(id);
  if (it == truth_.end()) {
    throw ProtocolError("validate() on unregistered transaction");
  }
  return it->second;
}

}  // namespace repchain::ledger
