#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "ledger/transaction.hpp"

namespace repchain::ledger {

/// How a transaction ended up in a block, following Algorithm 2:
///  - kCheckedValid: the governor ran validate(tx) and it was valid;
///  - kUncheckedInvalid: a -1 report survived the 1 - f*Pr coin, so the tx
///    is recorded invalid-and-unchecked (may later be argued);
///  - kArguedValid: a provider argued and re-validation proved it valid.
/// Checked-invalid transactions are discarded and never appear in a block.
enum class TxStatus : std::uint8_t {
  kCheckedValid = 1,
  kUncheckedInvalid = 2,
  kArguedValid = 3,
};

[[nodiscard]] const char* tx_status_name(TxStatus s);

/// One TXList entry: the signed transaction plus its recorded disposition.
struct TxRecord {
  Transaction tx;
  Label label = Label::kValid;  // label of the screening-chosen collector
  TxStatus status = TxStatus::kCheckedValid;

  [[nodiscard]] bool unchecked() const { return status == TxStatus::kUncheckedInvalid; }

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static TxRecord decode(BytesView data);
};

/// A block B = (s, TXList, h) per §3.1, extended with the fields any real
/// deployment needs: round number, a Merkle commitment to TXList, the
/// proposing leader and its signature.
struct Block {
  BlockSerial serial = 0;
  Round round = 0;
  crypto::Hash256 prev_hash{};  // H(previous block); zero for the genesis block
  crypto::Hash256 tx_root{};    // Merkle root over TXList entries
  GovernorId leader;
  std::vector<TxRecord> txs;
  crypto::Signature leader_sig;

  /// Leader's signing preimage (all fields except the signature).
  [[nodiscard]] Bytes signed_preimage() const;

  /// H(B): hash of the full encoding, as referenced by the next block.
  [[nodiscard]] crypto::Hash256 hash() const;

  /// Recompute the Merkle root from txs (must equal tx_root in a
  /// well-formed block).
  [[nodiscard]] crypto::Hash256 compute_tx_root() const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Block decode(BytesView data);

  /// Merkle inclusion proof for the i-th TXList entry against tx_root —
  /// lets a light client verify a transaction's recorded disposition from
  /// the block header alone. Throws ConfigError if out of range.
  [[nodiscard]] crypto::MerkleProof prove_tx(std::size_t index) const;

  /// Verify that `record` is committed at some position under `tx_root`.
  [[nodiscard]] static bool verify_tx_inclusion(const crypto::Hash256& tx_root,
                                                const TxRecord& record,
                                                const crypto::MerkleProof& proof);
};

/// Assemble and sign a block.
[[nodiscard]] Block make_block(BlockSerial serial, Round round,
                               const crypto::Hash256& prev_hash, GovernorId leader,
                               std::vector<TxRecord> txs, const crypto::SigningKey& key);

}  // namespace repchain::ledger
