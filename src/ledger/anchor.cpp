#include "ledger/anchor.hpp"

#include <string>

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::ledger {
namespace {

constexpr std::uint32_t kBeaconMagic = 0x424E4352;  // "RCNB" little-endian

}  // namespace

Bytes AnchorRecord::encode() const {
  BinaryWriter w;
  w.u32(shard.value());
  w.u64(round);
  w.u64(head_serial);
  w.raw(view(head_hash));
  return std::move(w).take();
}

AnchorRecord AnchorRecord::decode(BytesView data) {
  BinaryReader r(data);
  AnchorRecord rec;
  rec.shard = ShardId(r.u32());
  rec.round = r.u64();
  rec.head_serial = r.u64();
  rec.head_hash = r.raw_array<32>();
  r.expect_done();
  return rec;
}

AnchorRecord make_anchor(ShardId shard, Round round, const ChainStore& chain) {
  AnchorRecord rec;
  rec.shard = shard;
  rec.round = round;
  rec.head_serial = chain.height();
  rec.head_hash = chain.head_hash();  // zero hash when the chain is empty
  return rec;
}

void BeaconLog::append(AnchorRecord record) {
  if (const auto prev = latest(record.shard)) {
    if (record.round <= prev->round) {
      throw ProtocolError("beacon: shard " + std::to_string(record.shard.value()) +
                          " anchor round " + std::to_string(record.round) +
                          " does not advance past " + std::to_string(prev->round));
    }
    if (record.head_serial < prev->head_serial) {
      throw ProtocolError("beacon: shard " + std::to_string(record.shard.value()) +
                          " anchors a rollback (serial " +
                          std::to_string(record.head_serial) + " < " +
                          std::to_string(prev->head_serial) + ")");
    }
  }
  records_.push_back(record);
}

std::optional<AnchorRecord> BeaconLog::latest(ShardId shard) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->shard == shard) return *it;
  }
  return std::nullopt;
}

bool BeaconLog::verify(ShardId shard, const ChainStore& chain) const {
  const auto anchor = latest(shard);
  if (!anchor) return true;
  if (anchor->head_serial == 0) return true;  // anchored while still empty
  const auto block = chain.retrieve(anchor->head_serial);
  if (!block) return false;  // replica has not reached the anchored height
  return block->hash() == anchor->head_hash;
}

Bytes BeaconLog::encode() const {
  BinaryWriter w;
  w.u32(kBeaconMagic);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const auto& rec : records_) w.bytes(rec.encode());
  return std::move(w).take();
}

BeaconLog BeaconLog::decode(BytesView data) {
  BinaryReader r(data);
  if (r.u32() != kBeaconMagic) throw DecodeError("beacon: bad magic");
  const auto count = r.u32();
  BeaconLog log;
  for (std::uint32_t i = 0; i < count; ++i) {
    log.append(AnchorRecord::decode(r.bytes()));  // re-checked through append()
  }
  r.expect_done();
  return log;
}

}  // namespace repchain::ledger
