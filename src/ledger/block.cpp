#include "ledger/block.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"
#include "crypto/merkle.hpp"

namespace repchain::ledger {

const char* tx_status_name(TxStatus s) {
  switch (s) {
    case TxStatus::kCheckedValid:
      return "checked-valid";
    case TxStatus::kUncheckedInvalid:
      return "unchecked-invalid";
    case TxStatus::kArguedValid:
      return "argued-valid";
  }
  return "unknown";
}

Bytes TxRecord::encode() const {
  BinaryWriter w;
  w.bytes(tx.encode());
  w.u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(label)));
  w.u8(static_cast<std::uint8_t>(status));
  return std::move(w).take();
}

TxRecord TxRecord::decode(BytesView data) {
  BinaryReader r(data);
  TxRecord rec;
  rec.tx = Transaction::decode(r.bytes());
  const auto raw_label = static_cast<std::int8_t>(r.u8());
  if (raw_label != +1 && raw_label != -1) throw DecodeError("bad label in tx record");
  rec.label = static_cast<Label>(raw_label);
  const auto raw_status = r.u8();
  if (raw_status < 1 || raw_status > 3) throw DecodeError("bad status in tx record");
  rec.status = static_cast<TxStatus>(raw_status);
  r.expect_done();
  return rec;
}

Bytes Block::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-block-v1");
  w.u64(serial);
  w.u64(round);
  w.raw(view(prev_hash));
  w.raw(view(tx_root));
  w.u32(leader.value());
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& rec : txs) w.bytes(rec.encode());
  return std::move(w).take();
}

crypto::Hash256 Block::hash() const { return crypto::Sha256::hash(encode()); }

crypto::Hash256 Block::compute_tx_root() const {
  std::vector<Bytes> leaves;
  leaves.reserve(txs.size());
  for (const auto& rec : txs) leaves.push_back(rec.encode());
  return crypto::MerkleTree(leaves).root();
}

Bytes Block::encode() const {
  BinaryWriter w;
  w.u64(serial);
  w.u64(round);
  w.raw(view(prev_hash));
  w.raw(view(tx_root));
  w.u32(leader.value());
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& rec : txs) w.bytes(rec.encode());
  w.raw(view(leader_sig.bytes));
  return std::move(w).take();
}

Block Block::decode(BytesView data) {
  BinaryReader r(data);
  Block b;
  b.serial = r.u64();
  b.round = r.u64();
  b.prev_hash = r.raw_array<32>();
  b.tx_root = r.raw_array<32>();
  b.leader = GovernorId(r.u32());
  const auto count = r.u32();
  // Each TXList entry is length-prefixed (>= 4 bytes on the wire).
  r.expect_count(count, 4);
  b.txs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    b.txs.push_back(TxRecord::decode(r.bytes()));
  }
  b.leader_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return b;
}

crypto::MerkleProof Block::prove_tx(std::size_t index) const {
  std::vector<Bytes> leaves;
  leaves.reserve(txs.size());
  for (const auto& rec : txs) leaves.push_back(rec.encode());
  return crypto::MerkleTree(leaves).prove(index);
}

bool Block::verify_tx_inclusion(const crypto::Hash256& tx_root, const TxRecord& record,
                                const crypto::MerkleProof& proof) {
  return crypto::MerkleTree::verify(tx_root, record.encode(), proof);
}

Block make_block(BlockSerial serial, Round round, const crypto::Hash256& prev_hash,
                 GovernorId leader, std::vector<TxRecord> txs,
                 const crypto::SigningKey& key) {
  Block b;
  b.serial = serial;
  b.round = round;
  b.prev_hash = prev_hash;
  b.leader = leader;
  b.txs = std::move(txs);
  b.tx_root = b.compute_tx_root();
  b.leader_sig = key.sign(b.signed_preimage());
  return b;
}

}  // namespace repchain::ledger
