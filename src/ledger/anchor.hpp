#pragma once

// Cross-shard anchoring. Every K rounds each committee commits its chain
// head into a beacon record; the BeaconLog is the ordered ledger of those
// anchors. A replica (or a freshly-synced node) is verified against the
// beacon by checking that its block at the anchored serial hashes to the
// anchored head hash — a committee cannot silently rewrite history below
// its last anchor without diverging from the beacon.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"
#include "ledger/chain.hpp"

namespace repchain::ledger {

/// One committee head commitment: "shard s's chain, as of `round`, is
/// `head_serial` blocks high and its head block hashes to `head_hash`". An
/// empty chain anchors as (serial 0, zero hash) — the genesis predecessor.
struct AnchorRecord {
  ShardId shard;
  Round round = 0;
  BlockSerial head_serial = 0;
  crypto::Hash256 head_hash{};

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static AnchorRecord decode(BytesView data);

  bool operator==(const AnchorRecord&) const = default;
};

/// Build the anchor of `chain` at `round`.
[[nodiscard]] AnchorRecord make_anchor(ShardId shard, Round round,
                                       const ChainStore& chain);

/// The beacon: an append-only log of anchor records across all committees,
/// in anchoring order. Appends are monotonicity-checked per shard (rounds
/// strictly increasing, head serials non-decreasing); verification checks a
/// chain replica against its shard's latest anchor.
class BeaconLog {
 public:
  /// Append an anchor. Throws ProtocolError when it regresses its shard's
  /// previous anchor (round not increasing or head serial shrinking — a
  /// committee must never anchor a rollback).
  void append(AnchorRecord record);

  [[nodiscard]] const std::vector<AnchorRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// The most recent anchor of `shard` (nullopt before its first anchor).
  [[nodiscard]] std::optional<AnchorRecord> latest(ShardId shard) const;

  /// Verify a replica of `shard`'s chain against the latest anchor: the
  /// replica must have reached the anchored serial and its block there must
  /// hash to the anchored head hash. True when the shard has no anchor yet.
  [[nodiscard]] bool verify(ShardId shard, const ChainStore& chain) const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static BeaconLog decode(BytesView data);

 private:
  std::vector<AnchorRecord> records_;
};

}  // namespace repchain::ledger
