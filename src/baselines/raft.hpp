#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace repchain::baselines {

/// Raft message types (self-contained baseline; uses MsgKind::kTest on the
/// wire with its own inner type tag).
enum class RaftMsgType : std::uint8_t {
  kRequestVote = 1,
  kVoteReply = 2,
  kAppendEntries = 3,  // also the heartbeat when entries are empty
  kAppendReply = 4,
};

struct RaftLogEntry {
  std::uint64_t term = 0;
  Bytes payload;
};

/// One Raft wire message (unencrypted — this baseline measures protocol
/// behaviour and message complexity, not authentication; the paper's §2.2
/// cites Corda-with-Raft as the crash-fault-tolerant comparator).
struct RaftMsg {
  RaftMsgType type = RaftMsgType::kRequestVote;
  std::uint64_t term = 0;
  std::uint32_t from = 0;
  // RequestVote: candidate's last log position.
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
  // VoteReply / AppendReply:
  bool granted = false;
  // AppendEntries:
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::uint64_t leader_commit = 0;
  std::vector<RaftLogEntry> entries;
  // AppendReply: index of the last entry the follower matched.
  std::uint64_t match_index = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static RaftMsg decode(BytesView data);
};

/// Compact single-decree-stream Raft: randomized election timeouts, terms,
/// RequestVote with the log-up-to-date check, AppendEntries with the
/// log-matching property, commit on majority match (current-term entries
/// only). No persistence or snapshots — nodes that "crash" (SimNetwork
/// node-down) simply stop participating, and this baseline is only run
/// within one incarnation per node.
///
/// Tolerates floor((m-1)/2) crashed nodes — the §2.2 contrast with both
/// PBFT (f < m/3 byzantine) and RepChain's leader-trusting O(m) path.
class RaftNode {
 public:
  RaftNode(std::uint32_t id, NodeId node, net::SimNetwork& net,
           std::vector<NodeId> peers, Rng rng);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Start the node's election timer (call once after wiring handlers).
  void start();

  void on_message(const net::Message& msg);

  /// Leader-only: append a client payload to the replicated log.
  /// Returns false if this node is not currently the leader.
  bool submit(const Bytes& payload);

  enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] std::uint64_t term() const { return term_; }
  [[nodiscard]] std::uint64_t commit_index() const { return commit_index_; }
  /// Committed payloads in log order.
  [[nodiscard]] std::vector<Bytes> committed() const;
  [[nodiscard]] const std::vector<RaftLogEntry>& log() const { return log_; }

 private:
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void reset_election_timer();
  void schedule_heartbeat();
  void send(std::uint32_t peer, const RaftMsg& msg);
  void broadcast_append();
  void advance_commit();
  [[nodiscard]] std::uint64_t last_log_index() const { return log_.size(); }
  [[nodiscard]] std::uint64_t last_log_term() const {
    return log_.empty() ? 0 : log_.back().term;
  }

  void on_request_vote(const RaftMsg& msg);
  void on_vote_reply(const RaftMsg& msg);
  void on_append_entries(const RaftMsg& msg);
  void on_append_reply(const RaftMsg& msg);

  std::uint32_t id_;
  NodeId node_;
  net::SimNetwork& net_;
  std::vector<NodeId> peers_;  // index = raft id (includes self)
  Rng rng_;

  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  std::optional<std::uint32_t> voted_for_;
  std::vector<RaftLogEntry> log_;  // 1-based indexing via index-1
  std::uint64_t commit_index_ = 0;

  std::set<std::uint32_t> votes_;
  std::map<std::uint32_t, std::uint64_t> match_index_;
  std::map<std::uint32_t, std::uint64_t> next_index_;

  // Timer epochs: a fired timer is ignored unless its epoch is current.
  std::uint64_t election_epoch_ = 0;
  std::uint64_t heartbeat_epoch_ = 0;

  static constexpr SimDuration kHeartbeat = 20 * kMillisecond;
  static constexpr SimDuration kElectionMin = 100 * kMillisecond;
  static constexpr SimDuration kElectionJitter = 100 * kMillisecond;
};

}  // namespace repchain::baselines
