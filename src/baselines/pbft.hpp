#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"
#include "identity/identity_manager.hpp"
#include "net/network.hpp"

namespace repchain::baselines {

/// Message kinds for the PBFT baseline (kept out of the protocol's enum —
/// this is a comparator, not part of RepChain).
enum class PbftPhase : std::uint8_t {
  kPrePrepare = 1,
  kPrepare = 2,
  kCommit = 3,
};

/// One signed PBFT message: (phase, view, sequence, payload digest), plus
/// the full payload on pre-prepare.
struct PbftMsg {
  PbftPhase phase = PbftPhase::kPrePrepare;
  std::uint64_t view = 0;
  std::uint64_t sequence = 0;
  crypto::Hash256 digest{};
  Bytes payload;  // only on pre-prepare
  std::uint32_t replica = 0;
  crypto::Signature sig;

  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static PbftMsg decode(BytesView data);
};

/// Classic three-phase PBFT agreement (pre-prepare / prepare / commit with
/// 2f+1 quorums, f = floor((m-1)/3)), fixed view (no view change — the
/// comparison is about steady-state message complexity, which is what the
/// paper's §4.1 discusses). Implemented as the BFT baseline the paper's
/// related work (§2.2) positions the protocol against: RepChain's
/// leader-trusting block dissemination costs O(m) messages per block where
/// PBFT costs O(m^2).
///
/// Byzantine behaviours covered by tests: silent replicas (up to f), and an
/// equivocating primary (conflicting pre-prepares) — safety holds (no two
/// honest replicas deliver different payloads for one sequence), liveness
/// for that sequence is lost, as expected without view change.
class PbftReplica {
 public:
  PbftReplica(std::uint32_t id, NodeId node, crypto::SigningKey key,
              net::SimNetwork& net, const identity::IdentityManager& im,
              std::vector<NodeId> replica_nodes);

  PbftReplica(const PbftReplica&) = delete;
  PbftReplica& operator=(const PbftReplica&) = delete;

  /// Primary (replica id == view % m) proposes a payload for the next
  /// sequence number.
  void propose(const Bytes& payload);

  /// Test hook: an equivocating primary sends pre-prepares with different
  /// payloads to different replicas.
  void propose_equivocating(const Bytes& payload_a, const Bytes& payload_b);

  void on_message(const net::Message& msg);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] bool is_primary() const { return view_ % replicas() == id_; }
  [[nodiscard]] std::size_t replicas() const { return replica_nodes_.size(); }
  [[nodiscard]] std::size_t max_faulty() const { return (replicas() - 1) / 3; }
  [[nodiscard]] std::size_t quorum() const { return 2 * max_faulty() + 1; }

  /// Payloads delivered in sequence order.
  [[nodiscard]] const std::vector<Bytes>& delivered() const { return delivered_; }

 private:
  struct SlotState {
    std::optional<crypto::Hash256> digest;  // from the accepted pre-prepare
    Bytes payload;
    std::set<std::uint32_t> prepares;  // replicas whose prepare we verified
    std::set<std::uint32_t> commits;
    bool prepared = false;
    bool committed = false;
    bool sent_prepare = false;
    bool sent_commit = false;
  };

  void broadcast(const PbftMsg& msg);
  void send_phase(PbftPhase phase, std::uint64_t sequence,
                  const crypto::Hash256& digest, const Bytes& payload = {});
  void try_advance(std::uint64_t sequence);
  void deliver_ready();

  std::uint32_t id_;
  NodeId node_;
  crypto::SigningKey key_;
  net::SimNetwork& net_;
  const identity::IdentityManager& im_;
  std::vector<NodeId> replica_nodes_;

  std::uint64_t view_ = 0;
  std::uint64_t next_sequence_ = 1;  // primary's proposal counter
  std::map<std::uint64_t, SlotState> slots_;
  std::uint64_t next_deliver_ = 1;
  std::vector<Bytes> delivered_;
};

}  // namespace repchain::baselines
