#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::baselines {

/// What a screening policy decided for one transaction.
struct PolicyDecision {
  bool check = false;                 // run validate(tx)?
  ledger::Label chosen_label = ledger::Label::kValid;  // the adopted label
};

/// Abstract screening policy: given the reports on one transaction, decide
/// whether to validate it and which label to adopt if not. The paper's
/// reputation-guided screening and the comparison baselines (E8) all
/// implement this interface, so the same workload drives every comparator.
class ScreeningPolicy {
 public:
  virtual ~ScreeningPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  virtual PolicyDecision decide(ProviderId provider,
                                std::span<const reputation::Report> reports,
                                Rng& rng) = 0;

  /// Feedback when a transaction's truth becomes known (checked immediately,
  /// or revealed later for unchecked ones). Learning policies update here.
  virtual void on_truth(ProviderId provider,
                        std::span<const reputation::Report> reports, bool tx_valid,
                        bool was_checked) {
    (void)provider;
    (void)reports;
    (void)tx_valid;
    (void)was_checked;
  }
};

/// The paper's policy: reputation-weighted source selection with the
/// 1 - f*Pr check coin (Algorithm 2) and multiplicative updates
/// (Algorithm 3).
class ReputationPolicy final : public ScreeningPolicy {
 public:
  ReputationPolicy(reputation::ReputationParams params, std::size_t collectors,
                   std::size_t providers);

  [[nodiscard]] std::string name() const override { return "reputation"; }
  PolicyDecision decide(ProviderId provider,
                        std::span<const reputation::Report> reports, Rng& rng) override;
  void on_truth(ProviderId provider, std::span<const reputation::Report> reports,
                bool tx_valid, bool was_checked) override;

  [[nodiscard]] const reputation::ReputationTable& table() const { return table_; }

 private:
  reputation::ReputationTable table_;
};

/// Baseline: validate every transaction (f -> 0). Zero governor mistakes,
/// maximum validation cost.
class CheckAllPolicy final : public ScreeningPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "check-all"; }
  PolicyDecision decide(ProviderId, std::span<const reputation::Report> reports,
                        Rng&) override;
};

/// Baseline: reputation-free screening — pick a reporter uniformly at
/// random, then apply the same 1 - f*Pr coin with Pr = 1/x. Isolates the
/// value of reputation weighting at equal checking budget.
class UniformPolicy final : public ScreeningPolicy {
 public:
  explicit UniformPolicy(double f);
  [[nodiscard]] std::string name() const override { return "uniform"; }
  PolicyDecision decide(ProviderId, std::span<const reputation::Report> reports,
                        Rng& rng) override;

 private:
  double f_;
};

/// Baseline: unweighted majority vote over the reports; a -1 majority is
/// left unchecked with probability f (ties are validated).
class MajorityVotePolicy final : public ScreeningPolicy {
 public:
  explicit MajorityVotePolicy(double f);
  [[nodiscard]] std::string name() const override { return "majority"; }
  PolicyDecision decide(ProviderId, std::span<const reputation::Report> reports,
                        Rng& rng) override;

 private:
  double f_;
};

}  // namespace repchain::baselines
