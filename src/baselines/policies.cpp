#include "baselines/policies.hpp"

namespace repchain::baselines {

using ledger::Label;

ReputationPolicy::ReputationPolicy(reputation::ReputationParams params,
                                   std::size_t collectors, std::size_t providers)
    : table_(params) {
  for (std::uint32_t c = 0; c < collectors; ++c) {
    for (std::uint32_t p = 0; p < providers; ++p) {
      table_.link(CollectorId(c), ProviderId(p));
    }
  }
}

PolicyDecision ReputationPolicy::decide(ProviderId provider,
                                        std::span<const reputation::Report> reports,
                                        Rng& rng) {
  const reputation::Selection sel = table_.select_reporter(provider, reports, rng);
  PolicyDecision d;
  d.chosen_label = sel.label;
  if (sel.label == Label::kValid) {
    d.check = true;
  } else {
    d.check = rng.bernoulli(1.0 - table_.params().f * sel.pr_chosen);
  }
  return d;
}

void ReputationPolicy::on_truth(ProviderId provider,
                                std::span<const reputation::Report> reports,
                                bool tx_valid, bool was_checked) {
  if (was_checked) {
    table_.update_checked(provider, reports, tx_valid);
  } else {
    (void)table_.update_revealed(provider, reports, tx_valid);
  }
}

PolicyDecision CheckAllPolicy::decide(ProviderId,
                                      std::span<const reputation::Report> reports,
                                      Rng&) {
  PolicyDecision d;
  d.check = true;
  d.chosen_label = reports.empty() ? Label::kInvalid : reports.front().label;
  return d;
}

UniformPolicy::UniformPolicy(double f) : f_(f) {}

PolicyDecision UniformPolicy::decide(ProviderId,
                                     std::span<const reputation::Report> reports,
                                     Rng& rng) {
  PolicyDecision d;
  if (reports.empty()) {
    d.check = true;
    d.chosen_label = Label::kInvalid;
    return d;
  }
  const std::size_t idx = rng.uniform(reports.size());
  d.chosen_label = reports[idx].label;
  if (d.chosen_label == Label::kValid) {
    d.check = true;
  } else {
    const double pr = 1.0 / static_cast<double>(reports.size());
    d.check = rng.bernoulli(1.0 - f_ * pr);
  }
  return d;
}

MajorityVotePolicy::MajorityVotePolicy(double f) : f_(f) {}

PolicyDecision MajorityVotePolicy::decide(ProviderId,
                                          std::span<const reputation::Report> reports,
                                          Rng& rng) {
  int balance = 0;
  for (const auto& r : reports) {
    balance += (r.label == Label::kValid) ? 1 : -1;
  }
  PolicyDecision d;
  if (balance > 0) {
    d.chosen_label = Label::kValid;
    d.check = true;
  } else if (balance == 0) {
    d.chosen_label = Label::kValid;
    d.check = true;  // ties are resolved by validating
  } else {
    d.chosen_label = Label::kInvalid;
    d.check = rng.bernoulli(1.0 - f_);
  }
  return d;
}

}  // namespace repchain::baselines
