#include "baselines/pbft.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace repchain::baselines {

Bytes PbftMsg::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-pbft-v1");
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.u64(sequence);
  w.raw(repchain::view(digest));
  w.bytes(payload);
  w.u32(replica);
  return std::move(w).take();
}

Bytes PbftMsg::encode() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.u64(sequence);
  w.raw(repchain::view(digest));
  w.bytes(payload);
  w.u32(replica);
  w.raw(repchain::view(sig.bytes));
  return std::move(w).take();
}

PbftMsg PbftMsg::decode(BytesView data) {
  BinaryReader r(data);
  PbftMsg m;
  const auto phase_raw = r.u8();
  if (phase_raw < 1 || phase_raw > 3) throw DecodeError("bad pbft phase");
  m.phase = static_cast<PbftPhase>(phase_raw);
  m.view = r.u64();
  m.sequence = r.u64();
  m.digest = r.raw_array<32>();
  m.payload = r.bytes();
  m.replica = r.u32();
  m.sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

PbftReplica::PbftReplica(std::uint32_t id, NodeId node, crypto::SigningKey key,
                         net::SimNetwork& net, const identity::IdentityManager& im,
                         std::vector<NodeId> replica_nodes)
    : id_(id),
      node_(node),
      key_(std::move(key)),
      net_(net),
      im_(im),
      replica_nodes_(std::move(replica_nodes)) {
  if (replica_nodes_.empty()) throw ConfigError("pbft needs at least one replica");
}

void PbftReplica::broadcast(const PbftMsg& msg) {
  const Bytes enc = msg.encode();
  for (NodeId dest : replica_nodes_) {
    net_.send(node_, dest, net::MsgKind::kTest, enc);
  }
}

void PbftReplica::send_phase(PbftPhase phase, std::uint64_t sequence,
                             const crypto::Hash256& digest, const Bytes& payload) {
  PbftMsg msg;
  msg.phase = phase;
  msg.view = view_;
  msg.sequence = sequence;
  msg.digest = digest;
  msg.payload = payload;
  msg.replica = id_;
  msg.sig = key_.sign(msg.signed_preimage());
  broadcast(msg);
}

void PbftReplica::propose(const Bytes& payload) {
  if (!is_primary()) throw ProtocolError("only the primary proposes");
  const auto digest = crypto::Sha256::hash(payload);
  send_phase(PbftPhase::kPrePrepare, next_sequence_++, digest, payload);
}

void PbftReplica::propose_equivocating(const Bytes& payload_a, const Bytes& payload_b) {
  if (!is_primary()) throw ProtocolError("only the primary proposes");
  const std::uint64_t seq = next_sequence_++;
  for (std::size_t i = 0; i < replica_nodes_.size(); ++i) {
    const Bytes& payload = (i % 2 == 0) ? payload_a : payload_b;
    PbftMsg msg;
    msg.phase = PbftPhase::kPrePrepare;
    msg.view = view_;
    msg.sequence = seq;
    msg.digest = crypto::Sha256::hash(payload);
    msg.payload = payload;
    msg.replica = id_;
    msg.sig = key_.sign(msg.signed_preimage());
    net_.send(node_, replica_nodes_[i], net::MsgKind::kTest, msg.encode());
  }
}

void PbftReplica::on_message(const net::Message& raw) {
  PbftMsg msg;
  try {
    msg = PbftMsg::decode(raw.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (msg.view != view_) return;
  if (msg.replica >= replicas()) return;
  // Authenticate against the sender's enrolled key.
  const NodeId sender = replica_nodes_[msg.replica];
  if (!im_.authenticate(sender, msg.signed_preimage(), msg.sig)) return;

  SlotState& slot = slots_[msg.sequence];
  switch (msg.phase) {
    case PbftPhase::kPrePrepare: {
      // Must come from the view's primary; accept the first pre-prepare for
      // a sequence, ignore conflicting ones (equivocation cannot make two
      // honest replicas prepare different digests *and* both reach quorum).
      if (msg.replica != view_ % replicas()) return;
      if (crypto::Sha256::hash(msg.payload) != msg.digest) return;
      if (slot.digest.has_value()) return;
      slot.digest = msg.digest;
      slot.payload = msg.payload;
      break;
    }
    case PbftPhase::kPrepare: {
      if (slot.digest.has_value() && msg.digest != *slot.digest) return;
      slot.prepares.insert(msg.replica);
      break;
    }
    case PbftPhase::kCommit: {
      if (slot.digest.has_value() && msg.digest != *slot.digest) return;
      slot.commits.insert(msg.replica);
      break;
    }
  }
  try_advance(msg.sequence);
}

void PbftReplica::try_advance(std::uint64_t sequence) {
  SlotState& slot = slots_[sequence];
  if (!slot.digest.has_value()) return;

  // Phase 2: after accepting a pre-prepare, broadcast a prepare (own
  // prepare counts toward the quorum via the loopback copy).
  if (!slot.sent_prepare) {
    slot.sent_prepare = true;
    send_phase(PbftPhase::kPrepare, sequence, *slot.digest);
  }

  // Prepared: 2f+1 matching prepares (incl. own).
  if (!slot.prepared && slot.prepares.size() >= quorum()) {
    slot.prepared = true;
    if (!slot.sent_commit) {
      slot.sent_commit = true;
      send_phase(PbftPhase::kCommit, sequence, *slot.digest);
    }
  }

  // Committed: 2f+1 matching commits after prepared.
  if (slot.prepared && !slot.committed && slot.commits.size() >= quorum()) {
    slot.committed = true;
    deliver_ready();
  }
}

void PbftReplica::deliver_ready() {
  for (;;) {
    const auto it = slots_.find(next_deliver_);
    if (it == slots_.end() || !it->second.committed) return;
    delivered_.push_back(it->second.payload);
    ++next_deliver_;
  }
}

}  // namespace repchain::baselines
