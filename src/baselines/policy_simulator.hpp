#pragma once

#include <vector>

#include "baselines/policies.hpp"
#include "common/rng.hpp"

namespace repchain::baselines {

/// Behaviour of one synthetic collector in the policy simulator: with
/// probability `drop` it files no report; otherwise its label is correct
/// with probability `accuracy` and inverted with probability `flip`.
struct SimCollector {
  double accuracy = 1.0;
  double flip = 0.0;
  double drop = 0.0;
};

/// Workload for a policy head-to-head: T transactions from a set of
/// providers observed by the same collector cohort.
struct PolicyWorkloadConfig {
  std::size_t transactions = 1000;
  std::size_t providers = 1;
  double p_valid = 0.7;
  std::vector<SimCollector> collectors;
  /// Truths of unchecked transactions are revealed to the policy after this
  /// many further transactions (0 = immediately) — the argue/audit latency.
  std::size_t reveal_lag = 0;
  std::uint64_t seed = 1;
};

/// Outcome counters per policy run.
struct PolicyRunResult {
  std::uint64_t transactions = 0;
  std::uint64_t validations = 0;
  std::uint64_t unchecked = 0;
  /// Paper loss: 2 per unchecked transaction whose truth was valid.
  double loss = 0.0;
  /// Wrongly discarded never happens (checked => exact), so mistakes ==
  /// loss/2.
  std::uint64_t mistakes = 0;
  /// Best single collector's accumulated loss over the unchecked
  /// transactions (2 per wrong label, 1 per missing report) — the theorem's
  /// S_min comparator.
  double s_min = 0.0;
};

/// Drives one policy over a synthetic report stream. The same
/// (config, seed) generates the same transaction truths and report patterns
/// for every policy, so comparisons isolate the screening rule itself (E7,
/// E8).
[[nodiscard]] PolicyRunResult run_policy(ScreeningPolicy& policy,
                                         const PolicyWorkloadConfig& config);

}  // namespace repchain::baselines
