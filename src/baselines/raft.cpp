#include "baselines/raft.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::baselines {

Bytes RaftMsg::encode() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(term);
  w.u32(from);
  w.u64(last_log_index);
  w.u64(last_log_term);
  w.boolean(granted);
  w.u64(prev_log_index);
  w.u64(prev_log_term);
  w.u64(leader_commit);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u64(e.term);
    w.bytes(e.payload);
  }
  w.u64(match_index);
  return std::move(w).take();
}

RaftMsg RaftMsg::decode(BytesView data) {
  BinaryReader r(data);
  RaftMsg m;
  const auto type_raw = r.u8();
  if (type_raw < 1 || type_raw > 4) throw DecodeError("bad raft message type");
  m.type = static_cast<RaftMsgType>(type_raw);
  m.term = r.u64();
  m.from = r.u32();
  m.last_log_index = r.u64();
  m.last_log_term = r.u64();
  m.granted = r.boolean();
  m.prev_log_index = r.u64();
  m.prev_log_term = r.u64();
  m.leader_commit = r.u64();
  const auto n = r.u32();
  r.expect_count(n, 8 + 4);
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RaftLogEntry e;
    e.term = r.u64();
    e.payload = r.bytes();
    m.entries.push_back(std::move(e));
  }
  m.match_index = r.u64();
  r.expect_done();
  return m;
}

RaftNode::RaftNode(std::uint32_t id, NodeId node, net::SimNetwork& net,
                   std::vector<NodeId> peers, Rng rng)
    : id_(id), node_(node), net_(net), peers_(std::move(peers)), rng_(rng) {
  if (peers_.empty()) throw ConfigError("raft cluster needs at least one node");
}

void RaftNode::start() { reset_election_timer(); }

std::vector<Bytes> RaftNode::committed() const {
  std::vector<Bytes> out;
  out.reserve(commit_index_);
  for (std::uint64_t i = 0; i < commit_index_; ++i) out.push_back(log_[i].payload);
  return out;
}

void RaftNode::send(std::uint32_t peer, const RaftMsg& msg) {
  net_.send(node_, peers_[peer], net::MsgKind::kTest, msg.encode());
}

void RaftNode::reset_election_timer() {
  const std::uint64_t epoch = ++election_epoch_;
  const SimDuration timeout = kElectionMin + rng_.uniform(kElectionJitter + 1);
  net_.queue().schedule_after(timeout, [this, epoch] {
    if (epoch != election_epoch_) return;  // timer was reset since
    if (role_ != Role::kLeader) become_candidate();
  });
}

void RaftNode::schedule_heartbeat() {
  const std::uint64_t epoch = ++heartbeat_epoch_;
  net_.queue().schedule_after(kHeartbeat, [this, epoch] {
    if (epoch != heartbeat_epoch_ || role_ != Role::kLeader) return;
    broadcast_append();
    schedule_heartbeat();
  });
}

void RaftNode::become_follower(std::uint64_t term) {
  role_ = Role::kFollower;
  term_ = term;
  voted_for_.reset();
  votes_.clear();
  reset_election_timer();
}

void RaftNode::become_candidate() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id_;
  votes_ = {id_};
  reset_election_timer();

  RaftMsg msg;
  msg.type = RaftMsgType::kRequestVote;
  msg.term = term_;
  msg.from = id_;
  msg.last_log_index = last_log_index();
  msg.last_log_term = last_log_term();
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    if (p != id_) send(p, msg);
  }
  // Single-node cluster: immediate leadership.
  if (votes_.size() * 2 > peers_.size()) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  match_index_.clear();
  next_index_.clear();
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    next_index_[p] = last_log_index() + 1;
    match_index_[p] = 0;
  }
  match_index_[id_] = last_log_index();
  broadcast_append();
  schedule_heartbeat();
}

bool RaftNode::submit(const Bytes& payload) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(RaftLogEntry{term_, payload});
  match_index_[id_] = last_log_index();
  broadcast_append();
  advance_commit();
  return true;
}

void RaftNode::broadcast_append() {
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    if (p == id_) continue;
    const std::uint64_t next = next_index_[p];
    RaftMsg msg;
    msg.type = RaftMsgType::kAppendEntries;
    msg.term = term_;
    msg.from = id_;
    msg.prev_log_index = next - 1;
    msg.prev_log_term =
        (next >= 2 && next - 2 < log_.size()) ? log_[next - 2].term : 0;
    msg.leader_commit = commit_index_;
    for (std::uint64_t i = next; i <= last_log_index(); ++i) {
      msg.entries.push_back(log_[i - 1]);
    }
    send(p, msg);
  }
}

void RaftNode::advance_commit() {
  // Commit the highest index replicated on a majority whose entry is from
  // the current term (Raft's commit rule).
  for (std::uint64_t idx = last_log_index(); idx > commit_index_; --idx) {
    if (log_[idx - 1].term != term_) break;
    std::size_t count = 0;
    for (const auto& [p, match] : match_index_) {
      (void)p;
      if (match >= idx) ++count;
    }
    if (count * 2 > peers_.size()) {
      commit_index_ = idx;
      break;
    }
  }
}

void RaftNode::on_message(const net::Message& raw) {
  RaftMsg msg;
  try {
    msg = RaftMsg::decode(raw.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (msg.from >= peers_.size()) return;
  if (msg.term > term_) become_follower(msg.term);

  switch (msg.type) {
    case RaftMsgType::kRequestVote:
      on_request_vote(msg);
      break;
    case RaftMsgType::kVoteReply:
      on_vote_reply(msg);
      break;
    case RaftMsgType::kAppendEntries:
      on_append_entries(msg);
      break;
    case RaftMsgType::kAppendReply:
      on_append_reply(msg);
      break;
  }
}

void RaftNode::on_request_vote(const RaftMsg& msg) {
  RaftMsg reply;
  reply.type = RaftMsgType::kVoteReply;
  reply.term = term_;
  reply.from = id_;

  const bool up_to_date =
      msg.last_log_term > last_log_term() ||
      (msg.last_log_term == last_log_term() && msg.last_log_index >= last_log_index());
  if (msg.term == term_ && up_to_date &&
      (!voted_for_.has_value() || *voted_for_ == msg.from)) {
    voted_for_ = msg.from;
    reply.granted = true;
    reset_election_timer();
  }
  send(msg.from, reply);
}

void RaftNode::on_vote_reply(const RaftMsg& msg) {
  if (role_ != Role::kCandidate || msg.term != term_ || !msg.granted) return;
  votes_.insert(msg.from);
  if (votes_.size() * 2 > peers_.size()) become_leader();
}

void RaftNode::on_append_entries(const RaftMsg& msg) {
  RaftMsg reply;
  reply.type = RaftMsgType::kAppendReply;
  reply.from = id_;

  if (msg.term < term_) {
    reply.term = term_;
    reply.granted = false;
    send(msg.from, reply);
    return;
  }
  // Valid leader for this term.
  if (role_ != Role::kFollower || msg.term > term_) become_follower(msg.term);
  term_ = msg.term;
  reply.term = term_;
  reset_election_timer();

  // Log matching check at prev_log_index.
  if (msg.prev_log_index > log_.size() ||
      (msg.prev_log_index > 0 && log_[msg.prev_log_index - 1].term != msg.prev_log_term)) {
    reply.granted = false;
    send(msg.from, reply);
    return;
  }

  // Append/overwrite entries from prev_log_index + 1.
  std::uint64_t idx = msg.prev_log_index;
  for (const auto& e : msg.entries) {
    ++idx;
    if (idx <= log_.size()) {
      if (log_[idx - 1].term != e.term) {
        log_.resize(idx - 1);  // conflict: truncate suffix
        log_.push_back(e);
      }
    } else {
      log_.push_back(e);
    }
  }
  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min<std::uint64_t>(msg.leader_commit, log_.size());
  }
  reply.granted = true;
  reply.match_index = msg.prev_log_index + msg.entries.size();
  send(msg.from, reply);
}

void RaftNode::on_append_reply(const RaftMsg& msg) {
  if (role_ != Role::kLeader || msg.term != term_) return;
  if (msg.granted) {
    match_index_[msg.from] = std::max(match_index_[msg.from], msg.match_index);
    next_index_[msg.from] = match_index_[msg.from] + 1;
    advance_commit();
  } else {
    // Back off and retry on the next heartbeat.
    if (next_index_[msg.from] > 1) --next_index_[msg.from];
  }
}

}  // namespace repchain::baselines
