#include "baselines/policy_simulator.hpp"

#include <deque>

#include "common/errors.hpp"

namespace repchain::baselines {

using ledger::Label;

PolicyRunResult run_policy(ScreeningPolicy& policy, const PolicyWorkloadConfig& config) {
  if (config.collectors.empty()) {
    throw ConfigError("policy simulator needs at least one collector");
  }
  if (config.providers == 0) {
    throw ConfigError("policy simulator needs at least one provider");
  }

  Rng truth_rng(config.seed);            // shared across policies
  Rng advice_rng = truth_rng.derive(1);  // shared across policies
  Rng policy_rng = truth_rng.derive(2);  // policy's own coin flips

  PolicyRunResult result;
  result.transactions = config.transactions;
  std::vector<double> collector_loss(config.collectors.size(), 0.0);

  struct PendingReveal {
    ProviderId provider;
    std::vector<reputation::Report> reports;
    bool truth;
    std::size_t due;  // transaction index at which the truth surfaces
  };
  std::deque<PendingReveal> pending;

  for (std::size_t t = 0; t < config.transactions; ++t) {
    const ProviderId provider(static_cast<std::uint32_t>(t % config.providers));
    const bool truth = truth_rng.bernoulli(config.p_valid);

    // Generate the report pattern (identical for every policy at this seed).
    std::vector<reputation::Report> reports;
    std::vector<bool> reported(config.collectors.size(), false);
    for (std::size_t c = 0; c < config.collectors.size(); ++c) {
      const SimCollector& col = config.collectors[c];
      if (advice_rng.bernoulli(col.drop)) continue;
      bool observed = advice_rng.bernoulli(col.accuracy) ? truth : !truth;
      if (advice_rng.bernoulli(col.flip)) observed = !observed;
      reports.push_back(reputation::Report{CollectorId(static_cast<std::uint32_t>(c)),
                                           observed ? Label::kValid : Label::kInvalid});
      reported[c] = true;
    }
    if (reports.empty()) {
      // Nobody reported: nothing reaches the governor; skip.
      continue;
    }

    const PolicyDecision decision = policy.decide(provider, reports, policy_rng);
    if (decision.check) {
      ++result.validations;
      policy.on_truth(provider, reports, truth, /*was_checked=*/true);
    } else {
      ++result.unchecked;
      // Unchecked transactions are recorded invalid; truth==valid is the
      // paper's loss-2 mistake.
      if (truth) {
        result.loss += 2.0;
        ++result.mistakes;
      }
      // Per-collector loss on this unchecked transaction (S_min tracking).
      const Label correct = truth ? Label::kValid : Label::kInvalid;
      for (std::size_t c = 0; c < config.collectors.size(); ++c) {
        if (!reported[c]) {
          collector_loss[c] += 1.0;
        }
      }
      for (const auto& rep : reports) {
        if (rep.label != correct) collector_loss[rep.collector.value()] += 2.0;
      }
      pending.push_back(PendingReveal{provider, reports, truth, t + config.reveal_lag});
    }

    // Reveal due truths (argue/audit feedback to learning policies).
    while (!pending.empty() && pending.front().due <= t) {
      const PendingReveal& r = pending.front();
      policy.on_truth(r.provider, r.reports, r.truth, /*was_checked=*/false);
      pending.pop_front();
    }
  }
  // Flush outstanding reveals at the end of the run.
  for (const auto& r : pending) {
    policy.on_truth(r.provider, r.reports, r.truth, false);
  }

  result.s_min = collector_loss.empty()
                     ? 0.0
                     : *std::min_element(collector_loss.begin(), collector_loss.end());
  return result;
}

}  // namespace repchain::baselines
