#pragma once

#include <cstddef>
#include <span>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "runtime/message.hpp"
#include "runtime/timer.hpp"

namespace repchain::runtime {

/// What a protocol node needs from the network: point-to-point delivery
/// within the synchrony bound Delta, plus the hooks the total-order
/// broadcast layer builds on. `net::SimNetwork` is the simulated
/// implementation; a socket transport would implement the same surface
/// without any protocol change.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Unicast; delivered after a bounded delay unless the link drops it.
  virtual void send(NodeId from, NodeId to, MsgKind kind, Bytes payload) = 0;

  /// Deliver `copies` independent copies of one message (fault-injected
  /// duplication). Each copy is scheduled, delayed, and counted like a
  /// separate send, but implementations are encouraged to share a single
  /// underlying payload buffer across the copies instead of deep-copying it
  /// per copy (net::SimNetwork does). The default falls back to repeated
  /// send() so lightweight Transport implementations need not override.
  virtual void send_copies(NodeId from, NodeId to, MsgKind kind, Bytes payload,
                           std::size_t copies) {
    for (std::size_t c = 1; c < copies; ++c) send(from, to, kind, payload);
    if (copies > 0) send(from, to, kind, std::move(payload));
  }

  /// Unicast to each destination (each copy is a counted message).
  virtual void multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                         const Bytes& payload) = 0;

  /// The synchrony bound Delta the paper assumes known: no message takes
  /// longer than this. Phase deadlines are keyed to it.
  [[nodiscard]] virtual SimDuration max_delay() const = 0;

  /// The clock/timer domain deliveries are scheduled in.
  [[nodiscard]] virtual TimerService& timers() = 0;

  // --- Hooks for the total-order broadcast layer ---------------------------

  /// Draw one link delay (<= max_delay()).
  [[nodiscard]] virtual SimDuration draw_delay() = 0;

  /// Invoke the destination handler for a fully-formed message now; the
  /// caller has already scheduled and ordered the delivery. Respects
  /// node-down fault injection.
  virtual void deliver_direct(const Message& msg) = 0;

  /// Account for `copies` unicast copies of a broadcast in traffic stats.
  virtual void count_broadcast(MsgKind kind, std::size_t copies,
                               std::size_t payload_bytes) = 0;
};

}  // namespace repchain::runtime
