#pragma once

// A poll(2)-driven event loop implementing the TimerService contract over
// the monotonic clock — the production-runtime counterpart of the simulated
// EventLoop. Protocol components schedule timers against it exactly as they
// do against the discrete-event queue; the loop additionally multiplexes
// non-blocking file descriptors for the TcpTransport. Single-threaded by
// design: fd callbacks and timer callbacks all run on the thread inside
// run_until(), so no component needs locks.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "runtime/timer.hpp"

namespace repchain::runtime {

class PollLoop final : public TimerService {
 public:
  using FdCallback = std::function<void(short revents)>;

  PollLoop();

  /// Microseconds of monotonic time since the loop was constructed. Shares
  /// SimTime's unit so RoundTiming/ReliableChannel arithmetic carries over.
  [[nodiscard]] SimTime now() const override;

  /// Timers armed for the same instant fire in arming order, matching the
  /// EventLoop guarantee the round machinery relies on.
  void schedule_at(SimTime t, Callback cb) override;

  /// Watch `fd` for `events` (POLLIN/POLLOUT); replaces any existing watch.
  void watch(int fd, short events, FdCallback cb);
  /// Change the event mask of an existing watch (keeps the callback).
  void set_events(int fd, short events);
  void unwatch(int fd);

  /// Poll fds and fire due timers until the clock passes `deadline`.
  void run_until(SimTime deadline);
  /// Same, but returns early (true) as soon as `pred()` holds. `pred` is
  /// evaluated after every poll wakeup and timer batch.
  bool run_until(SimTime deadline, const std::function<bool()>& pred);

  [[nodiscard]] std::size_t pending_timers() const { return timers_.size(); }

 private:
  struct Timer {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct TimerOrder {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Fire every timer due at or before the current instant.
  void fire_due();
  /// One poll(2) round with the given timeout in milliseconds.
  void poll_once(int timeout_ms);

  std::uint64_t epoch_ns_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
  std::unordered_map<int, std::pair<short, FdCallback>> watches_;
};

}  // namespace repchain::runtime
