#include "runtime/atomic_broadcast.hpp"

#include <algorithm>
#include <memory>

#include "common/errors.hpp"

namespace repchain::runtime {

AtomicBroadcastGroup::AtomicBroadcastGroup(Transport& transport,
                                           std::vector<NodeId> members)
    : transport_(transport), members_(std::move(members)) {
  if (members_.empty()) throw ConfigError("atomic broadcast group needs members");
}

void AtomicBroadcastGroup::broadcast(NodeId from, MsgKind kind, const Bytes& payload) {
  ++next_seq_;
  TimerService& timers = transport_.timers();
  // One shared Message backs every member's copy (the send_copies
  // single-payload idea applied to the fan-out): the broadcast costs one
  // payload buffer, not one per member. Each delivery stamps to/delivered_at
  // just before invoking the handler; deliveries are synchronous and
  // single-threaded, so the shared stamps cannot race, and handlers receive
  // a const reference they must not retain (the send_copies contract).
  auto msg = std::make_shared<Message>();
  msg->from = from;
  msg->kind = kind;
  msg->payload = payload;
  msg->sent_at = timers.now();
  msg->seq = next_seq_;
  for (NodeId member : members_) {
    // Count the copy in network statistics (atomic broadcast costs one
    // message per member in this sequencer realization).
    // Delivery respects both the link delay and the group's total order.
    const SimTime arrival = timers.now() + transport_.draw_delay();
    SimTime& last = last_delivery_[member];
    const SimTime deliver_at = std::max(arrival, last);
    last = deliver_at;

    timers.schedule_at(deliver_at,
                       [&transport = transport_, msg, member, deliver_at]() {
      msg->to = member;
      msg->delivered_at = deliver_at;
      transport.deliver_direct(*msg);
    });
  }
  transport_.count_broadcast(kind, members_.size(), payload.size());
}

}  // namespace repchain::runtime
