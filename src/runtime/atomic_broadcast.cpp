#include "runtime/atomic_broadcast.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace repchain::runtime {

AtomicBroadcastGroup::AtomicBroadcastGroup(Transport& transport,
                                           std::vector<NodeId> members)
    : transport_(transport), members_(std::move(members)) {
  if (members_.empty()) throw ConfigError("atomic broadcast group needs members");
}

void AtomicBroadcastGroup::broadcast(NodeId from, MsgKind kind, const Bytes& payload) {
  ++next_seq_;
  TimerService& timers = transport_.timers();
  for (NodeId member : members_) {
    // Count the copy in network statistics (atomic broadcast costs one
    // message per member in this sequencer realization).
    // Delivery respects both the link delay and the group's total order.
    const SimTime arrival = timers.now() + transport_.draw_delay();
    SimTime& last = last_delivery_[member];
    const SimTime deliver_at = std::max(arrival, last);
    last = deliver_at;

    Message msg;
    msg.from = from;
    msg.to = member;
    msg.kind = kind;
    msg.payload = payload;
    msg.sent_at = timers.now();
    msg.delivered_at = deliver_at;
    msg.seq = next_seq_;

    timers.schedule_at(deliver_at, [&transport = transport_, msg = std::move(msg)]() {
      transport.deliver_direct(msg);
    });
  }
  transport_.count_broadcast(kind, members_.size(), payload.size());
}

}  // namespace repchain::runtime
