#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "runtime/node_context.hpp"

namespace repchain::runtime {

/// ReliableChannel tuning. The defaults key the retransmission timeout to
/// the synchrony bound Delta: one round trip (data + ack) costs at most
/// 2*Delta, so the base RTO of 3*Delta leaves a Delta of margin.
struct ReliableChannelConfig {
  /// First retransmission timeout; 0 = 3 * transport.max_delay().
  SimDuration base_rto = 0;
  /// Exponential backoff factor applied per retry.
  std::uint32_t backoff_factor = 2;
  /// Retry budget: after this many retransmissions the message is abandoned
  /// (counted in stats().exhausted) — the protocol's sync/watchdog paths are
  /// the fallback, not the channel.
  std::uint32_t max_retries = 8;
};

struct ReliableChannelStats {
  std::uint64_t data_sent = 0;        // first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t exhausted = 0;        // abandoned after the retry budget
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;    // acks that cleared an in-flight entry
  std::uint64_t delivered = 0;        // inner messages handed to the node
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t stale_epochs_dropped = 0;  // data from a superseded incarnation
  std::uint64_t reconnect_resets = 0;  // in-flight budgets refreshed on redial
};

/// Per-node reliable delivery over the (lossy, partitionable) transport:
/// every payload is wrapped in a kReliableData envelope carrying the sender's
/// (epoch, sequence) pair, the receiver acks each envelope (kReliableAck) and
/// deduplicates redelivery, and the sender retransmits unacked envelopes with
/// exponential backoff until a retry budget runs out.
///
/// Guarantees: at-least-once transmission while the retry budget lasts,
/// at-most-once *delivery* to the node (per epoch). Ordering is NOT
/// guaranteed — a retransmitted message arrives after later traffic — so
/// receive paths must tolerate reordering (they do: aggregation windows,
/// announcement sets and serial-checked appends are all order-tolerant).
///
/// The `epoch` is the owner's incarnation number: a restarted node starts a
/// fresh sequence space under a new epoch, so peers never mistake its new
/// traffic for replays of the old life. Retransmission timers run on the
/// owner's revocable timer set — a crash cancels them with everything else.
class ReliableChannel {
 public:
  using Deliver = std::function<void(const Message&)>;

  ReliableChannel(NodeContext& ctx, std::uint32_t epoch,
                  ReliableChannelConfig config = {});

  /// The node's dispatch entry point for unwrapped inner messages.
  void set_deliver(Deliver deliver) { deliver_ = std::move(deliver); }

  /// Reliably send (kind, payload) to `to`.
  void send(NodeId to, MsgKind kind, const Bytes& payload);

  /// Route kReliableData / kReliableAck deliveries here. Returns true iff
  /// the message was consumed (false for any other kind).
  bool on_message(const Message& msg);

  /// The transport re-established a link to `peer`: refresh the retry budget
  /// and RTO of every in-flight envelope addressed to it and retransmit
  /// immediately. Retries burned against a dead TCP link say nothing about
  /// the revived one, so without the reset a redial that lands mid-backoff
  /// inherits a nearly-exhausted budget and surfaces a spurious
  /// kDeliveryFailed for traffic the peer is about to receive.
  void on_peer_reconnect(NodeId peer);

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t in_flight() const { return inflight_.size(); }
  [[nodiscard]] const ReliableChannelStats& stats() const { return stats_; }

 private:
  struct Pending {
    NodeId to;
    Bytes envelope;
    std::uint32_t attempts = 0;  // retransmissions so far
    SimDuration rto = 0;         // next backoff interval
  };

  void arm_retransmit(std::uint64_t seq, SimDuration delay);
  void on_data(const Message& msg);
  void on_ack(const Message& msg);

  NodeContext& ctx_;
  ReliableChannelConfig config_;
  std::uint32_t epoch_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> inflight_;

  // Receiver-side dedup per (sender node, sender epoch): a contiguous
  // high-water mark plus the sparse set of sequences seen above it. State for
  // epochs superseded by a newer epoch from the same sender is aged out (and
  // later stragglers from those epochs dropped), so long soaks with repeated
  // crash/restart cycles keep the dedup footprint at one epoch per sender.
  struct PeerRecv {
    std::uint64_t high = 0;
    std::set<std::uint64_t> above;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, PeerRecv> recv_;
  // Highest epoch observed per sender; entries below it are superseded.
  std::map<std::uint32_t, std::uint32_t> peer_epoch_;

  Deliver deliver_;
  ReliableChannelStats stats_;
};

}  // namespace repchain::runtime
