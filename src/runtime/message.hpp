#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"

namespace repchain::runtime {

/// Message kinds, used both for dispatch and for the communication-complexity
/// accounting of experiment E5 (see DESIGN.md).
enum class MsgKind : std::uint16_t {
  kProviderTx = 1,      // provider -> collectors (collecting phase)
  kCollectorUpload = 2, // collector -> governors (uploading phase)
  kArgue = 3,           // provider -> governors (argue on a buried tx)
  kVrfAnnounce = 4,     // governor -> governors (leader election)
  kBlockProposal = 5,   // leader -> governors
  kStakeTx = 6,         // governor -> governors (stake transfer)
  kStateProposal = 7,   // leader -> governors (3-step consensus, step 1)
  kStateSignature = 8,  // governor -> leader   (3-step consensus, step 2)
  kStateCommit = 9,     // leader -> governors  (3-step consensus, step 3)
  kExpelEvidence = 10,  // governor -> governors (leader misbehaved)
  kLabelGossip = 11,    // governor -> governors (equivocation detection)
  kBlockRequest = 12,   // any node -> governor (retrieve(s))
  kBlockResponse = 13,  // governor -> requester
  kReliableData = 14,   // ReliableChannel envelope carrying an inner message
  kReliableAck = 15,    // ReliableChannel acknowledgement
  kTest = 99,
};

/// A delivered network message.
struct Message {
  NodeId from;
  NodeId to;
  MsgKind kind = MsgKind::kTest;
  Bytes payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
  /// Total-order sequence number stamped by AtomicBroadcastGroup; 0 means
  /// unsequenced (plain unicast). Receivers use it to reject re-delivery of
  /// an already-sequenced broadcast copy (fault-injected duplication).
  std::uint64_t seq = 0;
};

}  // namespace repchain::runtime
