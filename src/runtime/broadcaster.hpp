#pragma once

// The total-order broadcast seam protocol nodes are written against.
// AtomicBroadcastGroup is the in-process sequencer realization; the cluster
// layer substitutes a proxy that ships each broadcast to the driver's
// sequencer, so governors run unchanged in a separate process.

#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "runtime/message.hpp"

namespace repchain::runtime {

class Broadcaster {
 public:
  virtual ~Broadcaster() = default;

  /// Totally-ordered broadcast of `payload` from `from` to all members.
  virtual void broadcast(NodeId from, MsgKind kind, const Bytes& payload) = 0;

  /// The fixed member set every broadcast reaches.
  [[nodiscard]] virtual const std::vector<NodeId>& members() const = 0;
};

}  // namespace repchain::runtime
