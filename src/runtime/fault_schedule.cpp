#include "runtime/fault_schedule.hpp"

#include <algorithm>

namespace repchain::runtime {

namespace {

template <typename Fault>
bool active(const Fault& fault, SimTime t) {
  return fault.from <= t && t < fault.until;
}

bool in_island(const std::vector<NodeId>& island, NodeId node) {
  return std::find(island.begin(), island.end(), node) != island.end();
}

}  // namespace

FaultSchedule& FaultSchedule::add(PartitionFault fault) {
  partitions_.push_back(std::move(fault));
  return *this;
}
FaultSchedule& FaultSchedule::add(DelayFault fault) {
  delays_.push_back(fault);
  return *this;
}
FaultSchedule& FaultSchedule::add(DuplicateFault fault) {
  duplicates_.push_back(fault);
  return *this;
}
FaultSchedule& FaultSchedule::add(ReorderFault fault) {
  reorders_.push_back(fault);
  return *this;
}
FaultSchedule& FaultSchedule::add(LossFault fault) {
  losses_.push_back(std::move(fault));
  return *this;
}

bool FaultSchedule::severed(NodeId a, NodeId b, SimTime t) const {
  for (const auto& p : partitions_) {
    if (!active(p, t)) continue;
    if (in_island(p.island, a) != in_island(p.island, b)) return true;
  }
  return false;
}

double FaultSchedule::loss_probability(NodeId from, NodeId to, SimTime t) const {
  double pass = 1.0;
  for (const auto& l : losses_) {
    if (!active(l, t)) continue;
    if (l.link && !(l.link->first == from && l.link->second == to)) continue;
    pass *= 1.0 - std::clamp(l.probability, 0.0, 1.0);
  }
  return 1.0 - pass;
}

double FaultSchedule::duplicate_probability(SimTime t) const {
  double pass = 1.0;
  for (const auto& d : duplicates_) {
    if (active(d, t)) pass *= 1.0 - std::clamp(d.probability, 0.0, 1.0);
  }
  return 1.0 - pass;
}

const ReorderFault* FaultSchedule::reorder_at(SimTime t) const {
  for (const auto& r : reorders_) {
    if (active(r, t)) return &r;
  }
  return nullptr;
}

SimDuration FaultSchedule::delay_extra_at(SimTime t, SimDuration& jitter_out) const {
  SimDuration extra = 0;
  for (const auto& d : delays_) {
    if (!active(d, t)) continue;
    extra += d.extra;
    jitter_out += d.jitter;
  }
  return extra;
}

// --- FaultyTransport ---------------------------------------------------------

void FaultyTransport::send(NodeId from, NodeId to, MsgKind kind, Bytes payload) {
  const SimTime t = inner_.timers().now();
  bool duplicated = false;
  if (from != to) {
    if (schedule_.severed(from, to, t)) {
      ++stats_.partition_drops;
      return;
    }
    const double loss = schedule_.loss_probability(from, to, t);
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      ++stats_.loss_drops;
      return;
    }
    const double dup = schedule_.duplicate_probability(t);
    if (dup > 0.0 && rng_.bernoulli(dup)) {
      ++stats_.duplicated;
      duplicated = true;
    }
    if (const ReorderFault* reorder = schedule_.reorder_at(t);
        reorder != nullptr && rng_.bernoulli(reorder->probability)) {
      // The duplicate escapes the hold (it is a distinct wire copy), so it
      // still needs its own payload buffer here; only the fused fallthrough
      // below can share one.
      if (duplicated) inner_.send(from, to, kind, payload);
      ++stats_.reordered;
      const SimDuration hold =
          reorder->max_extra == 0 ? 0 : rng_.uniform(reorder->max_extra + 1);
      inner_.timers().schedule_after(
          hold, [this, from, to, kind, payload = std::move(payload)]() mutable {
            inner_.send(from, to, kind, std::move(payload));
          });
      return;
    }
    // Delay spike: a unicast never passes through draw_delay (the inner
    // transport draws its link delay internally), so realize the spike by
    // holding the message back before submission. The total transit time
    // becomes hold + link delay, which may exceed the synchrony bound —
    // that is the fault being modelled.
    SimDuration jitter = 0;
    const SimDuration extra = schedule_.delay_extra_at(t, jitter);
    if (extra > 0 || jitter > 0) {
      if (duplicated) inner_.send(from, to, kind, payload);
      ++stats_.delay_extended;
      const SimDuration hold = extra + (jitter == 0 ? 0 : rng_.uniform(jitter + 1));
      inner_.timers().schedule_after(
          hold, [this, from, to, kind, payload = std::move(payload)]() mutable {
            inner_.send(from, to, kind, std::move(payload));
          });
      return;
    }
  }
  // Duplicate and original leave together: one shared buffer, two deliveries.
  inner_.send_copies(from, to, kind, std::move(payload), duplicated ? 2 : 1);
}

void FaultyTransport::multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                                const Bytes& payload) {
  // Per-copy faulting: each destination rolls its own loss/duplication dice.
  for (NodeId dest : to) send(from, dest, kind, payload);
}

SimDuration FaultyTransport::draw_delay() {
  SimDuration delay = inner_.draw_delay();
  const SimTime t = inner_.timers().now();
  SimDuration jitter = 0;
  const SimDuration extra = schedule_.delay_extra_at(t, jitter);
  if (extra > 0 || jitter > 0) {
    ++stats_.delay_extended;
    delay += extra + (jitter == 0 ? 0 : rng_.uniform(jitter + 1));
  }
  return delay;
}

void FaultyTransport::deliver_direct(const Message& msg) {
  const SimTime t = inner_.timers().now();
  if (msg.from != msg.to) {
    if (schedule_.severed(msg.from, msg.to, t)) {
      ++stats_.partition_drops;
      return;
    }
    const double loss = schedule_.loss_probability(msg.from, msg.to, t);
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      ++stats_.loss_drops;
      return;
    }
    const double dup = schedule_.duplicate_probability(t);
    if (dup > 0.0 && rng_.bernoulli(dup)) {
      ++stats_.duplicated;
      inner_.deliver_direct(msg);  // the sequenced-duplicate guard eats it
    }
  }
  inner_.deliver_direct(msg);
}

void FaultyTransport::count_broadcast(MsgKind kind, std::size_t copies,
                                      std::size_t payload_bytes) {
  inner_.count_broadcast(kind, copies, payload_bytes);
}

}  // namespace repchain::runtime
