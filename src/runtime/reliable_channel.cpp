#include "runtime/reliable_channel.hpp"

#include "common/serial.hpp"

namespace repchain::runtime {

namespace {

// kReliableData payload: epoch, seq, inner kind, inner payload.
Bytes encode_data(std::uint32_t epoch, std::uint64_t seq, MsgKind kind,
                  const Bytes& payload) {
  BinaryWriter w;
  w.u32(epoch);
  w.u64(seq);
  w.u16(static_cast<std::uint16_t>(kind));
  w.bytes(payload);
  return std::move(w).take();
}

// kReliableAck payload: the acked (epoch, seq).
Bytes encode_ack(std::uint32_t epoch, std::uint64_t seq) {
  BinaryWriter w;
  w.u32(epoch);
  w.u64(seq);
  return std::move(w).take();
}

}  // namespace

ReliableChannel::ReliableChannel(NodeContext& ctx, std::uint32_t epoch,
                                 ReliableChannelConfig config)
    : ctx_(ctx), config_(config), epoch_(epoch) {
  if (config_.base_rto == 0) config_.base_rto = 3 * ctx.delta();
  if (config_.backoff_factor == 0) config_.backoff_factor = 1;
}

void ReliableChannel::send(NodeId to, MsgKind kind, const Bytes& payload) {
  const std::uint64_t seq = ++next_seq_;
  Pending pending;
  pending.to = to;
  pending.envelope = encode_data(epoch_, seq, kind, payload);
  pending.rto = config_.base_rto;
  ctx_.transport().send(ctx_.node(), to, MsgKind::kReliableData, pending.envelope);
  ++stats_.data_sent;
  const SimDuration first_rto = pending.rto;
  inflight_.emplace(seq, std::move(pending));
  arm_retransmit(seq, first_rto);
}

void ReliableChannel::arm_retransmit(std::uint64_t seq, SimDuration delay) {
  // Scheduled through the NodeContext's revocable timers: a crash of the
  // owning node cancels all pending retransmissions.
  ctx_.timers().schedule_after(delay, [this, seq] {
    const auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // acked in the meantime
    Pending& p = it->second;
    if (p.attempts >= config_.max_retries) {
      ++stats_.exhausted;
      // Surface the abandonment: cluster runs attribute lost envelopes by
      // (peer, epoch, seq) instead of inferring them from downstream stalls.
      ctx_.emit(TraceEvent{TraceKind::kDeliveryFailed, ctx_.node(), 0,
                           (static_cast<std::uint64_t>(epoch_) << 32) |
                               p.to.value(),
                           seq, ctx_.now()});
      inflight_.erase(it);
      return;
    }
    ++p.attempts;
    ++stats_.retransmits;
    ctx_.transport().send(ctx_.node(), p.to, MsgKind::kReliableData, p.envelope);
    p.rto *= config_.backoff_factor;
    arm_retransmit(seq, p.rto);
  });
}

void ReliableChannel::on_peer_reconnect(NodeId peer) {
  for (auto& [seq, p] : inflight_) {
    if (p.to != peer) continue;
    p.attempts = 0;
    p.rto = config_.base_rto;
    ++stats_.reconnect_resets;
    ++stats_.retransmits;
    ctx_.transport().send(ctx_.node(), p.to, MsgKind::kReliableData, p.envelope);
    // The already-armed backoff timer keeps running; when it fires it finds
    // the refreshed budget and resumes the normal retransmission ladder.
    // The receiver's (epoch, seq) dedup absorbs the extra copy.
  }
}

bool ReliableChannel::on_message(const Message& msg) {
  switch (msg.kind) {
    case MsgKind::kReliableData:
      on_data(msg);
      return true;
    case MsgKind::kReliableAck:
      on_ack(msg);
      return true;
    default:
      return false;
  }
}

void ReliableChannel::on_data(const Message& msg) {
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  Message inner;
  try {
    BinaryReader r(msg.payload);
    epoch = r.u32();
    seq = r.u64();
    inner.kind = static_cast<MsgKind>(r.u16());
    inner.payload = r.bytes();
    r.expect_done();
  } catch (const DecodeError&) {
    return;
  }

  // Always ack — a duplicate means our previous ack was lost.
  ctx_.transport().send(ctx_.node(), msg.from, MsgKind::kReliableAck,
                        encode_ack(epoch, seq));
  ++stats_.acks_sent;

  // Epoch aging: a sender's newer incarnation supersedes every older one —
  // its dedup state is dropped (bounding memory across repeated restarts)
  // and stragglers from a superseded epoch are discarded. The ack above
  // still goes out either way, silencing any old-life retransmitter.
  const auto [epoch_it, first_contact] = peer_epoch_.try_emplace(msg.from.value(), epoch);
  if (!first_contact) {
    if (epoch < epoch_it->second) {
      ++stats_.stale_epochs_dropped;
      return;
    }
    if (epoch > epoch_it->second) {
      const auto begin = recv_.lower_bound({msg.from.value(), 0});
      const auto end = recv_.lower_bound({msg.from.value(), epoch});
      recv_.erase(begin, end);
      epoch_it->second = epoch;
    }
  }

  PeerRecv& peer = recv_[{msg.from.value(), epoch}];
  if (seq <= peer.high || peer.above.contains(seq)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (seq == peer.high + 1) {
    ++peer.high;
    while (peer.above.erase(peer.high + 1) > 0) ++peer.high;
  } else {
    peer.above.insert(seq);
  }

  inner.from = msg.from;
  inner.to = ctx_.node();
  inner.sent_at = msg.sent_at;
  inner.delivered_at = msg.delivered_at;
  ++stats_.delivered;
  if (deliver_) deliver_(inner);
}

void ReliableChannel::on_ack(const Message& msg) {
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  try {
    BinaryReader r(msg.payload);
    epoch = r.u32();
    seq = r.u64();
    r.expect_done();
  } catch (const DecodeError&) {
    return;
  }
  if (epoch != epoch_) return;  // ack for a previous incarnation
  if (inflight_.erase(seq) > 0) ++stats_.acks_received;
}

}  // namespace repchain::runtime
