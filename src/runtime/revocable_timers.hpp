#pragma once

#include <memory>
#include <utility>

#include "runtime/timer.hpp"

namespace repchain::runtime {

/// TimerService wrapper whose pending callbacks can all be cancelled at
/// once. Protocol objects capture `this` in timer callbacks; when a node
/// crashes (simulated kill) the object is destroyed while its timers are
/// still queued in the event loop. Revoking turns those queued callbacks
/// into no-ops instead of dangling calls.
///
/// Scheduling passes straight through to the inner service, so arming order
/// — and therefore FIFO firing at equal deadlines — is unchanged.
class RevocableTimers final : public TimerService {
 public:
  explicit RevocableTimers(TimerService& inner)
      : inner_(inner), epoch_(std::make_shared<const bool>(true)) {}

  [[nodiscard]] SimTime now() const override { return inner_.now(); }

  void schedule_at(SimTime t, Callback cb) override {
    inner_.schedule_at(t, [guard = std::weak_ptr<const bool>(epoch_),
                           cb = std::move(cb)]() {
      if (guard.expired()) return;  // revoked: owner is gone
      cb();
    });
  }

  /// Disarm every callback scheduled so far; later schedules are live again.
  void revoke_all() { epoch_ = std::make_shared<const bool>(true); }

 private:
  TimerService& inner_;
  std::shared_ptr<const bool> epoch_;
};

}  // namespace repchain::runtime
