#include "runtime/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/errors.hpp"
#include "wire/codec.hpp"

namespace repchain::runtime {
namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Protocol traffic is streams of small one-way frames whose deadlines are
// keyed to the synchrony bound; Nagle coalescing against a delayed ACK can
// hold a frame for tens of milliseconds — longer than a phase window.
void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}

// Handshake verdicts that cannot change between dials of the same peer;
// reconnecting after one of these would loop forever.
bool permanent_error(wire::ProtocolError code) {
  return code == wire::ProtocolError::kHighVersion ||
         code == wire::ProtocolError::kLowVersion ||
         code == wire::ProtocolError::kWrongGenesis;
}

}  // namespace

TcpTransport::TcpTransport(PollLoop& loop, crypto::Hash256 genesis,
                           Options opts)
    : loop_(loop), genesis_(genesis), opts_(opts) {
  // The nonce only needs to differ between endpoints of one process for
  // self-connection detection; no cryptographic strength required.
  static std::uint64_t counter = 0;
  nonce_ = (reinterpret_cast<std::uintptr_t>(this) << 8) ^ ++counter ^
           static_cast<std::uint64_t>(::getpid());
  jitter_state_ = nonce_ | 1;
  if (opts_.heartbeat_interval > 0) {
    loop_.schedule_at(loop_.now() + opts_.heartbeat_interval,
                      [this, alive = alive_] {
                        if (*alive) on_heartbeat_tick();
                      });
  }
}

TcpTransport::~TcpTransport() {
  *alive_ = false;
  for (auto& [fd, conn] : conns_) {
    loop_.unwatch(fd);
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    loop_.unwatch(listen_fd_);
    ::close(listen_fd_);
  }
}

void TcpTransport::host(NodeId id, Handler handler) {
  local_ids_.push_back(id);
  handlers_[id] = std::move(handler);
}

void TcpTransport::set_handler(NodeId id, Handler handler) {
  handlers_[id] = std::move(handler);
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  if (listen_fd_ >= 0) throw NetError("tcp: already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("tcp: socket() failed");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw NetError("tcp: bind() failed: " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  (void)getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    throw NetError("tcp: listen() failed");
  }
  set_nonblocking(fd);
  listen_fd_ = fd;
  loop_.watch(fd, POLLIN, [this](short) {
    for (;;) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) return;  // EAGAIN or transient error; poll again
      ++stats_.connections_accepted;
      adopt(cfd);
    }
  });
  return ntohs(addr.sin_port);
}

void TcpTransport::connect(std::uint16_t port) {
  dials_.push_back(Dial{.port = port});
  connect_dial(dials_.size() - 1);
}

void TcpTransport::connect_dial(std::size_t idx) {
  Dial& d = dials_[idx];
  d.retry_armed = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    // Only the very first dial of a target reports failure by throwing;
    // re-dials stay on the backoff schedule.
    if (d.attempts == 0) throw NetError("tcp: socket() failed");
    schedule_reconnect(idx);
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(d.port);
  ++stats_.connections_opened;
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    if (d.attempts == 0)
      throw NetError("tcp: connect() failed: " + std::string(strerror(errno)));
    schedule_reconnect(idx);
    return;
  }
  d.fd = fd;
  auto conn = std::make_unique<Conn>(fd, Conn::State::kConnecting,
                                     opts_.max_payload);
  conn->dial = static_cast<int>(idx);
  conn->last_heard = loop_.now();
  conns_.emplace(fd, std::move(conn));
  loop_.watch(fd, POLLOUT, [this, fd](short revents) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& c = *it->second;
    if (c.state == Conn::State::kConnecting) {
      int err = 0;
      socklen_t elen = sizeof(err);
      (void)getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
      if (err != 0 || (revents & (POLLERR | POLLHUP)) != 0) {
        close_conn(fd);
        return;
      }
      c.state = Conn::State::kAwaitWelcome;
      start_handshake(c);
      return;
    }
    if ((revents & POLLOUT) != 0) on_writable(fd);
    const auto again = conns_.find(fd);
    if (again != conns_.end() && (revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      on_readable(fd);
  });
  if (rc == 0) {
    // Immediate connect (loopback fast path on some kernels).
    Conn& c = *conns_.at(fd);
    c.state = Conn::State::kAwaitWelcome;
    start_handshake(c);
  }
}

void TcpTransport::adopt(int fd) {
  set_nonblocking(fd);
  set_nodelay(fd);
  auto conn = std::make_unique<Conn>(fd, Conn::State::kAwaitWelcome,
                                     opts_.max_payload);
  conn->last_heard = loop_.now();
  Conn& c = *conns_.emplace(fd, std::move(conn)).first->second;
  loop_.watch(fd, POLLIN, [this, fd](short revents) {
    if ((revents & POLLOUT) != 0) on_writable(fd);
    const auto it = conns_.find(fd);
    if (it != conns_.end() && (revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      on_readable(fd);
  });
  start_handshake(c);
}

void TcpTransport::start_handshake(Conn& conn) {
  wire::Welcome w;
  w.genesis = genesis_;
  w.role = wire::Role::kPeer;
  w.hosted = local_ids_;
  w.nonce = nonce_;
  w.resume = resume_;
  w.incarnation = incarnation_;
  w.head_serial = head_serial_;
  queue_frame(conn, static_cast<std::uint16_t>(wire::PacketType::kWelcome),
              wire::encode_welcome(w));
}

void TcpTransport::schedule_reconnect(std::size_t idx) {
  Dial& d = dials_[idx];
  d.fd = -1;
  if (!opts_.auto_reconnect || d.gave_up || d.retry_armed) return;
  ++d.attempts;
  if (opts_.max_reconnect_attempts != 0 &&
      d.attempts > opts_.max_reconnect_attempts) {
    d.gave_up = true;
    return;
  }
  d.backoff = d.backoff == 0
                  ? opts_.reconnect_base
                  : std::min(d.backoff * 2, opts_.reconnect_max);
  const SimDuration delay = d.backoff + jitter(d.backoff / 2);
  ++stats_.reconnect_attempts;
  d.retry_armed = true;
  loop_.schedule_at(loop_.now() + delay, [this, idx, alive = alive_] {
    if (!*alive) return;
    connect_dial(idx);
  });
}

SimDuration TcpTransport::jitter(SimDuration bound) {
  if (bound <= 0) return 0;
  // LCG seeded off the endpoint nonce: spreads redial storms between
  // processes without consuming entropy or perturbing any seeded RNG.
  jitter_state_ =
      jitter_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<SimDuration>(
      (jitter_state_ >> 33) % (static_cast<std::uint64_t>(bound) + 1));
}

void TcpTransport::on_heartbeat_tick() {
  const SimTime now = loop_.now();
  const SimDuration window =
      opts_.heartbeat_interval *
      static_cast<SimDuration>(opts_.dead_after_beats);
  // Snapshot fds first: queue_frame/close_conn below mutate conns_.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_)
    if (conn->state == Conn::State::kEstablished) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    if (now - c.last_heard > window) {
      ++stats_.dead_peers;
      if (trace_ != nullptr) {
        trace_->on_event(TraceEvent{TraceKind::kPeerDead, trace_node(), 0,
                                    static_cast<std::uint64_t>(fd),
                                    static_cast<std::uint64_t>(now - c.last_heard),
                                    now});
      }
      close_conn(fd);
      continue;
    }
    wire::Heartbeat hb;
    hb.nonce = nonce_;
    hb.sent_at = now;
    ++stats_.heartbeats_sent;
    queue_frame(c, static_cast<std::uint16_t>(wire::PacketType::kHeartbeat),
                wire::encode_heartbeat(hb));
  }
  loop_.schedule_at(now + opts_.heartbeat_interval, [this, alive = alive_] {
    if (*alive) on_heartbeat_tick();
  });
}

void TcpTransport::drop_connections() {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
}

bool TcpTransport::reaches(NodeId id) const {
  return handlers_.count(id) != 0 || routes_.count(id) != 0;
}

std::size_t TcpTransport::established() const {
  std::size_t n = 0;
  for (const auto& [fd, conn] : conns_)
    if (conn->state == Conn::State::kEstablished) ++n;
  return n;
}

// --- Transport surface -------------------------------------------------------

void TcpTransport::send(NodeId from, NodeId to, MsgKind kind, Bytes payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  msg.sent_at = loop_.now();
  msg.payload = std::move(payload);
  const auto local = handlers_.find(to);
  if (local != handlers_.end()) {
    ++stats_.messages_sent;
    stats_.bytes_sent += msg.payload.size();
    // Asynchronous like a real socket: never re-enter the handler from
    // inside the sender's call stack.
    loop_.schedule_at(loop_.now(), [this, m = std::move(msg)]() mutable {
      dispatch(std::move(m), /*restamp=*/true);
    });
    return;
  }
  Conn* conn = route(to);
  if (conn == nullptr) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_sent;
  wire::encode_message_into(msg, encode_arena_);
  queue_frame(*conn, static_cast<std::uint16_t>(wire::PacketType::kMessage),
              encode_arena_);
}

void TcpTransport::multicast(NodeId from, std::span<const NodeId> to,
                             MsgKind kind, const Bytes& payload) {
  for (const NodeId dest : to) send(from, dest, kind, payload);
}

void TcpTransport::deliver_direct(const Message& msg) {
  const auto local = handlers_.find(msg.to);
  if (local != handlers_.end()) {
    dispatch(msg, /*restamp=*/false);
    return;
  }
  Conn* conn = route(msg.to);
  if (conn == nullptr) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_sent;
  wire::encode_message_into(msg, encode_arena_);
  queue_frame(*conn, static_cast<std::uint16_t>(wire::PacketType::kDirect),
              encode_arena_);
}

void TcpTransport::count_broadcast(MsgKind kind, std::size_t copies,
                                   std::size_t payload_bytes) {
  (void)kind;
  stats_.messages_sent += copies;
  stats_.bytes_sent += copies * payload_bytes;
}

// --- Socket machinery --------------------------------------------------------

void TcpTransport::on_readable(int fd) {
  std::uint8_t buf[65536];
  for (;;) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {
      close_conn(fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) close_conn(fd);
      return;
    }
    it->second->last_heard = loop_.now();
    std::vector<wire::Frame> frames;
    try {
      it->second->reader.feed(BytesView(buf, static_cast<std::size_t>(n)),
                              frames);
    } catch (const wire::WireError& e) {
      fail_conn(*it->second, e.code(), e.what());
      return;
    }
    for (const wire::Frame& frame : frames) {
      const auto again = conns_.find(fd);
      if (again == conns_.end()) return;  // a prior frame closed the conn
      ++stats_.frames_received;
      handle_frame(*again->second, frame);
    }
  }
}

void TcpTransport::on_writable(int fd) {
  const auto it = conns_.find(fd);
  if (it != conns_.end()) flush(*it->second);
}

void TcpTransport::handle_frame(Conn& conn, const wire::Frame& frame) {
  const auto type = static_cast<wire::PacketType>(frame.type);
  try {
    switch (type) {
      case wire::PacketType::kWelcome:
        handle_welcome(conn, frame);
        return;
      case wire::PacketType::kError: {
        // The peer is reporting that *we* violated the protocol; surface it
        // and drop the link without echoing another error back. Handshake
        // verdicts (version range, genesis) are permanent: re-dialing the
        // same peer can only repeat them.
        const wire::ErrorPacket e = wire::decode_error(frame.payload);
        ++stats_.protocol_errors;
        stats_.last_error = e.code;
        if (trace_ != nullptr) {
          trace_->on_event(TraceEvent{TraceKind::kProtocolError, trace_node(),
                                      0, static_cast<std::uint64_t>(e.code),
                                      static_cast<std::uint64_t>(conn.fd),
                                      loop_.now()});
        }
        close_conn(conn.fd, !permanent_error(e.code));
        return;
      }
      case wire::PacketType::kHeartbeat: {
        if (conn.state != Conn::State::kEstablished) {
          fail_conn(conn, wire::ProtocolError::kUnexpectedPacket,
                    "heartbeat before welcome");
          return;
        }
        (void)wire::decode_heartbeat(frame.payload);
        ++stats_.heartbeats_received;
        return;
      }
      case wire::PacketType::kMessage:
      case wire::PacketType::kDirect: {
        if (conn.state != Conn::State::kEstablished) {
          fail_conn(conn, wire::ProtocolError::kUnexpectedPacket,
                    "message before welcome");
          return;
        }
        Message msg = wire::decode_message(frame.payload);
        dispatch(std::move(msg),
                 /*restamp=*/type == wire::PacketType::kMessage);
        return;
      }
    }
    fail_conn(conn, wire::ProtocolError::kUnknownPacket,
              "packet type " + std::to_string(frame.type));
  } catch (const wire::WireError& e) {
    fail_conn(conn, e.code(), e.what());
  }
}

void TcpTransport::handle_welcome(Conn& conn, const wire::Frame& frame) {
  if (conn.state != Conn::State::kAwaitWelcome) {
    fail_conn(conn, wire::ProtocolError::kUnexpectedPacket,
              "duplicate welcome");
    return;
  }
  const wire::Welcome w = wire::decode_welcome(frame.payload);
  if (w.nonce == nonce_) {
    // Connected to ourselves; drop quietly and never redial.
    close_conn(conn.fd, /*allow_reconnect=*/false);
    return;
  }
  (void)wire::check_welcome(w, genesis_);  // throws on version/genesis mismatch
  conn.state = Conn::State::kEstablished;
  conn.hosted = w.hosted;
  for (const NodeId id : conn.hosted) routes_[id] = conn.fd;
  if (conn.dial >= 0) {
    Dial& d = dials_[static_cast<std::size_t>(conn.dial)];
    if (d.attempts > 0) ++stats_.reconnects;
    d.attempts = 0;
    d.backoff = 0;
  }
  // Fire the reconnect hook for every re-learned route, whichever side
  // redialed. Collect first: the hook may send, which can mutate conns_.
  std::vector<NodeId> recovered;
  for (const NodeId id : conn.hosted)
    if (lost_routes_.erase(id) > 0) recovered.push_back(id);
  if (reconnect_hook_)
    for (const NodeId id : recovered) reconnect_hook_(id);
}

void TcpTransport::dispatch(Message msg, bool restamp) {
  if (restamp) msg.delivered_at = loop_.now();
  if (!restamp && msg.seq != 0) {
    // Pre-ordered broadcast copy: suppress fault-injected re-delivery, same
    // per-link monotone-sequence guard as SimNetwork::deliver_direct.
    auto& mark = delivered_seq_[link_key(msg.from, msg.to)];
    if (msg.seq <= mark) {
      ++stats_.duplicates_ignored;
      return;
    }
    mark = msg.seq;
  }
  const auto it = handlers_.find(msg.to);
  if (it == handlers_.end() || !it->second) {
    ++stats_.messages_dropped;
    return;
  }
  it->second(msg);
}

void TcpTransport::queue_frame(Conn& conn, std::uint16_t type,
                               BytesView payload) {
  stats_.bytes_sent += wire::kHeaderSize + payload.size();
  if (conn.out_off > 0 && conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  // The outbuf is the encode arena: the frame header and payload are
  // appended in place, with no intermediate frame allocation.
  wire::append_frame(conn.outbuf, type, payload);
  flush(conn);
}

void TcpTransport::flush(Conn& conn) {
  const int fd = conn.fd;
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(fd);
    return;
  }
  if (conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  update_events(conn);
}

void TcpTransport::update_events(Conn& conn) {
  short events = POLLIN;
  if (conn.out_off < conn.outbuf.size()) events |= POLLOUT;
  loop_.set_events(conn.fd, events);
}

void TcpTransport::fail_conn(Conn& conn, wire::ProtocolError code,
                             std::string detail) {
  ++stats_.protocol_errors;
  stats_.last_error = code;
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{TraceKind::kProtocolError, trace_node(), 0,
                                static_cast<std::uint64_t>(code),
                                static_cast<std::uint64_t>(conn.fd),
                                loop_.now()});
  }
  // Best effort: tell the peer why before dropping the link. The socket may
  // be full; a lost error packet only costs the peer a diagnostic.
  const Bytes pkt = wire::encode_frame(
      static_cast<std::uint16_t>(wire::PacketType::kError),
      wire::encode_error(wire::ErrorPacket{code, std::move(detail)}));
  (void)::send(conn.fd, pkt.data(), pkt.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  close_conn(conn.fd, !permanent_error(code));
}

void TcpTransport::close_conn(int fd, bool allow_reconnect) {
  const auto it = conns_.find(fd);
  const int dial = it != conns_.end() ? it->second->dial : -1;
  if (it != conns_.end() && it->second->state == Conn::State::kEstablished)
    ++stats_.connections_lost;
  for (auto rit = routes_.begin(); rit != routes_.end();) {
    if (rit->second == fd) {
      lost_routes_.insert(rit->first);
      rit = routes_.erase(rit);
    } else {
      ++rit;
    }
  }
  loop_.unwatch(fd);
  ::close(fd);
  conns_.erase(fd);
  if (dial >= 0) {
    Dial& d = dials_[static_cast<std::size_t>(dial)];
    if (allow_reconnect)
      schedule_reconnect(static_cast<std::size_t>(dial));
    else {
      d.fd = -1;
      d.gave_up = true;
    }
  }
}

TcpTransport::Conn* TcpTransport::route(NodeId to) {
  const auto it = routes_.find(to);
  if (it == routes_.end()) return nullptr;
  const auto conn = conns_.find(it->second);
  if (conn == conns_.end() ||
      conn->second->state != Conn::State::kEstablished)
    return nullptr;
  return conn->second.get();
}

NodeId TcpTransport::trace_node() const {
  return local_ids_.empty() ? NodeId{} : local_ids_.front();
}

}  // namespace repchain::runtime
