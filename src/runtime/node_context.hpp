#pragma once

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "runtime/revocable_timers.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport.hpp"

namespace repchain::runtime {

/// Everything a node needs from its host: its network identity, the
/// transport, the clock/timer service, a private deterministic random
/// stream, and an optional trace sink. Nodes hold a reference, so one
/// context per node must outlive it (store contexts address-stably).
class NodeContext {
 public:
  NodeContext(NodeId node, Transport& transport, Rng rng,
              TraceSink* trace = nullptr)
      : node_(node),
        transport_(transport),
        timers_(transport.timers()),
        rng_(rng),
        trace_(trace) {}

  NodeContext(const NodeContext&) = delete;
  NodeContext& operator=(const NodeContext&) = delete;
  NodeContext(NodeContext&&) = delete;
  NodeContext& operator=(NodeContext&&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Transport& transport() { return transport_; }
  [[nodiscard]] TimerService& timers() { return timers_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Cancel every timer callback scheduled through this context so far.
  /// Called when the hosted node crashes: its protocol objects are about to
  /// be destroyed while their callbacks are still queued in the event loop.
  void revoke_timers() { timers_.revoke_all(); }

  [[nodiscard]] SimTime now() const { return transport_.timers().now(); }
  /// The synchrony bound Delta.
  [[nodiscard]] SimDuration delta() const { return transport_.max_delay(); }

  /// Emit a trace observation (no-op without a sink).
  void emit(const TraceEvent& event) {
    if (trace_ != nullptr) trace_->on_event(event);
  }

 private:
  NodeId node_;
  Transport& transport_;
  RevocableTimers timers_;
  Rng rng_;
  TraceSink* trace_;
};

}  // namespace repchain::runtime
