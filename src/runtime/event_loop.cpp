#include "runtime/event_loop.hpp"

#include "common/errors.hpp"

namespace repchain::runtime {

void EventLoop::schedule_at(SimTime t, Callback cb) {
  // NetError (not a runtime-specific type) is kept for compatibility with
  // the net::EventQueue era this class grew out of.
  if (t < now_) throw NetError("cannot schedule event in the past");
  queue_.push(Event{EventKey{t, next_seq_++}, std::move(cb)});
}

std::size_t EventLoop::run(std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    // Move the callback out before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.key.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  return n;
}

std::size_t EventLoop::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().key.time <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.key.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace repchain::runtime
