#include "runtime/event_loop.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace repchain::runtime {

void EventLoop::schedule_at(SimTime t, Callback cb) {
  // NetError (not a runtime-specific type) is kept for compatibility with
  // the net::EventQueue era this class grew out of.
  if (t < now_) throw NetError("cannot schedule event in the past");
  heap_.push_back(Event{EventKey{t, next_seq_++}, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventLoop::Event EventLoop::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

std::size_t EventLoop::run(std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty() && n < max_events) {
    // The callback is moved out before dispatch so it can schedule new
    // events (including re-entrant pushes into this heap).
    Event ev = pop_next();
    now_ = ev.key.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  return n;
}

std::size_t EventLoop::run_until(SimTime until) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().key.time <= until) {
    Event ev = pop_next();
    now_ = ev.key.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace repchain::runtime
