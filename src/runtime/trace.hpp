#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/sim_time.hpp"

namespace repchain::runtime {

/// What happened, as seen from inside a node. Trace events are pure
/// observations: emitting one must never change protocol behaviour.
enum class TraceKind : std::uint8_t {
  kRoundStarted = 1,    // a governor entered a round (arg0 unused)
  kLeaderElected = 2,   // election completed (arg0 = winning governor id)
  kBlockCommitted = 3,  // a block was accepted (arg0 = serial, arg1 = #txs)
  kAuditPoint = 4,      // the round's audit deadline passed at this node
  kRoundEnded = 5,      // self-driving mode: the round span elapsed
  kRoundStalled = 6,    // watchdog: no commit within its bound
                        // (arg0 = consecutive stalled rounds at this node)
  kByzantineEvidence = 7,  // a defense caught active misbehavior
                           // (arg0 = adversary::ByzantineKind, arg1 = offender id)
  kProtocolError = 8,      // a socket peer violated the wire protocol
                           // (arg0 = wire::ProtocolError code, arg1 = fd)
  kCrossShardRejected = 9, // a collector refused a tx whose provider lives
                           // in another committee (arg0 = provider id)
  kPeerDead = 10,          // keepalive: no traffic from an established peer
                           // for the dead-peer window (arg0 = fd,
                           // arg1 = microseconds since last traffic)
  kDeliveryFailed = 11,    // ReliableChannel retry budget exhausted
                           // (arg0 = (epoch << 32) | peer node id,
                           //  arg1 = channel sequence number)
};

struct TraceEvent {
  TraceKind kind = TraceKind::kRoundStarted;
  NodeId node;            // emitting node
  Round round = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  SimTime at = 0;         // emission time (commit-latency measurements)
};

/// Consumes trace events. The scenario harness implements this to assemble
/// per-round records without reaching into node internals mid-round.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

}  // namespace repchain::runtime
