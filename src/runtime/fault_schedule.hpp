#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "runtime/transport.hpp"

namespace repchain::runtime {

// Time-windowed fault descriptions. Every window is half-open [from, until):
// a fault is active at time t iff from <= t < until. Windows are absolute
// simulation times; the sim layer lowers round-based specs onto them.

/// Network partition: the `island` nodes are cut off from every node outside
/// the island (traffic within the island, and among outsiders, still flows).
struct PartitionFault {
  SimTime from = 0;
  SimTime until = 0;
  std::vector<NodeId> island;
};

/// Global delay spike: every drawn link delay is extended by `extra` plus a
/// uniform jitter in [0, jitter]. A spike may deliberately exceed the
/// transport's advertised synchrony bound — that is the fault being modelled.
struct DelayFault {
  SimTime from = 0;
  SimTime until = 0;
  SimDuration extra = 0;
  SimDuration jitter = 0;
};

/// Message duplication: each message is delivered twice with `probability`.
struct DuplicateFault {
  SimTime from = 0;
  SimTime until = 0;
  double probability = 0.0;
};

/// Bounded reordering: with `probability` a unicast is held back by a uniform
/// extra in [0, max_extra] before entering the network, letting later sends
/// overtake it.
struct ReorderFault {
  SimTime from = 0;
  SimTime until = 0;
  double probability = 0.0;
  SimDuration max_extra = 0;
};

/// Burst loss: each message on the matching link (or on every link when
/// `link` is unset) is dropped with `probability`.
struct LossFault {
  SimTime from = 0;
  SimTime until = 0;
  double probability = 0.0;
  std::optional<std::pair<NodeId, NodeId>> link;  // unset = every link
};

/// A composed, deterministic fault plan queried by FaultyTransport. All
/// predicates are pure: the schedule holds no mutable state, so the same
/// (schedule, rng seed) pair always yields the same faulted run.
class FaultSchedule {
 public:
  FaultSchedule& add(PartitionFault fault);
  FaultSchedule& add(DelayFault fault);
  FaultSchedule& add(DuplicateFault fault);
  FaultSchedule& add(ReorderFault fault);
  FaultSchedule& add(LossFault fault);

  /// True iff an active partition separates `a` from `b` at time `t`.
  [[nodiscard]] bool severed(NodeId a, NodeId b, SimTime t) const;

  /// Combined loss probability on (from, to) at `t`: independent windows
  /// compose as 1 - prod(1 - p_i).
  [[nodiscard]] double loss_probability(NodeId from, NodeId to, SimTime t) const;

  /// Combined duplication probability at `t`.
  [[nodiscard]] double duplicate_probability(SimTime t) const;

  /// The reorder fault active at `t` (first match), if any.
  [[nodiscard]] const ReorderFault* reorder_at(SimTime t) const;

  /// Sum of active delay extensions at `t`; `jitter_out` accumulates the
  /// active jitter bounds.
  [[nodiscard]] SimDuration delay_extra_at(SimTime t, SimDuration& jitter_out) const;

  [[nodiscard]] bool empty() const {
    return partitions_.empty() && delays_.empty() && duplicates_.empty() &&
           reorders_.empty() && losses_.empty();
  }

 private:
  std::vector<PartitionFault> partitions_;
  std::vector<DelayFault> delays_;
  std::vector<DuplicateFault> duplicates_;
  std::vector<ReorderFault> reorders_;
  std::vector<LossFault> losses_;
};

/// What the decorator did to the traffic (observability for tests/benches).
struct FaultStats {
  std::uint64_t partition_drops = 0;
  std::uint64_t loss_drops = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delay_extended = 0;
};

/// Transport decorator applying a FaultSchedule to all traffic, composable
/// with the crash faults the harness injects at the node level.
///
/// Unicasts (`send`): partition and loss drop the message before it enters
/// the inner transport; reordering holds it back on the timer wheel before
/// re-submitting; duplication submits it twice. Direct deliveries
/// (`deliver_direct`, the atomic-broadcast path) respect partition/loss/
/// duplication at the already-scheduled arrival instant, but are never
/// re-timed — the broadcast layer owns their ordering, and the network's
/// sequenced-duplicate guard turns a duplicated copy into a no-op.
/// `draw_delay` stretches by the active delay spike, so broadcast deliveries
/// feel the spike too.
///
/// The decorator draws from its own Rng stream: a fault-free schedule leaves
/// the inner transport's randomness — and thus any golden run — untouched.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, FaultSchedule schedule, Rng rng)
      : inner_(inner), schedule_(std::move(schedule)), rng_(rng) {}

  void send(NodeId from, NodeId to, MsgKind kind, Bytes payload) override;
  void multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                 const Bytes& payload) override;
  [[nodiscard]] SimDuration max_delay() const override { return inner_.max_delay(); }
  [[nodiscard]] TimerService& timers() override { return inner_.timers(); }
  [[nodiscard]] SimDuration draw_delay() override;
  void deliver_direct(const Message& msg) override;
  void count_broadcast(MsgKind kind, std::size_t copies,
                       std::size_t payload_bytes) override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  Transport& inner_;
  FaultSchedule schedule_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace repchain::runtime
