#pragma once

#include <functional>
#include <utility>

#include "common/sim_time.hpp"

namespace repchain::runtime {

/// Clock plus one-shot timer scheduling — the only view of time a protocol
/// node gets. In simulation the discrete-event queue implements this; a
/// production runtime would back it with a timer wheel on the event loop.
class TimerService {
 public:
  using Callback = std::function<void()>;

  virtual ~TimerService() = default;

  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedule `cb` at absolute time `t` (>= now). Timers armed for the same
  /// instant fire in arming order (FIFO), which round-driving relies on.
  virtual void schedule_at(SimTime t, Callback cb) = 0;

  /// Schedule `cb` after a relative delay.
  void schedule_after(SimDuration d, Callback cb) {
    schedule_at(now() + d, std::move(cb));
  }
};

}  // namespace repchain::runtime
