#pragma once

// A real-socket realization of the Transport seam. Non-blocking TCP
// connections are driven by a PollLoop; every connection starts with the
// wire-protocol welcome exchange (version negotiation + genesis check) and
// then carries length-framed packets encoded by the shared wire codec, so a
// message on a socket is byte-identical to the same message in the
// simulator. Protocol nodes, ReliableChannel, FaultyTransport and the
// atomic-broadcast layer run unchanged on top.
//
// Single-threaded like the rest of the runtime: all socket callbacks and
// timers run inside the owning PollLoop's run_until().

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"
#include "runtime/message.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport.hpp"
#include "wire/frame.hpp"
#include "wire/protocol_error.hpp"

namespace repchain::runtime {

/// Traffic and error counters for one transport endpoint.
struct TcpStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;  // no route to destination
  std::uint64_t bytes_sent = 0;        // frame bytes queued, header included
  std::uint64_t frames_received = 0;
  std::uint64_t duplicates_ignored = 0;
  std::uint64_t connections_opened = 0;    // outbound attempts
  std::uint64_t connections_accepted = 0;  // inbound accepts
  std::uint64_t connections_lost = 0;      // established links that dropped
  std::uint64_t reconnect_attempts = 0;    // backed-off re-dials scheduled
  std::uint64_t reconnects = 0;            // links re-established after loss
  std::uint64_t dead_peers = 0;            // keepalive silence-window kills
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t protocol_errors = 0;
  wire::ProtocolError last_error = wire::ProtocolError::kNone;
};

class TcpTransport final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  struct Options {
    /// The synchrony bound Delta reported to the protocol stack.
    SimDuration max_delay = 10 * kMillisecond;
    /// Frame payload bound fed to every connection's FrameReader.
    std::size_t max_payload = wire::kDefaultMaxPayload;
    /// Re-dial lost outbound connections with exponential backoff plus
    /// deterministic jitter. Off by default: lockstep cluster RPC treats a
    /// dropped link as fatal, while live deployments turn this on. While a
    /// link is down, send() drops as usual (messages_dropped) and the
    /// ReliableChannel retransmit schedule carries traffic over the gap;
    /// the fresh welcome exchange re-learns routes.
    bool auto_reconnect = false;
    SimDuration reconnect_base = 50 * kMillisecond;
    SimDuration reconnect_max = 2 * kSecond;
    /// Consecutive failed re-dials before a target is abandoned
    /// (0 = retry forever).
    std::uint32_t max_reconnect_attempts = 0;
    /// Keepalive (0 = off): every interval a kHeartbeat goes out on each
    /// established link, and a link with no inbound traffic at all for
    /// `dead_after_beats` intervals is declared dead — kPeerDead trace,
    /// dead_peers counter, close (re-dialed when auto_reconnect).
    SimDuration heartbeat_interval = 0;
    std::uint32_t dead_after_beats = 3;
  };

  TcpTransport(PollLoop& loop, crypto::Hash256 genesis)
      : TcpTransport(loop, genesis, Options{}) {}
  TcpTransport(PollLoop& loop, crypto::Hash256 genesis, Options opts);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Register a node living on this endpoint; its id is announced in the
  /// welcome packet of every connection. Handler may be installed later.
  void host(NodeId id, Handler handler = nullptr);
  void set_handler(NodeId id, Handler handler);

  /// Trace sink for kProtocolError events (may be null).
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Called once per remote node id whose route was lost with a connection
  /// and then re-learned from a later welcome — i.e. the link to that peer
  /// is live again, regardless of which side redialed. ReliableChannel
  /// owners hook this to refresh retry budgets (on_peer_reconnect) instead
  /// of burning them against the dead link's backoff schedule.
  using ReconnectHook = std::function<void(NodeId)>;
  void set_reconnect_hook(ReconnectHook hook) {
    reconnect_hook_ = std::move(hook);
  }

  /// v2 session resume: every subsequent welcome announces this endpoint as
  /// a returning incarnation with the given recovered chain head, letting
  /// peers re-admit it instead of treating it as a stranger.
  void set_resume(std::uint32_t incarnation, std::uint64_t head_serial) {
    resume_ = true;
    incarnation_ = incarnation;
    head_serial_ = head_serial;
  }

  /// Bind + listen on loopback (`port` 0 picks an ephemeral port). Returns
  /// the actual bound port. Throws NetError on socket failure.
  std::uint16_t listen(std::uint16_t port);

  /// Open a non-blocking outbound connection to loopback:`port`; the
  /// welcome exchange begins once the connect completes.
  void connect(std::uint16_t port);

  /// Adopt one end of an already-connected socket (e.g. socketpair) and run
  /// the welcome exchange over it. Takes ownership of `fd`.
  void adopt(int fd);

  /// True once a welcome naming `id` has been accepted (or `id` is local).
  [[nodiscard]] bool reaches(NodeId id) const;
  /// Connections that completed the welcome exchange.
  [[nodiscard]] std::size_t established() const;

  /// Chaos/test hook: hard-close every connection (the listener survives).
  /// Partial inbound frames are discarded with the connection; dialed
  /// targets re-enter the backoff schedule when auto_reconnect is on.
  void drop_connections();

  [[nodiscard]] const TcpStats& stats() const { return stats_; }

  // --- Transport -------------------------------------------------------------

  void send(NodeId from, NodeId to, MsgKind kind, Bytes payload) override;
  void multicast(NodeId from, std::span<const NodeId> to, MsgKind kind,
                 const Bytes& payload) override;
  [[nodiscard]] SimDuration max_delay() const override {
    return opts_.max_delay;
  }
  [[nodiscard]] TimerService& timers() override { return loop_; }
  /// The broadcast layer schedules deliveries with this; a socket has no
  /// simulated latency model, so the bound itself is the deterministic draw.
  [[nodiscard]] SimDuration draw_delay() override { return opts_.max_delay; }
  void deliver_direct(const Message& msg) override;
  void count_broadcast(MsgKind kind, std::size_t copies,
                       std::size_t payload_bytes) override;

 private:
  struct Conn {
    enum class State : std::uint8_t {
      kConnecting,    // outbound, waiting for connect(2) to complete
      kAwaitWelcome,  // welcome sent, peer's not yet received
      kEstablished,
    };

    explicit Conn(int f, State s, std::size_t max_payload)
        : fd(f), state(s), reader(max_payload) {}

    int fd;
    State state;
    wire::FrameReader reader;
    Bytes outbuf;                // unsent frame bytes (partial-write queue)
    std::size_t out_off = 0;     // consumed prefix of outbuf
    std::vector<NodeId> hosted;  // routes learned from the peer's welcome
    int dial = -1;               // index into dials_ for outbound conns
    SimTime last_heard = 0;      // last inbound byte (keepalive window)
  };

  /// One outbound target we keep trying to reach while auto_reconnect.
  struct Dial {
    std::uint16_t port = 0;
    std::uint32_t attempts = 0;  // consecutive failures since last success
    SimDuration backoff = 0;     // delay before the next re-dial
    int fd = -1;                 // live conn fd, -1 while down
    bool retry_armed = false;    // a reconnect timer is pending
    bool gave_up = false;        // attempt budget exhausted or permanent error
  };

  void start_handshake(Conn& conn);
  void connect_dial(std::size_t idx);
  void schedule_reconnect(std::size_t idx);
  void on_heartbeat_tick();
  /// Bounded deterministic jitter derived from the endpoint nonce.
  [[nodiscard]] SimDuration jitter(SimDuration bound);
  void on_readable(int fd);
  void on_writable(int fd);
  void handle_frame(Conn& conn, const wire::Frame& frame);
  void handle_welcome(Conn& conn, const wire::Frame& frame);
  void dispatch(Message msg, bool restamp);
  /// Queue frame bytes on the connection, flushing as far as the socket
  /// accepts and arming POLLOUT for the rest.
  void queue_frame(Conn& conn, std::uint16_t type, BytesView payload);
  void flush(Conn& conn);
  /// Record the violation, best-effort send a kError packet, close.
  void fail_conn(Conn& conn, wire::ProtocolError code, std::string detail);
  void close_conn(int fd, bool allow_reconnect = true);
  void update_events(Conn& conn);
  [[nodiscard]] Conn* route(NodeId to);
  [[nodiscard]] NodeId trace_node() const;

  PollLoop& loop_;
  crypto::Hash256 genesis_;
  Options opts_;
  TraceSink* trace_ = nullptr;
  std::uint64_t nonce_ = 0;
  std::uint64_t jitter_state_ = 0;
  bool resume_ = false;
  std::uint32_t incarnation_ = 0;
  std::uint64_t head_serial_ = 0;
  int listen_fd_ = -1;
  std::vector<Dial> dials_;
  // Timer callbacks (reconnect, heartbeat) may outlive the transport in the
  // loop's queue; they hold this flag and no-op once it flips.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  // by fd
  std::unordered_map<NodeId, int> routes_;                // remote id -> fd
  // Routes torn down with a lost connection; a welcome that re-announces
  // one of these ids fires the reconnect hook.
  std::unordered_set<NodeId> lost_routes_;
  ReconnectHook reconnect_hook_;
  std::vector<NodeId> local_ids_;
  std::unordered_map<NodeId, Handler> handlers_;
  // Highest broadcast sequence delivered per (from, to); mirrors the
  // SimNetwork guard so fault-injected duplicate copies stay suppressed.
  std::unordered_map<std::uint64_t, std::uint64_t> delivered_seq_;
  // Recycled envelope buffer for the hot send/deliver_direct encode path;
  // its capacity survives across messages (see wire::encode_message_into).
  Bytes encode_arena_;
  TcpStats stats_;
};

}  // namespace repchain::runtime
