#include "runtime/poll_loop.hpp"

#include <poll.h>
#include <time.h>

#include <utility>

namespace repchain::runtime {
namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

PollLoop::PollLoop() : epoch_ns_(monotonic_ns()) {}

SimTime PollLoop::now() const { return (monotonic_ns() - epoch_ns_) / 1000; }

void PollLoop::schedule_at(SimTime t, Callback cb) {
  timers_.push(Timer{t, next_seq_++, std::move(cb)});
}

void PollLoop::watch(int fd, short events, FdCallback cb) {
  watches_[fd] = {events, std::move(cb)};
}

void PollLoop::set_events(int fd, short events) {
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.first = events;
}

void PollLoop::unwatch(int fd) { watches_.erase(fd); }

void PollLoop::fire_due() {
  while (!timers_.empty() && timers_.top().at <= now()) {
    // Copy out before pop: the callback may arm new timers.
    Callback cb = timers_.top().cb;
    timers_.pop();
    cb();
  }
}

void PollLoop::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(watches_.size());
  for (const auto& [fd, entry] : watches_) {
    fds.push_back(pollfd{fd, entry.first, 0});
  }
  if (fds.empty()) {
    // Nothing to multiplex: sleep on a disarmed poll so timers still pace us.
    (void)poll(nullptr, 0, timeout_ms);
    return;
  }
  const int n = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (n <= 0) return;  // timeout or EINTR; timers handle the rest
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    // The callback may watch/unwatch fds (accept, close); re-check that this
    // fd is still registered before dispatching to it.
    const auto it = watches_.find(p.fd);
    if (it == watches_.end()) continue;
    FdCallback cb = it->second.second;  // copy: the callback may replace itself
    cb(p.revents);
  }
}

void PollLoop::run_until(SimTime deadline) {
  run_until(deadline, [] { return false; });
}

bool PollLoop::run_until(SimTime deadline, const std::function<bool()>& pred) {
  for (;;) {
    fire_due();
    if (pred()) return true;
    const SimTime t = now();
    if (t >= deadline) return false;
    SimTime wake = deadline;
    if (!timers_.empty() && timers_.top().at < wake) wake = timers_.top().at;
    const SimTime wait_us = wake > t ? wake - t : 0;
    // Round up so a sub-millisecond timer is not spun on a 0ms poll.
    const int timeout_ms = static_cast<int>((wait_us + 999) / 1000);
    poll_once(timeout_ms);
  }
}

}  // namespace repchain::runtime
