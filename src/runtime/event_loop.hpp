#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.hpp"
#include "runtime/timer.hpp"

namespace repchain::runtime {

/// The ordering key of one scheduled event: absolute simulated time plus a
/// monotonically increasing schedule sequence. Events compare by (time, seq),
/// so events scheduled for the same instant fire in scheduling order (FIFO
/// tie-break). This key is the simulator's entire source of event order —
/// making it explicit is what keeps whole-protocol runs bit-reproducible
/// from the scenario seed, and what lets independent EventLoop instances run
/// on different cores without sharing any ordering state.
struct EventKey {
  SimTime time = 0;
  std::uint64_t seq = 0;

  [[nodiscard]] bool operator<(const EventKey& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// Deterministic discrete-event loop: owns simulated time, the priority
/// queue, and timer scheduling. One EventLoop is one isolated simulation
/// instance — it holds no global state, so many loops can run concurrently
/// (sim::ParallelSweep) while each stays byte-identical to a serial run.
///
/// This is the substrate for the paper's synchronous system model: message
/// transmission and processing delays are realized as bounded event delays.
/// It implements runtime::TimerService, the one seam every time consumer
/// (TimerService users, RevocableTimers, AtomicBroadcastGroup,
/// FaultyTransport, ReliableChannel) schedules through — and the single
/// place a real clock/poller would plug in for a socket transport.
class EventLoop final : public TimerService {
 public:
  using Callback = TimerService::Callback;

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedule `cb` at absolute simulated time `t` (>= now).
  void schedule_at(SimTime t, Callback cb) override;

  /// Process events until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Process events with time <= `until`.
  std::size_t run_until(SimTime until);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    EventKey key;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const { return b.key < a.key; }
  };

  /// Pop the earliest event off the heap and return it by move.
  [[nodiscard]] Event pop_next();

  // Explicit binary heap (std::push_heap/pop_heap) rather than
  // std::priority_queue: the dispatch loop moves each callback out of the
  // container before running it, and priority_queue's const top() forces a
  // const_cast for that. pop_heap hands the element back as the mutable
  // vector tail, so dispatch is a plain move and the vector's capacity is
  // reused across the whole run.
  std::vector<Event> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace repchain::runtime
