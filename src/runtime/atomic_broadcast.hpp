#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/transport.hpp"

namespace repchain::runtime {

/// Total-order (atomic) broadcast within a fixed member set, built on the
/// transport abstraction.
///
/// The paper requires broadcast_provider / broadcast_collector /
/// broadcast_governor to be atomic broadcasts [Cachin et al.] so receivers
/// agree on report order. In a permissioned synchronous deployment this is a
/// standard primitive; here it is realized with a per-group sequencer: each
/// broadcast gets a global sequence number, and delivery at each member is
/// delayed (within the synchrony bound) so that members observe broadcasts
/// in exactly sequence order. Per-member delivery times still vary inside
/// the latency bound, as the real primitive allows.
class AtomicBroadcastGroup final : public Broadcaster {
 public:
  /// `members` receive every broadcast (a broadcasting member also delivers
  /// to itself iff it is in `members`).
  AtomicBroadcastGroup(Transport& transport, std::vector<NodeId> members);

  /// Totally-ordered broadcast of `payload` from `from` to all members.
  /// The single total order covers all kinds sent through this group.
  void broadcast(NodeId from, MsgKind kind, const Bytes& payload) override;

  [[nodiscard]] const std::vector<NodeId>& members() const override {
    return members_;
  }
  [[nodiscard]] std::uint64_t sequence() const { return next_seq_; }

 private:
  Transport& transport_;
  std::vector<NodeId> members_;
  std::uint64_t next_seq_ = 0;
  // Last scheduled delivery time per member; enforces in-order delivery.
  std::unordered_map<NodeId, SimTime> last_delivery_;
};

}  // namespace repchain::runtime
