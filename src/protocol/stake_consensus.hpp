#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "protocol/directory.hpp"
#include "protocol/messages.hpp"
#include "protocol/stake.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/transport.hpp"

namespace repchain::protocol {

/// The governor's stake ledger plus the 3-step stake consensus of §3.4.3:
/// transfers are atomically broadcast with per-sender sequence numbers
/// (replay protection), the round leader proposes the NEW_STATE derived from
/// them, every governor checks the derivation and signs, and the leader
/// commits once all non-expelled governors signed. A conflicting proposal is
/// returned to the caller as expel evidence.
///
/// The facade authenticates senders before calling in; the round/leader view
/// is passed per call so the state machine is unit-testable round by round.
class StakeConsensus {
 public:
  StakeConsensus(GovernorId self, NodeId node, const crypto::SigningKey& key,
                 const identity::IdentityManager& im, const Directory& directory,
                 runtime::Transport& transport, runtime::Broadcaster& group,
                 StakeLedger genesis)
      : self_(self), node_(node), key_(key), im_(im), directory_(directory),
        transport_(transport), group_(group), stake_(std::move(genesis)) {}

  /// Queue a stake transfer (broadcast to all governors, §3.4.3).
  void submit_transfer(GovernorId to, std::uint64_t amount);

  /// An authenticated transfer arrived through the atomic broadcast.
  void on_stake_tx(StakeTxMsg stx);

  /// Leader entry point: propose the NEW_STATE over this round's transfers
  /// (no-op when there are none).
  void run_as_leader(Round round);

  /// Step 2: verify the leader's proposal against the locally derived state
  /// and sign it; a conflicting proposal is returned as expel evidence
  /// (StateProposalMsg encoding) for the caller to broadcast.
  [[nodiscard]] std::optional<Bytes> on_proposal(const StateProposalMsg& proposal,
                                                 Round round);

  /// Step 2->3 (leader side): collect a governor's signature; commits once
  /// every non-expelled governor signed.
  void on_signature(const StateSignatureMsg& sig, Round round,
                    const std::set<GovernorId>& expelled);

  /// Step 3: verify the full signature set and apply the NEW_STATE. Returns
  /// true iff the state was applied — a stake-transform commit, which is the
  /// paper's checkpoint trigger (the caller snapshots durable state on it).
  bool on_commit(const StateCommitMsg& commit, Round round,
                 std::optional<GovernorId> leader,
                 const std::set<GovernorId>& expelled);

  /// Expel verification: does `proposal` match the state this governor
  /// derives for the given round?
  [[nodiscard]] bool matches_expected(const StateProposalMsg& proposal,
                                      Round round) const;

  /// The state the broadcast transfers derive from the current ledger.
  [[nodiscard]] StakeLedger expected_state() const;

  [[nodiscard]] const StakeLedger& stake() const { return stake_; }
  [[nodiscard]] bool has_pending_transfers() const {
    return !round_stake_txs_.empty();
  }

  /// For a byzantine-leader test: corrupt the proposed state.
  void set_cheat(bool cheat) { cheat_ = cheat; }

  /// Restore path: install a checkpointed ledger.
  void restore_stake(StakeLedger stake) { stake_ = std::move(stake); }

  /// Reliable-delivery mode: route this unit's sends through the facade's
  /// ReliableChannel instead of the bare transport / broadcast group. The
  /// broadcast hook must also loop the message back to the local facade.
  using SendFn = std::function<void(NodeId, runtime::MsgKind, const Bytes&)>;
  using BroadcastFn = std::function<void(runtime::MsgKind, const Bytes&)>;
  void set_reliable(SendFn send, BroadcastFn broadcast) {
    send_ = std::move(send);
    broadcast_ = std::move(broadcast);
  }

 private:
  void bcast(runtime::MsgKind kind, const Bytes& payload) {
    if (broadcast_) {
      broadcast_(kind, payload);
    } else {
      group_.broadcast(node_, kind, payload);
    }
  }
  void unicast(NodeId to, runtime::MsgKind kind, const Bytes& payload) {
    if (send_) {
      send_(to, kind, payload);
    } else {
      transport_.send(node_, to, kind, payload);
    }
  }

  GovernorId self_;
  NodeId node_;
  const crypto::SigningKey& key_;
  const identity::IdentityManager& im_;
  const Directory& directory_;
  runtime::Transport& transport_;
  runtime::Broadcaster& group_;

  StakeLedger stake_;
  std::uint64_t next_seq_ = 0;
  // Replay protection per sender: a contiguous next-expected mark plus the
  // sparse set of sequences seen above it. With the atomic broadcast the set
  // stays empty (in-order arrival); the reliable channel does not preserve
  // order, so out-of-order fresh sequences must still be accepted exactly
  // once.
  struct SeqRecv {
    std::uint64_t next = 0;           // everything below is seen
    std::set<std::uint64_t> above;    // sparse seen sequences >= next
  };
  std::unordered_map<GovernorId, SeqRecv> seq_seen_;
  std::vector<StakeTxMsg> round_stake_txs_;
  std::optional<StateProposalMsg> current_proposal_;
  std::vector<StateSignatureMsg> collected_sigs_;
  std::set<GovernorId> sig_senders_;
  Round last_commit_round_ = 0;  // duplicate-commit guard (idempotent receive)
  bool cheat_ = false;
  SendFn send_;
  BroadcastFn broadcast_;
};

}  // namespace repchain::protocol
