#include "protocol/argue_service.hpp"

namespace repchain::protocol {

using ledger::Label;
using ledger::TxStatus;

void ArgueService::record_unchecked(const ledger::Transaction& tx,
                                    std::vector<reputation::Report> reports) {
  const ledger::TxId id = tx.id();
  UncheckedEntry entry;
  entry.tx = tx;
  entry.reports = std::move(reports);
  entry.truly_valid = oracle_.true_validity(id);  // metric only
  entry.expected_loss =
      table_.expected_loss_for(tx.provider, entry.reports, entry.truly_valid);
  metrics_.expected_loss += entry.expected_loss;
  if (entry.truly_valid) metrics_.realized_loss += 2.0;
  unchecked_.emplace(id, std::move(entry));
  unchecked_order_.push_back(id);
  argue_buffer_.record(tx.provider, id);
}

std::optional<ledger::TxRecord> ArgueService::handle_argue(const ArgueMsg& argue) {
  const ledger::TxId id = argue.tx.id();
  auto uit = unchecked_.find(id);
  if (uit == unchecked_.end() || uit->second.revealed) return std::nullopt;

  if (!argue_buffer_.consume(argue.provider, id)) {
    // Buried deeper than U: invalid permanently (§4.2).
    ++metrics_.argues_rejected_late;
    return std::nullopt;
  }
  ++metrics_.argues_accepted;

  // Re-evaluate: status <- validate(tx).
  ++metrics_.argue_validations;
  const bool truth = oracle_.validate(id);
  std::optional<ledger::TxRecord> appended;
  if (truth) {
    ledger::TxRecord rec;
    rec.tx = argue.tx;
    rec.label = Label::kValid;
    rec.status = TxStatus::kArguedValid;
    appended = std::move(rec);
  }
  apply_reveal(uit->second, truth);
  return appended;
}

void ArgueService::apply_reveal(UncheckedEntry& entry, bool truth) {
  entry.revealed = true;
  if (truth) ++metrics_.mistakes;
  // Algorithm 3 case 3 with the screening-time report snapshot.
  (void)table_.update_revealed(entry.tx.provider, entry.reports, truth);
}

bool ArgueService::reveal(const ledger::TxId& id) {
  auto it = unchecked_.find(id);
  if (it == unchecked_.end() || it->second.revealed) return false;
  apply_reveal(it->second, oracle_.true_validity(id));
  return true;
}

std::vector<const UncheckedEntry*> ArgueService::entries_in_order() const {
  std::vector<const UncheckedEntry*> out;
  out.reserve(unchecked_order_.size());
  for (const auto& id : unchecked_order_) {
    const auto it = unchecked_.find(id);
    if (it != unchecked_.end()) out.push_back(&it->second);
  }
  return out;
}

void ArgueService::restore_entries(std::vector<UncheckedEntry> entries) {
  reset_transient();
  for (auto& entry : entries) {
    const ledger::TxId id = entry.tx.id();
    const ProviderId provider = entry.tx.provider;
    const bool revealed = entry.revealed;
    unchecked_.emplace(id, std::move(entry));
    unchecked_order_.push_back(id);
    // Re-record every entry so per-provider burial depths match the
    // screening order, then consume the revealed ones (an argue or reveal
    // had already closed their windows before the checkpoint).
    argue_buffer_.record(provider, id);
    if (revealed) (void)argue_buffer_.consume(provider, id);
  }
}

std::vector<ledger::TxId> ArgueService::unrevealed() const {
  std::vector<ledger::TxId> out;
  for (const auto& id : unchecked_order_) {
    const auto it = unchecked_.find(id);
    if (it != unchecked_.end() && !it->second.revealed) out.push_back(id);
  }
  return out;
}

}  // namespace repchain::protocol
