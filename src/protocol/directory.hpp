#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace repchain::protocol {

/// Network directory: maps protocol-level identities (provider/collector/
/// governor ids) to flat network node ids and records the provider-collector
/// link structure of Figure 1 (each provider linked with r collectors, each
/// collector with s providers; r*l = s*n).
class Directory {
 public:
  void add_provider(ProviderId id, NodeId node);
  void add_collector(CollectorId id, NodeId node);
  void add_governor(GovernorId id, NodeId node);

  /// Record that `provider` submits its transactions to `collector`.
  void link(ProviderId provider, CollectorId collector);

  [[nodiscard]] NodeId node_of(ProviderId id) const;
  [[nodiscard]] NodeId node_of(CollectorId id) const;
  [[nodiscard]] NodeId node_of(GovernorId id) const;

  [[nodiscard]] std::optional<ProviderId> provider_at(NodeId node) const;
  [[nodiscard]] std::optional<CollectorId> collector_at(NodeId node) const;
  [[nodiscard]] std::optional<GovernorId> governor_at(NodeId node) const;

  [[nodiscard]] const std::vector<CollectorId>& collectors_of(ProviderId id) const;
  [[nodiscard]] const std::vector<ProviderId>& providers_of(CollectorId id) const;
  [[nodiscard]] bool linked(ProviderId provider, CollectorId collector) const;

  [[nodiscard]] const std::vector<ProviderId>& providers() const { return providers_; }
  [[nodiscard]] const std::vector<CollectorId>& collectors() const { return collectors_; }
  [[nodiscard]] const std::vector<GovernorId>& governors() const { return governors_; }
  [[nodiscard]] std::vector<NodeId> governor_nodes() const;
  [[nodiscard]] std::vector<NodeId> collector_nodes_of(ProviderId id) const;

 private:
  std::vector<ProviderId> providers_;
  std::vector<CollectorId> collectors_;
  std::vector<GovernorId> governors_;
  std::unordered_map<ProviderId, NodeId> provider_nodes_;
  std::unordered_map<CollectorId, NodeId> collector_nodes_;
  std::unordered_map<GovernorId, NodeId> governor_nodes_;
  std::unordered_map<NodeId, ProviderId> node_providers_;
  std::unordered_map<NodeId, CollectorId> node_collectors_;
  std::unordered_map<NodeId, GovernorId> node_governors_;
  std::unordered_map<ProviderId, std::vector<CollectorId>> links_by_provider_;
  std::unordered_map<CollectorId, std::vector<ProviderId>> links_by_collector_;
};

}  // namespace repchain::protocol
