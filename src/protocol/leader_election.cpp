#include "protocol/leader_election.hpp"

namespace repchain::protocol {

ElectionState::ElectionState(Round round, const StakeLedger& stake,
                             const std::set<GovernorId>& expelled)
    : round_(round) {
  for (const auto& [gov, units] : stake.balances()) {
    if (!expelled.contains(gov) && units > 0) expected_.emplace(gov, units);
  }
}

bool ElectionState::add_announcement(const VrfAnnounceMsg& msg,
                                     const identity::IdentityManager& im,
                                     NodeId sender_node) {
  if (msg.round != round_) return false;
  const auto it = expected_.find(msg.governor);
  if (it == expected_.end()) return false;        // unknown or expelled governor
  if (seen_.contains(msg.governor)) return false;  // duplicate announcement
  if (msg.tickets.size() != it->second) return false;  // one ticket per stake unit

  // Verify every ticket's VRF proof against the governor's enrolled key.
  const auto role = im.role_of(sender_node);
  if (!role || *role != identity::Role::kGovernor) return false;
  const auto& pub = im.certificate(sender_node).public_key;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> hashes;
  hashes.reserve(msg.tickets.size());
  std::set<std::uint32_t> units_seen;
  for (const auto& t : msg.tickets) {
    if (t.governor != msg.governor) return false;
    if (t.unit >= it->second) return false;        // unit index out of range
    if (!units_seen.insert(t.unit).second) return false;  // duplicate unit
    const auto out = crypto::vrf_verify(pub, vrf_alpha(round_, t.governor, t.unit),
                                        t.proof);
    if (!out) return false;
    hashes.emplace_back(crypto::vrf_output_to_u64(*out), t.unit);
  }

  seen_.insert(msg.governor);
  for (const auto& [hash, unit] : hashes) {
    const bool better =
        hash < best_.hash ||
        (hash == best_.hash && (msg.governor < best_.governor ||
                                (msg.governor == best_.governor && unit < best_.unit)));
    if (better) {
      best_.hash = hash;
      best_.governor = msg.governor;
      best_.unit = unit;
    }
  }
  return true;
}

bool ElectionState::complete() const { return seen_.size() == expected_.size(); }

void ElectionState::close(std::size_t quorum) {
  if (complete() || closed_) return;
  if (seen_.size() >= quorum && quorum > 0) closed_ = true;
}

std::optional<GovernorId> ElectionState::winner() const {
  if (expected_.empty() || seen_.empty()) return std::nullopt;
  if (!complete() && !closed_) return std::nullopt;
  return best_.governor;
}

VrfAnnounceMsg make_announcement(Round round, GovernorId gov, std::uint64_t stake_units,
                                 const crypto::SigningKey& key) {
  VrfAnnounceMsg msg;
  msg.round = round;
  msg.governor = gov;
  msg.tickets.reserve(stake_units);
  for (std::uint32_t u = 0; u < stake_units; ++u) {
    VrfTicket t;
    t.governor = gov;
    t.unit = u;
    t.proof = crypto::vrf_evaluate(key, vrf_alpha(round, gov, u)).proof;
    msg.tickets.push_back(t);
  }
  return msg;
}

}  // namespace repchain::protocol
