#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/validation_oracle.hpp"
#include "protocol/argue_buffer.hpp"
#include "protocol/governor_types.hpp"
#include "protocol/messages.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {

/// The governor's argue/reveal bookkeeping (Algorithm 2 deliver_argue plus
/// the Algorithm 3 case-3 update): tracks unchecked transactions with their
/// screening-time report snapshots, enforces the argue-latency bound U, and
/// applies reputation updates when a transaction's truth surfaces — through
/// an argue or through out-of-band audit evidence.
///
/// Message authentication stays in the Governor facade; this class is the
/// post-auth protocol logic, unit-testable without networking.
class ArgueService {
 public:
  ArgueService(reputation::ReputationTable& table, ledger::ValidationOracle& oracle,
               GovernorMetrics& metrics, std::size_t argue_latency_u)
      : table_(table), oracle_(oracle), metrics_(metrics),
        argue_buffer_(argue_latency_u) {}

  /// Screening recorded (tx, invalid, unchecked): snapshot the reports and
  /// loss metrics and open the argue window.
  void record_unchecked(const ledger::Transaction& tx,
                        std::vector<reputation::Report> reports);

  /// True iff `id` is known (pending or already revealed) — uploads of such
  /// transactions are replays.
  [[nodiscard]] bool known(const ledger::TxId& id) const {
    return unchecked_.contains(id);
  }

  /// Handle an authenticated argue. Returns the argued-valid record to
  /// append to the pending TXList when re-validation proves the provider
  /// right; nullopt otherwise.
  [[nodiscard]] std::optional<ledger::TxRecord> handle_argue(const ArgueMsg& argue);

  /// Audit hook: reveal the true state of an unchecked transaction through
  /// "other evidence" (not an argue; no block append). Returns false if
  /// unknown or already revealed.
  bool reveal(const ledger::TxId& id);

  /// Ids of unchecked transactions still unrevealed (oldest first).
  [[nodiscard]] std::vector<ledger::TxId> unrevealed() const;

  [[nodiscard]] const std::unordered_map<ledger::TxId, UncheckedEntry,
                                         ledger::TxIdHash>&
  entries() const {
    return unchecked_;
  }
  [[nodiscard]] const ArgueBuffer& buffer() const { return argue_buffer_; }

  /// Entries in screening order (oldest first), for checkpoint encoding.
  [[nodiscard]] std::vector<const UncheckedEntry*> entries_in_order() const;

  /// Restore path: drop all unchecked/argue state, including the argue
  /// buffer (its burial positions are meaningless without the entries).
  void reset_transient() {
    unchecked_.clear();
    unchecked_order_.clear();
    argue_buffer_ = ArgueBuffer(argue_buffer_.u());
  }

  /// Restore path: reinstall checkpointed entries in screening order,
  /// re-opening the argue window for every unrevealed one. Loss/mistake
  /// metrics are NOT re-counted — they were observed by the pre-crash
  /// incarnation; a restored governor's metrics start fresh.
  void restore_entries(std::vector<UncheckedEntry> entries);

 private:
  void apply_reveal(UncheckedEntry& entry, bool truth);

  reputation::ReputationTable& table_;
  ledger::ValidationOracle& oracle_;
  GovernorMetrics& metrics_;
  ArgueBuffer argue_buffer_;
  std::unordered_map<ledger::TxId, UncheckedEntry, ledger::TxIdHash> unchecked_;
  std::deque<ledger::TxId> unchecked_order_;
};

}  // namespace repchain::protocol
