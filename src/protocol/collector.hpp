#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/directory.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/node_context.hpp"
#include "runtime/reliable_channel.hpp"

namespace repchain::protocol {

/// Behaviour model of a collector. The honest profile verifies, labels
/// truthfully and uploads everything; the knobs below realize the three
/// misbehaviour classes of §4.2 plus observation noise:
///   (1) misreporting  — flip_probability (deliberate) / accuracy (noise),
///   (2) concealing    — drop_probability,
///   (3) forging       — forge_probability (a fabricated transaction with a
///       bogus provider signature is attached per genuine one received),
/// plus equivocation (different labels to different governors), which models
/// a Byzantine collector stepping outside the atomic-broadcast primitive.
struct CollectorBehavior {
  double accuracy = 1.0;
  double flip_probability = 0.0;
  double drop_probability = 0.0;
  double forge_probability = 0.0;
  bool equivocate = false;
  /// Targeted misreporting (adversary layer): per-provider flip-probability
  /// overrides as (provider id value, probability) pairs; unlisted providers
  /// use flip_probability. Same single rng draw either way, so installing an
  /// empty override list leaves the behavioral stream untouched.
  std::vector<std::pair<std::uint32_t, double>> flip_by_provider;

  [[nodiscard]] static CollectorBehavior honest() { return {}; }
  [[nodiscard]] static CollectorBehavior noisy(double accuracy) {
    CollectorBehavior b;
    b.accuracy = accuracy;
    return b;
  }
  [[nodiscard]] static CollectorBehavior adversarial() {
    CollectorBehavior b;
    b.flip_probability = 1.0;
    return b;
  }
  [[nodiscard]] static CollectorBehavior misreporting(double flip) {
    CollectorBehavior b;
    b.flip_probability = flip;
    return b;
  }
  [[nodiscard]] static CollectorBehavior concealing(double drop) {
    CollectorBehavior b;
    b.drop_probability = drop;
    return b;
  }
  [[nodiscard]] static CollectorBehavior forging(double rate) {
    CollectorBehavior b;
    b.forge_probability = rate;
    return b;
  }
  [[nodiscard]] static CollectorBehavior equivocating() {
    CollectorBehavior b;
    b.equivocate = true;
    return b;
  }
};

/// Per-collector activity counters.
struct CollectorStats {
  std::uint64_t received = 0;
  std::uint64_t uploaded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forged = 0;
  std::uint64_t equivocated = 0;  // uploads sent with per-governor labels
  std::uint64_t rejected_bad_signature = 0;
  std::uint64_t rejected_cross_shard = 0;  // provider in another committee
};

/// A collector node (tier 2): verifies provider signatures, labels
/// transactions ±1 per its (mis)behaviour model, signs and atomically
/// broadcasts the labeled transaction to all governors (Algorithm 1).
///
/// Behavioral randomness draws from the NodeContext's per-node rng stream.
class Collector {
 public:
  /// `reliable_delivery` routes uploads through a per-node ReliableChannel
  /// (ack + retransmit) to each governor instead of the atomic broadcast
  /// group; equivocators keep their bare per-governor sends (a Byzantine
  /// collector steps outside the delivery primitive either way).
  Collector(CollectorId id, runtime::NodeContext& ctx, crypto::SigningKey key,
            const identity::IdentityManager& im, ledger::ValidationOracle& oracle,
            const Directory& directory, runtime::Broadcaster& upload_group,
            CollectorBehavior behavior, bool reliable_delivery = false);

  /// Network delivery entry point (kProviderTx messages).
  void on_message(const runtime::Message& msg);

  [[nodiscard]] CollectorId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const CollectorBehavior& behavior() const { return behavior_; }
  /// Swap the behavior model in place — the adversary layer schedules
  /// Byzantine windows by swapping to a deviating profile and back.
  void set_behavior(CollectorBehavior behavior) { behavior_ = behavior; }
  /// Install the committee membership test of a sharded deployment: a
  /// transaction whose provider fails the predicate is refused before
  /// authentication with the explicit cross-shard code
  /// (wire::ProtocolError::kCrossShardTx, TraceKind::kCrossShardRejected).
  /// Never installed on classic single-committee runs, so their intake path
  /// is untouched.
  void set_shard_filter(std::function<bool(ProviderId)> same_shard) {
    same_shard_ = std::move(same_shard);
  }
  [[nodiscard]] const CollectorStats& stats() const { return stats_; }
  [[nodiscard]] const runtime::ReliableChannel* channel() const {
    return channel_ ? &*channel_ : nullptr;
  }

  /// Transport reconnect notification: refresh the reliable channel's retry
  /// budget for `peer` (no-op without a channel).
  void on_peer_reconnected(NodeId peer) {
    if (channel_) channel_->on_peer_reconnect(peer);
  }

 private:
  void upload(const ledger::Transaction& tx, ledger::Label label);
  void upload_forgery(ProviderId provider);
  /// Honest upload fan-out: the broadcast group, or per-governor reliable
  /// channel sends in reliable mode.
  void upload_fanout(const Bytes& payload);

  CollectorId id_;
  runtime::NodeContext& ctx_;
  NodeId node_;
  crypto::SigningKey key_;
  const identity::IdentityManager& im_;
  ledger::ValidationOracle& oracle_;
  const Directory& directory_;
  runtime::Broadcaster& upload_group_;
  CollectorBehavior behavior_;
  CollectorStats stats_;
  std::function<bool(ProviderId)> same_shard_;  // empty = single committee
  std::optional<runtime::ReliableChannel> channel_;
  std::uint64_t forge_seq_ = 1'000'000'000;  // distinct seq space for fabrications
};

}  // namespace repchain::protocol
