#include "protocol/collector.hpp"

#include "common/errors.hpp"
#include "wire/protocol_error.hpp"

namespace repchain::protocol {

using ledger::Label;

Collector::Collector(CollectorId id, runtime::NodeContext& ctx, crypto::SigningKey key,
                     const identity::IdentityManager& im,
                     ledger::ValidationOracle& oracle, const Directory& directory,
                     runtime::Broadcaster& upload_group,
                     CollectorBehavior behavior, bool reliable_delivery)
    : id_(id),
      ctx_(ctx),
      node_(ctx.node()),
      key_(std::move(key)),
      im_(im),
      oracle_(oracle),
      directory_(directory),
      upload_group_(upload_group),
      behavior_(behavior) {
  if (reliable_delivery) {
    channel_.emplace(ctx_, /*epoch=*/0);
    channel_->set_deliver([this](const runtime::Message& m) { on_message(m); });
  }
}

void Collector::on_message(const runtime::Message& msg) {
  if (msg.kind == runtime::MsgKind::kReliableData ||
      msg.kind == runtime::MsgKind::kReliableAck) {
    if (channel_) channel_->on_message(msg);
    return;
  }
  if (msg.kind != runtime::MsgKind::kProviderTx) return;
  ledger::Transaction tx;
  try {
    tx = ledger::Transaction::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  ++stats_.received;

  // Committee membership (sharded deployments only): a tx whose provider
  // lives in another committee is unroutable here — refuse it with the
  // explicit cross-shard code rather than silently dropping it.
  if (same_shard_ && !same_shard_(tx.provider)) {
    ++stats_.rejected_cross_shard;
    runtime::TraceEvent ev;
    ev.kind = runtime::TraceKind::kCrossShardRejected;
    ev.node = node_;
    ev.arg0 = tx.provider.value();
    ev.arg1 = static_cast<std::uint64_t>(wire::ProtocolError::kCrossShardTx);
    ev.at = ctx_.now();
    ctx_.emit(ev);
    return;
  }

  // verify(p_k, tx): authenticated provider signature from a linked provider.
  if (!directory_.linked(tx.provider, id_)) return;
  const NodeId provider_node = directory_.node_of(tx.provider);
  if (!im_.authenticate(provider_node, tx.signed_preimage(), tx.provider_sig)) {
    ++stats_.rejected_bad_signature;
    return;  // simply discard (Algorithm 1)
  }

  Rng& rng = ctx_.rng();
  // Concealment.
  if (rng.bernoulli(behavior_.drop_probability)) {
    ++stats_.dropped;
  } else {
    // validate(tx) from the collector's seat: a noisy observation of the
    // application-level ground truth.
    Label label = oracle_.observe(tx.id(), behavior_.accuracy, rng);
    double flip = behavior_.flip_probability;
    for (const auto& [provider, probability] : behavior_.flip_by_provider) {
      if (provider == tx.provider.value()) {
        flip = probability;
        break;
      }
    }
    if (rng.bernoulli(flip)) label = ledger::opposite(label);
    upload(tx, label);
  }

  // Forgery attempt: fabricate a transaction "from" the same provider. The
  // bogus signature is rejected by governors except with negligible
  // probability (Almost No Creation).
  if (rng.bernoulli(behavior_.forge_probability)) {
    upload_forgery(tx.provider);
  }
}

void Collector::upload_fanout(const Bytes& payload) {
  if (!channel_) {
    upload_group_.broadcast(node_, runtime::MsgKind::kCollectorUpload, payload);
    return;
  }
  for (const NodeId gov : directory_.governor_nodes()) {
    channel_->send(gov, runtime::MsgKind::kCollectorUpload, payload);
  }
}

void Collector::upload(const ledger::Transaction& tx, Label label) {
  ++stats_.uploaded;
  if (!behavior_.equivocate) {
    const ledger::LabeledTransaction ltx = ledger::make_labeled(tx, label, id_, key_);
    upload_fanout(ltx.encode());
    return;
  }
  // Equivocation: a Byzantine collector bypasses the atomic broadcast and
  // sends alternating labels to individual governors.
  ++stats_.equivocated;
  const auto governors = directory_.governor_nodes();
  for (std::size_t i = 0; i < governors.size(); ++i) {
    const Label sent = (i % 2 == 0) ? label : ledger::opposite(label);
    const ledger::LabeledTransaction ltx = ledger::make_labeled(tx, sent, id_, key_);
    ctx_.transport().send(node_, governors[i], runtime::MsgKind::kCollectorUpload,
                          ltx.encode());
  }
}

void Collector::upload_forgery(ProviderId provider) {
  ++stats_.forged;
  Rng& rng = ctx_.rng();
  ledger::Transaction fake;
  fake.provider = provider;
  fake.seq = forge_seq_++;
  fake.timestamp = ctx_.now();
  fake.payload = rng.bytes(16);
  // A forged provider signature: without the provider's secret key the best
  // a malicious collector can do is guess.
  Bytes garbage = rng.bytes(64);
  std::copy(garbage.begin(), garbage.end(), fake.provider_sig.bytes.begin());

  const ledger::LabeledTransaction ltx =
      ledger::make_labeled(fake, Label::kValid, id_, key_);
  upload_fanout(ltx.encode());
}

}  // namespace repchain::protocol
