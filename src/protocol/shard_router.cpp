#include "protocol/shard_router.hpp"

#include <string>

#include "common/errors.hpp"

namespace repchain::protocol {
namespace {

// Distinct tag bytes keep the three id spaces in separate hash families, so
// provider 3 and collector 3 land independently.
constexpr std::uint8_t kProviderTag = 0x50;   // 'P'
constexpr std::uint8_t kCollectorTag = 0x43;  // 'C'

}  // namespace

std::uint64_t ShardRouter::stable_hash(std::uint8_t tag, std::uint32_t value) {
  // FNV-1a 64 over (tag, value LE): tiny, endian-pinned, and stable across
  // platforms — the placement is part of the consensus surface.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  mix(tag);
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(value >> (8 * i)));
  return h;
}

ShardRouter::ShardRouter(std::size_t shard_count, std::size_t providers,
                         std::size_t collectors, std::size_t governors) {
  if (shard_count == 0) throw ConfigError("shard_router: shard_count must be >= 1");
  if (shard_count > governors) {
    throw ConfigError("shard_router: need at least one governor per committee (" +
                      std::to_string(shard_count) + " shards, " +
                      std::to_string(governors) + " governors)");
  }
  shards_.assign(shard_count, Members{});

  // Providers and collectors place by stable hash of their identity;
  // governors are dealt round-robin so committees stay balanced (a
  // hash-placed committee could end up too small to ever close an election).
  for (std::size_t i = 0; i < providers; ++i) {
    const auto value = static_cast<std::uint32_t>(i);
    const ShardId s(static_cast<std::uint32_t>(stable_hash(kProviderTag, value) %
                                               shard_count));
    provider_shard_.push_back(s);
    shards_[s.value()].providers.emplace_back(value);
  }
  for (std::size_t i = 0; i < collectors; ++i) {
    const auto value = static_cast<std::uint32_t>(i);
    const ShardId s(static_cast<std::uint32_t>(stable_hash(kCollectorTag, value) %
                                               shard_count));
    collector_shard_.push_back(s);
    shards_[s.value()].collectors.emplace_back(value);
  }
  for (std::size_t i = 0; i < governors; ++i) {
    const auto value = static_cast<std::uint32_t>(i);
    const ShardId s(static_cast<std::uint32_t>(i % shard_count));
    governor_shard_.push_back(s);
    shards_[s.value()].governors.emplace_back(value);
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (shards_[s].providers.empty() || shards_[s].collectors.empty()) {
      throw ConfigError("shard_router: shard " + std::to_string(s) +
                        " has no " +
                        (shards_[s].providers.empty() ? "providers" : "collectors") +
                        " — resize the population or lower shard_count");
    }
  }
}

}  // namespace repchain::protocol
