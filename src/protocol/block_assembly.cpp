#include "protocol/block_assembly.hpp"

#include <algorithm>

namespace repchain::protocol {

ledger::Block BlockAssembler::propose(const ledger::ChainStore& chain, Round round,
                                      GovernorId leader, std::size_t block_limit,
                                      const crypto::SigningKey& key) const {
  std::vector<ledger::TxRecord> txs;
  const std::size_t take = std::min(pending_.size(), block_limit);
  txs.assign(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));
  return ledger::make_block(chain.height() + 1, round, chain.head_hash(), leader,
                            std::move(txs), key);
}

void BlockAssembler::reconcile(const ledger::Block& accepted) {
  for (const auto& rec : accepted.txs) packed_.insert(rec.tx.id());
  std::erase_if(pending_, [this](const ledger::TxRecord& rec) {
    return packed_.contains(rec.tx.id());
  });
}

void BlockAssembler::drop_pending(const ledger::TxId& id) {
  std::erase_if(pending_,
                [&id](const ledger::TxRecord& rec) { return rec.tx.id() == id; });
}

void BlockAssembler::reset_from_chain(const ledger::ChainStore& chain) {
  pending_.clear();
  packed_.clear();
  for (const auto& block : chain.blocks()) {
    for (const auto& rec : block.txs) packed_.insert(rec.tx.id());
  }
}

}  // namespace repchain::protocol
