#include "protocol/directory.hpp"

#include <algorithm>
#include <optional>

#include "common/errors.hpp"

namespace repchain::protocol {

namespace {
template <typename Map, typename Key>
auto lookup(const Map& map, Key key, const char* what) {
  const auto it = map.find(key);
  if (it == map.end()) throw ConfigError(std::string("directory: unknown ") + what);
  return it->second;
}
}  // namespace

void Directory::add_provider(ProviderId id, NodeId node) {
  if (provider_nodes_.contains(id)) throw ConfigError("duplicate provider id");
  providers_.push_back(id);
  provider_nodes_.emplace(id, node);
  node_providers_.emplace(node, id);
}

void Directory::add_collector(CollectorId id, NodeId node) {
  if (collector_nodes_.contains(id)) throw ConfigError("duplicate collector id");
  collectors_.push_back(id);
  collector_nodes_.emplace(id, node);
  node_collectors_.emplace(node, id);
}

void Directory::add_governor(GovernorId id, NodeId node) {
  if (governor_nodes_.contains(id)) throw ConfigError("duplicate governor id");
  governors_.push_back(id);
  governor_nodes_.emplace(id, node);
  node_governors_.emplace(node, id);
}

void Directory::link(ProviderId provider, CollectorId collector) {
  if (!provider_nodes_.contains(provider) || !collector_nodes_.contains(collector)) {
    throw ConfigError("link between unregistered nodes");
  }
  auto& cs = links_by_provider_[provider];
  if (std::find(cs.begin(), cs.end(), collector) != cs.end()) return;
  cs.push_back(collector);
  links_by_collector_[collector].push_back(provider);
}

NodeId Directory::node_of(ProviderId id) const {
  return lookup(provider_nodes_, id, "provider");
}
NodeId Directory::node_of(CollectorId id) const {
  return lookup(collector_nodes_, id, "collector");
}
NodeId Directory::node_of(GovernorId id) const {
  return lookup(governor_nodes_, id, "governor");
}

std::optional<ProviderId> Directory::provider_at(NodeId node) const {
  const auto it = node_providers_.find(node);
  return it == node_providers_.end() ? std::nullopt : std::optional(it->second);
}
std::optional<CollectorId> Directory::collector_at(NodeId node) const {
  const auto it = node_collectors_.find(node);
  return it == node_collectors_.end() ? std::nullopt : std::optional(it->second);
}
std::optional<GovernorId> Directory::governor_at(NodeId node) const {
  const auto it = node_governors_.find(node);
  return it == node_governors_.end() ? std::nullopt : std::optional(it->second);
}

const std::vector<CollectorId>& Directory::collectors_of(ProviderId id) const {
  static const std::vector<CollectorId> kEmpty;
  const auto it = links_by_provider_.find(id);
  return it == links_by_provider_.end() ? kEmpty : it->second;
}

const std::vector<ProviderId>& Directory::providers_of(CollectorId id) const {
  static const std::vector<ProviderId> kEmpty;
  const auto it = links_by_collector_.find(id);
  return it == links_by_collector_.end() ? kEmpty : it->second;
}

bool Directory::linked(ProviderId provider, CollectorId collector) const {
  const auto& cs = collectors_of(provider);
  return std::find(cs.begin(), cs.end(), collector) != cs.end();
}

std::vector<NodeId> Directory::governor_nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(governors_.size());
  for (GovernorId g : governors_) nodes.push_back(node_of(g));
  return nodes;
}

std::vector<NodeId> Directory::collector_nodes_of(ProviderId id) const {
  std::vector<NodeId> nodes;
  for (CollectorId c : collectors_of(id)) nodes.push_back(node_of(c));
  return nodes;
}

}  // namespace repchain::protocol
