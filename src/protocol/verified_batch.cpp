#include "protocol/verified_batch.hpp"

namespace repchain::protocol {

void VerifiedBatch::settle(Rng& rng) {
  if (settled_) return;
  settled_ = true;
  if (items_.empty()) return;

  // One combined check settles the whole batch when everything is genuine
  // (the overwhelmingly common case); otherwise verify_batch_detailed's
  // per-item fallback pinpoints the forged items without condemning their
  // batch-mates.
  const std::vector<bool> results = crypto::verify_batch_detailed(items_, rng);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == kNoSlot) continue;
    verdicts_[i] = results[slots_[i]] ? kTrue : kFalse;
  }
}

}  // namespace repchain::protocol
