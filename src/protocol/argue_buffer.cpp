#include "protocol/argue_buffer.hpp"

#include "common/errors.hpp"

namespace repchain::protocol {

ArgueBuffer::ArgueBuffer(std::size_t u) : u_(u) {
  if (u == 0) throw ConfigError("argue latency U must be positive");
}

void ArgueBuffer::record(ProviderId provider, const ledger::TxId& id) {
  PerProvider& p = providers_[provider];
  p.positions.emplace(id, p.counter);
  ++p.counter;
  expire_old(p);
}

void ArgueBuffer::expire_old(PerProvider& p) {
  // Lazy sweep: drop entries buried deeper than U. The map stays small
  // (<= U+1 live entries) so a full scan on insert is cheap and keeps
  // `arguable` O(1).
  for (auto it = p.positions.begin(); it != p.positions.end();) {
    if (p.counter - it->second > u_ + 1) {
      it = p.positions.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

bool ArgueBuffer::arguable(ProviderId provider, const ledger::TxId& id) const {
  const auto pit = providers_.find(provider);
  if (pit == providers_.end()) return false;
  const auto it = pit->second.positions.find(id);
  if (it == pit->second.positions.end()) return false;
  // buried-by count = counter - pos - 1; arguable while buried-by <= U.
  return pit->second.counter - it->second <= u_ + 1;
}

bool ArgueBuffer::consume(ProviderId provider, const ledger::TxId& id) {
  if (!arguable(provider, id)) return false;
  providers_[provider].positions.erase(id);
  return true;
}

std::size_t ArgueBuffer::pending(ProviderId provider) const {
  const auto pit = providers_.find(provider);
  return pit == providers_.end() ? 0 : pit->second.positions.size();
}

}  // namespace repchain::protocol
