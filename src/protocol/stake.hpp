#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"

namespace repchain::protocol {

/// Governor stake bookkeeping for the PoS leader election (§3.4.3). The
/// canonical encoding (sorted by governor id) is the NEW_STATE payload of
/// the 3-step stake consensus, so every governor derives the same bytes from
/// the same balances.
class StakeLedger {
 public:
  /// Set the genesis stake of a governor (setup only).
  void set(GovernorId gov, std::uint64_t units);

  [[nodiscard]] std::uint64_t of(GovernorId gov) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t governor_count() const { return stake_.size(); }
  [[nodiscard]] const std::map<GovernorId, std::uint64_t>& balances() const {
    return stake_;
  }

  /// Apply a transfer. Throws ProtocolError on insufficient balance or
  /// unknown governors.
  void transfer(GovernorId from, GovernorId to, std::uint64_t amount);

  /// Canonical byte encoding (sorted by governor id).
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StakeLedger decode(BytesView data);

  [[nodiscard]] crypto::Hash256 state_hash() const;

  bool operator==(const StakeLedger& other) const { return stake_ == other.stake_; }

 private:
  std::map<GovernorId, std::uint64_t> stake_;  // ordered => canonical encoding
  std::uint64_t total_ = 0;
};

}  // namespace repchain::protocol
