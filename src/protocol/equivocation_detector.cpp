#include "protocol/equivocation_detector.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::protocol {

void EquivocationDetector::note_label(const ledger::TxId& id,
                                      const ledger::LabeledTransaction& ltx) {
  seen_labels_[id].emplace(ltx.collector, ltx);
  ungossiped_.push_back(ltx);
}

void EquivocationDetector::age_out() {
  seen_labels_prev_ = std::move(seen_labels_);
  seen_labels_.clear();
  seen_proposals_prev_ = std::move(seen_proposals_);
  seen_proposals_.clear();
}

EquivocationDetector::ProposalNote EquivocationDetector::note_proposal(
    const ledger::Block& block) {
  ProposalNote note;
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    return note;  // unsigned claims are not evidence of anything
  }
  const auto key = std::make_pair(block.leader.value(), block.serial);
  const auto hash = block.hash();
  for (ProposalGen* gen : {&seen_proposals_, &seen_proposals_prev_}) {
    const auto it = gen->find(key);
    if (it == gen->end()) continue;
    if (it->second.hash() == hash) return note;  // duplicate of the known block
    // Two valid leader signatures over different blocks at one serial.
    if (proposal_punished_.insert(key).second) {
      note.conflict = it->second;
      ++metrics_.proposal_equivocations;
      if (evidence_) {
        evidence_(adversary::ByzantineKind::kProposalEquivocation, block.leader.value());
      }
    }
    return note;
  }
  seen_proposals_.emplace(key, block);
  note.fresh = true;
  return note;
}

bool EquivocationDetector::proposal_conflicted(GovernorId leader,
                                               BlockSerial serial) const {
  return proposal_punished_.contains({leader.value(), serial});
}

std::optional<Bytes> EquivocationDetector::take_gossip_payload() {
  if (ungossiped_.empty()) return std::nullopt;
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(ungossiped_.size()));
  for (const auto& ltx : ungossiped_) w.bytes(ltx.encode());
  ungossiped_.clear();
  return std::move(w).take();
}

void EquivocationDetector::on_gossip_payload(BytesView payload) {
  std::vector<ledger::LabeledTransaction> ltxs;
  try {
    BinaryReader r(payload);
    const auto n = r.u32();
    ltxs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ltxs.push_back(ledger::LabeledTransaction::decode(r.bytes()));
    }
    r.expect_done();
  } catch (const DecodeError&) {
    return;
  }
  on_gossip(ltxs);
}

void EquivocationDetector::on_gossip(
    const std::vector<ledger::LabeledTransaction>& ltxs) {
  for (const auto& remote : ltxs) {
    // Only a genuinely signed remote label is evidence.
    const NodeId collector_node = directory_.node_of(remote.collector);
    if (!im_.authorize(collector_node, identity::Role::kCollector,
                       remote.signed_preimage(), remote.collector_sig)) {
      continue;
    }
    const ledger::LabeledTransaction* local = nullptr;
    for (const LabelGen* gen : {&seen_labels_, &seen_labels_prev_}) {
      const auto tit = gen->find(remote.tx.id());
      if (tit == gen->end()) continue;
      const auto cit = tit->second.find(remote.collector);
      if (cit != tit->second.end()) {
        local = &cit->second;
        break;
      }
    }
    if (local == nullptr || local->label == remote.label) continue;

    // Two valid signatures by the same collector over conflicting labels for
    // one transaction: a self-contained equivocation proof.
    const auto key = std::make_pair(remote.collector.value(),
                                    to_hex(view(remote.tx.id())));
    if (!punished_.insert(key).second) continue;
    ++metrics_.equivocations_detected;
    table_.punish_forgery(remote.collector);
    if (evidence_) {
      evidence_(adversary::ByzantineKind::kCollectorEquivocation,
                remote.collector.value());
    }
  }
}

}  // namespace repchain::protocol
