#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "ledger/transaction.hpp"
#include "ledger/validation_oracle.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {

/// Disposition of one screened transaction.
enum class ScreeningKind : std::uint8_t {
  kAppendedValid = 1,      // validated, valid -> goes into TXList
  kDiscardedInvalid = 2,   // validated, invalid -> dropped
  kRecordedUnchecked = 3,  // -1 survived the coin -> (tx, invalid, unchecked)
};

struct ScreeningOutcome {
  ScreeningKind kind = ScreeningKind::kAppendedValid;
  reputation::Selection selection;  // the drawn source collector
  bool checked = false;             // validate(tx) was invoked
};

/// Per-governor counters for the efficiency/correctness trade (E2/E7).
struct ScreeningStats {
  std::uint64_t screened = 0;
  std::uint64_t checked = 0;
  std::uint64_t unchecked = 0;
  std::uint64_t appended_valid = 0;
  std::uint64_t discarded_invalid = 0;
};

/// The decision core of Algorithm 2, lines 11-32: given a transaction's
/// aggregated reports, draw the source collector proportionally to
/// reputation, validate according to the label and the 1 - f*Pr coin, and
/// apply the Algorithm 3 case-2 update when the transaction was validated.
///
/// Network plumbing, timers and TXList assembly live in Governor; this class
/// is pure protocol logic so the screening distribution can be unit-tested
/// and reused by the baseline governors.
class ScreeningEngine {
 public:
  ScreeningEngine(reputation::ReputationTable& table, ledger::ValidationOracle& oracle,
                  Rng& rng);

  /// Screen one transaction. `reports` must be non-empty.
  ScreeningOutcome screen(const ledger::Transaction& tx,
                          std::span<const reputation::Report> reports);

  [[nodiscard]] const ScreeningStats& stats() const { return stats_; }

 private:
  reputation::ReputationTable& table_;
  ledger::ValidationOracle& oracle_;
  Rng& rng_;
  ScreeningStats stats_;
};

}  // namespace repchain::protocol
