#include "protocol/stake_consensus.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace repchain::protocol {

void StakeConsensus::submit_transfer(GovernorId to, std::uint64_t amount) {
  const StakeTxMsg msg = make_stake_tx(self_, to, amount, next_seq_++, key_);
  bcast(runtime::MsgKind::kStakeTx, msg.encode());
}

void StakeConsensus::on_stake_tx(StakeTxMsg stx) {
  SeqRecv& rec = seq_seen_[stx.from];
  if (stx.seq < rec.next) return;                   // replay below the mark
  if (!rec.above.insert(stx.seq).second) return;    // duplicate above it
  while (rec.above.erase(rec.next) > 0) ++rec.next;
  round_stake_txs_.push_back(std::move(stx));
}

StakeLedger StakeConsensus::expected_state() const {
  StakeLedger state = stake_;
  std::vector<const StakeTxMsg*> ordered;
  ordered.reserve(round_stake_txs_.size());
  for (const auto& stx : round_stake_txs_) ordered.push_back(&stx);
  if (broadcast_) {
    // Reliable mode: the channel does not preserve cross-sender order, so
    // arrival order can differ between governors. Apply the transfers in a
    // canonical (sender, sequence) order instead so every governor derives
    // the same NEW_STATE. With the atomic broadcast the arrival order is
    // already identical everywhere and stays authoritative.
    std::sort(ordered.begin(), ordered.end(),
              [](const StakeTxMsg* a, const StakeTxMsg* b) {
                if (a->from != b->from) return a->from < b->from;
                return a->seq < b->seq;
              });
  }
  for (const StakeTxMsg* stx : ordered) {
    try {
      state.transfer(stx->from, stx->to, stx->amount);
    } catch (const ProtocolError&) {
      // Insufficient funds / unknown party: skipped identically by every
      // governor (identical application order, see above).
    }
  }
  return state;
}

void StakeConsensus::run_as_leader(Round round) {
  if (round_stake_txs_.empty()) return;

  StakeLedger state = expected_state();
  if (cheat_) {
    // A byzantine leader credits itself (test hook).
    state.set(self_, state.of(self_) + 1000);
  }

  StateProposalMsg proposal;
  proposal.round = round;
  proposal.leader = self_;
  proposal.state = state.encode();
  proposal.leader_sig = key_.sign(proposal.signed_preimage());

  // Install the proposal and this leader's own signature immediately: other
  // governors' signatures can arrive before our own group copy does.
  current_proposal_ = proposal;
  collected_sigs_.clear();
  sig_senders_.clear();
  StateSignatureMsg own;
  own.round = round;
  own.signer = self_;
  own.sig = key_.sign(proposal.signed_preimage());
  sig_senders_.insert(self_);
  collected_sigs_.push_back(own);

  bcast(runtime::MsgKind::kStateProposal, proposal.encode());
}

std::optional<Bytes> StakeConsensus::on_proposal(const StateProposalMsg& proposal,
                                                 Round round) {
  // Consistency: the proposed NEW_STATE must equal the state derived from
  // the stake transactions this governor received.
  const StakeLedger expected = expected_state();
  if (proposal.state != expected.encode()) {
    // Step 2 failure branch: return the evidence to expel the leader.
    return proposal.encode();
  }
  (void)round;

  if (proposal.leader == self_) return std::nullopt;  // own copy, handled at
                                                      // proposal time

  // Idempotent receive: a redelivered copy of the proposal we already signed
  // must not trigger a second signature.
  if (current_proposal_ && current_proposal_->round == proposal.round &&
      current_proposal_->leader == proposal.leader &&
      current_proposal_->state == proposal.state) {
    return std::nullopt;
  }

  current_proposal_ = proposal;
  StateSignatureMsg sig;
  sig.round = proposal.round;
  sig.signer = self_;
  sig.sig = key_.sign(proposal.signed_preimage());
  unicast(directory_.node_of(proposal.leader), runtime::MsgKind::kStateSignature,
          sig.encode());
  return std::nullopt;
}

void StakeConsensus::on_signature(const StateSignatureMsg& sig, Round round,
                                  const std::set<GovernorId>& expelled) {
  if (!current_proposal_ || current_proposal_->leader != self_) return;
  if (sig.round != round) return;
  const NodeId signer_node = directory_.node_of(sig.signer);
  if (!im_.authenticate(signer_node, current_proposal_->signed_preimage(), sig.sig)) {
    return;
  }
  if (!sig_senders_.insert(sig.signer).second) return;
  collected_sigs_.push_back(sig);

  // When all (non-expelled) governors signed, commit.
  std::size_t expected = 0;
  for (GovernorId g : directory_.governors()) {
    if (!expelled.contains(g)) ++expected;
  }
  if (collected_sigs_.size() == expected) {
    StateCommitMsg commit;
    commit.round = round;
    commit.leader = self_;
    commit.state = current_proposal_->state;
    commit.signatures = collected_sigs_;
    bcast(runtime::MsgKind::kStateCommit, commit.encode());
  }
}

bool StakeConsensus::on_commit(const StateCommitMsg& commit, Round round,
                               std::optional<GovernorId> leader,
                               const std::set<GovernorId>& expelled) {
  if (commit.round != round) return false;
  if (!leader || commit.leader != *leader) return false;
  // Idempotent receive: a redelivered commit for an already-applied round is
  // dropped (it carries the same NEW_STATE; re-applying would re-trigger the
  // caller's snapshot).
  if (last_commit_round_ != 0 && commit.round <= last_commit_round_) return false;

  // Rebuild the proposal preimage and verify every signature.
  StateProposalMsg proposal;
  proposal.round = commit.round;
  proposal.leader = commit.leader;
  proposal.state = commit.state;
  const Bytes preimage = proposal.signed_preimage();

  std::size_t expected = 0;
  for (GovernorId g : directory_.governors()) {
    if (!expelled.contains(g)) ++expected;
  }
  if (commit.signatures.size() != expected) return false;

  std::set<GovernorId> signers;
  for (const auto& sig : commit.signatures) {
    const NodeId signer_node = directory_.node_of(sig.signer);
    if (!im_.authenticate(signer_node, preimage, sig.sig)) return false;
    if (!signers.insert(sig.signer).second) return false;
  }

  // Apply NEW_STATE.
  try {
    stake_ = StakeLedger::decode(commit.state);
  } catch (const DecodeError&) {
    return false;
  }
  round_stake_txs_.clear();
  current_proposal_.reset();
  collected_sigs_.clear();
  sig_senders_.clear();
  last_commit_round_ = commit.round;
  return true;
}

bool StakeConsensus::matches_expected(const StateProposalMsg& proposal,
                                      Round round) const {
  return proposal.round == round && proposal.state == expected_state().encode();
}

}  // namespace repchain::protocol
