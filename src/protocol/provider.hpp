#pragma once

#include <optional>
#include <unordered_map>

#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/directory.hpp"
#include "protocol/messages.hpp"
#include "protocol/round_timing.hpp"
#include "runtime/atomic_broadcast.hpp"
#include "runtime/node_context.hpp"
#include "runtime/reliable_channel.hpp"

namespace repchain::protocol {

/// A provider node (tier 1): signs transactions with the current timestamp
/// and atomically broadcasts them to its r linked collectors (§3.2). An
/// *active* provider also retrieves every block and argues whenever one of
/// its valid transactions was recorded invalid-and-unchecked (§3.1,
/// Validity).
class Provider {
 public:
  /// `reliable_delivery` routes submissions, block requests and argues
  /// through a per-node ReliableChannel (ack + retransmit) instead of the
  /// bare transport / collector broadcast group.
  Provider(ProviderId id, runtime::NodeContext& ctx, crypto::SigningKey key,
           const identity::IdentityManager& im, ledger::ValidationOracle& oracle,
           const Directory& directory, bool active, bool reliable_delivery = false);

  /// Collecting phase: create, register, sign and broadcast one transaction.
  /// `truly_valid` is the hidden application-level ground truth.
  const ledger::Transaction& submit(Bytes payload, bool truly_valid);

  /// Directed submission to one explicit collector node instead of the
  /// linked-collector broadcast. The sharded workload uses this to aim
  /// transactions at a *foreign* committee's collector, exercising the
  /// cross-shard reject path; the double-spend knob does not apply here.
  const ledger::Transaction& submit_to(NodeId collector, Bytes payload,
                                       bool truly_valid);

  /// Self-driving rounds: schedule this provider's sync at the round's
  /// block-propagation deadline.
  void arm_round(SimTime t0, const RoundTiming& timing);

  /// Light-client sync: request the next missing block from a governor
  /// (round-robin); responses chain further requests until the provider has
  /// caught up with the chain head. Each appended block is verified locally
  /// (leader signature, serial continuity, hash link, tx root) and scanned
  /// for own transactions (argue on wrongly-buried ones).
  void sync();

  /// Network delivery entry point (kBlockResponse messages).
  void on_message(const runtime::Message& msg);

  /// Process one retrieved block (also called internally by sync).
  void on_block(const ledger::Block& block);

  /// The provider's own verified replica of the chain.
  [[nodiscard]] const ledger::ChainStore& chain() const { return chain_; }

  [[nodiscard]] ProviderId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const crypto::PublicKey& public_key() const { return key_.public_key(); }

  /// Adversary layer: with probability `p` per submission, sign a second
  /// transaction reusing the same sequence number and send each twin to a
  /// disjoint half of the linked collectors (a double-spend). p = 0 restores
  /// honesty and leaves the rng stream untouched (no extra draws).
  void set_double_spend(double p) { double_spend_p_ = p; }
  [[nodiscard]] std::uint64_t double_spends_submitted() const {
    return double_spends_submitted_;
  }

  [[nodiscard]] std::uint64_t submitted() const { return next_seq_; }
  [[nodiscard]] std::uint64_t argued() const { return argued_; }
  [[nodiscard]] std::uint64_t blocks_synced() const { return chain_.height(); }
  [[nodiscard]] std::uint64_t rejected_blocks() const { return rejected_blocks_; }
  [[nodiscard]] std::uint64_t sync_timeouts() const { return sync_timeouts_; }
  /// Own valid transactions observed in a block with a valid/argued status.
  [[nodiscard]] std::uint64_t confirmed_valid() const { return confirmed_valid_; }

  /// Transport reconnect notification: refresh the reliable channel's retry
  /// budget for `peer` (no-op without a channel).
  void on_peer_reconnected(NodeId peer) {
    if (channel_) channel_->on_peer_reconnect(peer);
  }

 private:
  void request_block(BlockSerial serial);
  void rsend(NodeId to, runtime::MsgKind kind, const Bytes& payload);

  ProviderId id_;
  runtime::NodeContext& ctx_;
  NodeId node_;
  crypto::SigningKey key_;
  const identity::IdentityManager& im_;
  ledger::ValidationOracle& oracle_;
  const Directory& directory_;
  bool active_;

  runtime::AtomicBroadcastGroup collector_group_;
  std::vector<NodeId> governor_nodes_;

  std::optional<runtime::ReliableChannel> channel_;

  ledger::ChainStore chain_;
  bool sync_in_flight_ = false;
  std::uint64_t sync_nonce_ = 0;  // guards the per-request timeout timers
  std::uint64_t rejected_blocks_ = 0;
  std::uint64_t sync_timeouts_ = 0;

  std::uint64_t next_seq_ = 0;
  std::uint64_t argued_ = 0;
  std::uint64_t confirmed_valid_ = 0;

  // Adversary layer (set_double_spend).
  double double_spend_p_ = 0.0;
  std::uint64_t double_spends_submitted_ = 0;

  struct OwnTx {
    ledger::Transaction tx;
    bool valid = false;
    bool argued = false;
    bool confirmed = false;
  };
  std::unordered_map<ledger::TxId, OwnTx, ledger::TxIdHash> own_;
};

}  // namespace repchain::protocol
