#include "protocol/governor.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::protocol {

Governor::Governor(GovernorId id, runtime::NodeContext& ctx, crypto::SigningKey key,
                   const identity::IdentityManager& im,
                   ledger::ValidationOracle& oracle, const Directory& directory,
                   runtime::Broadcaster& governor_group, GovernorConfig config,
                   StakeLedger genesis_stake, std::vector<CollectorId> visible_collectors,
                   storage::NodeStateStore* store)
    : id_(id),
      ctx_(ctx),
      node_(ctx.node()),
      key_(std::move(key)),
      im_(im),
      oracle_(oracle),
      directory_(directory),
      group_(governor_group),
      config_(config),
      visible_(visible_collectors.begin(), visible_collectors.end()),
      table_(config.rep),
      engine_(table_, oracle_, ctx_.rng()),
      argues_(table_, oracle_, metrics_, config.rep.argue_latency_u),
      stake_consensus_(id, node_, key_, im_, directory_, ctx_.transport(), group_,
                       std::move(genesis_stake)),
      equivocation_(im_, directory_, table_, metrics_),
      intake_(im_, directory_, table_, engine_, assembler_, argues_, equivocation_,
              metrics_, ctx_.timers(), config_, visible_,
              // Private coefficient stream for batched signature checks:
              // derive() is const, so the behavioral stream sees no draws.
              ctx.rng().derive(0x62766B26696E74ULL /* "bvk&int" */)),
      store_(store) {
  config_.rep.validate();
  for (const NodeId n : directory_.governor_nodes()) {
    if (n != node_) sync_peers_.push_back(n);
  }
  // The governor connects with all collectors (§3.1 default) — or with its
  // partial view — and mirrors the provider-collector link structure into
  // its local reputation vectors.
  for (CollectorId c : directory_.collectors()) {
    if (!sees(c)) continue;
    table_.register_collector(c);
    for (ProviderId p : directory_.providers_of(c)) table_.link(c, p);
  }

  // Route every fresh equivocation/double-spend punishment into a
  // kByzantineEvidence trace so harnesses observe detections without
  // reaching into node internals.
  equivocation_.set_evidence(
      [this](adversary::ByzantineKind kind, std::uint64_t offender) {
        emit_byzantine(kind, offender);
      });
  intake_.set_evidence([this](adversary::ByzantineKind kind, std::uint64_t offender) {
    emit_byzantine(kind, offender);
  });

  if (config_.reliable_delivery) {
    channel_.emplace(ctx_, config_.channel_epoch);
    channel_->set_deliver([this](const runtime::Message& m) { on_message(m); });
    stake_consensus_.set_reliable(
        [this](NodeId to, runtime::MsgKind kind, const Bytes& payload) {
          rsend(to, kind, payload);
        },
        [this](runtime::MsgKind kind, const Bytes& payload) {
          rbroadcast(kind, payload);
        });
  }
}

void Governor::rsend(NodeId to, runtime::MsgKind kind, const Bytes& payload) {
  if (channel_) {
    channel_->send(to, kind, payload);
  } else {
    ctx_.transport().send(node_, to, kind, payload);
  }
}

void Governor::rbroadcast(runtime::MsgKind kind, const Bytes& payload) {
  if (!channel_) {
    group_.broadcast(node_, kind, payload);
    return;
  }
  for (const NodeId peer : sync_peers_) channel_->send(peer, kind, payload);
  // Local loopback: our own copy never crosses the network (the atomic
  // broadcast group delivers to self; the channel path must too).
  runtime::Message self;
  self.from = node_;
  self.to = node_;
  self.kind = kind;
  self.payload = payload;
  self.sent_at = ctx_.now();
  self.delivered_at = ctx_.now();
  on_message(self);
}

void Governor::emit(runtime::TraceKind kind, std::uint64_t arg0, std::uint64_t arg1) {
  ctx_.emit(runtime::TraceEvent{kind, node_, round_, arg0, arg1, ctx_.now()});
}

void Governor::emit_byzantine(adversary::ByzantineKind kind, std::uint64_t offender) {
  ++metrics_.byzantine_evidence;
  emit(runtime::TraceKind::kByzantineEvidence, static_cast<std::uint64_t>(kind),
       offender);
}

void Governor::on_message(const runtime::Message& msg) {
  switch (msg.kind) {
    case runtime::MsgKind::kReliableData:
    case runtime::MsgKind::kReliableAck:
      if (channel_) channel_->on_message(msg);
      return;
    case runtime::MsgKind::kCollectorUpload:
      intake_.on_upload(msg);
      break;
    case runtime::MsgKind::kArgue:
      on_argue(msg);
      break;
    case runtime::MsgKind::kVrfAnnounce:
      on_vrf(msg);
      break;
    case runtime::MsgKind::kBlockProposal:
      on_block_proposal(msg);
      break;
    case runtime::MsgKind::kStakeTx:
      on_stake_tx(msg);
      break;
    case runtime::MsgKind::kStateProposal:
      on_state_proposal(msg);
      break;
    case runtime::MsgKind::kStateSignature:
      on_state_signature(msg);
      break;
    case runtime::MsgKind::kStateCommit:
      on_state_commit(msg);
      break;
    case runtime::MsgKind::kExpelEvidence:
      on_expel(msg);
      break;
    case runtime::MsgKind::kLabelGossip:
      on_label_gossip(msg);
      break;
    case runtime::MsgKind::kBlockRequest:
      on_block_request(msg);
      break;
    case runtime::MsgKind::kBlockResponse:
      on_block_response(msg);
      break;
    default:
      break;
  }
}

// --- Round driving (timer-armed phases) --------------------------------------

void Governor::arm_round(Round round, SimTime t0, const RoundTiming& timing) {
  runtime::TimerService& timers = ctx_.timers();
  timers.schedule_at(t0 + timing.election_offset, [this, round] { begin_round(round); });
  if (config_.enable_label_gossip) {
    timers.schedule_at(t0 + timing.gossip_offset, [this] { gossip_labels(); });
  }
  timers.schedule_at(t0 + timing.propose_offset, [this] { propose_if_leader(); });
  timers.schedule_at(t0 + timing.stake_offset,
                     [this] { run_stake_consensus_if_leader(); });
  timers.schedule_at(t0 + timing.audit_offset,
                     [this] { emit(runtime::TraceKind::kAuditPoint); });
  if (config_.watchdog_rounds > 0) {
    timers.schedule_at(t0 + timing.round_span, [this] { watchdog_check(); });
  }
  if (auto_rounds_) {
    timers.schedule_at(t0 + timing.round_span, [this, round, t0] {
      emit(runtime::TraceKind::kRoundEnded);
      arm_round(round + 1, t0 + auto_timing_.round_span, auto_timing_);
    });
  }
}

void Governor::drive_rounds(Round first, const RoundTiming& timing) {
  drive_rounds(first, ctx_.now(), timing);
}

void Governor::drive_rounds(Round first, SimTime t0, const RoundTiming& timing) {
  auto_rounds_ = true;
  auto_timing_ = timing;
  arm_round(first, t0, timing);
}

// --- Label gossip (equivocation-detection extension, §4.2) -------------------

void Governor::gossip_labels() {
  if (!config_.enable_label_gossip) return;
  auto payload = equivocation_.take_gossip_payload();
  if (!payload) return;
  rbroadcast(runtime::MsgKind::kLabelGossip, *payload);
}

void Governor::on_label_gossip(const runtime::Message& msg) {
  if (!config_.enable_label_gossip || msg.from == node_) return;
  equivocation_.on_gossip_payload(msg.payload);
}

// --- Argue handling (Algorithm 2, deliver_argue) -----------------------------

void Governor::on_argue(const runtime::Message& msg) {
  ++metrics_.argues_received;
  ArgueMsg argue;
  try {
    argue = ArgueMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId provider_node = directory_.node_of(argue.provider);
  if (!im_.authorize(provider_node, identity::Role::kProvider, argue.signed_preimage(),
                     argue.provider_sig)) {
    return;
  }
  if (argue.tx.provider != argue.provider) return;
  // A blacklisted double-spender cannot argue a withdrawn twin back in.
  if (config_.byzantine_defense && intake_.blacklisted(argue.provider)) return;

  auto rec = argues_.handle_argue(argue);
  if (rec) assembler_.add_pending(std::move(*rec));
}

bool Governor::reveal_unchecked(const ledger::TxId& id) { return argues_.reveal(id); }

std::vector<ledger::TxId> Governor::unrevealed_unchecked() const {
  return argues_.unrevealed();
}

// --- Leader election (§3.4.3) ------------------------------------------------

void Governor::begin_round(Round round) {
  round_ = round;
  leader_announced_ = false;
  // A reliable-mode replica that committed nothing in the previous round may
  // be behind rather than merely stalled — e.g. it rejected the real
  // leader's proposal against an incomplete election view and the reliable
  // channel will never redeliver it. Hold it out of this election until one
  // sync pass confirms (or repairs) its head; head_checked_ limits the
  // hold-down to one round per stall episode.
  if (channel_ && round > 1 && chain_.height() == round_start_height_ &&
      !head_checked_) {
    recovering_ = true;
  }
  round_start_height_ = chain_.height();
  emit(runtime::TraceKind::kRoundStarted);
  // Proposals stashed against the previous round's winner are dead now.
  metrics_.blocks_rejected += pending_proposals_.size();
  pending_proposals_.clear();
  // Age out the equivocation evidence base and the double-spend serial guard.
  equivocation_.age_out();
  intake_.age_out();
  election_.emplace(round, stake_consensus_.stake(), expelled_);
  // Feed back any announcements that beat this boundary here; ones for a
  // still-later round re-stash themselves, stale ones fall out.
  if (!early_announcements_.empty()) {
    std::vector<runtime::Message> replay = std::move(early_announcements_);
    early_announcements_.clear();
    for (const runtime::Message& m : replay) on_vrf(m);
  }
  // A recovering replica follows the round (accepts announcements and
  // proposals) but does not announce: winning an election with a stale chain
  // would make it propose — and self-commit — a forked block.
  if (recovering_) {
    sync_chain();
    return;
  }
  const VrfAnnounceMsg msg =
      make_announcement(round, id_, stake_consensus_.stake().of(id_), key_);
  rbroadcast(runtime::MsgKind::kVrfAnnounce, msg.encode());
}

void Governor::on_vrf(const runtime::Message& msg) {
  VrfAnnounceMsg announce;
  try {
    announce = VrfAnnounceMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  // Announcements race the round boundary: every governor sends exactly at
  // its own t0, so a peer a few timer ticks ahead delivers before our
  // begin_round fires. Hold those for the round they belong to instead of
  // letting the previous round's election reject them — an announcement
  // lost here shrinks the quorum-closed view and can split the election.
  if (!election_ || announce.round > round_) {
    if (announce.round >= round_ && announce.round <= round_ + 2 &&
        early_announcements_.size() < kMaxEarlyAnnouncements) {
      early_announcements_.push_back(msg);
    }
    return;
  }
  // An expelled governor keeps announcing (its stake would dominate any
  // replica that missed the expulsion — e.g. one that crashed past the expel
  // broadcast and restarted with an empty expelled set, which then waits
  // forever on a leader that never proposes). Re-share the held proof at
  // most once per round so such replicas re-converge.
  if (expelled_.contains(announce.governor)) {
    const auto ev = expel_evidence_.find(announce.governor);
    if (ev != expel_evidence_.end() && expel_reshare_round_ != round_) {
      expel_reshare_round_ = round_;
      broadcast_expel(announce.governor, ev->second);
    }
  }
  const bool fresh = election_->add_announcement(
      announce, im_, directory_.node_of(announce.governor));
  // Echo relay (reliable mode): forward a first-seen valid announcement to
  // the remaining governors over our own channel, so its delivery no longer
  // depends on the announcer staying alive to retransmit it. Without the
  // echo, a crash right after announcing can split the election view at
  // propose time: the peers that saw the winner wait for a dead leader while
  // the rest elect — and fork behind — somebody else. The proofs are
  // verified against the announcer's enrolled key, so a relay cannot forge,
  // and the first-seen gate stops re-echo storms.
  if (fresh && channel_ && announce.governor != id_) {
    const NodeId origin = directory_.node_of(announce.governor);
    for (const NodeId peer : sync_peers_) {
      if (peer == origin || peer == msg.from) continue;
      channel_->send(peer, runtime::MsgKind::kVrfAnnounce, msg.payload);
    }
  }
  if (!leader_announced_) {
    if (const auto winner = election_->winner()) {
      leader_announced_ = true;
      emit(runtime::TraceKind::kLeaderElected, winner->value());
    }
  }
  retry_pending_proposals();
}

bool Governor::is_leader() const { return election_ && election_->winner() == id_; }

std::optional<GovernorId> Governor::round_leader() const {
  return election_ ? election_->winner() : std::nullopt;
}

// --- Block proposal / adoption -----------------------------------------------

void Governor::close_election() {
  if (!channel_ || !election_) return;
  election_->close(election_->expected() / 2 + 1);
  if (!leader_announced_) {
    if (const auto winner = election_->winner()) {
      leader_announced_ = true;
      emit(runtime::TraceKind::kLeaderElected, winner->value());
    }
  }
  retry_pending_proposals();
}

void Governor::watchdog_check() {
  if (chain_.height() > round_start_height_) {
    stalled_rounds_ = 0;
    return;
  }
  ++stalled_rounds_;
  if (stalled_rounds_ < config_.watchdog_rounds) return;
  // Degrade gracefully instead of hanging: surface the stall and try to
  // adopt peers' blocks. The next begin_round re-arms the election anyway.
  ++metrics_.watchdog_trips;
  emit(runtime::TraceKind::kRoundStalled, stalled_rounds_);
  sync_chain();
}

void Governor::propose_if_leader() {
  // In reliable mode an election may never complete (announcements lost to a
  // partition); close it on a majority quorum now so the round can proceed.
  close_election();
  if (!is_leader()) return;
  const ledger::Block block =
      assembler_.propose(chain_, round_, id_, config_.block_limit, key_);
  if (byz_.equivocate_proposals && !block.txs.empty()) {
    // Adversary layer: sign a second, conflicting block for the same serial
    // (same prefix, one record short) and send each variant to a disjoint
    // half of the peers. Self-adopt variant A like an honest leader would.
    std::vector<ledger::TxRecord> txs_b(block.txs.begin(), block.txs.end() - 1);
    const ledger::Block alt = ledger::make_block(block.serial, block.round,
                                                 block.prev_hash, id_,
                                                 std::move(txs_b), key_);
    const Bytes enc_a = block.encode();
    const Bytes enc_b = alt.encode();
    for (std::size_t i = 0; i < sync_peers_.size(); ++i) {
      rsend(sync_peers_[i], runtime::MsgKind::kBlockProposal,
            i < sync_peers_.size() / 2 ? enc_a : enc_b);
    }
    ++metrics_.byzantine_equivocations_sent;
    runtime::Message self;
    self.from = node_;
    self.to = node_;
    self.kind = runtime::MsgKind::kBlockProposal;
    self.payload = enc_a;
    self.sent_at = ctx_.now();
    self.delivered_at = ctx_.now();
    on_message(self);
    return;
  }
  rbroadcast(runtime::MsgKind::kBlockProposal, block.encode());
}

void Governor::on_block_proposal(const runtime::Message& msg) {
  ledger::Block block;
  try {
    block = ledger::Block::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.blocks_rejected;
    return;
  }
  if (expelled_.contains(block.leader)) {
    ++metrics_.blocks_rejected;
    // Re-share the stored expulsion proof (at most once per round): a
    // replica that crashed after the original expel broadcast lost its
    // expelled set, and honest governors no longer echo the offender's
    // proposals — without this, that replica keeps counting the expelled
    // leader in its elections and the quorum diverges permanently.
    const auto ev = expel_evidence_.find(block.leader);
    if (ev != expel_evidence_.end() && expel_reshare_round_ != round_) {
      expel_reshare_round_ = round_;
      broadcast_expel(block.leader, ev->second);
    }
    return;
  }

  if (config_.byzantine_defense) {
    // Leader-equivocation defense: record the signed proposal; two valid
    // leader signatures over different blocks at one serial are a
    // self-contained proof.
    const auto note = equivocation_.note_proposal(block);
    if (note.conflict) {
      handle_proposal_equivocation(*note.conflict, block);
      return;
    }
    if (!note.fresh) return;  // duplicate (an echo copy) or an unsigned claim
    // Echo the first-seen variant to the other governors: an equivocator
    // sends each variant to a disjoint peer subset, so without the echo no
    // single governor ever holds both signatures.
    const NodeId leader_node = directory_.node_of(block.leader);
    for (const NodeId peer : sync_peers_) {
      if (peer == leader_node || peer == msg.from) continue;
      rsend(peer, runtime::MsgKind::kBlockProposal, msg.payload);
    }
    // Hold the proposal for 2*Delta before committing: under the synchrony
    // bound, a conflicting variant's echo reaches us within that window, so
    // no honest governor commits an equivocator's block.
    ctx_.timers().schedule_after(2 * ctx_.delta(),
                                 [this, block] { settle_proposal(block); });
    return;
  }
  settle_proposal(std::move(block));
}

void Governor::settle_proposal(ledger::Block block) {
  if (config_.byzantine_defense &&
      (expelled_.contains(block.leader) ||
       equivocation_.proposal_conflicted(block.leader, block.serial))) {
    ++metrics_.blocks_rejected;  // conflict surfaced during the hold window
    return;
  }
  // Leader legitimacy: the proposer must be this round's election winner. A
  // proposal can legitimately race ahead of its own election — announcements
  // are still in flight right after a heal or a restart — so an undecided or
  // mismatching winner view stashes the proposal for re-evaluation instead
  // of discarding it; retry_pending_proposals settles it once the view
  // converges, and the next begin_round drops whatever never matched.
  const auto winner = round_leader();
  if (!winner || block.leader != *winner) {
    pending_proposals_.push_back(std::move(block));
    return;
  }
  adopt_proposal(std::move(block));
}

void Governor::handle_proposal_equivocation(const ledger::Block& prior,
                                            const ledger::Block& offending) {
  ++metrics_.blocks_rejected;
  expelled_.insert(offending.leader);
  // The kByzantineEvidence trace was already emitted by the detector's
  // evidence callback; spread the proof so every governor expels the leader,
  // and keep it around to re-share with replicas that missed the broadcast.
  const adversary::BlockEquivocationEvidence evidence{prior, offending};
  expel_evidence_[offending.leader] = evidence.encode();
  broadcast_expel(offending.leader, expel_evidence_[offending.leader]);
}

void Governor::adopt_proposal(ledger::Block block) {
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    ++metrics_.blocks_rejected;
    return;
  }

  const BlockSerial expected = chain_.height() + 1;
  if (block.serial > expected) {
    // A gap below an authenticated current-leader proposal means *we* are
    // behind (e.g. freshly restarted), not that the leader misbehaved. Stash
    // the proposal and fetch the missing prefix from peers; finish_sync
    // rejects it if the gap cannot be filled.
    future_blocks_.emplace(block.serial, std::move(block));
    sync_chain();
    return;
  }
  if (block.serial < expected) {
    ++metrics_.blocks_rejected;  // stale replay of a block we already hold
    return;
  }

  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    // Right serial but bad prev hash / tx root: leader misbehaviour.
    ++metrics_.blocks_rejected;
    broadcast_expel(block.leader, block.encode());
    return;
  }
  ++metrics_.blocks_accepted;
  head_checked_ = false;

  // Reconcile local pending list: drop records now present in the chain.
  const ledger::Block& accepted = chain_.head();
  persist_block(accepted);
  assembler_.reconcile(accepted);
  emit(runtime::TraceKind::kBlockCommitted, accepted.serial, accepted.txs.size());
}

void Governor::retry_pending_proposals() {
  if (pending_proposals_.empty()) return;
  const auto winner = round_leader();
  if (!winner) return;
  std::vector<ledger::Block> pending = std::move(pending_proposals_);
  pending_proposals_.clear();
  for (auto& block : pending) {
    if (block.leader == *winner && !expelled_.contains(block.leader) &&
        !(config_.byzantine_defense &&
          equivocation_.proposal_conflicted(block.leader, block.serial))) {
      adopt_proposal(std::move(block));
    } else {
      // A better announcement may still arrive and shift the winner (the
      // election tracks the best ticket even after a quorum close).
      pending_proposals_.push_back(std::move(block));
    }
  }
}

void Governor::on_block_request(const runtime::Message& msg) {
  // Serve retrieve(s) to any node.
  BlockRequestMsg req;
  try {
    req = BlockRequestMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  BlockResponseMsg resp;
  resp.serial = req.serial;
  const auto block = chain_.retrieve(req.serial);
  if (block) {
    resp.found = true;
    if (byz_.lying_sync) {
      // Adversary layer: serve an internally-forged block — tampered first
      // label, leadership claimed for ourselves, re-rooted and re-signed.
      // The forgery links correctly to the caller's chain, so only the
      // corroboration defense (not the local append checks) can reject it.
      ledger::Block forged = *block;
      if (!forged.txs.empty()) {
        forged.txs.front().label = ledger::opposite(forged.txs.front().label);
      }
      forged.leader = id_;
      forged.tx_root = forged.compute_tx_root();
      forged.leader_sig = key_.sign(forged.signed_preimage());
      resp.block = forged.encode();
      ++metrics_.byzantine_lies_served;
      if (directory_.governor_at(msg.from)) ++metrics_.byzantine_lies_to_governors;
    } else {
      resp.block = block->encode();
    }
  }
  rsend(msg.from, runtime::MsgKind::kBlockResponse, resp.encode());
}

// --- Catch-up sync (provider light-client sync, reused node-to-node) ---------

void Governor::sync_chain() {
  if (sync_in_flight_) return;
  if (sync_peers_.empty()) {
    // Nobody to ask; whatever is stashed can only settle against the local
    // head.
    finish_sync();
    return;
  }
  sync_in_flight_ = true;
  sync_not_found_ = 0;
  request_block(chain_.height() + 1);
}

SimDuration Governor::sync_timeout() const { return 8 * ctx_.delta(); }

void Governor::note_lying_peer(NodeId peer) {
  distrusted_peers_.insert(peer);
  ++metrics_.lying_sync_rejected;
  const auto offender = directory_.governor_at(peer);
  emit_byzantine(adversary::ByzantineKind::kLyingSync,
                 offender ? offender->value() : peer.value());
}

void Governor::request_block(BlockSerial serial) {
  // Distrusted peers (caught serving invalid or outvoted sync responses) are
  // skipped while any alternative remains; with none scheduled the pool is
  // exactly sync_peers_, so honest runs rotate identically to before.
  std::vector<NodeId> pool;
  for (const NodeId n : sync_peers_) {
    if (!distrusted_peers_.contains(n)) pool.push_back(n);
  }
  if (pool.empty()) pool = sync_peers_;
  const NodeId peer = pool[(serial + sync_attempts_) % pool.size()];
  BlockRequestMsg req;
  req.serial = serial;
  const std::uint64_t nonce = ++sync_nonce_;
  rsend(peer, runtime::MsgKind::kBlockRequest, req.encode());
  // A lost request or response must not wedge the sync flag forever: give up
  // on this attempt after a grace window unless a newer request superseded
  // it. Stashed future blocks stay stashed — a later sync (watchdog- or
  // proposal-triggered) can still fill the gap below them.
  ctx_.timers().schedule_after(sync_timeout(), [this, nonce] {
    if (!sync_in_flight_ || nonce != sync_nonce_) return;
    ++metrics_.sync_timeouts;
    ++sync_attempts_;
    sync_in_flight_ = false;
    drain_stash();
    // The restart hold-down depends on a sync eventually succeeding: keep
    // polling (next peer each attempt) until one pass completes — e.g. a
    // replica that restarted inside a partition can only catch up after the
    // heal, long after its first request died.
    if (recovering_) sync_chain();
  });
}

void Governor::on_block_response(const runtime::Message& msg) {
  BlockResponseMsg resp;
  try {
    resp = BlockResponseMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (!sync_in_flight_) return;
  if (resp.serial != chain_.height() + 1) return;  // stale response

  if (!resp.found) {
    // Peer has nothing above our head. Corroborate before concluding the
    // pass: a lone answer may come from a replica exactly as far behind as
    // we are, and a false "caught up" lets a stale replica win an election
    // and fork. Majority agreement (or a timeout ending the pass) decides.
    ++sync_not_found_;
    if (sync_not_found_ >= sync_peers_.size() / 2 + 1) {
      finish_sync();
    } else {
      ++sync_attempts_;  // rotate to the next peer
      request_block(chain_.height() + 1);
    }
    return;
  }

  ledger::Block block;
  bool decoded = true;
  try {
    block = ledger::Block::decode(resp.block);
  } catch (const DecodeError&) {
    decoded = false;
  }
  // Same light-client verification as Provider::on_message: leader must be
  // an enrolled governor, signature must authenticate; append re-checks
  // serial continuity, hash link and tx-root.
  if (decoded) {
    const NodeId leader_node = directory_.node_of(block.leader);
    decoded = im_.authorize(leader_node, identity::Role::kGovernor,
                            block.signed_preimage(), block.leader_sig);
  }
  if (!decoded) {
    ++metrics_.blocks_rejected;
    if (config_.byzantine_defense && sync_peers_.size() > 1) {
      // An unverifiable response marks the server as a liar; retry the same
      // serial against the next peer instead of abandoning the pass.
      note_lying_peer(msg.from);
      ++sync_attempts_;
      request_block(resp.serial);
      return;
    }
    finish_sync();
    return;
  }

  if (config_.byzantine_defense && sync_peers_.size() > 1) {
    // Corroborate before adopting: a lying peer can serve a forged block
    // that links perfectly onto our chain (tampered TXList, re-signed by
    // itself as leader), which every local check accepts. Adoption waits
    // until two distinct peers served byte-identical encodings; the losing
    // candidates' servers are distrusted.
    auto& candidates = sync_candidates_[resp.serial];
    SyncCandidate* match = nullptr;
    for (auto& cand : candidates) {
      if (cand.encoding == resp.block) {
        match = &cand;
        break;
      }
    }
    if (match == nullptr) {
      candidates.push_back(SyncCandidate{resp.block, {}});
      match = &candidates.back();
    }
    match->peers.insert(msg.from);
    if (match->peers.size() < 2) {
      ++sync_attempts_;  // poll another peer for a second opinion
      request_block(resp.serial);
      return;
    }
    for (const auto& cand : candidates) {
      if (cand.encoding == match->encoding) continue;
      for (const NodeId liar : cand.peers) note_lying_peer(liar);
    }
    sync_candidates_.erase(resp.serial);
  }

  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    ++metrics_.blocks_rejected;
    finish_sync();
    return;
  }
  ++metrics_.blocks_synced;
  head_checked_ = false;
  sync_not_found_ = 0;  // progress: restart the not-found corroboration
  const ledger::Block& adopted = chain_.head();
  persist_block(adopted);
  assembler_.reconcile(adopted);
  future_blocks_.erase(adopted.serial);
  drain_stash();

  // Chain the next request until a peer reports not-found.
  request_block(chain_.height() + 1);
}

void Governor::finish_sync() {
  sync_in_flight_ = false;
  recovering_ = false;   // reached a peer and drained its head: caught up
  head_checked_ = true;  // further commit-free rounds do not re-trigger it
  sync_candidates_.clear();
  drain_stash();
  // Stashed proposals still above the head are unadoptable: the gap below
  // them cannot be filled from any peer.
  for (const auto& entry : future_blocks_) {
    (void)entry;
    ++metrics_.blocks_rejected;
  }
  future_blocks_.clear();
}

void Governor::drain_stash() {
  while (true) {
    const auto it = future_blocks_.begin();
    if (it == future_blocks_.end()) break;
    if (it->first <= chain_.height()) {
      future_blocks_.erase(it);  // arrived via sync in the meantime
      continue;
    }
    if (it->first != chain_.height() + 1) break;
    try {
      chain_.append(it->second);
    } catch (const ProtocolError&) {
      // Contiguous serial but bad prev hash / tx root: misbehaviour after all.
      ++metrics_.blocks_rejected;
      broadcast_expel(it->second.leader, it->second.encode());
      future_blocks_.erase(it);
      continue;
    }
    future_blocks_.erase(it);
    ++metrics_.blocks_accepted;
    head_checked_ = false;
    const ledger::Block& accepted = chain_.head();
    persist_block(accepted);
    assembler_.reconcile(accepted);
    emit(runtime::TraceKind::kBlockCommitted, accepted.serial, accepted.txs.size());
  }
}

// --- Stake transfers and the 3-step consensus (§3.4.3) -----------------------

void Governor::submit_stake_transfer(GovernorId to, std::uint64_t amount) {
  stake_consensus_.submit_transfer(to, amount);
}

void Governor::run_stake_consensus_if_leader() {
  if (!is_leader()) return;
  stake_consensus_.run_as_leader(round_);
}

void Governor::on_stake_tx(const runtime::Message& msg) {
  StakeTxMsg stx;
  try {
    stx = StakeTxMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId from_node = directory_.node_of(stx.from);
  if (!im_.authorize(from_node, identity::Role::kGovernor, stx.signed_preimage(),
                     stx.sig)) {
    return;
  }
  stake_consensus_.on_stake_tx(std::move(stx));
}

void Governor::on_state_proposal(const runtime::Message& msg) {
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.round != round_) return;
  const auto winner = round_leader();
  if (!winner || proposal.leader != *winner) return;
  const NodeId leader_node = directory_.node_of(proposal.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, proposal.signed_preimage(),
                     proposal.leader_sig)) {
    return;
  }

  auto evidence = stake_consensus_.on_proposal(proposal, round_);
  if (evidence) broadcast_expel(proposal.leader, std::move(*evidence));
}

void Governor::on_state_signature(const runtime::Message& msg) {
  StateSignatureMsg sig;
  try {
    sig = StateSignatureMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  stake_consensus_.on_signature(sig, round_, expelled_);
}

void Governor::on_state_commit(const runtime::Message& msg) {
  StateCommitMsg commit;
  try {
    commit = StateCommitMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (stake_consensus_.on_commit(commit, round_, round_leader(), expelled_)) {
    // A stake-transform block is the paper's recovery point: snapshot the
    // durable state (eagerly, or deferred under WAL compaction).
    persist_recovery_point();
  }
}

// --- Checkpointing -----------------------------------------------------------

namespace {

constexpr const char* kCkptMagicV1 = "repchain-governor-ckpt-v1";
constexpr const char* kCkptMagicV2 = "repchain-governor-ckpt-v2";

void encode_unchecked_entry(BinaryWriter& w, const UncheckedEntry& entry) {
  w.bytes(entry.tx.encode());
  w.u32(static_cast<std::uint32_t>(entry.reports.size()));
  for (const auto& report : entry.reports) {
    w.u32(report.collector.value());
    w.boolean(report.label == ledger::Label::kValid);
  }
  w.f64(entry.expected_loss);
  w.boolean(entry.truly_valid);
  w.boolean(entry.revealed);
}

UncheckedEntry decode_unchecked_entry(BinaryReader& r) {
  UncheckedEntry entry;
  entry.tx = ledger::Transaction::decode(r.bytes());
  const std::uint32_t n_reports = r.u32();
  r.expect_count(n_reports, 5);
  entry.reports.reserve(n_reports);
  for (std::uint32_t i = 0; i < n_reports; ++i) {
    reputation::Report report;
    report.collector = CollectorId(r.u32());
    report.label = r.boolean() ? ledger::Label::kValid : ledger::Label::kInvalid;
    entry.reports.push_back(report);
  }
  entry.expected_loss = r.f64();
  entry.truly_valid = r.boolean();
  entry.revealed = r.boolean();
  return entry;
}

}  // namespace

Bytes Governor::checkpoint() const {
  BinaryWriter w;
  w.str(kCkptMagicV2);
  w.u32(id_.value());
  w.u64(static_cast<std::uint64_t>(chain_.height()));
  for (const auto& block : chain_.blocks()) w.bytes(block.encode());
  w.bytes(table_.encode());
  w.bytes(stake_consensus_.stake().encode());
  // v2: unchecked entries with their screening-time report snapshots, in
  // screening order, so case-3 updates survive a restore.
  const auto entries = argues_.entries_in_order();
  w.u64(entries.size());
  for (const UncheckedEntry* entry : entries) encode_unchecked_entry(w, *entry);
  return std::move(w).take();
}

void Governor::restore(BytesView data) {
  BinaryReader r(data);
  const std::string magic = r.str();
  const bool v1 = magic == kCkptMagicV1;
  if (!v1 && magic != kCkptMagicV2) {
    throw DecodeError("bad governor checkpoint magic");
  }
  if (GovernorId(r.u32()) != id_) {
    throw ProtocolError("checkpoint belongs to a different governor");
  }
  const std::uint64_t height = r.u64();
  r.expect_count(height, 4);
  ledger::ChainStore chain;
  for (std::uint64_t i = 0; i < height; ++i) {
    chain.append(ledger::Block::decode(r.bytes()));  // re-verified on append
  }
  reputation::ReputationTable table = reputation::ReputationTable::decode(r.bytes());
  StakeLedger stake = StakeLedger::decode(r.bytes());
  std::vector<UncheckedEntry> entries;
  if (!v1) {
    const std::uint64_t n_entries = r.u64();
    r.expect_count(n_entries, 14);
    entries.reserve(n_entries);
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      entries.push_back(decode_unchecked_entry(r));
    }
  }
  r.expect_done();

  chain_ = std::move(chain);
  table_ = std::move(table);
  stake_consensus_.restore_stake(std::move(stake));
  // Rebuild the packed-transaction index from the restored chain; round
  // transients (aggregations, election) are dropped. Unchecked entries are
  // reinstalled from a v2 checkpoint (v1 blobs predate them: dropped).
  assembler_.reset_from_chain(chain_);
  intake_.clear();
  argues_.restore_entries(std::move(entries));
  election_.reset();
  future_blocks_.clear();
  sync_in_flight_ = false;
}

// --- Durable state -----------------------------------------------------------

void Governor::persist_block(const ledger::Block& block) {
  if (store_ == nullptr) return;
  store_->wal_append(block.encode());
  ++blocks_since_snapshot_;
  ++wal_appends_;
  if (config_.snapshot_interval > 0 &&
      blocks_since_snapshot_ >= config_.snapshot_interval) {
    persist_snapshot();
  } else if (config_.wal_compaction_appends > 0 && recovery_point_ &&
             wal_appends_ >= config_.wal_compaction_appends) {
    // The log is long enough: persist the checkpoint captured at the latest
    // stake-transform commit and drop the records it covers, keeping the
    // tail appended since. Replay length stays bounded without the eager
    // full-snapshot-per-commit write amplification.
    store_->compact(recovery_point_->checkpoint, recovery_point_->covered_records);
    wal_appends_ -= recovery_point_->covered_records;
    blocks_since_snapshot_ = wal_appends_;
    recovery_point_.reset();
  }
}

void Governor::persist_snapshot() {
  if (store_ == nullptr) return;
  store_->write_snapshot(checkpoint());
  blocks_since_snapshot_ = 0;
  wal_appends_ = 0;
  recovery_point_.reset();  // superseded: the new snapshot covers more
}

void Governor::persist_recovery_point() {
  if (store_ == nullptr) return;
  if (config_.wal_compaction_appends > 0) {
    recovery_point_ = RecoveryPoint{checkpoint(), wal_appends_};
  } else {
    persist_snapshot();
  }
}

void Governor::recover_from_store() {
  if (store_ == nullptr) return;
  if (const auto snapshot = store_->load_snapshot()) restore(*snapshot);
  // Replay the WAL tail. Records the snapshot already covers are expected
  // after a crash between snapshot rename and WAL truncation — skip them by
  // serial; everything else must extend the chain cleanly.
  const std::vector<Bytes> records = store_->wal_records();
  for (const auto& record : records) {
    const ledger::Block block = ledger::Block::decode(record);
    if (block.serial <= chain_.height()) continue;
    chain_.append(block);  // re-verifies serial, hash link, tx root
  }
  if (!chain_.audit()) {
    throw ProtocolError("recovered chain failed audit");
  }
  assembler_.reset_from_chain(chain_);
  blocks_since_snapshot_ = 0;
  wal_appends_ = records.size();
  recovery_point_.reset();  // pre-crash capture died with the old life
  // Reliable mode only: default delivery keeps the synchronous-model
  // assumption that the restart sync completes before the next election.
  recovering_ = channel_.has_value();
}

// --- Expulsion ---------------------------------------------------------------

void Governor::broadcast_expel(GovernorId accused, Bytes evidence) {
  const ExpelMsg msg = make_expel(round_, id_, accused, std::move(evidence), key_);
  rbroadcast(runtime::MsgKind::kExpelEvidence, msg.encode());
}

void Governor::on_expel(const runtime::Message& msg) {
  ExpelMsg expel;
  try {
    expel = ExpelMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId accuser_node = directory_.node_of(expel.accuser);
  if (!im_.authorize(accuser_node, identity::Role::kGovernor, expel.signed_preimage(),
                     expel.accuser_sig)) {
    return;
  }

  // Leader-equivocation evidence (adversary layer) is tried first; its magic
  // prefix cannot decode as a StateProposalMsg, and vice versa. The proof is
  // self-contained — two valid signatures by the accused over different
  // blocks at one serial — so no local state is consulted.
  try {
    const auto equivocation =
        adversary::BlockEquivocationEvidence::decode(expel.evidence);
    const NodeId accused_node = directory_.node_of(expel.accused);
    if (equivocation.verify(im_, accused_node, expel.accused)) {
      expel_evidence_[expel.accused] = expel.evidence;  // for later re-shares
      if (expelled_.insert(expel.accused).second) {
        emit_byzantine(adversary::ByzantineKind::kProposalEquivocation,
                       expel.accused.value());
      }
    }
    return;
  } catch (const DecodeError&) {
    // Not that format: fall through to the stake-consensus evidence check.
  }

  // Verify the evidence independently: it must be a state proposal genuinely
  // signed by the accused whose NEW_STATE conflicts with the state this
  // governor derives from the broadcast stake transactions.
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(expel.evidence);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.leader != expel.accused) return;
  const NodeId accused_node = directory_.node_of(expel.accused);
  if (!im_.authenticate(accused_node, proposal.signed_preimage(), proposal.leader_sig)) {
    return;
  }
  if (stake_consensus_.matches_expected(proposal, round_)) {
    return;  // evidence does not show misbehaviour
  }
  expelled_.insert(expel.accused);
}

}  // namespace repchain::protocol
