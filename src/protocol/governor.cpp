#include "protocol/governor.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::protocol {

Governor::Governor(GovernorId id, runtime::NodeContext& ctx, crypto::SigningKey key,
                   const identity::IdentityManager& im,
                   ledger::ValidationOracle& oracle, const Directory& directory,
                   runtime::AtomicBroadcastGroup& governor_group, GovernorConfig config,
                   StakeLedger genesis_stake, std::vector<CollectorId> visible_collectors,
                   storage::NodeStateStore* store)
    : id_(id),
      ctx_(ctx),
      node_(ctx.node()),
      key_(std::move(key)),
      im_(im),
      oracle_(oracle),
      directory_(directory),
      group_(governor_group),
      config_(config),
      visible_(visible_collectors.begin(), visible_collectors.end()),
      table_(config.rep),
      engine_(table_, oracle_, ctx_.rng()),
      argues_(table_, oracle_, metrics_, config.rep.argue_latency_u),
      stake_consensus_(id, node_, key_, im_, directory_, ctx_.transport(), group_,
                       std::move(genesis_stake)),
      equivocation_(im_, directory_, table_, metrics_),
      intake_(im_, directory_, table_, engine_, assembler_, argues_, equivocation_,
              metrics_, ctx_.timers(), config_, visible_),
      store_(store) {
  config_.rep.validate();
  for (const NodeId n : directory_.governor_nodes()) {
    if (n != node_) sync_peers_.push_back(n);
  }
  // The governor connects with all collectors (§3.1 default) — or with its
  // partial view — and mirrors the provider-collector link structure into
  // its local reputation vectors.
  for (CollectorId c : directory_.collectors()) {
    if (!sees(c)) continue;
    table_.register_collector(c);
    for (ProviderId p : directory_.providers_of(c)) table_.link(c, p);
  }
}

void Governor::emit(runtime::TraceKind kind, std::uint64_t arg0, std::uint64_t arg1) {
  ctx_.emit(runtime::TraceEvent{kind, node_, round_, arg0, arg1});
}

void Governor::on_message(const runtime::Message& msg) {
  switch (msg.kind) {
    case runtime::MsgKind::kCollectorUpload:
      intake_.on_upload(msg);
      break;
    case runtime::MsgKind::kArgue:
      on_argue(msg);
      break;
    case runtime::MsgKind::kVrfAnnounce:
      on_vrf(msg);
      break;
    case runtime::MsgKind::kBlockProposal:
      on_block_proposal(msg);
      break;
    case runtime::MsgKind::kStakeTx:
      on_stake_tx(msg);
      break;
    case runtime::MsgKind::kStateProposal:
      on_state_proposal(msg);
      break;
    case runtime::MsgKind::kStateSignature:
      on_state_signature(msg);
      break;
    case runtime::MsgKind::kStateCommit:
      on_state_commit(msg);
      break;
    case runtime::MsgKind::kExpelEvidence:
      on_expel(msg);
      break;
    case runtime::MsgKind::kLabelGossip:
      on_label_gossip(msg);
      break;
    case runtime::MsgKind::kBlockRequest:
      on_block_request(msg);
      break;
    case runtime::MsgKind::kBlockResponse:
      on_block_response(msg);
      break;
    default:
      break;
  }
}

// --- Round driving (timer-armed phases) --------------------------------------

void Governor::arm_round(Round round, SimTime t0, const RoundTiming& timing) {
  runtime::TimerService& timers = ctx_.timers();
  timers.schedule_at(t0 + timing.election_offset, [this, round] { begin_round(round); });
  if (config_.enable_label_gossip) {
    timers.schedule_at(t0 + timing.gossip_offset, [this] { gossip_labels(); });
  }
  timers.schedule_at(t0 + timing.propose_offset, [this] { propose_if_leader(); });
  timers.schedule_at(t0 + timing.stake_offset,
                     [this] { run_stake_consensus_if_leader(); });
  timers.schedule_at(t0 + timing.audit_offset,
                     [this] { emit(runtime::TraceKind::kAuditPoint); });
  if (auto_rounds_) {
    timers.schedule_at(t0 + timing.round_span, [this, round, t0] {
      emit(runtime::TraceKind::kRoundEnded);
      arm_round(round + 1, t0 + auto_timing_.round_span, auto_timing_);
    });
  }
}

void Governor::drive_rounds(Round first, const RoundTiming& timing) {
  auto_rounds_ = true;
  auto_timing_ = timing;
  arm_round(first, ctx_.now(), timing);
}

// --- Label gossip (equivocation-detection extension, §4.2) -------------------

void Governor::gossip_labels() {
  if (!config_.enable_label_gossip) return;
  auto payload = equivocation_.take_gossip_payload();
  if (!payload) return;
  group_.broadcast(node_, runtime::MsgKind::kLabelGossip, std::move(*payload));
}

void Governor::on_label_gossip(const runtime::Message& msg) {
  if (!config_.enable_label_gossip || msg.from == node_) return;
  equivocation_.on_gossip_payload(msg.payload);
}

// --- Argue handling (Algorithm 2, deliver_argue) -----------------------------

void Governor::on_argue(const runtime::Message& msg) {
  ++metrics_.argues_received;
  ArgueMsg argue;
  try {
    argue = ArgueMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId provider_node = directory_.node_of(argue.provider);
  if (!im_.authorize(provider_node, identity::Role::kProvider, argue.signed_preimage(),
                     argue.provider_sig)) {
    return;
  }
  if (argue.tx.provider != argue.provider) return;

  auto rec = argues_.handle_argue(argue);
  if (rec) assembler_.add_pending(std::move(*rec));
}

bool Governor::reveal_unchecked(const ledger::TxId& id) { return argues_.reveal(id); }

std::vector<ledger::TxId> Governor::unrevealed_unchecked() const {
  return argues_.unrevealed();
}

// --- Leader election (§3.4.3) ------------------------------------------------

void Governor::begin_round(Round round) {
  round_ = round;
  leader_announced_ = false;
  emit(runtime::TraceKind::kRoundStarted);
  // Age out the equivocation evidence base.
  equivocation_.age_out();
  election_.emplace(round, stake_consensus_.stake(), expelled_);
  const VrfAnnounceMsg msg =
      make_announcement(round, id_, stake_consensus_.stake().of(id_), key_);
  group_.broadcast(node_, runtime::MsgKind::kVrfAnnounce, msg.encode());
}

void Governor::on_vrf(const runtime::Message& msg) {
  if (!election_) return;
  VrfAnnounceMsg announce;
  try {
    announce = VrfAnnounceMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  (void)election_->add_announcement(announce, im_,
                                    directory_.node_of(announce.governor));
  if (!leader_announced_) {
    if (const auto winner = election_->winner()) {
      leader_announced_ = true;
      emit(runtime::TraceKind::kLeaderElected, winner->value());
    }
  }
}

bool Governor::is_leader() const { return election_ && election_->winner() == id_; }

std::optional<GovernorId> Governor::round_leader() const {
  return election_ ? election_->winner() : std::nullopt;
}

// --- Block proposal / adoption -----------------------------------------------

void Governor::propose_if_leader() {
  if (!is_leader()) return;
  const ledger::Block block =
      assembler_.propose(chain_, round_, id_, config_.block_limit, key_);
  group_.broadcast(node_, runtime::MsgKind::kBlockProposal, block.encode());
}

void Governor::on_block_proposal(const runtime::Message& msg) {
  ledger::Block block;
  try {
    block = ledger::Block::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.blocks_rejected;
    return;
  }

  // Leader legitimacy: the proposer must be this round's election winner and
  // the signature must authenticate as that governor.
  const auto winner = round_leader();
  if (!winner || block.leader != *winner || expelled_.contains(block.leader)) {
    ++metrics_.blocks_rejected;
    return;
  }
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    ++metrics_.blocks_rejected;
    return;
  }

  const BlockSerial expected = chain_.height() + 1;
  if (block.serial > expected) {
    // A gap below an authenticated current-leader proposal means *we* are
    // behind (e.g. freshly restarted), not that the leader misbehaved. Stash
    // the proposal and fetch the missing prefix from peers; finish_sync
    // rejects it if the gap cannot be filled.
    future_blocks_.emplace(block.serial, std::move(block));
    sync_chain();
    return;
  }
  if (block.serial < expected) {
    ++metrics_.blocks_rejected;  // stale replay of a block we already hold
    return;
  }

  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    // Right serial but bad prev hash / tx root: leader misbehaviour.
    ++metrics_.blocks_rejected;
    broadcast_expel(block.leader, block.encode());
    return;
  }
  ++metrics_.blocks_accepted;

  // Reconcile local pending list: drop records now present in the chain.
  const ledger::Block& accepted = chain_.head();
  persist_block(accepted);
  assembler_.reconcile(accepted);
  emit(runtime::TraceKind::kBlockCommitted, accepted.serial, accepted.txs.size());
}

void Governor::on_block_request(const runtime::Message& msg) {
  // Serve retrieve(s) to any node.
  BlockRequestMsg req;
  try {
    req = BlockRequestMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  BlockResponseMsg resp;
  resp.serial = req.serial;
  const auto block = chain_.retrieve(req.serial);
  if (block) {
    resp.found = true;
    resp.block = block->encode();
  }
  ctx_.transport().send(node_, msg.from, runtime::MsgKind::kBlockResponse,
                        resp.encode());
}

// --- Catch-up sync (provider light-client sync, reused node-to-node) ---------

void Governor::sync_chain() {
  if (sync_in_flight_) return;
  if (sync_peers_.empty()) {
    // Nobody to ask; whatever is stashed can only settle against the local
    // head.
    finish_sync();
    return;
  }
  sync_in_flight_ = true;
  request_block(chain_.height() + 1);
}

void Governor::request_block(BlockSerial serial) {
  const NodeId peer = sync_peers_[serial % sync_peers_.size()];
  BlockRequestMsg req;
  req.serial = serial;
  ctx_.transport().send(node_, peer, runtime::MsgKind::kBlockRequest, req.encode());
}

void Governor::on_block_response(const runtime::Message& msg) {
  BlockResponseMsg resp;
  try {
    resp = BlockResponseMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (!sync_in_flight_) return;
  if (resp.serial != chain_.height() + 1) return;  // stale response

  if (!resp.found) {
    // Peer has nothing above our head.
    finish_sync();
    return;
  }

  ledger::Block block;
  try {
    block = ledger::Block::decode(resp.block);
  } catch (const DecodeError&) {
    ++metrics_.blocks_rejected;
    finish_sync();
    return;
  }
  // Same light-client verification as Provider::on_message: leader must be
  // an enrolled governor, signature must authenticate; append re-checks
  // serial continuity, hash link and tx-root.
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    ++metrics_.blocks_rejected;
    finish_sync();
    return;
  }
  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    ++metrics_.blocks_rejected;
    finish_sync();
    return;
  }
  ++metrics_.blocks_synced;
  const ledger::Block& adopted = chain_.head();
  persist_block(adopted);
  assembler_.reconcile(adopted);
  future_blocks_.erase(adopted.serial);
  drain_stash();

  // Chain the next request until a peer reports not-found.
  request_block(chain_.height() + 1);
}

void Governor::finish_sync() {
  sync_in_flight_ = false;
  drain_stash();
  // Stashed proposals still above the head are unadoptable: the gap below
  // them cannot be filled from any peer.
  for (const auto& entry : future_blocks_) {
    (void)entry;
    ++metrics_.blocks_rejected;
  }
  future_blocks_.clear();
}

void Governor::drain_stash() {
  while (true) {
    const auto it = future_blocks_.begin();
    if (it == future_blocks_.end()) break;
    if (it->first <= chain_.height()) {
      future_blocks_.erase(it);  // arrived via sync in the meantime
      continue;
    }
    if (it->first != chain_.height() + 1) break;
    try {
      chain_.append(it->second);
    } catch (const ProtocolError&) {
      // Contiguous serial but bad prev hash / tx root: misbehaviour after all.
      ++metrics_.blocks_rejected;
      broadcast_expel(it->second.leader, it->second.encode());
      future_blocks_.erase(it);
      continue;
    }
    future_blocks_.erase(it);
    ++metrics_.blocks_accepted;
    const ledger::Block& accepted = chain_.head();
    persist_block(accepted);
    assembler_.reconcile(accepted);
    emit(runtime::TraceKind::kBlockCommitted, accepted.serial, accepted.txs.size());
  }
}

// --- Stake transfers and the 3-step consensus (§3.4.3) -----------------------

void Governor::submit_stake_transfer(GovernorId to, std::uint64_t amount) {
  stake_consensus_.submit_transfer(to, amount);
}

void Governor::run_stake_consensus_if_leader() {
  if (!is_leader()) return;
  stake_consensus_.run_as_leader(round_);
}

void Governor::on_stake_tx(const runtime::Message& msg) {
  StakeTxMsg stx;
  try {
    stx = StakeTxMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId from_node = directory_.node_of(stx.from);
  if (!im_.authorize(from_node, identity::Role::kGovernor, stx.signed_preimage(),
                     stx.sig)) {
    return;
  }
  stake_consensus_.on_stake_tx(std::move(stx));
}

void Governor::on_state_proposal(const runtime::Message& msg) {
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.round != round_) return;
  const auto winner = round_leader();
  if (!winner || proposal.leader != *winner) return;
  const NodeId leader_node = directory_.node_of(proposal.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, proposal.signed_preimage(),
                     proposal.leader_sig)) {
    return;
  }

  auto evidence = stake_consensus_.on_proposal(proposal, round_);
  if (evidence) broadcast_expel(proposal.leader, std::move(*evidence));
}

void Governor::on_state_signature(const runtime::Message& msg) {
  StateSignatureMsg sig;
  try {
    sig = StateSignatureMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  stake_consensus_.on_signature(sig, round_, expelled_);
}

void Governor::on_state_commit(const runtime::Message& msg) {
  StateCommitMsg commit;
  try {
    commit = StateCommitMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (stake_consensus_.on_commit(commit, round_, round_leader(), expelled_)) {
    // A stake-transform block is the paper's recovery point: snapshot the
    // durable state and truncate the WAL.
    persist_snapshot();
  }
}

// --- Checkpointing -----------------------------------------------------------

namespace {

constexpr const char* kCkptMagicV1 = "repchain-governor-ckpt-v1";
constexpr const char* kCkptMagicV2 = "repchain-governor-ckpt-v2";

void encode_unchecked_entry(BinaryWriter& w, const UncheckedEntry& entry) {
  w.bytes(entry.tx.encode());
  w.u32(static_cast<std::uint32_t>(entry.reports.size()));
  for (const auto& report : entry.reports) {
    w.u32(report.collector.value());
    w.boolean(report.label == ledger::Label::kValid);
  }
  w.f64(entry.expected_loss);
  w.boolean(entry.truly_valid);
  w.boolean(entry.revealed);
}

UncheckedEntry decode_unchecked_entry(BinaryReader& r) {
  UncheckedEntry entry;
  entry.tx = ledger::Transaction::decode(r.bytes());
  const std::uint32_t n_reports = r.u32();
  r.expect_count(n_reports, 5);
  entry.reports.reserve(n_reports);
  for (std::uint32_t i = 0; i < n_reports; ++i) {
    reputation::Report report;
    report.collector = CollectorId(r.u32());
    report.label = r.boolean() ? ledger::Label::kValid : ledger::Label::kInvalid;
    entry.reports.push_back(report);
  }
  entry.expected_loss = r.f64();
  entry.truly_valid = r.boolean();
  entry.revealed = r.boolean();
  return entry;
}

}  // namespace

Bytes Governor::checkpoint() const {
  BinaryWriter w;
  w.str(kCkptMagicV2);
  w.u32(id_.value());
  w.u64(static_cast<std::uint64_t>(chain_.height()));
  for (const auto& block : chain_.blocks()) w.bytes(block.encode());
  w.bytes(table_.encode());
  w.bytes(stake_consensus_.stake().encode());
  // v2: unchecked entries with their screening-time report snapshots, in
  // screening order, so case-3 updates survive a restore.
  const auto entries = argues_.entries_in_order();
  w.u64(entries.size());
  for (const UncheckedEntry* entry : entries) encode_unchecked_entry(w, *entry);
  return std::move(w).take();
}

void Governor::restore(BytesView data) {
  BinaryReader r(data);
  const std::string magic = r.str();
  const bool v1 = magic == kCkptMagicV1;
  if (!v1 && magic != kCkptMagicV2) {
    throw DecodeError("bad governor checkpoint magic");
  }
  if (GovernorId(r.u32()) != id_) {
    throw ProtocolError("checkpoint belongs to a different governor");
  }
  const std::uint64_t height = r.u64();
  r.expect_count(height, 4);
  ledger::ChainStore chain;
  for (std::uint64_t i = 0; i < height; ++i) {
    chain.append(ledger::Block::decode(r.bytes()));  // re-verified on append
  }
  reputation::ReputationTable table = reputation::ReputationTable::decode(r.bytes());
  StakeLedger stake = StakeLedger::decode(r.bytes());
  std::vector<UncheckedEntry> entries;
  if (!v1) {
    const std::uint64_t n_entries = r.u64();
    r.expect_count(n_entries, 14);
    entries.reserve(n_entries);
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      entries.push_back(decode_unchecked_entry(r));
    }
  }
  r.expect_done();

  chain_ = std::move(chain);
  table_ = std::move(table);
  stake_consensus_.restore_stake(std::move(stake));
  // Rebuild the packed-transaction index from the restored chain; round
  // transients (aggregations, election) are dropped. Unchecked entries are
  // reinstalled from a v2 checkpoint (v1 blobs predate them: dropped).
  assembler_.reset_from_chain(chain_);
  intake_.clear();
  argues_.restore_entries(std::move(entries));
  election_.reset();
  future_blocks_.clear();
  sync_in_flight_ = false;
}

// --- Durable state -----------------------------------------------------------

void Governor::persist_block(const ledger::Block& block) {
  if (store_ == nullptr) return;
  store_->wal_append(block.encode());
  ++blocks_since_snapshot_;
  if (config_.snapshot_interval > 0 &&
      blocks_since_snapshot_ >= config_.snapshot_interval) {
    persist_snapshot();
  }
}

void Governor::persist_snapshot() {
  if (store_ == nullptr) return;
  store_->write_snapshot(checkpoint());
  blocks_since_snapshot_ = 0;
}

void Governor::recover_from_store() {
  if (store_ == nullptr) return;
  if (const auto snapshot = store_->load_snapshot()) restore(*snapshot);
  // Replay the WAL tail. Records the snapshot already covers are expected
  // after a crash between snapshot rename and WAL truncation — skip them by
  // serial; everything else must extend the chain cleanly.
  for (const auto& record : store_->wal_records()) {
    const ledger::Block block = ledger::Block::decode(record);
    if (block.serial <= chain_.height()) continue;
    chain_.append(block);  // re-verifies serial, hash link, tx root
  }
  if (!chain_.audit()) {
    throw ProtocolError("recovered chain failed audit");
  }
  assembler_.reset_from_chain(chain_);
  blocks_since_snapshot_ = 0;
}

// --- Expulsion ---------------------------------------------------------------

void Governor::broadcast_expel(GovernorId accused, Bytes evidence) {
  const ExpelMsg msg = make_expel(round_, id_, accused, std::move(evidence), key_);
  group_.broadcast(node_, runtime::MsgKind::kExpelEvidence, msg.encode());
}

void Governor::on_expel(const runtime::Message& msg) {
  ExpelMsg expel;
  try {
    expel = ExpelMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId accuser_node = directory_.node_of(expel.accuser);
  if (!im_.authorize(accuser_node, identity::Role::kGovernor, expel.signed_preimage(),
                     expel.accuser_sig)) {
    return;
  }

  // Verify the evidence independently: it must be a state proposal genuinely
  // signed by the accused whose NEW_STATE conflicts with the state this
  // governor derives from the broadcast stake transactions.
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(expel.evidence);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.leader != expel.accused) return;
  const NodeId accused_node = directory_.node_of(expel.accused);
  if (!im_.authenticate(accused_node, proposal.signed_preimage(), proposal.leader_sig)) {
    return;
  }
  if (stake_consensus_.matches_expected(proposal, round_)) {
    return;  // evidence does not show misbehaviour
  }
  expelled_.insert(expel.accused);
}

}  // namespace repchain::protocol
