#include "protocol/governor.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "common/serial.hpp"
namespace repchain::protocol {

using ledger::Label;
using ledger::TxStatus;

Governor::Governor(GovernorId id, NodeId node, crypto::SigningKey key,
                   net::SimNetwork& net, const identity::IdentityManager& im,
                   ledger::ValidationOracle& oracle, const Directory& directory,
                   net::AtomicBroadcastGroup& governor_group, GovernorConfig config,
                   StakeLedger genesis_stake, Rng rng,
                   std::vector<CollectorId> visible_collectors)
    : id_(id),
      node_(node),
      key_(std::move(key)),
      net_(net),
      im_(im),
      oracle_(oracle),
      directory_(directory),
      group_(governor_group),
      config_(config),
      rng_(rng),
      visible_(visible_collectors.begin(), visible_collectors.end()),
      table_(config.rep),
      engine_(table_, oracle_, rng_),
      stake_(std::move(genesis_stake)),
      argue_buffer_(config.rep.argue_latency_u) {
  config_.rep.validate();
  // The governor connects with all collectors (§3.1 default) — or with its
  // partial view — and mirrors the provider-collector link structure into
  // its local reputation vectors.
  for (CollectorId c : directory_.collectors()) {
    if (!sees(c)) continue;
    table_.register_collector(c);
    for (ProviderId p : directory_.providers_of(c)) table_.link(c, p);
  }
}

void Governor::on_message(const net::Message& msg) {
  switch (msg.kind) {
    case net::MsgKind::kCollectorUpload:
      on_upload(msg);
      break;
    case net::MsgKind::kArgue:
      on_argue(msg);
      break;
    case net::MsgKind::kVrfAnnounce:
      on_vrf(msg);
      break;
    case net::MsgKind::kBlockProposal:
      on_block_proposal(msg);
      break;
    case net::MsgKind::kStakeTx:
      on_stake_tx(msg);
      break;
    case net::MsgKind::kStateProposal:
      on_state_proposal(msg);
      break;
    case net::MsgKind::kStateSignature:
      on_state_signature(msg);
      break;
    case net::MsgKind::kStateCommit:
      on_state_commit(msg);
      break;
    case net::MsgKind::kExpelEvidence:
      on_expel(msg);
      break;
    case net::MsgKind::kLabelGossip:
      on_label_gossip(msg);
      break;
    case net::MsgKind::kBlockRequest: {
      // Serve retrieve(s) to any node.
      BlockRequestMsg req;
      try {
        req = BlockRequestMsg::decode(msg.payload);
      } catch (const DecodeError&) {
        break;
      }
      BlockResponseMsg resp;
      resp.serial = req.serial;
      const auto block = chain_.retrieve(req.serial);
      if (block) {
        resp.found = true;
        resp.block = block->encode();
      }
      net_.send(node_, msg.from, net::MsgKind::kBlockResponse, resp.encode());
      break;
    }
    default:
      break;
  }
}

// --- Uploading phase intake (Algorithm 2, delivery part) ---------------------

void Governor::on_upload(const net::Message& msg) {
  ++metrics_.uploads_received;
  ledger::LabeledTransaction ltx;
  try {
    ltx = ledger::LabeledTransaction::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.uploads_rejected;
    return;
  }

  if (!sees(ltx.collector)) {
    ++metrics_.uploads_invisible;
    return;
  }

  // The collector's own signature must authenticate, or the upload cannot
  // even be attributed — drop silently.
  const auto collector_node = directory_.node_of(ltx.collector);
  if (!im_.authorize(collector_node, identity::Role::kCollector, ltx.signed_preimage(),
                     ltx.collector_sig)) {
    ++metrics_.uploads_rejected;
    return;
  }

  // verify(c_i, Tx): the contained provider signature must be genuine and
  // the provider must be linked with this collector; otherwise the upload is
  // a forgery — Algorithm 3 case 1.
  const bool provider_known = directory_.linked(ltx.tx.provider, ltx.collector);
  bool provider_sig_ok = false;
  if (provider_known) {
    const NodeId provider_node = directory_.node_of(ltx.tx.provider);
    provider_sig_ok =
        im_.authenticate(provider_node, ltx.tx.signed_preimage(), ltx.tx.provider_sig);
  }
  if (!provider_known || !provider_sig_ok) {
    ++metrics_.forgeries_detected;
    table_.punish_forgery(ltx.collector);
    return;
  }

  const ledger::TxId id = ltx.tx.id();
  if (packed_.contains(id) || unchecked_.contains(id)) {
    // Replay of an already-processed transaction (atomic broadcast plus the
    // timestamped signature makes this benign); ignore.
    return;
  }

  auto [it, inserted] = aggregations_.try_emplace(id);
  Aggregation& agg = it->second;
  if (inserted) {
    agg.tx = ltx.tx;
    // starttime(tx, Delta): screen after the aggregation window.
    net_.queue().schedule_after(config_.aggregation_delta,
                                [this, id] { screen_aggregation(id); });
  }
  if (agg.screened) return;
  if (!agg.reporters.insert(ltx.collector).second) {
    ++metrics_.duplicate_reports;
    return;
  }
  agg.reports.push_back(reputation::Report{ltx.collector, ltx.label});

  if (config_.enable_label_gossip) {
    seen_labels_[id].emplace(ltx.collector, ltx);
    ungossiped_.push_back(ltx);
  }
}

void Governor::gossip_labels() {
  if (!config_.enable_label_gossip || ungossiped_.empty()) return;
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(ungossiped_.size()));
  for (const auto& ltx : ungossiped_) w.bytes(ltx.encode());
  ungossiped_.clear();
  group_.broadcast(node_, net::MsgKind::kLabelGossip, std::move(w).take());
}

void Governor::on_label_gossip(const net::Message& msg) {
  if (!config_.enable_label_gossip || msg.from == node_) return;
  std::vector<ledger::LabeledTransaction> ltxs;
  try {
    BinaryReader r(msg.payload);
    const auto n = r.u32();
    ltxs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ltxs.push_back(ledger::LabeledTransaction::decode(r.bytes()));
    }
    r.expect_done();
  } catch (const DecodeError&) {
    return;
  }

  for (const auto& remote : ltxs) {
    // Only a genuinely signed remote label is evidence.
    const NodeId collector_node = directory_.node_of(remote.collector);
    if (!im_.authorize(collector_node, identity::Role::kCollector,
                       remote.signed_preimage(), remote.collector_sig)) {
      continue;
    }
    const ledger::LabeledTransaction* local = nullptr;
    for (const LabelGen* gen : {&seen_labels_, &seen_labels_prev_}) {
      const auto tit = gen->find(remote.tx.id());
      if (tit == gen->end()) continue;
      const auto cit = tit->second.find(remote.collector);
      if (cit != tit->second.end()) {
        local = &cit->second;
        break;
      }
    }
    if (local == nullptr || local->label == remote.label) continue;

    // Two valid signatures by the same collector over conflicting labels for
    // one transaction: a self-contained equivocation proof.
    const auto key = std::make_pair(remote.collector.value(),
                                    to_hex(view(remote.tx.id())));
    if (!punished_equivocations_.insert(key).second) continue;
    ++metrics_.equivocations_detected;
    table_.punish_forgery(remote.collector);
  }
}

void Governor::screen_aggregation(const ledger::TxId& id) {
  const auto it = aggregations_.find(id);
  if (it == aggregations_.end() || it->second.screened) return;
  Aggregation& agg = it->second;
  agg.screened = true;

  const ScreeningOutcome out = engine_.screen(agg.tx, agg.reports);
  switch (out.kind) {
    case ScreeningKind::kAppendedValid: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kValid;
      rec.status = TxStatus::kCheckedValid;
      pending_.push_back(std::move(rec));
      break;
    }
    case ScreeningKind::kDiscardedInvalid:
      break;  // checked invalid: never enters a block
    case ScreeningKind::kRecordedUnchecked: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kInvalid;
      rec.status = TxStatus::kUncheckedInvalid;
      pending_.push_back(rec);

      UncheckedEntry entry;
      entry.tx = agg.tx;
      entry.reports = agg.reports;
      entry.truly_valid = oracle_.true_validity(id);  // metric only
      entry.expected_loss =
          table_.expected_loss_for(agg.tx.provider, agg.reports, entry.truly_valid);
      metrics_.expected_loss += entry.expected_loss;
      if (entry.truly_valid) metrics_.realized_loss += 2.0;
      unchecked_.emplace(id, std::move(entry));
      unchecked_order_.push_back(id);
      argue_buffer_.record(agg.tx.provider, id);
      break;
    }
  }
  aggregations_.erase(it);
}

// --- Argue handling (Algorithm 2, deliver_argue) ------------------------------

void Governor::on_argue(const net::Message& msg) {
  ++metrics_.argues_received;
  ArgueMsg argue;
  try {
    argue = ArgueMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId provider_node = directory_.node_of(argue.provider);
  if (!im_.authorize(provider_node, identity::Role::kProvider, argue.signed_preimage(),
                     argue.provider_sig)) {
    return;
  }
  if (argue.tx.provider != argue.provider) return;

  const ledger::TxId id = argue.tx.id();
  auto uit = unchecked_.find(id);
  if (uit == unchecked_.end() || uit->second.revealed) return;

  if (!argue_buffer_.consume(argue.provider, id)) {
    // Buried deeper than U: invalid permanently (§4.2).
    ++metrics_.argues_rejected_late;
    return;
  }
  ++metrics_.argues_accepted;

  // Re-evaluate: status <- validate(tx).
  ++metrics_.argue_validations;
  const bool truth = oracle_.validate(id);
  if (truth) {
    ledger::TxRecord rec;
    rec.tx = argue.tx;
    rec.label = Label::kValid;
    rec.status = TxStatus::kArguedValid;
    pending_.push_back(std::move(rec));
  }
  apply_reveal(id, uit->second, truth);
}

void Governor::apply_reveal(const ledger::TxId& id, UncheckedEntry& entry, bool truth) {
  (void)id;
  entry.revealed = true;
  if (truth) ++metrics_.mistakes;
  // Algorithm 3 case 3 with the screening-time report snapshot.
  (void)table_.update_revealed(entry.tx.provider, entry.reports, truth);
}

bool Governor::reveal_unchecked(const ledger::TxId& id) {
  auto it = unchecked_.find(id);
  if (it == unchecked_.end() || it->second.revealed) return false;
  apply_reveal(id, it->second, oracle_.true_validity(id));
  return true;
}

std::vector<ledger::TxId> Governor::unrevealed_unchecked() const {
  std::vector<ledger::TxId> out;
  for (const auto& id : unchecked_order_) {
    const auto it = unchecked_.find(id);
    if (it != unchecked_.end() && !it->second.revealed) out.push_back(id);
  }
  return out;
}

// --- Leader election (§3.4.3) --------------------------------------------------

void Governor::begin_round(Round round) {
  round_ = round;
  // Age out the equivocation evidence base (see seen_labels_ comment).
  seen_labels_prev_ = std::move(seen_labels_);
  seen_labels_.clear();
  election_.emplace(round, stake_, expelled_);
  const VrfAnnounceMsg msg = make_announcement(round, id_, stake_.of(id_), key_);
  group_.broadcast(node_, net::MsgKind::kVrfAnnounce, msg.encode());
}

void Governor::on_vrf(const net::Message& msg) {
  if (!election_) return;
  VrfAnnounceMsg announce;
  try {
    announce = VrfAnnounceMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  (void)election_->add_announcement(announce, im_,
                                    directory_.node_of(announce.governor));
}

bool Governor::is_leader() const {
  return election_ && election_->winner() == id_;
}

std::optional<GovernorId> Governor::round_leader() const {
  return election_ ? election_->winner() : std::nullopt;
}

// --- Block proposal / adoption ---------------------------------------------------

void Governor::propose_if_leader() {
  if (!is_leader()) return;
  std::vector<ledger::TxRecord> txs;
  const std::size_t take = std::min(pending_.size(), config_.block_limit);
  txs.assign(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));

  const ledger::Block block = ledger::make_block(
      chain_.height() + 1, round_, chain_.head_hash(), id_, std::move(txs), key_);
  group_.broadcast(node_, net::MsgKind::kBlockProposal, block.encode());
}

void Governor::on_block_proposal(const net::Message& msg) {
  ledger::Block block;
  try {
    block = ledger::Block::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.blocks_rejected;
    return;
  }

  // Leader legitimacy: the proposer must be this round's election winner and
  // the signature must authenticate as that governor.
  const auto winner = round_leader();
  if (!winner || block.leader != *winner || expelled_.contains(block.leader)) {
    ++metrics_.blocks_rejected;
    return;
  }
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    ++metrics_.blocks_rejected;
    return;
  }

  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    // Serial gap / bad prev hash / bad tx root: evidence of leader misbehaviour.
    ++metrics_.blocks_rejected;
    broadcast_expel(block.leader, block.encode());
    return;
  }
  ++metrics_.blocks_accepted;

  // Reconcile local pending list: drop records now present in the chain.
  const ledger::Block& accepted = chain_.head();
  for (const auto& rec : accepted.txs) packed_.insert(rec.tx.id());
  std::erase_if(pending_, [this](const ledger::TxRecord& rec) {
    return packed_.contains(rec.tx.id());
  });
}

// --- Stake transfers and the 3-step consensus (§3.4.3) ----------------------------

void Governor::submit_stake_transfer(GovernorId to, std::uint64_t amount) {
  const StakeTxMsg msg = make_stake_tx(id_, to, amount, stake_seq_++, key_);
  group_.broadcast(node_, net::MsgKind::kStakeTx, msg.encode());
}

void Governor::on_stake_tx(const net::Message& msg) {
  StakeTxMsg stx;
  try {
    stx = StakeTxMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId from_node = directory_.node_of(stx.from);
  if (!im_.authorize(from_node, identity::Role::kGovernor, stx.signed_preimage(),
                     stx.sig)) {
    return;
  }
  // Replay protection: senders number their transfers; accept only strictly
  // increasing sequence numbers per sender.
  const auto it = stake_seq_seen_.find(stx.from);
  if (it != stake_seq_seen_.end() && stx.seq <= it->second) return;
  stake_seq_seen_[stx.from] = stx.seq;
  round_stake_txs_.push_back(std::move(stx));
}

StakeLedger Governor::expected_stake_state() const {
  StakeLedger state = stake_;
  for (const auto& stx : round_stake_txs_) {
    try {
      state.transfer(stx.from, stx.to, stx.amount);
    } catch (const ProtocolError&) {
      // Insufficient funds / unknown party: skipped identically by every
      // governor since the atomic broadcast ordered the transfers.
    }
  }
  return state;
}

void Governor::run_stake_consensus_if_leader() {
  if (!is_leader() || round_stake_txs_.empty()) return;

  StakeLedger state = expected_stake_state();
  if (cheat_stake_) {
    // A byzantine leader credits itself (test hook).
    state.set(id_, state.of(id_) + 1000);
  }

  StateProposalMsg proposal;
  proposal.round = round_;
  proposal.leader = id_;
  proposal.state = state.encode();
  proposal.leader_sig = key_.sign(proposal.signed_preimage());

  // Install the proposal and this leader's own signature immediately: other
  // governors' signatures can arrive before our own group copy does.
  current_proposal_ = proposal;
  collected_sigs_.clear();
  sig_senders_.clear();
  StateSignatureMsg own;
  own.round = round_;
  own.signer = id_;
  own.sig = key_.sign(proposal.signed_preimage());
  sig_senders_.insert(id_);
  collected_sigs_.push_back(own);

  group_.broadcast(node_, net::MsgKind::kStateProposal, proposal.encode());
}

void Governor::on_state_proposal(const net::Message& msg) {
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.round != round_) return;
  const auto winner = round_leader();
  if (!winner || proposal.leader != *winner) return;
  const NodeId leader_node = directory_.node_of(proposal.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, proposal.signed_preimage(),
                     proposal.leader_sig)) {
    return;
  }

  // Consistency: the proposed NEW_STATE must equal the state derived from
  // the stake transactions this governor received.
  const StakeLedger expected = expected_stake_state();
  if (proposal.state != expected.encode()) {
    // Step 2 failure branch: broadcast the evidence to expel the leader.
    broadcast_expel(proposal.leader, proposal.encode());
    return;
  }

  if (proposal.leader == id_) return;  // own copy, handled at proposal time

  current_proposal_ = proposal;
  StateSignatureMsg sig;
  sig.round = round_;
  sig.signer = id_;
  sig.sig = key_.sign(proposal.signed_preimage());
  net_.send(node_, directory_.node_of(proposal.leader), net::MsgKind::kStateSignature,
            sig.encode());
}

void Governor::on_state_signature(const net::Message& msg) {
  if (!current_proposal_ || current_proposal_->leader != id_) return;
  StateSignatureMsg sig;
  try {
    sig = StateSignatureMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (sig.round != round_) return;
  const NodeId signer_node = directory_.node_of(sig.signer);
  if (!im_.authenticate(signer_node, current_proposal_->signed_preimage(), sig.sig)) {
    return;
  }
  if (!sig_senders_.insert(sig.signer).second) return;
  collected_sigs_.push_back(sig);

  // When all (non-expelled) governors signed, commit.
  std::size_t expected = 0;
  for (GovernorId g : directory_.governors()) {
    if (!expelled_.contains(g)) ++expected;
  }
  if (collected_sigs_.size() == expected) {
    StateCommitMsg commit;
    commit.round = round_;
    commit.leader = id_;
    commit.state = current_proposal_->state;
    commit.signatures = collected_sigs_;
    group_.broadcast(node_, net::MsgKind::kStateCommit, commit.encode());
  }
}

void Governor::on_state_commit(const net::Message& msg) {
  StateCommitMsg commit;
  try {
    commit = StateCommitMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (commit.round != round_) return;
  const auto winner = round_leader();
  if (!winner || commit.leader != *winner) return;

  // Rebuild the proposal preimage and verify every signature.
  StateProposalMsg proposal;
  proposal.round = commit.round;
  proposal.leader = commit.leader;
  proposal.state = commit.state;
  const Bytes preimage = proposal.signed_preimage();

  std::size_t expected = 0;
  for (GovernorId g : directory_.governors()) {
    if (!expelled_.contains(g)) ++expected;
  }
  if (commit.signatures.size() != expected) return;

  std::set<GovernorId> signers;
  for (const auto& sig : commit.signatures) {
    const NodeId signer_node = directory_.node_of(sig.signer);
    if (!im_.authenticate(signer_node, preimage, sig.sig)) return;
    if (!signers.insert(sig.signer).second) return;
  }

  // Apply NEW_STATE.
  try {
    stake_ = StakeLedger::decode(commit.state);
  } catch (const DecodeError&) {
    return;
  }
  round_stake_txs_.clear();
  current_proposal_.reset();
  collected_sigs_.clear();
  sig_senders_.clear();
}

// --- Checkpointing -------------------------------------------------------------------

Bytes Governor::checkpoint() const {
  BinaryWriter w;
  w.str("repchain-governor-ckpt-v1");
  w.u32(id_.value());
  w.u64(static_cast<std::uint64_t>(chain_.height()));
  for (const auto& block : chain_.blocks()) w.bytes(block.encode());
  w.bytes(table_.encode());
  w.bytes(stake_.encode());
  return std::move(w).take();
}

void Governor::restore(BytesView data) {
  BinaryReader r(data);
  if (r.str() != "repchain-governor-ckpt-v1") {
    throw DecodeError("bad governor checkpoint magic");
  }
  if (GovernorId(r.u32()) != id_) {
    throw ProtocolError("checkpoint belongs to a different governor");
  }
  const std::uint64_t height = r.u64();
  r.expect_count(height, 4);
  ledger::ChainStore chain;
  for (std::uint64_t i = 0; i < height; ++i) {
    chain.append(ledger::Block::decode(r.bytes()));  // re-verified on append
  }
  reputation::ReputationTable table = reputation::ReputationTable::decode(r.bytes());
  StakeLedger stake = StakeLedger::decode(r.bytes());
  r.expect_done();

  chain_ = std::move(chain);
  table_ = std::move(table);
  stake_ = std::move(stake);
  // Rebuild the packed-transaction index from the restored chain.
  packed_.clear();
  for (const auto& block : chain_.blocks()) {
    for (const auto& rec : block.txs) packed_.insert(rec.tx.id());
  }
  pending_.clear();
  aggregations_.clear();
  unchecked_.clear();
  unchecked_order_.clear();
  election_.reset();
}

// --- Expulsion ---------------------------------------------------------------------

void Governor::broadcast_expel(GovernorId accused, Bytes evidence) {
  const ExpelMsg msg = make_expel(round_, id_, accused, std::move(evidence), key_);
  group_.broadcast(node_, net::MsgKind::kExpelEvidence, msg.encode());
}

void Governor::on_expel(const net::Message& msg) {
  ExpelMsg expel;
  try {
    expel = ExpelMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  const NodeId accuser_node = directory_.node_of(expel.accuser);
  if (!im_.authorize(accuser_node, identity::Role::kGovernor, expel.signed_preimage(),
                     expel.accuser_sig)) {
    return;
  }

  // Verify the evidence independently: it must be a state proposal genuinely
  // signed by the accused whose NEW_STATE conflicts with the state this
  // governor derives from the broadcast stake transactions.
  StateProposalMsg proposal;
  try {
    proposal = StateProposalMsg::decode(expel.evidence);
  } catch (const DecodeError&) {
    return;
  }
  if (proposal.leader != expel.accused) return;
  const NodeId accused_node = directory_.node_of(expel.accused);
  if (!im_.authenticate(accused_node, proposal.signed_preimage(), proposal.leader_sig)) {
    return;
  }
  if (proposal.round == round_ && proposal.state == expected_stake_state().encode()) {
    return;  // evidence does not show misbehaviour
  }
  expelled_.insert(expel.accused);
}

}  // namespace repchain::protocol
