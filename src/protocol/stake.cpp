#include "protocol/stake.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::protocol {

void StakeLedger::set(GovernorId gov, std::uint64_t units) {
  const auto it = stake_.find(gov);
  if (it != stake_.end()) {
    total_ -= it->second;
    it->second = units;
  } else {
    stake_.emplace(gov, units);
  }
  total_ += units;
}

std::uint64_t StakeLedger::of(GovernorId gov) const {
  const auto it = stake_.find(gov);
  if (it == stake_.end()) throw ProtocolError("unknown governor in stake ledger");
  return it->second;
}

void StakeLedger::transfer(GovernorId from, GovernorId to, std::uint64_t amount) {
  const auto fit = stake_.find(from);
  const auto tit = stake_.find(to);
  if (fit == stake_.end() || tit == stake_.end()) {
    throw ProtocolError("stake transfer between unknown governors");
  }
  if (fit->second < amount) {
    throw ProtocolError("insufficient stake for transfer");
  }
  fit->second -= amount;
  tit->second += amount;
}

Bytes StakeLedger::encode() const {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(stake_.size()));
  for (const auto& [gov, units] : stake_) {
    w.u32(gov.value());
    w.u64(units);
  }
  return std::move(w).take();
}

StakeLedger StakeLedger::decode(BytesView data) {
  BinaryReader r(data);
  StakeLedger ledger;
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const GovernorId gov(r.u32());
    const std::uint64_t units = r.u64();
    if (ledger.stake_.contains(gov)) throw DecodeError("duplicate governor in stake state");
    ledger.stake_.emplace(gov, units);
    ledger.total_ += units;
  }
  r.expect_done();
  return ledger;
}

crypto::Hash256 StakeLedger::state_hash() const { return crypto::Sha256::hash(encode()); }

}  // namespace repchain::protocol
