#pragma once

#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "crypto/vrf.hpp"
#include "identity/identity_manager.hpp"
#include "protocol/messages.hpp"
#include "protocol/stake.hpp"

namespace repchain::protocol {

/// VRF-PoS leader election (§3.4.3): every governor evaluates the VRF once
/// per stake unit it owns; the globally smallest hash wins, so the chance of
/// winning is proportional to stake. Each governor runs one ElectionState
/// per round and feeds it every announcement (including its own).
class ElectionState {
 public:
  /// `expected` — governors (with their stake) whose announcements we await.
  /// Expelled governors are excluded by the caller.
  ElectionState(Round round, const StakeLedger& stake,
                const std::set<GovernorId>& expelled);

  /// Verify and absorb an announcement. Returns false (and ignores the
  /// message) if it is malformed: wrong round, wrong ticket count vs stake,
  /// ticket for a different governor, bad VRF proof, duplicate.
  bool add_announcement(const VrfAnnounceMsg& msg, const identity::IdentityManager& im,
                        NodeId sender_node);

  [[nodiscard]] bool complete() const;
  /// The winner once complete (or once closed on a quorum); nullopt before.
  [[nodiscard]] std::optional<GovernorId> winner() const;

  /// Degraded closure for lossy/partitioned networks: if at least `quorum`
  /// announcements arrived, accept the best ticket seen so far as the
  /// winner without waiting for the stragglers. A majority quorum keeps two
  /// sides of a partition from electing different leaders: at most one side
  /// can reach it. No-op below the quorum or after completion.
  void close(std::size_t quorum);
  [[nodiscard]] bool closed() const { return closed_; }

  /// Minimum-hash tie-break key: (hash, governor, unit), lexicographic.
  struct BestTicket {
    std::uint64_t hash = ~0ULL;
    GovernorId governor;
    std::uint32_t unit = 0;
  };
  [[nodiscard]] const BestTicket& best() const { return best_; }

  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::size_t announced() const { return seen_.size(); }
  [[nodiscard]] std::size_t expected() const { return expected_.size(); }

 private:
  Round round_;
  std::unordered_map<GovernorId, std::uint64_t> expected_;  // gov -> stake units
  std::set<GovernorId> seen_;
  BestTicket best_;
  bool closed_ = false;
};

/// Build a governor's own announcement for a round.
[[nodiscard]] VrfAnnounceMsg make_announcement(Round round, GovernorId gov,
                                               std::uint64_t stake_units,
                                               const crypto::SigningKey& key);

}  // namespace repchain::protocol
