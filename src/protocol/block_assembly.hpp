#pragma once

#include <unordered_set>
#include <vector>

#include "crypto/ed25519.hpp"
#include "ledger/chain.hpp"

namespace repchain::protocol {

/// The leader-side TXList of §3.1: accumulates screened records, packs up to
/// b_limit of them into a signed block on top of the local chain head, and
/// reconciles the pending list against accepted blocks so records are packed
/// exactly once. Pure ledger logic — no networking, so it unit-tests in
/// isolation and is shared by the Governor facade.
class BlockAssembler {
 public:
  /// Queue one screened record for a future block (FIFO).
  void add_pending(ledger::TxRecord record) {
    pending_.push_back(std::move(record));
  }

  /// Bulk intake for records that already cleared verification upstream
  /// (the VerifiedBatch-settled upload pipeline plus the screening draw):
  /// the assembler trusts its callers and re-checks nothing, so a batch is
  /// one reserve plus element moves. The caller keeps the cleared vector —
  /// and its capacity — as a reusable arena.
  void add_pending_batch(std::vector<ledger::TxRecord>& records) {
    pending_.reserve(pending_.size() + records.size());
    for (auto& rec : records) pending_.push_back(std::move(rec));
    records.clear();
  }

  /// Pack up to `block_limit` pending records into a block extending `chain`,
  /// signed by `leader`. Does not consume pending_ — reconciliation against
  /// the accepted copy does (the proposal could be lost).
  [[nodiscard]] ledger::Block propose(const ledger::ChainStore& chain, Round round,
                                      GovernorId leader, std::size_t block_limit,
                                      const crypto::SigningKey& key) const;

  /// An accepted block arrived: remember its transactions as packed and drop
  /// them from the pending list.
  void reconcile(const ledger::Block& accepted);

  /// Byzantine defense: remove a queued record before it is ever proposed
  /// (double-spend twins are withdrawn from both replicas' pending lists so
  /// neither spend can reach a block). No-op if `id` is not pending.
  void drop_pending(const ledger::TxId& id);

  /// True iff the transaction is already part of an accepted block.
  [[nodiscard]] bool packed(const ledger::TxId& id) const {
    return packed_.contains(id);
  }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// Restore path: rebuild the packed index from a chain and drop all
  /// transient pending records.
  void reset_from_chain(const ledger::ChainStore& chain);

 private:
  std::vector<ledger::TxRecord> pending_;
  std::unordered_set<ledger::TxId, ledger::TxIdHash> packed_;  // already in a block
};

}  // namespace repchain::protocol
