#include "protocol/provider.hpp"

#include "common/errors.hpp"

namespace repchain::protocol {

Provider::Provider(ProviderId id, runtime::NodeContext& ctx, crypto::SigningKey key,
                   const identity::IdentityManager& im,
                   ledger::ValidationOracle& oracle, const Directory& directory,
                   bool active, bool reliable_delivery)
    : id_(id),
      ctx_(ctx),
      node_(ctx.node()),
      key_(std::move(key)),
      im_(im),
      oracle_(oracle),
      directory_(directory),
      active_(active),
      collector_group_(ctx.transport(), directory.collector_nodes_of(id)),
      governor_nodes_(directory.governor_nodes()) {
  if (reliable_delivery) {
    channel_.emplace(ctx_, /*epoch=*/0);
    channel_->set_deliver([this](const runtime::Message& m) { on_message(m); });
  }
}

void Provider::rsend(NodeId to, runtime::MsgKind kind, const Bytes& payload) {
  if (channel_) {
    channel_->send(to, kind, payload);
  } else {
    ctx_.transport().send(node_, to, kind, payload);
  }
}

const ledger::Transaction& Provider::submit(Bytes payload, bool truly_valid) {
  const ledger::Transaction tx = ledger::make_transaction(
      id_, next_seq_++, ctx_.now(), std::move(payload), key_);
  oracle_.register_tx(tx.id(), truly_valid);

  auto [it, inserted] = own_.emplace(tx.id(), OwnTx{tx, truly_valid, false, false});

  if (double_spend_p_ > 0.0 && ctx_.rng().bernoulli(double_spend_p_)) {
    // Double-spend: a second provider-signed transaction reusing this
    // sequence number (tweaked payload, so a distinct TxId), each twin sent
    // to a disjoint half of the linked collectors. A Byzantine provider
    // steps outside the atomic-broadcast primitive, like an equivocating
    // collector does.
    Bytes twin_payload = it->second.tx.payload;
    if (twin_payload.empty()) {
      twin_payload.push_back(0xA5);
    } else {
      twin_payload[0] ^= 0xA5;
    }
    const ledger::Transaction twin = ledger::make_transaction(
        id_, tx.seq, ctx_.now(), std::move(twin_payload), key_);
    oracle_.register_tx(twin.id(), truly_valid);
    ++double_spends_submitted_;
    const auto collectors = directory_.collector_nodes_of(id_);
    const Bytes enc_a = it->second.tx.encode();
    const Bytes enc_b = twin.encode();
    const std::size_t first_half = collectors.size() / 2 + collectors.size() % 2;
    for (std::size_t i = 0; i < collectors.size(); ++i) {
      rsend(collectors[i], runtime::MsgKind::kProviderTx,
            i < first_half ? enc_a : enc_b);
    }
    return it->second.tx;
  }

  // broadcast_provider(tx): atomic broadcast to the r linked collectors — or
  // per-collector reliable sends in reliable mode.
  if (channel_) {
    const Bytes payload = tx.encode();
    for (const NodeId c : directory_.collector_nodes_of(id_)) {
      channel_->send(c, runtime::MsgKind::kProviderTx, payload);
    }
  } else {
    collector_group_.broadcast(node_, runtime::MsgKind::kProviderTx, tx.encode());
  }
  return it->second.tx;
}

const ledger::Transaction& Provider::submit_to(NodeId collector, Bytes payload,
                                               bool truly_valid) {
  const ledger::Transaction tx = ledger::make_transaction(
      id_, next_seq_++, ctx_.now(), std::move(payload), key_);
  oracle_.register_tx(tx.id(), truly_valid);
  auto [it, inserted] = own_.emplace(tx.id(), OwnTx{tx, truly_valid, false, false});
  rsend(collector, runtime::MsgKind::kProviderTx, it->second.tx.encode());
  return it->second.tx;
}

void Provider::arm_round(SimTime t0, const RoundTiming& timing) {
  // Passive providers still replicate the chain; active_ only gates arguing
  // (checked inside the sync path).
  ctx_.timers().schedule_at(t0 + timing.sync_offset, [this] { sync(); });
}

void Provider::request_block(BlockSerial serial) {
  // Round-robin over governors so retrieval load spreads.
  const NodeId gov = governor_nodes_[serial % governor_nodes_.size()];
  BlockRequestMsg req;
  req.serial = serial;
  const std::uint64_t nonce = ++sync_nonce_;
  rsend(gov, runtime::MsgKind::kBlockRequest, req.encode());
  // A lost request or response must not wedge the sync flag until the next
  // round's sync() re-arm: give up on this attempt after a grace window
  // unless a newer request superseded it.
  ctx_.timers().schedule_after(8 * ctx_.delta(), [this, nonce] {
    if (!sync_in_flight_ || nonce != sync_nonce_) return;
    ++sync_timeouts_;
    sync_in_flight_ = false;
  });
}

void Provider::sync() {
  if (sync_in_flight_) return;
  sync_in_flight_ = true;
  request_block(chain_.height() + 1);
}

void Provider::on_message(const runtime::Message& msg) {
  if (msg.kind == runtime::MsgKind::kReliableData ||
      msg.kind == runtime::MsgKind::kReliableAck) {
    if (channel_) channel_->on_message(msg);
    return;
  }
  if (msg.kind != runtime::MsgKind::kBlockResponse) return;
  BlockResponseMsg resp;
  try {
    resp = BlockResponseMsg::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (!sync_in_flight_) return;
  if (resp.serial != chain_.height() + 1) return;  // stale response

  if (!resp.found) {
    // Caught up with the chain head.
    sync_in_flight_ = false;
    return;
  }

  ledger::Block block;
  try {
    block = ledger::Block::decode(resp.block);
  } catch (const DecodeError&) {
    ++rejected_blocks_;
    sync_in_flight_ = false;
    return;
  }

  // Light-client verification: the proposer must be an enrolled governor and
  // the signature must authenticate; ChainStore::append enforces serial
  // continuity, the hash link and the tx-root commitment.
  const NodeId leader_node = directory_.node_of(block.leader);
  if (!im_.authorize(leader_node, identity::Role::kGovernor, block.signed_preimage(),
                     block.leader_sig)) {
    ++rejected_blocks_;
    sync_in_flight_ = false;
    return;
  }
  try {
    chain_.append(block);
  } catch (const ProtocolError&) {
    ++rejected_blocks_;
    sync_in_flight_ = false;
    return;
  }

  on_block(chain_.head());
  // Chain the next request until the governor reports not-found.
  request_block(chain_.height() + 1);
}

void Provider::on_block(const ledger::Block& block) {
  for (const auto& rec : block.txs) {
    if (rec.tx.provider != id_) continue;
    const auto it = own_.find(rec.tx.id());
    if (it == own_.end()) continue;
    OwnTx& own = it->second;

    if (rec.status == ledger::TxStatus::kCheckedValid ||
        rec.status == ledger::TxStatus::kArguedValid) {
      if (!own.confirmed) {
        own.confirmed = true;
        ++confirmed_valid_;
      }
      continue;
    }

    // (tx, invalid, unchecked): an active provider who knows the transaction
    // is valid invokes argue(tx, s).
    if (active_ && own.valid && !own.argued) {
      own.argued = true;
      ++argued_;
      const ArgueMsg msg = make_argue(id_, own.tx, block.serial, key_);
      if (channel_) {
        const Bytes payload = msg.encode();
        for (const NodeId gov : governor_nodes_) {
          channel_->send(gov, runtime::MsgKind::kArgue, payload);
        }
      } else {
        ctx_.transport().multicast(node_, governor_nodes_, runtime::MsgKind::kArgue,
                                   msg.encode());
      }
    }
  }
}

}  // namespace repchain::protocol
