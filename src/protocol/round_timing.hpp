#pragma once

#include "common/sim_time.hpp"

namespace repchain::protocol {

/// Phase deadlines of one protocol round, as offsets from the round's start
/// time T0. Rounds are self-driving: every governor arms timers for these
/// deadlines itself (Governor::arm_round), so no central coordinator has to
/// poke nodes between phases. The harness only injects the workload during
/// the collecting window and advances the clock.
///
/// All offsets are keyed to the synchrony bound Delta (Transport::max_delay):
/// under the paper's synchronous model every message of a phase lands within
/// Delta of its send, so a deadline of "last send bound + Delta + margin"
/// guarantees the phase has quiesced before the next one fires. Each phase
/// budget below adds at least one Delta of margin beyond the inclusive
/// worst case, which also guarantees no delivery ever collides exactly with
/// a deadline timer (deadline ordering stays unambiguous).
struct RoundTiming {
  /// Election: every governor broadcasts its VRF announcement at T0; all
  /// copies land within Delta.
  SimDuration election_offset = 0;
  /// Collecting phase opens: providers may start submitting transactions.
  SimDuration workload_offset = 0;
  /// How long the collecting window stays open (harness workload span).
  SimDuration workload_span = 0;
  /// Label-gossip deadline (armed only when the equivocation-detection
  /// extension is enabled): uploads and their aggregation windows have
  /// settled by now.
  SimDuration gossip_offset = 0;
  /// The elected leader packs pending records and broadcasts the block.
  SimDuration propose_offset = 0;
  /// Observers sample leader revenue shares here: after the block landed
  /// everywhere, before argues from provider sync mutate reputation.
  SimDuration rewards_offset = 0;
  /// Providers start their light-client sync (and argue on buried txs).
  SimDuration sync_offset = 0;
  /// The leader runs the 3-step stake consensus over this round's transfers.
  SimDuration stake_offset = 0;
  /// Audit point: out-of-band truth revelation for still-unchecked txs.
  SimDuration audit_offset = 0;
  /// The round has fully quiesced; the next round may start here.
  SimDuration round_span = 0;

  /// Derive a conservative schedule from the synchrony bound, the Algorithm 2
  /// aggregation window, and the length of the collecting window.
  [[nodiscard]] static RoundTiming derive(SimDuration delta,
                                          SimDuration aggregation_delta,
                                          SimDuration workload_span,
                                          bool label_gossip) {
    RoundTiming t;
    t.election_offset = 0;
    // VRF copies land within Delta of T0; one Delta of margin.
    t.workload_offset = 2 * delta;
    t.workload_span = workload_span;
    // After the last submission: provider->collector hop + collector->
    // governor hop (2 Delta), then the aggregation window, then margin.
    t.gossip_offset =
        t.workload_offset + workload_span + 2 * delta + aggregation_delta + delta;
    // Gossip broadcasts land within Delta; handlers are local. Skipped
    // entirely when the extension is off.
    t.propose_offset = t.gossip_offset + (label_gossip ? 2 * delta : 0);
    // Block copies land within Delta; a bad block triggers one expel
    // broadcast (one more Delta); plus margin.
    t.rewards_offset = t.propose_offset + 3 * delta;
    t.sync_offset = t.rewards_offset + delta;
    // Light-client sync: request/response round trips (2 Delta each) for the
    // round's new block plus the caught-up probe, then argue multicasts.
    // Budget several round trips so a lagging provider still converges.
    t.stake_offset = t.sync_offset + 10 * delta;
    // Proposal broadcast (Delta), signatures (Delta), commit broadcast
    // (Delta), possible expel evidence (2 Delta), plus margin.
    t.audit_offset = t.stake_offset + 6 * delta;
    t.round_span = t.audit_offset + 2 * delta;
    return t;
  }
};

}  // namespace repchain::protocol
