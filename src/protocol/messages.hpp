#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/ed25519.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"

namespace repchain::protocol {

/// argue(tx, s) of §3.1: a provider disputes a transaction recorded
/// invalid-and-unchecked in block `serial`.
struct ArgueMsg {
  ProviderId provider;
  ledger::Transaction tx;
  BlockSerial serial = 0;
  crypto::Signature provider_sig;  // over the argue preimage

  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ArgueMsg decode(BytesView data);
};

[[nodiscard]] ArgueMsg make_argue(ProviderId provider, const ledger::Transaction& tx,
                                  BlockSerial serial, const crypto::SigningKey& key);

/// One VRF lottery ticket: governor j's evaluation for its stake unit u in
/// round r (§3.4.3). The output is recomputed from the proof on receipt.
struct VrfTicket {
  GovernorId governor;
  std::uint32_t unit = 0;
  crypto::Signature proof;
};

/// All of a governor's tickets for one round, announced to every governor.
struct VrfAnnounceMsg {
  Round round = 0;
  GovernorId governor;
  std::vector<VrfTicket> tickets;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static VrfAnnounceMsg decode(BytesView data);
};

/// VRF input for (round, governor, unit) — the paper's VRF_gj(r, j, u).
[[nodiscard]] Bytes vrf_alpha(Round round, GovernorId governor, std::uint32_t unit);

/// A signed stake transfer between governors (§3.4.3).
struct StakeTxMsg {
  GovernorId from;
  GovernorId to;
  std::uint64_t amount = 0;
  std::uint64_t seq = 0;  // sender-local, prevents replay
  crypto::Signature sig;

  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StakeTxMsg decode(BytesView data);
};

[[nodiscard]] StakeTxMsg make_stake_tx(GovernorId from, GovernorId to,
                                       std::uint64_t amount, std::uint64_t seq,
                                       const crypto::SigningKey& key);

/// Step 1 of the stake consensus: the leader proposes NEW_STATE.
struct StateProposalMsg {
  Round round = 0;
  GovernorId leader;
  Bytes state;  // canonical StakeLedger encoding
  crypto::Signature leader_sig;

  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StateProposalMsg decode(BytesView data);
};

/// Step 2: a governor's signature on the proposal it verified.
struct StateSignatureMsg {
  Round round = 0;
  GovernorId signer;
  crypto::Signature sig;  // over the proposal's signed_preimage

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StateSignatureMsg decode(BytesView data);
};

/// Step 3: the leader packs the state and everyone's signatures.
struct StateCommitMsg {
  Round round = 0;
  GovernorId leader;
  Bytes state;
  std::vector<StateSignatureMsg> signatures;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StateCommitMsg decode(BytesView data);
};

/// retrieve(s) over the network (§3.1: "for each node, he can call
/// retrieve(s)"): ask a governor for the block with a given serial.
struct BlockRequestMsg {
  BlockSerial serial = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static BlockRequestMsg decode(BytesView data);
};

/// Response: the requested block, or found == false past the chain head.
struct BlockResponseMsg {
  BlockSerial serial = 0;
  bool found = false;
  Bytes block;  // encoded ledger::Block when found

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static BlockResponseMsg decode(BytesView data);
};

/// Evidence that the round leader misbehaved (e.g. proposed a state
/// inconsistent with the stake transactions everyone saw); broadcast so other
/// governors can verify and expel the leader (§3.4.3 step 2).
struct ExpelMsg {
  Round round = 0;
  GovernorId accuser;
  GovernorId accused;
  Bytes evidence;  // the offending proposal's encoding
  crypto::Signature accuser_sig;

  [[nodiscard]] Bytes signed_preimage() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ExpelMsg decode(BytesView data);
};

[[nodiscard]] ExpelMsg make_expel(Round round, GovernorId accuser, GovernorId accused,
                                  Bytes evidence, const crypto::SigningKey& key);

}  // namespace repchain::protocol
