#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adversary/byzantine.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "protocol/directory.hpp"
#include "protocol/governor_types.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {

/// The equivocation-detection extension (§4.2: collectors "reporting
/// different results to different governors"): keeps the signed labels this
/// governor received, gossips them to peers, and cross-checks incoming
/// gossip against the local copies. Two valid collector signatures over
/// conflicting labels for the same transaction are a self-contained proof,
/// punished like a forgery (at most once per (collector, tx)).
///
/// Evidence is kept for two round generations: the current round's labels
/// plus the previous round's (conflicts can only surface within the
/// synchrony window), aged out each round so memory stays bounded.
class EquivocationDetector {
 public:
  EquivocationDetector(const identity::IdentityManager& im,
                       const Directory& directory,
                       reputation::ReputationTable& table, GovernorMetrics& metrics)
      : im_(im), directory_(directory), table_(table), metrics_(metrics) {}

  /// Remember a locally received signed label and queue it for gossip.
  void note_label(const ledger::TxId& id, const ledger::LabeledTransaction& ltx);

  /// Round boundary: shift the evidence generations.
  void age_out();

  /// Encode and drain the labels queued since the last gossip; nullopt when
  /// there is nothing to send.
  [[nodiscard]] std::optional<Bytes> take_gossip_payload();

  /// Cross-check a peer's decoded gossip batch against local evidence.
  void on_gossip(const std::vector<ledger::LabeledTransaction>& ltxs);

  /// Decode a gossip payload (as produced by take_gossip_payload) and
  /// cross-check it; malformed payloads are ignored.
  void on_gossip_payload(BytesView payload);

  /// Outcome of recording one signed leader proposal.
  struct ProposalNote {
    /// First time this exact block was seen from its leader at this serial.
    bool fresh = false;
    /// The previously recorded conflicting block, when the leader signed two
    /// different blocks for the same serial (self-contained equivocation
    /// proof; callers build BlockEquivocationEvidence from it).
    std::optional<ledger::Block> conflict;
  };

  /// Record a block proposal for leader-equivocation detection (§3.4.3
  /// extension: the same two-generation window as labels). The leader's
  /// signature is verified here; unsigned blocks are ignored (fresh =
  /// false, no conflict). At most one conflict is reported per
  /// (leader, serial).
  [[nodiscard]] ProposalNote note_proposal(const ledger::Block& block);

  /// True when a conflict was already reported for this leader and serial.
  [[nodiscard]] bool proposal_conflicted(GovernorId leader, BlockSerial serial) const;

  /// Install a callback fired once per fresh punishment (collector
  /// equivocation or leader equivocation) so the host can emit
  /// kByzantineEvidence traces without the detector depending on the
  /// runtime layer. arg is the offender's raw id value.
  void set_evidence(std::function<void(adversary::ByzantineKind, std::uint64_t)> cb) {
    evidence_ = std::move(cb);
  }

 private:
  using LabelGen = std::unordered_map<
      ledger::TxId, std::unordered_map<CollectorId, ledger::LabeledTransaction>,
      ledger::TxIdHash>;

  const identity::IdentityManager& im_;
  const Directory& directory_;
  reputation::ReputationTable& table_;
  GovernorMetrics& metrics_;

  using ProposalGen = std::map<std::pair<std::uint32_t, BlockSerial>, ledger::Block>;

  LabelGen seen_labels_;
  LabelGen seen_labels_prev_;
  std::vector<ledger::LabeledTransaction> ungossiped_;
  std::set<std::pair<std::uint32_t, std::string>> punished_;
  ProposalGen seen_proposals_;
  ProposalGen seen_proposals_prev_;
  std::set<std::pair<std::uint32_t, BlockSerial>> proposal_punished_;
  std::function<void(adversary::ByzantineKind, std::uint64_t)> evidence_;
};

}  // namespace repchain::protocol
