#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "identity/identity_manager.hpp"
#include "ledger/transaction.hpp"
#include "protocol/directory.hpp"
#include "protocol/governor_types.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {

/// The equivocation-detection extension (§4.2: collectors "reporting
/// different results to different governors"): keeps the signed labels this
/// governor received, gossips them to peers, and cross-checks incoming
/// gossip against the local copies. Two valid collector signatures over
/// conflicting labels for the same transaction are a self-contained proof,
/// punished like a forgery (at most once per (collector, tx)).
///
/// Evidence is kept for two round generations: the current round's labels
/// plus the previous round's (conflicts can only surface within the
/// synchrony window), aged out each round so memory stays bounded.
class EquivocationDetector {
 public:
  EquivocationDetector(const identity::IdentityManager& im,
                       const Directory& directory,
                       reputation::ReputationTable& table, GovernorMetrics& metrics)
      : im_(im), directory_(directory), table_(table), metrics_(metrics) {}

  /// Remember a locally received signed label and queue it for gossip.
  void note_label(const ledger::TxId& id, const ledger::LabeledTransaction& ltx);

  /// Round boundary: shift the evidence generations.
  void age_out();

  /// Encode and drain the labels queued since the last gossip; nullopt when
  /// there is nothing to send.
  [[nodiscard]] std::optional<Bytes> take_gossip_payload();

  /// Cross-check a peer's decoded gossip batch against local evidence.
  void on_gossip(const std::vector<ledger::LabeledTransaction>& ltxs);

  /// Decode a gossip payload (as produced by take_gossip_payload) and
  /// cross-check it; malformed payloads are ignored.
  void on_gossip_payload(BytesView payload);

 private:
  using LabelGen = std::unordered_map<
      ledger::TxId, std::unordered_map<CollectorId, ledger::LabeledTransaction>,
      ledger::TxIdHash>;

  const identity::IdentityManager& im_;
  const Directory& directory_;
  reputation::ReputationTable& table_;
  GovernorMetrics& metrics_;

  LabelGen seen_labels_;
  LabelGen seen_labels_prev_;
  std::vector<ledger::LabeledTransaction> ungossiped_;
  std::set<std::pair<std::uint32_t, std::string>> punished_;
};

}  // namespace repchain::protocol
