#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/chain.hpp"
#include "ledger/validation_oracle.hpp"
#include "net/atomic_broadcast.hpp"
#include "protocol/argue_buffer.hpp"
#include "protocol/directory.hpp"
#include "protocol/leader_election.hpp"
#include "protocol/messages.hpp"
#include "protocol/screening.hpp"
#include "protocol/stake.hpp"

namespace repchain::protocol {

/// Governor configuration.
struct GovernorConfig {
  reputation::ReputationParams rep;
  /// b_limit: maximum transactions per block (§3.1).
  std::size_t block_limit = 1000;
  /// Aggregation window Delta after a transaction's first report (the
  /// starttime/endtime timer of Algorithm 2).
  SimDuration aggregation_delta = 25 * kMillisecond;
  /// Extension (§4.2: collectors "reporting different results to different
  /// governors"): when enabled, governors gossip the signed labels they
  /// received; two valid collector signatures over conflicting labels for
  /// the same transaction are a self-contained equivocation proof, punished
  /// like a forgery.
  bool enable_label_gossip = false;
};

/// Loss bookkeeping on one unchecked transaction, kept for the experiments:
/// the paper's L counts 2 per unchecked transaction whose true state was
/// valid (it was recorded invalid).
struct UncheckedEntry {
  ledger::Transaction tx;
  std::vector<reputation::Report> reports;  // screening-time snapshot
  double expected_loss = 0.0;               // L_tx at screening time (metric)
  bool truly_valid = false;                 // ground truth (metric only)
  bool revealed = false;
};

/// Governor metrics for the benches.
struct GovernorMetrics {
  std::uint64_t uploads_received = 0;
  std::uint64_t uploads_rejected = 0;   // bad collector signature / unknown
  std::uint64_t forgeries_detected = 0;
  std::uint64_t duplicate_reports = 0;
  std::uint64_t argues_received = 0;
  std::uint64_t argues_accepted = 0;
  std::uint64_t argues_rejected_late = 0;
  std::uint64_t argue_validations = 0;
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_rejected = 0;
  std::uint64_t equivocations_detected = 0;
  std::uint64_t uploads_invisible = 0;  // from collectors outside this
                                        // governor's partial view
  /// Realized mistakes: unchecked transactions whose revealed truth was
  /// valid (each costs the paper's loss of 2).
  std::uint64_t mistakes = 0;
  /// Sum of L_tx over all unchecked transactions (paper's expected loss).
  double expected_loss = 0.0;
  /// Realized loss 2 * (# unchecked with true state valid), counted at
  /// screening time from ground truth (metric only; the governor itself
  /// learns it only on reveal).
  double realized_loss = 0.0;
};

/// A governor node (tier 3): screens uploaded transactions per Algorithm 2,
/// maintains the local reputation vectors (Algorithm 3), takes part in
/// VRF-PoS leader election, proposes/validates blocks, serves argue
/// requests, and runs the 3-step stake consensus (§3.4).
class Governor {
 public:
  /// `visible_collectors` empty means the §3.1 default (a governor has
  /// connection with all collectors); otherwise the governor only perceives
  /// uploads from — and keeps reputation for — the listed collectors
  /// (partial-information deployments, §3.1: "the structure of the network
  /// can be adjusted").
  Governor(GovernorId id, NodeId node, crypto::SigningKey key, net::SimNetwork& net,
           const identity::IdentityManager& im, ledger::ValidationOracle& oracle,
           const Directory& directory, net::AtomicBroadcastGroup& governor_group,
           GovernorConfig config, StakeLedger genesis_stake, Rng rng,
           std::vector<CollectorId> visible_collectors = {});

  // The screening engine holds references into this object; Governor is
  // pinned in memory (store it in a std::deque or behind a pointer).
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;
  Governor(Governor&&) = delete;
  Governor& operator=(Governor&&) = delete;

  /// Network delivery entry point; dispatches on message kind.
  void on_message(const net::Message& msg);

  // --- Round driving (called by the scenario runner) -----------------------

  /// Start round r: reset election state and broadcast own VRF tickets.
  void begin_round(Round round);

  /// True iff the election is complete and this governor won.
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] std::optional<GovernorId> round_leader() const;

  /// Leader packs up to block_limit pending records and broadcasts the block.
  /// No-op for non-leaders or before the election completes.
  void propose_if_leader();

  /// Leader runs the 3-step stake consensus over this round's stake
  /// transfers (no-op when there are none).
  void run_stake_consensus_if_leader();

  /// Queue a stake transfer (broadcast to all governors, §3.4.3).
  void submit_stake_transfer(GovernorId to, std::uint64_t amount);

  /// Equivocation-detection extension: broadcast the signed labels received
  /// since the last gossip so peers can cross-check against their own copies
  /// (no-op unless config.enable_label_gossip).
  void gossip_labels();

  /// Audit hook for the experiments: reveal the true state of an unchecked
  /// transaction through "other evidence" (not an argue; no block append).
  /// Triggers the Algorithm 3 case-3 update. Returns false if unknown or
  /// already revealed.
  bool reveal_unchecked(const ledger::TxId& id);

  /// Ids of unchecked transactions still unrevealed (oldest first).
  [[nodiscard]] std::vector<ledger::TxId> unrevealed_unchecked() const;

  /// For a byzantine-leader test: corrupt the stake state this leader
  /// proposes.
  void set_cheat_stake_consensus(bool cheat) { cheat_stake_ = cheat; }

  /// Checkpoint the governor's durable state — chain, reputation table,
  /// stake ledger — as one verifiable blob. Transient round state (pending
  /// aggregations, argue buffer, election) is intentionally not persisted:
  /// a restarted governor rejoins at the next round boundary. Unchecked
  /// report snapshots are also dropped, so case-3 updates for transactions
  /// screened before the checkpoint are unavailable after a restore (a
  /// bounded, documented loss, like the paper's U-latency).
  [[nodiscard]] Bytes checkpoint() const;

  /// Restore a checkpoint produced by `checkpoint()` on a governor with the
  /// same identity/configuration. Throws DecodeError/ProtocolError on
  /// malformed or tampered input.
  void restore(BytesView data);

  // --- Accessors ------------------------------------------------------------

  [[nodiscard]] GovernorId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const ledger::ChainStore& chain() const { return chain_; }
  [[nodiscard]] const reputation::ReputationTable& reputation() const { return table_; }
  [[nodiscard]] const ScreeningStats& screening_stats() const { return engine_.stats(); }
  [[nodiscard]] const GovernorMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const StakeLedger& stake() const { return stake_; }
  [[nodiscard]] const std::set<GovernorId>& expelled() const { return expelled_; }
  [[nodiscard]] std::size_t pending_txs() const { return pending_.size(); }
  [[nodiscard]] const ArgueBuffer& argue_buffer() const { return argue_buffer_; }
  /// True iff this governor perceives `collector` (always true in the
  /// full-visibility default).
  [[nodiscard]] bool sees(CollectorId collector) const {
    return visible_.empty() || visible_.contains(collector);
  }
  /// Revenue shares from this governor's local reputation (§3.4.3); when this
  /// governor leads a round, these shares split the round's collector reward.
  [[nodiscard]] std::vector<std::pair<CollectorId, double>> revenue_shares() const {
    return table_.revenue_shares();
  }
  /// All unchecked entries (screening-time report snapshots + ground truth),
  /// for the loss/regret analyses of experiments E1/E4.
  [[nodiscard]] const std::unordered_map<ledger::TxId, UncheckedEntry,
                                         ledger::TxIdHash>&
  unchecked_entries() const {
    return unchecked_;
  }

 private:
  struct Aggregation {
    ledger::Transaction tx;
    std::vector<reputation::Report> reports;
    std::unordered_set<CollectorId> reporters;
    bool screened = false;
  };

  void on_upload(const net::Message& msg);
  void on_argue(const net::Message& msg);
  void on_vrf(const net::Message& msg);
  void on_block_proposal(const net::Message& msg);
  void on_stake_tx(const net::Message& msg);
  void on_state_proposal(const net::Message& msg);
  void on_state_signature(const net::Message& msg);
  void on_state_commit(const net::Message& msg);
  void on_expel(const net::Message& msg);
  void on_label_gossip(const net::Message& msg);

  void screen_aggregation(const ledger::TxId& id);
  void apply_reveal(const ledger::TxId& id, UncheckedEntry& entry, bool truth);
  [[nodiscard]] StakeLedger expected_stake_state() const;
  void broadcast_expel(GovernorId accused, Bytes evidence);

  GovernorId id_;
  NodeId node_;
  crypto::SigningKey key_;
  net::SimNetwork& net_;
  const identity::IdentityManager& im_;
  ledger::ValidationOracle& oracle_;
  const Directory& directory_;
  net::AtomicBroadcastGroup& group_;
  GovernorConfig config_;
  Rng rng_;
  std::set<CollectorId> visible_;  // empty = all

  reputation::ReputationTable table_;
  ScreeningEngine engine_;
  ledger::ChainStore chain_;
  StakeLedger stake_;
  ArgueBuffer argue_buffer_;
  GovernorMetrics metrics_;

  Round round_ = 0;
  std::optional<ElectionState> election_;
  std::set<GovernorId> expelled_;

  // Screening state.
  std::unordered_map<ledger::TxId, Aggregation, ledger::TxIdHash> aggregations_;
  // Signed labels seen per (tx, collector) — evidence base for the
  // equivocation-detection extension. Two generations: the current round's
  // labels plus the previous round's (conflicts can only surface within the
  // synchrony window), pruned at begin_round so memory stays bounded.
  using LabelGen = std::unordered_map<
      ledger::TxId, std::unordered_map<CollectorId, ledger::LabeledTransaction>,
      ledger::TxIdHash>;
  LabelGen seen_labels_;
  LabelGen seen_labels_prev_;
  std::vector<ledger::LabeledTransaction> ungossiped_;
  std::set<std::pair<std::uint32_t, std::string>> punished_equivocations_;
  std::unordered_map<ledger::TxId, UncheckedEntry, ledger::TxIdHash> unchecked_;
  std::deque<ledger::TxId> unchecked_order_;
  std::vector<ledger::TxRecord> pending_;
  std::unordered_set<ledger::TxId, ledger::TxIdHash> packed_;  // already in a block

  // Stake consensus state.
  std::uint64_t stake_seq_ = 0;
  // Highest stake-tx sequence accepted per sender: transfers are broadcast
  // in sequence order (atomic broadcast preserves it), so anything at or
  // below the high-water mark is a replay.
  std::unordered_map<GovernorId, std::uint64_t> stake_seq_seen_;
  std::vector<StakeTxMsg> round_stake_txs_;
  std::optional<StateProposalMsg> current_proposal_;
  std::vector<StateSignatureMsg> collected_sigs_;
  std::set<GovernorId> sig_senders_;
  bool cheat_stake_ = false;
};

}  // namespace repchain::protocol
