#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "adversary/byzantine.hpp"
#include "adversary/evidence.hpp"
#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/chain.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/argue_service.hpp"
#include "protocol/block_assembly.hpp"
#include "protocol/directory.hpp"
#include "protocol/equivocation_detector.hpp"
#include "protocol/governor_types.hpp"
#include "protocol/leader_election.hpp"
#include "protocol/messages.hpp"
#include "protocol/round_timing.hpp"
#include "protocol/screening.hpp"
#include "protocol/screening_intake.hpp"
#include "protocol/stake_consensus.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/node_context.hpp"
#include "runtime/reliable_channel.hpp"
#include "storage/node_state_store.hpp"

namespace repchain::protocol {

/// A governor node (tier 3), composed from focused units:
///   - ScreeningIntake       upload auth + Delta-window report aggregation
///   - ScreeningEngine       Algorithm 2 decision core (+ Algorithm 3 case 2)
///   - ArgueService          unchecked/argue/reveal bookkeeping (case 3)
///   - BlockAssembler        TXList accumulation and block packing
///   - StakeConsensus        stake ledger + the 3-step consensus (§3.4.3)
///   - EquivocationDetector  label-gossip cross-checking extension (§4.2)
/// This class is the facade: message authentication, dispatch, leader
/// election, timer-driven round phases, and checkpointing.
///
/// The governor sees its host only through runtime::NodeContext (transport,
/// timers, rng, trace sink) — it runs unchanged under the simulator or any
/// other runtime.
class Governor {
 public:
  /// `visible_collectors` empty means the §3.1 default (a governor has
  /// connection with all collectors); otherwise the governor only perceives
  /// uploads from — and keeps reputation for — the listed collectors
  /// (partial-information deployments, §3.1: "the structure of the network
  /// can be adjusted").
  /// `store` (optional) attaches durable state: every committed block is
  /// WAL-appended and every stake-transform commit (plus every
  /// config.snapshot_interval blocks, if set) persists a checkpoint()
  /// snapshot and truncates the log. Construction does not read the store —
  /// call recover_from_store() to replay a previous incarnation's state.
  Governor(GovernorId id, runtime::NodeContext& ctx, crypto::SigningKey key,
           const identity::IdentityManager& im, ledger::ValidationOracle& oracle,
           const Directory& directory, runtime::Broadcaster& governor_group,
           GovernorConfig config, StakeLedger genesis_stake,
           std::vector<CollectorId> visible_collectors = {},
           storage::NodeStateStore* store = nullptr);

  // The screening engine holds references into this object; Governor is
  // pinned in memory (store it in a std::deque or behind a pointer).
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;
  Governor(Governor&&) = delete;
  Governor& operator=(Governor&&) = delete;

  /// Network delivery entry point; dispatches on message kind.
  void on_message(const runtime::Message& msg);

  // --- Round driving --------------------------------------------------------
  //
  // Rounds are self-driving: arm_round schedules every phase deadline of one
  // round on the node's own timers (keyed to the synchrony bound Delta via
  // RoundTiming), so no external coordinator pokes the governor between
  // phases. The begin_round/propose_if_leader/... entry points remain public
  // for surgical tests that drive phases by hand.

  /// Schedule all phase deadlines of `round` starting at absolute time `t0`.
  void arm_round(Round round, SimTime t0, const RoundTiming& timing);

  /// Fully autonomous mode: arm `first` now and chain each following round
  /// after round_span, forever. Used where no harness exists at all.
  void drive_rounds(Round first, const RoundTiming& timing);

  /// Autonomous mode with an explicit start time: free-running cluster nodes
  /// align their local round boundaries to a driver-announced t0 (now or in
  /// the near future) so peers begin each round within network skew of each
  /// other rather than at whatever instant the process came up.
  void drive_rounds(Round first, SimTime t0, const RoundTiming& timing);

  /// Start round r: reset election state and broadcast own VRF tickets.
  void begin_round(Round round);

  /// True iff the election is complete and this governor won.
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] std::optional<GovernorId> round_leader() const;

  /// Leader packs up to block_limit pending records and broadcasts the block.
  /// No-op for non-leaders or before the election completes.
  void propose_if_leader();

  /// Leader runs the 3-step stake consensus over this round's stake
  /// transfers (no-op when there are none).
  void run_stake_consensus_if_leader();

  /// Queue a stake transfer (broadcast to all governors, §3.4.3).
  void submit_stake_transfer(GovernorId to, std::uint64_t amount);

  /// Equivocation-detection extension: broadcast the signed labels received
  /// since the last gossip so peers can cross-check against their own copies
  /// (no-op unless config.enable_label_gossip).
  void gossip_labels();

  /// Audit hook for the experiments: reveal the true state of an unchecked
  /// transaction through "other evidence" (not an argue; no block append).
  /// Triggers the Algorithm 3 case-3 update. Returns false if unknown or
  /// already revealed.
  bool reveal_unchecked(const ledger::TxId& id);

  /// Ids of unchecked transactions still unrevealed (oldest first).
  [[nodiscard]] std::vector<ledger::TxId> unrevealed_unchecked() const;

  /// For a byzantine-leader test: corrupt the stake state this leader
  /// proposes.
  void set_cheat_stake_consensus(bool cheat) { stake_consensus_.set_cheat(cheat); }

  /// Install (or clear) in-protocol Byzantine behaviors — the adversary
  /// layer's equivocating leader and lying sync peer. Scenario harnesses
  /// flip these per round window; all flags default to honest.
  void set_byzantine(adversary::GovernorByzantine byz) { byz_ = byz; }
  [[nodiscard]] const adversary::GovernorByzantine& byzantine() const { return byz_; }

  /// Checkpoint the governor's durable state — chain, reputation table,
  /// stake ledger, and the unchecked entries with their screening-time
  /// report snapshots (format v2; v1 dropped them, losing case-3 updates
  /// across a restore) — as one verifiable blob. Round transients (pending
  /// aggregations, election) are intentionally not persisted: a restarted
  /// governor rejoins at the next round boundary.
  [[nodiscard]] Bytes checkpoint() const;

  /// Restore a checkpoint produced by `checkpoint()` on a governor with the
  /// same identity/configuration. Accepts the current v2 format and legacy
  /// v1 blobs (whose unchecked entries are absent and stay dropped). Throws
  /// DecodeError/ProtocolError on malformed or tampered input.
  void restore(BytesView data);

  // --- Durable state --------------------------------------------------------

  /// Rebuild state from the attached NodeStateStore: load the latest
  /// snapshot (if any), replay the WAL tail on top of it (skipping records
  /// the snapshot already covers), and re-audit the resulting chain. Throws
  /// ProtocolError if the audit fails; no-op without a store. Call before
  /// arming rounds on a restarted node, then sync_chain() to catch up with
  /// blocks committed while it was down.
  void recover_from_store();

  /// Catch up with peers: request blocks above the local head from the
  /// other governors (the provider light-client sync, reused node-to-node).
  /// No-op while a sync is already in flight or when there are no peers.
  void sync_chain();

  // --- Accessors ------------------------------------------------------------

  [[nodiscard]] GovernorId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const ledger::ChainStore& chain() const { return chain_; }
  [[nodiscard]] const reputation::ReputationTable& reputation() const { return table_; }
  [[nodiscard]] const ScreeningStats& screening_stats() const { return engine_.stats(); }
  [[nodiscard]] const GovernorMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const StakeLedger& stake() const { return stake_consensus_.stake(); }
  [[nodiscard]] const std::set<GovernorId>& expelled() const { return expelled_; }
  [[nodiscard]] std::size_t pending_txs() const { return assembler_.pending_count(); }
  [[nodiscard]] const ArgueBuffer& argue_buffer() const { return argues_.buffer(); }
  /// True iff this governor perceives `collector` (always true in the
  /// full-visibility default).
  [[nodiscard]] bool sees(CollectorId collector) const { return intake_.sees(collector); }
  /// Revenue shares from this governor's local reputation (§3.4.3); when this
  /// governor leads a round, these shares split the round's collector reward.
  [[nodiscard]] std::vector<std::pair<CollectorId, double>> revenue_shares() const {
    return table_.revenue_shares();
  }
  /// All unchecked entries (screening-time report snapshots + ground truth),
  /// for the loss/regret analyses of experiments E1/E4.
  [[nodiscard]] const std::unordered_map<ledger::TxId, UncheckedEntry,
                                         ledger::TxIdHash>&
  unchecked_entries() const {
    return argues_.entries();
  }
  /// The reliable channel, or nullptr when config.reliable_delivery is off.
  [[nodiscard]] const runtime::ReliableChannel* channel() const {
    return channel_ ? &*channel_ : nullptr;
  }
  /// Watchdog surfacing for free-running observers: the round the governor
  /// is currently in and how many consecutive rounds ended without a commit.
  [[nodiscard]] Round current_round() const { return round_; }
  [[nodiscard]] std::size_t stalled_rounds() const { return stalled_rounds_; }

  /// Transport reconnect notification: refresh the reliable channel's retry
  /// budget for `peer` (no-op without a channel). Wire this to
  /// TcpTransport::set_reconnect_hook on live deployments.
  void on_peer_reconnected(NodeId peer) {
    if (channel_) channel_->on_peer_reconnect(peer);
  }

 private:
  void on_argue(const runtime::Message& msg);
  void on_vrf(const runtime::Message& msg);
  void on_block_proposal(const runtime::Message& msg);
  void on_stake_tx(const runtime::Message& msg);
  void on_state_proposal(const runtime::Message& msg);
  void on_state_signature(const runtime::Message& msg);
  void on_state_commit(const runtime::Message& msg);
  void on_expel(const runtime::Message& msg);
  void on_label_gossip(const runtime::Message& msg);
  void on_block_request(const runtime::Message& msg);
  void on_block_response(const runtime::Message& msg);

  void broadcast_expel(GovernorId accused, Bytes evidence);
  void emit(runtime::TraceKind kind, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);
  /// Emit a kByzantineEvidence trace (and count it in the metrics).
  void emit_byzantine(adversary::ByzantineKind kind, std::uint64_t offender);

  /// Unicast through the reliable channel when one is configured, else the
  /// bare transport.
  void rsend(NodeId to, runtime::MsgKind kind, const Bytes& payload);
  /// Governor-group broadcast: the atomic broadcast group by default; in
  /// reliable mode, per-peer channel sends plus a synchronous local loopback
  /// (the channel guarantees delivery, not total order — every reliable-mode
  /// receive path is order-tolerant).
  void rbroadcast(runtime::MsgKind kind, const Bytes& payload);
  /// Reliable-mode degraded election closure (majority quorum) at propose
  /// time; no-op otherwise.
  void close_election();
  /// Winner check + stash-or-adopt for a proposal that cleared the
  /// byzantine-defense gate (or arrived with the defense off).
  void settle_proposal(ledger::Block block);
  /// A leader signed two conflicting blocks for one serial: reject, expel
  /// locally, and broadcast the self-contained evidence to peers.
  void handle_proposal_equivocation(const ledger::Block& prior,
                                    const ledger::Block& offending);
  /// Serial/link/authenticity checks + append for a proposal whose leader
  /// legitimacy has already been established.
  void adopt_proposal(ledger::Block block);
  /// Byzantine defense: record that `peer` served an invalid or outvoted
  /// sync response; distrusted peers are deprioritized in request_block.
  void note_lying_peer(NodeId peer);
  /// Re-evaluate proposals stashed while this round's winner was undecided
  /// (see pending_proposals_).
  void retry_pending_proposals();
  /// Liveness watchdog (config.watchdog_rounds): fires at each round end.
  void watchdog_check();
  [[nodiscard]] SimDuration sync_timeout() const;

  /// Ask a peer governor for block `serial` (round-robin over peers).
  void request_block(BlockSerial serial);
  /// Sync finished (caught up or failed): settle stashed future blocks.
  void finish_sync();
  /// Adopt stashed future blocks that have become contiguous with the head.
  void drain_stash();
  /// WAL-append a committed block; snapshot every config.snapshot_interval
  /// and compact at the captured recovery point once the log holds
  /// config.wal_compaction_appends blocks.
  void persist_block(const ledger::Block& block);
  /// Persist a checkpoint snapshot (truncates the WAL). No-op without store.
  void persist_snapshot();
  /// Stake-transform commit landed: either snapshot eagerly (default) or,
  /// under WAL compaction, capture the checkpoint as the pending recovery
  /// point for the next compaction.
  void persist_recovery_point();

  GovernorId id_;
  runtime::NodeContext& ctx_;
  NodeId node_;
  crypto::SigningKey key_;
  const identity::IdentityManager& im_;
  ledger::ValidationOracle& oracle_;
  const Directory& directory_;
  runtime::Broadcaster& group_;
  GovernorConfig config_;
  std::set<CollectorId> visible_;  // empty = all

  reputation::ReputationTable table_;
  GovernorMetrics metrics_;
  ScreeningEngine engine_;
  ledger::ChainStore chain_;
  BlockAssembler assembler_;
  ArgueService argues_;
  StakeConsensus stake_consensus_;
  EquivocationDetector equivocation_;
  ScreeningIntake intake_;

  // Adversary layer: installed Byzantine behaviors (all-honest by default).
  adversary::GovernorByzantine byz_;

  Round round_ = 0;
  std::optional<ElectionState> election_;
  bool leader_announced_ = false;  // trace: kLeaderElected emitted this round
  std::set<GovernorId> expelled_;
  // Held equivocation proofs per expelled governor, re-broadcast (at most
  // once per round) when the offender is seen proposing again — so replicas
  // that crashed past the original expel broadcast re-learn the expulsion.
  std::map<GovernorId, Bytes> expel_evidence_;
  Round expel_reshare_round_ = 0;

  // Reliable delivery (config.reliable_delivery).
  std::optional<runtime::ReliableChannel> channel_;

  // Liveness watchdog (config.watchdog_rounds).
  std::size_t stalled_rounds_ = 0;
  BlockSerial round_start_height_ = 0;

  // Durable state + catch-up sync.
  storage::NodeStateStore* store_ = nullptr;
  std::size_t blocks_since_snapshot_ = 0;
  std::size_t wal_appends_ = 0;  // records currently in the store's log
  /// Checkpoint captured at the latest stake-transform commit, deferred
  /// until the log grows past config.wal_compaction_appends (WAL compaction
  /// only; the eager path snapshots immediately instead).
  struct RecoveryPoint {
    Bytes checkpoint;
    std::size_t covered_records = 0;  // WAL length when it was captured
  };
  std::optional<RecoveryPoint> recovery_point_;
  std::vector<NodeId> sync_peers_;  // other governors' nodes
  bool sync_in_flight_ = false;
  std::uint64_t sync_nonce_ = 0;  // guards the per-request timeout timers
  std::uint64_t sync_attempts_ = 0;  // rotates the polled peer across retries
  // Peers that reported nothing above our head in the current sync pass. One
  // such answer is not proof of being caught up (the peer may be exactly as
  // far behind — e.g. our partition island mate); the pass only concludes
  // once a majority of peers agree.
  std::size_t sync_not_found_ = 0;
  // Reliable-mode hold-down: a governor that restarted — or that committed
  // nothing in the previous round and so may have silently fallen behind —
  // must not announce in elections (and so can never lead) until one sync
  // pass completes: a stale winner would fork itself by proposing on an
  // outdated chain. While recovering, a timed-out sync retries against the
  // next peer.
  bool recovering_ = false;
  // True once a sync pass has confirmed the head since the last commit.
  // Bounds the stall-triggered hold-down to one round per stall episode, so
  // a cluster-wide stall (e.g. a quorum-splitting partition) cannot keep
  // every governor out of the election forever.
  bool head_checked_ = false;
  // Byzantine defense: sync responses are corroborated before adoption —
  // a block is appended only once two distinct peers served byte-identical
  // encodings (single-peer topologies adopt directly). Losing candidates'
  // servers are distrusted and skipped by later request_block rotations.
  struct SyncCandidate {
    Bytes encoding;
    std::set<NodeId> peers;
  };
  std::map<BlockSerial, std::vector<SyncCandidate>> sync_candidates_;
  std::set<NodeId> distrusted_peers_;
  // Authenticated proposals from ahead of our head (we missed blocks while
  // down): stashed until sync fills the gap, rejected if it cannot.
  std::map<BlockSerial, ledger::Block> future_blocks_;
  // Proposals whose leader check failed while this round's winner was still
  // undecided (election not yet closed, or announcements still in flight):
  // re-evaluated on every fresh announcement and at close, dropped at the
  // next begin_round. Without the retry, a proposal racing ahead of its
  // election — common right after a heal or restart — is rejected forever
  // even though the reliable channel delivered it exactly once.
  std::vector<ledger::Block> pending_proposals_;
  // Announcements that arrived for a round this replica has not begun yet.
  // Every governor announces exactly at the round boundary, so on real
  // clocks sub-millisecond timer skew routinely lands a peer's announcement
  // while the local election still belongs to the previous round; dropping
  // it would silently shrink the election view (and fork the chain whenever
  // the dropped ticket was the winner). Replayed at the next begin_round,
  // bounded to the immediately following rounds.
  static constexpr std::size_t kMaxEarlyAnnouncements = 64;
  std::vector<runtime::Message> early_announcements_;

  // Self-driving mode (drive_rounds).
  bool auto_rounds_ = false;
  RoundTiming auto_timing_;
};

}  // namespace repchain::protocol
