#include "protocol/messages.hpp"

#include "common/serial.hpp"

namespace repchain::protocol {

// --- ArgueMsg ---------------------------------------------------------------

Bytes ArgueMsg::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-argue-v1");
  w.u32(provider.value());
  w.bytes(tx.encode());
  w.u64(serial);
  return std::move(w).take();
}

Bytes ArgueMsg::encode() const {
  BinaryWriter w;
  w.u32(provider.value());
  w.bytes(tx.encode());
  w.u64(serial);
  w.raw(view(provider_sig.bytes));
  return std::move(w).take();
}

ArgueMsg ArgueMsg::decode(BytesView data) {
  BinaryReader r(data);
  ArgueMsg m;
  m.provider = ProviderId(r.u32());
  m.tx = ledger::Transaction::decode(r.bytes());
  m.serial = r.u64();
  m.provider_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

ArgueMsg make_argue(ProviderId provider, const ledger::Transaction& tx,
                    BlockSerial serial, const crypto::SigningKey& key) {
  ArgueMsg m;
  m.provider = provider;
  m.tx = tx;
  m.serial = serial;
  m.provider_sig = key.sign(m.signed_preimage());
  return m;
}

// --- VRF announce ------------------------------------------------------------

Bytes vrf_alpha(Round round, GovernorId governor, std::uint32_t unit) {
  BinaryWriter w;
  w.str("repchain-leader-vrf-v1");
  w.u64(round);
  w.u32(governor.value());
  w.u32(unit);
  return std::move(w).take();
}

Bytes VrfAnnounceMsg::encode() const {
  BinaryWriter w;
  w.u64(round);
  w.u32(governor.value());
  w.u32(static_cast<std::uint32_t>(tickets.size()));
  for (const auto& t : tickets) {
    w.u32(t.governor.value());
    w.u32(t.unit);
    w.raw(view(t.proof.bytes));
  }
  return std::move(w).take();
}

VrfAnnounceMsg VrfAnnounceMsg::decode(BytesView data) {
  BinaryReader r(data);
  VrfAnnounceMsg m;
  m.round = r.u64();
  m.governor = GovernorId(r.u32());
  const auto n = r.u32();
  r.expect_count(n, 4 + 4 + 64);  // governor + unit + proof per ticket
  m.tickets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    VrfTicket t;
    t.governor = GovernorId(r.u32());
    t.unit = r.u32();
    t.proof.bytes = r.raw_array<64>();
    m.tickets.push_back(t);
  }
  r.expect_done();
  return m;
}

// --- Stake transfer ----------------------------------------------------------

Bytes StakeTxMsg::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-stake-tx-v1");
  w.u32(from.value());
  w.u32(to.value());
  w.u64(amount);
  w.u64(seq);
  return std::move(w).take();
}

Bytes StakeTxMsg::encode() const {
  BinaryWriter w;
  w.u32(from.value());
  w.u32(to.value());
  w.u64(amount);
  w.u64(seq);
  w.raw(view(sig.bytes));
  return std::move(w).take();
}

StakeTxMsg StakeTxMsg::decode(BytesView data) {
  BinaryReader r(data);
  StakeTxMsg m;
  m.from = GovernorId(r.u32());
  m.to = GovernorId(r.u32());
  m.amount = r.u64();
  m.seq = r.u64();
  m.sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

StakeTxMsg make_stake_tx(GovernorId from, GovernorId to, std::uint64_t amount,
                         std::uint64_t seq, const crypto::SigningKey& key) {
  StakeTxMsg m;
  m.from = from;
  m.to = to;
  m.amount = amount;
  m.seq = seq;
  m.sig = key.sign(m.signed_preimage());
  return m;
}

// --- Stake consensus (3-step) --------------------------------------------------

Bytes StateProposalMsg::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-state-proposal-v1");
  w.u64(round);
  w.u32(leader.value());
  w.bytes(state);
  return std::move(w).take();
}

Bytes StateProposalMsg::encode() const {
  BinaryWriter w;
  w.u64(round);
  w.u32(leader.value());
  w.bytes(state);
  w.raw(view(leader_sig.bytes));
  return std::move(w).take();
}

StateProposalMsg StateProposalMsg::decode(BytesView data) {
  BinaryReader r(data);
  StateProposalMsg m;
  m.round = r.u64();
  m.leader = GovernorId(r.u32());
  m.state = r.bytes();
  m.leader_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

Bytes StateSignatureMsg::encode() const {
  BinaryWriter w;
  w.u64(round);
  w.u32(signer.value());
  w.raw(view(sig.bytes));
  return std::move(w).take();
}

StateSignatureMsg StateSignatureMsg::decode(BytesView data) {
  BinaryReader r(data);
  StateSignatureMsg m;
  m.round = r.u64();
  m.signer = GovernorId(r.u32());
  m.sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

Bytes StateCommitMsg::encode() const {
  BinaryWriter w;
  w.u64(round);
  w.u32(leader.value());
  w.bytes(state);
  w.u32(static_cast<std::uint32_t>(signatures.size()));
  for (const auto& s : signatures) w.bytes(s.encode());
  return std::move(w).take();
}

StateCommitMsg StateCommitMsg::decode(BytesView data) {
  BinaryReader r(data);
  StateCommitMsg m;
  m.round = r.u64();
  m.leader = GovernorId(r.u32());
  m.state = r.bytes();
  const auto n = r.u32();
  r.expect_count(n, 4);  // each signature entry is length-prefixed
  m.signatures.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.signatures.push_back(StateSignatureMsg::decode(r.bytes()));
  }
  r.expect_done();
  return m;
}

// --- Block retrieval -------------------------------------------------------------

Bytes BlockRequestMsg::encode() const {
  BinaryWriter w;
  w.u64(serial);
  return std::move(w).take();
}

BlockRequestMsg BlockRequestMsg::decode(BytesView data) {
  BinaryReader r(data);
  BlockRequestMsg m;
  m.serial = r.u64();
  r.expect_done();
  return m;
}

Bytes BlockResponseMsg::encode() const {
  BinaryWriter w;
  w.u64(serial);
  w.boolean(found);
  w.bytes(block);
  return std::move(w).take();
}

BlockResponseMsg BlockResponseMsg::decode(BytesView data) {
  BinaryReader r(data);
  BlockResponseMsg m;
  m.serial = r.u64();
  m.found = r.boolean();
  m.block = r.bytes();
  r.expect_done();
  return m;
}

// --- Expulsion -----------------------------------------------------------------

Bytes ExpelMsg::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-expel-v1");
  w.u64(round);
  w.u32(accuser.value());
  w.u32(accused.value());
  w.bytes(evidence);
  return std::move(w).take();
}

Bytes ExpelMsg::encode() const {
  BinaryWriter w;
  w.u64(round);
  w.u32(accuser.value());
  w.u32(accused.value());
  w.bytes(evidence);
  w.raw(view(accuser_sig.bytes));
  return std::move(w).take();
}

ExpelMsg ExpelMsg::decode(BytesView data) {
  BinaryReader r(data);
  ExpelMsg m;
  m.round = r.u64();
  m.accuser = GovernorId(r.u32());
  m.accused = GovernorId(r.u32());
  m.evidence = r.bytes();
  m.accuser_sig.bytes = r.raw_array<64>();
  r.expect_done();
  return m;
}

ExpelMsg make_expel(Round round, GovernorId accuser, GovernorId accused, Bytes evidence,
                    const crypto::SigningKey& key) {
  ExpelMsg m;
  m.round = round;
  m.accuser = accuser;
  m.accused = accused;
  m.evidence = std::move(evidence);
  m.accuser_sig = key.sign(m.signed_preimage());
  return m;
}

}  // namespace repchain::protocol
