#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/rng.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/transaction.hpp"
#include "protocol/argue_service.hpp"
#include "protocol/block_assembly.hpp"
#include "protocol/directory.hpp"
#include "protocol/equivocation_detector.hpp"
#include "protocol/governor_types.hpp"
#include "protocol/screening.hpp"
#include "protocol/verified_batch.hpp"
#include "runtime/message.hpp"
#include "runtime/timer.hpp"

namespace repchain::protocol {

/// The uploading-phase front-end of Algorithm 2: authenticates collector
/// uploads, verifies the contained provider signature (Algorithm 3 case 1 on
/// failure), aggregates reports per transaction over the Delta window on the
/// node's timers, and routes each screening outcome to the block assembler /
/// argue service.
///
/// Signature checks run batched (GovernorConfig::batch_verify_intake):
/// on_upload runs only the non-cryptographic gates inline, queues the
/// surviving signatures in a VerifiedBatch, and arms a zero-delay flush
/// timer. All uploads landing at one instant — collector bursts collapsed
/// onto a single delivery time by the atomic broadcast's in-order rule —
/// settle through a single crypto::verify_batch call, then flow through the
/// unchanged per-upload pipeline in arrival order. A (TxId, signature) memo
/// additionally skips re-verifying a provider signature this governor
/// already proved genuine for an earlier reporter of the same transaction.
/// The batch coefficients draw from a private derived Rng stream, so
/// behavioral streams (and the fixed-seed goldens pinned to them) are
/// untouched.
class ScreeningIntake {
 public:
  ScreeningIntake(const identity::IdentityManager& im, const Directory& directory,
                  reputation::ReputationTable& table, ScreeningEngine& engine,
                  BlockAssembler& assembler, ArgueService& argues,
                  EquivocationDetector& equivocation, GovernorMetrics& metrics,
                  runtime::TimerService& timers, const GovernorConfig& config,
                  const std::set<CollectorId>& visible, Rng batch_rng)
      : im_(im), directory_(directory), table_(table), engine_(engine),
        assembler_(assembler), argues_(argues), equivocation_(equivocation),
        metrics_(metrics), timers_(timers), config_(config), visible_(visible),
        batch_rng_(std::move(batch_rng)) {}

  /// A kCollectorUpload delivery.
  void on_upload(const runtime::Message& msg);

  /// True iff this governor perceives `collector` (always true in the
  /// full-visibility default; see Governor::sees).
  [[nodiscard]] bool sees(CollectorId collector) const {
    return visible_.empty() || visible_.contains(collector);
  }

  /// Restore path: drop in-flight aggregation windows and any unflushed
  /// verification batch. The screened-id set is intentionally kept: it is a
  /// replay guard, and replays can arrive after a restore (e.g.
  /// reliable-channel retransmits from before a crash).
  void clear() {
    aggregations_.clear();
    pending_uploads_.clear();
    batch_.clear();
    flush_armed_ = false;
    provider_sig_memo_.clear();
    screen_queue_.clear();
  }

  /// Round boundary: shift the double-spend serial-guard generations (a
  /// container swap; a no-op unless the byzantine defense populated them)
  /// and retire the round's verified-provider-signature memo.
  void age_out();

  /// True iff the byzantine defense has blacklisted `provider` for serial
  /// reuse (argues from such providers must not resurrect withdrawn twins).
  [[nodiscard]] bool blacklisted(ProviderId provider) const {
    return blacklisted_.contains(provider);
  }

  /// Install a callback fired once per detected double-spend so the host
  /// can emit kByzantineEvidence traces; arg is the offending provider id.
  void set_evidence(std::function<void(adversary::ByzantineKind, std::uint64_t)> cb) {
    evidence_ = std::move(cb);
  }

 private:
  struct Aggregation {
    ledger::Transaction tx;
    std::vector<reputation::Report> reports;
    std::unordered_set<CollectorId> reporters;
    bool screened = false;
  };

  /// One decoded upload awaiting its batched signature verdicts.
  struct PendingUpload {
    ledger::LabeledTransaction ltx;
    ledger::TxId id{};
    VerifiedBatch::Index collector_check = 0;
    VerifiedBatch::Index provider_check = 0;
    bool provider_known = false;     // linked with the reporting collector
    bool provider_in_batch = false;  // provider sig went through crypto (memo miss)
  };

  /// Settle the queued batch and run every buffered upload through the
  /// post-verification pipeline in arrival order.
  void flush();
  /// The pipeline tail shared by the batched and single-verify paths:
  /// everything after the two signature verdicts are known.
  void ingest(const ledger::LabeledTransaction& ltx, const ledger::TxId& id,
              bool collector_ok, bool provider_known, bool provider_sig_ok);
  /// Queue `id` for screening at now + aggregation_delta. Deadlines are
  /// monotone, so each distinct deadline arms exactly one sweep timer and
  /// every same-instant burst screens inside one event.
  void schedule_screen(const ledger::TxId& id);
  /// Screen every queued transaction whose deadline has arrived, then hand
  /// the resulting records to the assembler as one pre-verified batch.
  void screen_sweep();
  void screen(const ledger::TxId& id);
  /// Byzantine defense (config.byzantine_defense): reject a second distinct
  /// transaction reusing a (provider, seq) slot — a double-spend — and
  /// blacklist the provider. Returns true when the upload must be dropped.
  [[nodiscard]] bool double_spend_guard(const ledger::Transaction& tx,
                                        const ledger::TxId& id);

  const identity::IdentityManager& im_;
  const Directory& directory_;
  reputation::ReputationTable& table_;
  ScreeningEngine& engine_;
  BlockAssembler& assembler_;
  ArgueService& argues_;
  EquivocationDetector& equivocation_;
  GovernorMetrics& metrics_;
  runtime::TimerService& timers_;
  const GovernorConfig& config_;
  const std::set<CollectorId>& visible_;  // empty = all

  std::unordered_map<ledger::TxId, Aggregation, ledger::TxIdHash> aggregations_;
  // Every transaction ever screened by this governor. `packed`/`known` only
  // cover appended/unchecked outcomes; without this set, a retransmitted
  // upload arriving after a kDiscardedInvalid screening would reopen an
  // aggregation window for an already-decided transaction.
  std::unordered_set<ledger::TxId, ledger::TxIdHash> screened_;

  // Byzantine defense: two-generation (provider, seq) -> TxId serial guard.
  // A second distinct transaction in the same slot within the window is a
  // double-spend; collectors broadcast uploads to every governor, so the
  // check is locally deterministic at each of them.
  using SerialGen = std::map<std::pair<std::uint32_t, std::uint64_t>, ledger::TxId>;
  SerialGen serials_;
  SerialGen serials_prev_;
  std::set<ProviderId> blacklisted_;
  std::function<void(adversary::ByzantineKind, std::uint64_t)> evidence_;

  // Batched verification state. The flush timer fires at the same SimTime
  // as the deliveries it covers (zero delay), so trace timestamps and every
  // cross-instant ordering are unchanged; coefficient draws come from the
  // private batch_rng_ stream only.
  Rng batch_rng_;
  VerifiedBatch batch_;
  std::vector<PendingUpload> pending_uploads_;
  bool flush_armed_ = false;
  // Provider signatures proven genuine this round, keyed by TxId and
  // matched on exact signature bytes (TxId excludes the signature, so the
  // bytes must be compared — a forged signature must never ride a genuine
  // transaction's memo entry).
  std::unordered_map<ledger::TxId, crypto::Signature, ledger::TxIdHash>
      provider_sig_memo_;

  // Screening deadlines in FIFO order (monotone first components) and the
  // reusable record buffer the sweep hands to the assembler in bulk.
  std::deque<std::pair<SimTime, ledger::TxId>> screen_queue_;
  std::vector<ledger::TxRecord> screen_batch_;
};

}  // namespace repchain::protocol
