#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adversary/byzantine.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/transaction.hpp"
#include "protocol/argue_service.hpp"
#include "protocol/block_assembly.hpp"
#include "protocol/directory.hpp"
#include "protocol/equivocation_detector.hpp"
#include "protocol/governor_types.hpp"
#include "protocol/screening.hpp"
#include "runtime/message.hpp"
#include "runtime/timer.hpp"

namespace repchain::protocol {

/// The uploading-phase front-end of Algorithm 2: authenticates collector
/// uploads, verifies the contained provider signature (Algorithm 3 case 1 on
/// failure), aggregates reports per transaction over the Delta window on the
/// node's timers, and routes each screening outcome to the block assembler /
/// argue service.
class ScreeningIntake {
 public:
  ScreeningIntake(const identity::IdentityManager& im, const Directory& directory,
                  reputation::ReputationTable& table, ScreeningEngine& engine,
                  BlockAssembler& assembler, ArgueService& argues,
                  EquivocationDetector& equivocation, GovernorMetrics& metrics,
                  runtime::TimerService& timers, const GovernorConfig& config,
                  const std::set<CollectorId>& visible)
      : im_(im), directory_(directory), table_(table), engine_(engine),
        assembler_(assembler), argues_(argues), equivocation_(equivocation),
        metrics_(metrics), timers_(timers), config_(config), visible_(visible) {}

  /// A kCollectorUpload delivery.
  void on_upload(const runtime::Message& msg);

  /// True iff this governor perceives `collector` (always true in the
  /// full-visibility default; see Governor::sees).
  [[nodiscard]] bool sees(CollectorId collector) const {
    return visible_.empty() || visible_.contains(collector);
  }

  /// Restore path: drop in-flight aggregation windows. The screened-id set
  /// is intentionally kept: it is a replay guard, and replays can arrive
  /// after a restore (e.g. reliable-channel retransmits from before a crash).
  void clear() { aggregations_.clear(); }

  /// Round boundary: shift the double-spend serial-guard generations (a
  /// container swap; a no-op unless the byzantine defense populated them).
  void age_out();

  /// True iff the byzantine defense has blacklisted `provider` for serial
  /// reuse (argues from such providers must not resurrect withdrawn twins).
  [[nodiscard]] bool blacklisted(ProviderId provider) const {
    return blacklisted_.contains(provider);
  }

  /// Install a callback fired once per detected double-spend so the host
  /// can emit kByzantineEvidence traces; arg is the offending provider id.
  void set_evidence(std::function<void(adversary::ByzantineKind, std::uint64_t)> cb) {
    evidence_ = std::move(cb);
  }

 private:
  struct Aggregation {
    ledger::Transaction tx;
    std::vector<reputation::Report> reports;
    std::unordered_set<CollectorId> reporters;
    bool screened = false;
  };

  void screen(const ledger::TxId& id);
  /// Byzantine defense (config.byzantine_defense): reject a second distinct
  /// transaction reusing a (provider, seq) slot — a double-spend — and
  /// blacklist the provider. Returns true when the upload must be dropped.
  [[nodiscard]] bool double_spend_guard(const ledger::Transaction& tx,
                                        const ledger::TxId& id);

  const identity::IdentityManager& im_;
  const Directory& directory_;
  reputation::ReputationTable& table_;
  ScreeningEngine& engine_;
  BlockAssembler& assembler_;
  ArgueService& argues_;
  EquivocationDetector& equivocation_;
  GovernorMetrics& metrics_;
  runtime::TimerService& timers_;
  const GovernorConfig& config_;
  const std::set<CollectorId>& visible_;  // empty = all

  std::unordered_map<ledger::TxId, Aggregation, ledger::TxIdHash> aggregations_;
  // Every transaction ever screened by this governor. `packed`/`known` only
  // cover appended/unchecked outcomes; without this set, a retransmitted
  // upload arriving after a kDiscardedInvalid screening would reopen an
  // aggregation window for an already-decided transaction.
  std::unordered_set<ledger::TxId, ledger::TxIdHash> screened_;

  // Byzantine defense: two-generation (provider, seq) -> TxId serial guard.
  // A second distinct transaction in the same slot within the window is a
  // double-spend; collectors broadcast uploads to every governor, so the
  // check is locally deterministic at each of them.
  using SerialGen = std::map<std::pair<std::uint32_t, std::uint64_t>, ledger::TxId>;
  SerialGen serials_;
  SerialGen serials_prev_;
  std::set<ProviderId> blacklisted_;
  std::function<void(adversary::ByzantineKind, std::uint64_t)> evidence_;
};

}  // namespace repchain::protocol
