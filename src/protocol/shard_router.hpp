#pragma once

// Multi-committee scale-out: the ShardRouter partitions the Figure 1
// hierarchy into N governor committees (shards). Providers and collectors
// are assigned by a stable hash of their identity (deployment-order
// independent, so a re-enumerated membership keeps its shard placement);
// governors are dealt round-robin so every committee is within one member
// of the same size and the VRF-PoS election always has a quorum to close.
//
// Each committee runs the full screening/argue/stake-consensus pipeline on
// its own chain — the paper's reputation pipeline is shard-local by
// construction, so committees need no coordination beyond the periodic
// beacon anchoring (ledger::BeaconLog). A transaction whose provider and
// collector live in different shards is not routable and is rejected at
// collector intake with the explicit cross-shard code
// (wire::ProtocolError::kCrossShardTx / TraceKind::kCrossShardRejected),
// following pettycoin's PROTOCOL_ERROR_TRANS_CROSS_SHARDS.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace repchain::protocol {

class ShardRouter {
 public:
  /// Single-committee identity routing (everything in shard 0).
  ShardRouter() = default;

  /// Partition `providers`/`collectors`/`governors` members (ids 0..k-1)
  /// across `shard_count` committees. Assignments are precomputed, so every
  /// shard_of lookup is O(1). Throws ConfigError when shard_count is 0,
  /// exceeds the governor count, or strands a shard without a provider or
  /// collector (the stable hash left a tier empty — resize the population
  /// or lower the shard count).
  ShardRouter(std::size_t shard_count, std::size_t providers,
              std::size_t collectors, std::size_t governors);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // Members beyond the partitioned population (and every member of a
  // default-constructed router) fall into shard 0 — the single-committee
  // semantics.
  [[nodiscard]] ShardId shard_of(ProviderId id) const {
    return id.value() < provider_shard_.size() ? provider_shard_[id.value()]
                                               : ShardId(0);
  }
  [[nodiscard]] ShardId shard_of(CollectorId id) const {
    return id.value() < collector_shard_.size() ? collector_shard_[id.value()]
                                                : ShardId(0);
  }
  [[nodiscard]] ShardId shard_of(GovernorId id) const {
    return id.value() < governor_shard_.size() ? governor_shard_[id.value()]
                                               : ShardId(0);
  }

  /// True iff a (provider, collector) pair spans two committees — the
  /// transaction is unroutable and must be rejected.
  [[nodiscard]] bool cross_shard(ProviderId provider, CollectorId collector) const {
    return shard_of(provider) != shard_of(collector);
  }

  /// Shard membership in ascending global-id order.
  [[nodiscard]] const std::vector<ProviderId>& providers_of(ShardId s) const {
    return shards_[s.value()].providers;
  }
  [[nodiscard]] const std::vector<CollectorId>& collectors_of(ShardId s) const {
    return shards_[s.value()].collectors;
  }
  [[nodiscard]] const std::vector<GovernorId>& governors_of(ShardId s) const {
    return shards_[s.value()].governors;
  }

  /// The FNV-1a-64 placement hash over (tag byte, id little-endian). Public
  /// so tests can pin the assignment as part of the wire contract: shard
  /// membership is consensus-relevant, every node must derive the same
  /// partition.
  [[nodiscard]] static std::uint64_t stable_hash(std::uint8_t tag,
                                                 std::uint32_t value);

 private:
  struct Members {
    std::vector<ProviderId> providers;
    std::vector<CollectorId> collectors;
    std::vector<GovernorId> governors;
  };

  std::vector<ShardId> provider_shard_;
  std::vector<ShardId> collector_shard_;
  std::vector<ShardId> governor_shard_;
  std::vector<Members> shards_{1};  // default: one committee, no members listed
};

}  // namespace repchain::protocol
