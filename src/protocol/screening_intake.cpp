#include "protocol/screening_intake.hpp"

#include "common/errors.hpp"

namespace repchain::protocol {

using ledger::Label;
using ledger::TxStatus;

void ScreeningIntake::on_upload(const runtime::Message& msg) {
  ++metrics_.uploads_received;
  ledger::LabeledTransaction ltx;
  try {
    ltx = ledger::LabeledTransaction::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.uploads_rejected;
    return;
  }

  if (!sees(ltx.collector)) {
    ++metrics_.uploads_invisible;
    return;
  }

  // The collector's own signature must authenticate, or the upload cannot
  // even be attributed — drop silently.
  const auto collector_node = directory_.node_of(ltx.collector);
  if (!im_.authorize(collector_node, identity::Role::kCollector, ltx.signed_preimage(),
                     ltx.collector_sig)) {
    ++metrics_.uploads_rejected;
    return;
  }

  // verify(c_i, Tx): the contained provider signature must be genuine and
  // the provider must be linked with this collector; otherwise the upload is
  // a forgery — Algorithm 3 case 1.
  const bool provider_known = directory_.linked(ltx.tx.provider, ltx.collector);
  bool provider_sig_ok = false;
  if (provider_known) {
    const NodeId provider_node = directory_.node_of(ltx.tx.provider);
    provider_sig_ok =
        im_.authenticate(provider_node, ltx.tx.signed_preimage(), ltx.tx.provider_sig);
  }
  if (!provider_known || !provider_sig_ok) {
    ++metrics_.forgeries_detected;
    table_.punish_forgery(ltx.collector);
    return;
  }

  const ledger::TxId id = ltx.tx.id();
  if (assembler_.packed(id) || argues_.known(id) || screened_.contains(id)) {
    // Replay of an already-processed transaction (atomic broadcast plus the
    // timestamped signature makes this benign); ignore.
    return;
  }

  auto [it, inserted] = aggregations_.try_emplace(id);
  Aggregation& agg = it->second;
  if (inserted) {
    agg.tx = ltx.tx;
    // starttime(tx, Delta): screen after the aggregation window.
    timers_.schedule_after(config_.aggregation_delta, [this, id] { screen(id); });
  }
  if (agg.screened) return;
  if (!agg.reporters.insert(ltx.collector).second) {
    ++metrics_.duplicate_reports;
    return;
  }
  agg.reports.push_back(reputation::Report{ltx.collector, ltx.label});

  if (config_.enable_label_gossip) equivocation_.note_label(id, ltx);
}

void ScreeningIntake::screen(const ledger::TxId& id) {
  const auto it = aggregations_.find(id);
  if (it == aggregations_.end() || it->second.screened) return;
  Aggregation& agg = it->second;
  agg.screened = true;
  screened_.insert(id);

  const ScreeningOutcome out = engine_.screen(agg.tx, agg.reports);
  switch (out.kind) {
    case ScreeningKind::kAppendedValid: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kValid;
      rec.status = TxStatus::kCheckedValid;
      assembler_.add_pending(std::move(rec));
      break;
    }
    case ScreeningKind::kDiscardedInvalid:
      break;  // checked invalid: never enters a block
    case ScreeningKind::kRecordedUnchecked: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kInvalid;
      rec.status = TxStatus::kUncheckedInvalid;
      assembler_.add_pending(std::move(rec));
      argues_.record_unchecked(agg.tx, agg.reports);
      break;
    }
  }
  aggregations_.erase(it);
}

}  // namespace repchain::protocol
