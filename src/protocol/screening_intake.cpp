#include "protocol/screening_intake.hpp"

#include "common/errors.hpp"

namespace repchain::protocol {

using ledger::Label;
using ledger::TxStatus;

void ScreeningIntake::on_upload(const runtime::Message& msg) {
  ++metrics_.uploads_received;
  ledger::LabeledTransaction ltx;
  try {
    ltx = ledger::LabeledTransaction::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.uploads_rejected;
    return;
  }

  if (!sees(ltx.collector)) {
    ++metrics_.uploads_invisible;
    return;
  }

  // The collector's own signature must authenticate, or the upload cannot
  // even be attributed — drop silently.
  const auto collector_node = directory_.node_of(ltx.collector);
  if (!im_.authorize(collector_node, identity::Role::kCollector, ltx.signed_preimage(),
                     ltx.collector_sig)) {
    ++metrics_.uploads_rejected;
    return;
  }

  // verify(c_i, Tx): the contained provider signature must be genuine and
  // the provider must be linked with this collector; otherwise the upload is
  // a forgery — Algorithm 3 case 1.
  const bool provider_known = directory_.linked(ltx.tx.provider, ltx.collector);
  bool provider_sig_ok = false;
  if (provider_known) {
    const NodeId provider_node = directory_.node_of(ltx.tx.provider);
    provider_sig_ok =
        im_.authenticate(provider_node, ltx.tx.signed_preimage(), ltx.tx.provider_sig);
  }
  if (!provider_known || !provider_sig_ok) {
    ++metrics_.forgeries_detected;
    table_.punish_forgery(ltx.collector);
    if (evidence_) {
      evidence_(adversary::ByzantineKind::kForgedUpload, ltx.collector.value());
    }
    return;
  }

  const ledger::TxId id = ltx.tx.id();
  if (assembler_.packed(id) || argues_.known(id) || screened_.contains(id)) {
    // Replay of an already-processed transaction (atomic broadcast plus the
    // timestamped signature makes this benign); ignore.
    return;
  }

  if (config_.byzantine_defense && double_spend_guard(ltx.tx, id)) return;

  auto [it, inserted] = aggregations_.try_emplace(id);
  Aggregation& agg = it->second;
  if (inserted) {
    agg.tx = ltx.tx;
    // starttime(tx, Delta): screen after the aggregation window.
    timers_.schedule_after(config_.aggregation_delta, [this, id] { screen(id); });
  }
  if (agg.screened) return;
  if (!agg.reporters.insert(ltx.collector).second) {
    ++metrics_.duplicate_reports;
    return;
  }
  agg.reports.push_back(reputation::Report{ltx.collector, ltx.label});

  if (config_.enable_label_gossip) equivocation_.note_label(id, ltx);
}

void ScreeningIntake::age_out() {
  serials_prev_ = std::move(serials_);
  serials_.clear();
}

bool ScreeningIntake::double_spend_guard(const ledger::Transaction& tx,
                                         const ledger::TxId& id) {
  if (blacklisted_.contains(tx.provider)) return true;
  const auto key = std::make_pair(tx.provider.value(), tx.seq);
  for (const SerialGen* gen : {&serials_, &serials_prev_}) {
    const auto it = gen->find(key);
    if (it == gen->end()) continue;
    if (it->second == id) return false;  // same transaction, another reporter
    // Two provider-signed transactions sharing one (provider, seq) slot.
    // Which twin a replica saw first depends on arrival order, so keeping
    // the first-seen one would let two different leaders commit different
    // twins in successive rounds: BOTH spends are withdrawn (the stored one
    // is purged from the aggregation window and the pending TXList) and the
    // provider is blacklisted. Twins that already reached a block are past
    // saving, but then the guard rejects the late twin instead, so at most
    // one spend can ever be committed.
    ++metrics_.double_spends_detected;
    blacklisted_.insert(tx.provider);
    const ledger::TxId stored = it->second;
    aggregations_.erase(stored);
    screened_.insert(stored);
    assembler_.drop_pending(stored);
    if (evidence_) {
      evidence_(adversary::ByzantineKind::kDoubleSpend, tx.provider.value());
    }
    return true;
  }
  serials_.emplace(key, id);
  return false;
}

void ScreeningIntake::screen(const ledger::TxId& id) {
  const auto it = aggregations_.find(id);
  if (it == aggregations_.end() || it->second.screened) return;
  Aggregation& agg = it->second;
  agg.screened = true;
  screened_.insert(id);

  const ScreeningOutcome out = engine_.screen(agg.tx, agg.reports);
  switch (out.kind) {
    case ScreeningKind::kAppendedValid: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kValid;
      rec.status = TxStatus::kCheckedValid;
      assembler_.add_pending(std::move(rec));
      break;
    }
    case ScreeningKind::kDiscardedInvalid:
      break;  // checked invalid: never enters a block
    case ScreeningKind::kRecordedUnchecked: {
      ledger::TxRecord rec;
      rec.tx = agg.tx;
      rec.label = Label::kInvalid;
      rec.status = TxStatus::kUncheckedInvalid;
      assembler_.add_pending(std::move(rec));
      argues_.record_unchecked(agg.tx, agg.reports);
      break;
    }
  }
  aggregations_.erase(it);
}

}  // namespace repchain::protocol
