#include "protocol/screening_intake.hpp"

#include "common/errors.hpp"

namespace repchain::protocol {

using ledger::Label;
using ledger::TxStatus;

void ScreeningIntake::on_upload(const runtime::Message& msg) {
  ++metrics_.uploads_received;
  ledger::LabeledTransaction ltx;
  try {
    ltx = ledger::LabeledTransaction::decode(msg.payload);
  } catch (const DecodeError&) {
    ++metrics_.uploads_rejected;
    return;
  }

  if (!sees(ltx.collector)) {
    ++metrics_.uploads_invisible;
    return;
  }

  const auto collector_node = directory_.node_of(ltx.collector);
  const ledger::TxId id = ltx.tx.id();

  if (!config_.batch_verify_intake) {
    // Single-verify path, kept for side-by-side equivalence tests: the
    // collector's own signature must authorize, or the upload cannot even
    // be attributed — drop silently. verify(c_i, Tx): the contained
    // provider signature must be genuine and the provider linked with this
    // collector; otherwise the upload is a forgery — Algorithm 3 case 1.
    const bool collector_ok =
        im_.authorize(collector_node, identity::Role::kCollector,
                      ltx.signed_preimage(), ltx.collector_sig);
    const bool provider_known = directory_.linked(ltx.tx.provider, ltx.collector);
    bool provider_sig_ok = false;
    if (collector_ok && provider_known) {
      const NodeId provider_node = directory_.node_of(ltx.tx.provider);
      provider_sig_ok =
          im_.authenticate(provider_node, ltx.tx.signed_preimage(), ltx.tx.provider_sig);
    }
    ingest(ltx, id, collector_ok, provider_known, provider_sig_ok);
    return;
  }

  // Batched path: run the non-cryptographic gates now, queue the surviving
  // signatures, and let the same-instant flush settle them in bulk. The
  // gates mirror authorize/authenticate exactly, so the verdicts are what
  // the single-verify path would have produced.
  PendingUpload pu;
  const crypto::PublicKey* collector_key =
      im_.verification_key(collector_node, identity::Role::kCollector);
  pu.collector_check = (collector_key != nullptr)
                           ? batch_.add(*collector_key, ltx.signed_preimage(),
                                        ltx.collector_sig)
                           : batch_.add_decided(false);

  pu.id = id;
  pu.provider_known = directory_.linked(ltx.tx.provider, ltx.collector);
  if (pu.provider_known) {
    const NodeId provider_node = directory_.node_of(ltx.tx.provider);
    const crypto::PublicKey* provider_key = im_.verification_key(provider_node);
    if (provider_key == nullptr) {
      pu.provider_check = batch_.add_decided(false);
    } else {
      const auto memo = provider_sig_memo_.find(id);
      if (memo != provider_sig_memo_.end() &&
          memo->second.bytes == ltx.tx.provider_sig.bytes) {
        pu.provider_check = batch_.add_decided(true);
      } else {
        pu.provider_check = batch_.add(*provider_key, ltx.tx.signed_preimage(),
                                       ltx.tx.provider_sig);
        pu.provider_in_batch = true;
      }
    }
  } else {
    pu.provider_check = batch_.add_decided(false);
  }

  pu.ltx = std::move(ltx);
  pending_uploads_.push_back(std::move(pu));
  if (!flush_armed_) {
    flush_armed_ = true;
    // Zero delay: the flush runs at this same SimTime, after every other
    // delivery already in flight for this instant has been processed (their
    // events were scheduled before this timer), so the batch covers the
    // whole same-instant burst.
    timers_.schedule_after(0, [this] { flush(); });
  }
}

void ScreeningIntake::flush() {
  flush_armed_ = false;
  batch_.settle(batch_rng_);
  for (PendingUpload& pu : pending_uploads_) {
    if (pu.provider_in_batch && batch_.ok(pu.provider_check)) {
      provider_sig_memo_.insert_or_assign(pu.id, pu.ltx.tx.provider_sig);
    }
    const bool provider_sig_ok = pu.provider_known && batch_.ok(pu.provider_check);
    ingest(pu.ltx, pu.id, batch_.ok(pu.collector_check), pu.provider_known,
           provider_sig_ok);
  }
  pending_uploads_.clear();
  batch_.clear();
}

void ScreeningIntake::ingest(const ledger::LabeledTransaction& ltx,
                             const ledger::TxId& id, bool collector_ok,
                             bool provider_known, bool provider_sig_ok) {
  if (!collector_ok) {
    ++metrics_.uploads_rejected;
    return;
  }

  if (!provider_known || !provider_sig_ok) {
    ++metrics_.forgeries_detected;
    table_.punish_forgery(ltx.collector);
    if (evidence_) {
      evidence_(adversary::ByzantineKind::kForgedUpload, ltx.collector.value());
    }
    return;
  }

  if (assembler_.packed(id) || argues_.known(id) || screened_.contains(id)) {
    // Replay of an already-processed transaction (atomic broadcast plus the
    // timestamped signature makes this benign); ignore.
    return;
  }

  if (config_.byzantine_defense && double_spend_guard(ltx.tx, id)) return;

  auto [it, inserted] = aggregations_.try_emplace(id);
  Aggregation& agg = it->second;
  if (inserted) {
    agg.tx = ltx.tx;
    // starttime(tx, Delta): screen after the aggregation window.
    schedule_screen(id);
  }
  if (agg.screened) return;
  if (!agg.reporters.insert(ltx.collector).second) {
    ++metrics_.duplicate_reports;
    return;
  }
  agg.reports.push_back(reputation::Report{ltx.collector, ltx.label});

  if (config_.enable_label_gossip) equivocation_.note_label(id, ltx);
}

void ScreeningIntake::age_out() {
  serials_prev_ = std::move(serials_);
  serials_.clear();
  provider_sig_memo_.clear();
}

bool ScreeningIntake::double_spend_guard(const ledger::Transaction& tx,
                                         const ledger::TxId& id) {
  if (blacklisted_.contains(tx.provider)) return true;
  const auto key = std::make_pair(tx.provider.value(), tx.seq);
  for (const SerialGen* gen : {&serials_, &serials_prev_}) {
    const auto it = gen->find(key);
    if (it == gen->end()) continue;
    if (it->second == id) return false;  // same transaction, another reporter
    // Two provider-signed transactions sharing one (provider, seq) slot.
    // Which twin a replica saw first depends on arrival order, so keeping
    // the first-seen one would let two different leaders commit different
    // twins in successive rounds: BOTH spends are withdrawn (the stored one
    // is purged from the aggregation window and the pending TXList) and the
    // provider is blacklisted. Twins that already reached a block are past
    // saving, but then the guard rejects the late twin instead, so at most
    // one spend can ever be committed.
    ++metrics_.double_spends_detected;
    blacklisted_.insert(tx.provider);
    const ledger::TxId stored = it->second;
    aggregations_.erase(stored);
    screened_.insert(stored);
    assembler_.drop_pending(stored);
    if (evidence_) {
      evidence_(adversary::ByzantineKind::kDoubleSpend, tx.provider.value());
    }
    return true;
  }
  serials_.emplace(key, id);
  return false;
}

void ScreeningIntake::schedule_screen(const ledger::TxId& id) {
  const SimTime due = timers_.now() + config_.aggregation_delta;
  // Deadlines are monotone (now is monotone, the delta fixed), so a fresh
  // deadline only ever appends, and each distinct one arms a single sweep.
  const bool arm = screen_queue_.empty() || screen_queue_.back().first != due;
  screen_queue_.emplace_back(due, id);
  if (arm) {
    timers_.schedule_after(config_.aggregation_delta, [this] { screen_sweep(); });
  }
}

void ScreeningIntake::screen_sweep() {
  const SimTime now = timers_.now();
  while (!screen_queue_.empty() && screen_queue_.front().first <= now) {
    screen(screen_queue_.front().second);
    screen_queue_.pop_front();
  }
  // One bulk, pre-verified handoff per burst; the buffer's capacity is
  // retained for the next sweep.
  if (!screen_batch_.empty()) assembler_.add_pending_batch(screen_batch_);
}

void ScreeningIntake::screen(const ledger::TxId& id) {
  const auto it = aggregations_.find(id);
  if (it == aggregations_.end() || it->second.screened) return;
  Aggregation& agg = it->second;
  agg.screened = true;
  screened_.insert(id);

  const ScreeningOutcome out = engine_.screen(agg.tx, agg.reports);
  switch (out.kind) {
    case ScreeningKind::kAppendedValid: {
      ledger::TxRecord rec;
      rec.tx = std::move(agg.tx);
      rec.label = Label::kValid;
      rec.status = TxStatus::kCheckedValid;
      screen_batch_.push_back(std::move(rec));
      break;
    }
    case ScreeningKind::kDiscardedInvalid:
      break;  // checked invalid: never enters a block
    case ScreeningKind::kRecordedUnchecked: {
      argues_.record_unchecked(agg.tx, agg.reports);
      ledger::TxRecord rec;
      rec.tx = std::move(agg.tx);
      rec.label = Label::kInvalid;
      rec.status = TxStatus::kUncheckedInvalid;
      screen_batch_.push_back(std::move(rec));
      break;
    }
  }
  aggregations_.erase(it);
}

}  // namespace repchain::protocol
