#include "protocol/screening.hpp"

namespace repchain::protocol {

using ledger::Label;

ScreeningEngine::ScreeningEngine(reputation::ReputationTable& table,
                                 ledger::ValidationOracle& oracle, Rng& rng)
    : table_(table), oracle_(oracle), rng_(rng) {}

ScreeningOutcome ScreeningEngine::screen(const ledger::Transaction& tx,
                                         std::span<const reputation::Report> reports) {
  ++stats_.screened;
  ScreeningOutcome out;
  out.selection = table_.select_reporter(tx.provider, reports, rng_);

  bool do_check = false;
  if (out.selection.label == Label::kValid) {
    // A +1 pick is always validated (Algorithm 2 line 19-20).
    do_check = true;
  } else {
    // A -1 pick is validated with probability 1 - f*Pr[chosen]
    // (line 24: toss a 1 - f*Pr coin; 1 means check).
    const double p_check = 1.0 - table_.params().f * out.selection.pr_chosen;
    do_check = rng_.bernoulli(p_check);
  }

  if (do_check) {
    out.checked = true;
    ++stats_.checked;
    const bool valid = oracle_.validate(tx.id());
    // Algorithm 3, case 2: every reporter's misreport counter moves.
    table_.update_checked(tx.provider, reports, valid);
    if (valid) {
      out.kind = ScreeningKind::kAppendedValid;
      ++stats_.appended_valid;
    } else {
      out.kind = ScreeningKind::kDiscardedInvalid;
      ++stats_.discarded_invalid;
    }
  } else {
    out.kind = ScreeningKind::kRecordedUnchecked;
    ++stats_.unchecked;
  }
  return out;
}

}  // namespace repchain::protocol
