#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "ledger/transaction.hpp"

namespace repchain::protocol {

/// Bookkeeping for the argue-latency bound U (§3.1, §4.2).
///
/// A transaction recorded invalid-and-unchecked can be argued only until it
/// is "buried" by more than U newer unchecked transactions from the same
/// provider; after that it is invalid permanently. Each governor keeps one
/// of these per local ledger view.
class ArgueBuffer {
 public:
  explicit ArgueBuffer(std::size_t u);

  /// Record a newly unchecked transaction for `provider`. Expires anything
  /// buried deeper than U.
  void record(ProviderId provider, const ledger::TxId& id);

  /// Still within the latency bound?
  [[nodiscard]] bool arguable(ProviderId provider, const ledger::TxId& id) const;

  /// Remove and return whether the tx was arguable (an accepted argue
  /// consumes the entry; a rejected one leaves state unchanged).
  bool consume(ProviderId provider, const ledger::TxId& id);

  [[nodiscard]] std::size_t u() const { return u_; }
  /// Currently arguable entries for one provider.
  [[nodiscard]] std::size_t pending(ProviderId provider) const;
  /// Total transactions ever expired unargued.
  [[nodiscard]] std::uint64_t expired() const { return expired_; }

 private:
  struct PerProvider {
    // Position counter of the next unchecked tx; a tx at position p has been
    // buried by (counter - p - 1) newer ones and stays arguable while that
    // count is <= U.
    std::uint64_t counter = 0;
    std::unordered_map<ledger::TxId, std::uint64_t, ledger::TxIdHash> positions;
  };

  void expire_old(PerProvider& p);

  std::size_t u_;
  std::unordered_map<ProviderId, PerProvider> providers_;
  std::uint64_t expired_ = 0;
};

}  // namespace repchain::protocol
