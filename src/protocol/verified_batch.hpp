#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/batch_verify.hpp"

namespace repchain::protocol {

/// A batch of signature checks accumulated by an ingestion front-end and
/// settled in one crypto::verify_batch call.
///
/// Front-ends (ScreeningIntake's upload flush, EquivocationDetector's gossip
/// ingestion, StakeConsensus quorum checks) run their non-cryptographic
/// gates per item first — enrollment, role, revocation, link structure — via
/// IdentityManager::verification_key. Items that fail a gate, or that hit a
/// verified-signature memo, enter the batch pre-decided; the rest carry a
/// (key, message, sig) triple and are settled together: one random-linear-
/// combination check for the whole batch, with the verify_batch_detailed
/// per-item fallback isolating the offending items when the combined check
/// fails. The per-item verdicts are therefore exactly what per-item
/// authenticate/authorize calls would have produced, at a fraction of the
/// scalar-multiplication cost.
///
/// The Rng passed to settle() must be a private derived stream: coefficient
/// draws depend on batch composition and must never perturb behavioral
/// streams that fixed-seed goldens pin.
class VerifiedBatch {
 public:
  using Index = std::size_t;

  /// Queue one signature for bulk verification.
  Index add(const crypto::PublicKey& key, Bytes message, const crypto::Signature& sig) {
    items_.push_back(crypto::BatchItem{key, std::move(message), sig});
    slots_.push_back(items_.size() - 1);
    verdicts_.push_back(kPending);
    return verdicts_.size() - 1;
  }

  /// Record an item whose outcome is already known (failed precheck gate or
  /// verified-signature memo hit); it consumes no crypto work.
  Index add_decided(bool ok) {
    slots_.push_back(kNoSlot);
    verdicts_.push_back(ok ? kTrue : kFalse);
    return verdicts_.size() - 1;
  }

  /// Run the queued checks: one verify_batch over every pending item, with
  /// per-item fallback on failure. Idempotent once settled.
  void settle(Rng& rng);

  /// Per-item verdict; only valid after settle().
  [[nodiscard]] bool ok(Index i) const { return verdicts_[i] == kTrue; }

  [[nodiscard]] std::size_t size() const { return verdicts_.size(); }
  /// How many items actually went through cryptographic verification.
  [[nodiscard]] std::size_t crypto_checks() const { return items_.size(); }
  [[nodiscard]] bool settled() const { return settled_; }

  /// Reset for reuse; keeps the vectors' capacity (intake flushes reuse one
  /// batch object round after round).
  void clear() {
    items_.clear();
    slots_.clear();
    verdicts_.clear();
    settled_ = false;
  }

 private:
  static constexpr std::int8_t kPending = -1;
  static constexpr std::int8_t kFalse = 0;
  static constexpr std::int8_t kTrue = 1;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  std::vector<crypto::BatchItem> items_;   // pending crypto checks, in order
  std::vector<std::size_t> slots_;         // item index -> items_ slot (or kNoSlot)
  std::vector<std::int8_t> verdicts_;
  bool settled_ = false;
};

}  // namespace repchain::protocol
