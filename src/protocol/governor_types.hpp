#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "ledger/transaction.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {

/// Governor configuration.
struct GovernorConfig {
  reputation::ReputationParams rep;
  /// b_limit: maximum transactions per block (§3.1).
  std::size_t block_limit = 1000;
  /// Aggregation window Delta after a transaction's first report (the
  /// starttime/endtime timer of Algorithm 2).
  SimDuration aggregation_delta = 25 * kMillisecond;
  /// Extension (§4.2: collectors "reporting different results to different
  /// governors"): when enabled, governors gossip the signed labels they
  /// received; two valid collector signatures over conflicting labels for
  /// the same transaction are a self-contained equivocation proof, punished
  /// like a forgery.
  bool enable_label_gossip = false;
  /// When a NodeStateStore is attached: also persist a checkpoint snapshot
  /// (and truncate the WAL) every N committed blocks. 0 keeps the paper's
  /// recovery points only — snapshots happen at stake-transform commits.
  std::size_t snapshot_interval = 0;
  /// WAL compaction: once the log holds at least N appended blocks, persist
  /// the checkpoint captured at the latest stake-transform commit (the
  /// paper's recovery point) and truncate the log at that point, keeping the
  /// tail — so replay length stays bounded by N plus the blocks since that
  /// commit, without snapshotting eagerly on every stake transform. 0 (the
  /// default) keeps the eager behavior: a full snapshot at each commit.
  std::size_t wal_compaction_appends = 0;
  /// Opt-in reliable delivery: protocol-critical traffic (uploads, governor
  /// peer messages, block sync) goes through a ReliableChannel
  /// (ack + retransmit + backoff) instead of the bare transport, and the
  /// leader election closes on a majority quorum at propose time rather
  /// than requiring every announcement. Off by default — the clean-network
  /// golden runs stay bit-identical.
  bool reliable_delivery = false;
  /// Liveness watchdog: after this many consecutive rounds without a local
  /// commit, the governor emits a kRoundStalled trace and triggers a peer
  /// sync instead of hanging. 0 disables (the default; fault schedules
  /// enable it).
  std::size_t watchdog_rounds = 0;
  /// ReliableChannel incarnation number; the host increments it across
  /// crash/restart cycles so peers never mistake the new life's sequence
  /// space for replays of the old one.
  std::uint32_t channel_epoch = 0;
  /// Byzantine defenses (this PR's adversary layer): leader-proposal
  /// equivocation detection with a short settle window, sync-response
  /// corroboration against a second peer, and a per-provider serial guard
  /// against double-spends. Off by default — honest-run goldens stay
  /// bit-identical; scenarios switch it on whenever an AdversarySpec is
  /// scheduled.
  bool byzantine_defense = false;
  /// Batched intake verification: collector uploads landing at one instant
  /// are settled through a single crypto::verify_batch call (same-instant
  /// flush timer + VerifiedBatch) instead of per-upload Strauss ladders.
  /// Outcome-identical to the single-verify path — the off switch exists
  /// only so equivalence tests can run both paths side by side.
  bool batch_verify_intake = true;
};

/// Loss bookkeeping on one unchecked transaction, kept for the experiments:
/// the paper's L counts 2 per unchecked transaction whose true state was
/// valid (it was recorded invalid).
struct UncheckedEntry {
  ledger::Transaction tx;
  std::vector<reputation::Report> reports;  // screening-time snapshot
  double expected_loss = 0.0;               // L_tx at screening time (metric)
  bool truly_valid = false;                 // ground truth (metric only)
  bool revealed = false;
};

/// Governor metrics for the benches.
struct GovernorMetrics {
  std::uint64_t uploads_received = 0;
  std::uint64_t uploads_rejected = 0;   // bad collector signature / unknown
  std::uint64_t forgeries_detected = 0;
  std::uint64_t duplicate_reports = 0;
  std::uint64_t argues_received = 0;
  std::uint64_t argues_accepted = 0;
  std::uint64_t argues_rejected_late = 0;
  std::uint64_t argue_validations = 0;
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_rejected = 0;
  std::uint64_t blocks_synced = 0;  // adopted via catch-up sync, not proposal
  std::uint64_t sync_timeouts = 0;  // catch-up requests that got no answer
  std::uint64_t watchdog_trips = 0; // kRoundStalled events emitted
  std::uint64_t equivocations_detected = 0;
  std::uint64_t uploads_invisible = 0;  // from collectors outside this
                                        // governor's partial view
  // Byzantine-defense counters (adversary layer).
  std::uint64_t proposal_equivocations = 0;  // conflicting signed leader proposals
  std::uint64_t lying_sync_rejected = 0;     // sync responses that failed validation
  std::uint64_t double_spends_detected = 0;  // provider serial reuse caught
  std::uint64_t byzantine_evidence = 0;      // kByzantineEvidence traces emitted
  // Attack-side counters: what an installed Byzantine behavior actually did
  // (benches compare these against the defense counters above).
  std::uint64_t byzantine_equivocations_sent = 0;  // conflicting proposals sent
  std::uint64_t byzantine_lies_served = 0;         // forged sync responses served
  std::uint64_t byzantine_lies_to_governors = 0;   // ... of which to governor peers
                                                   // (the callers able to corroborate)
  /// Realized mistakes: unchecked transactions whose revealed truth was
  /// valid (each costs the paper's loss of 2).
  std::uint64_t mistakes = 0;
  /// Sum of L_tx over all unchecked transactions (paper's expected loss).
  double expected_loss = 0.0;
  /// Realized loss 2 * (# unchecked with true state valid), counted at
  /// screening time from ground truth (metric only; the governor itself
  /// learns it only on reveal).
  double realized_loss = 0.0;
};

}  // namespace repchain::protocol
