#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repchain {

/// Owning byte buffer used throughout the library for payloads and wire data.
using Bytes = std::vector<std::uint8_t>;
/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex.
[[nodiscard]] std::string to_hex(BytesView data);

/// Decode lowercase/uppercase hex into bytes. Throws DecodeError on odd
/// length or non-hex characters.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Copy a string's bytes into a Bytes buffer.
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interpret bytes as a (not necessarily printable) string.
[[nodiscard]] std::string to_string(BytesView data);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenate any number of byte views.
[[nodiscard]] Bytes concat(std::initializer_list<BytesView> parts);

/// Constant-time equality (length leak only); for MAC/signature comparison.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

/// Fixed-size digests/keys as typed arrays.
template <std::size_t N>
using ByteArray = std::array<std::uint8_t, N>;

/// Convert a fixed array to an owning buffer.
template <std::size_t N>
[[nodiscard]] Bytes to_bytes(const ByteArray<N>& a) {
  return Bytes(a.begin(), a.end());
}

/// View over a fixed array.
template <std::size_t N>
[[nodiscard]] BytesView view(const ByteArray<N>& a) {
  return BytesView(a.data(), a.size());
}

}  // namespace repchain
