#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace repchain {

/// Strongly-typed integer identifier. `Tag` distinguishes unrelated id
/// spaces at compile time so a ProviderId cannot be passed where a
/// CollectorId is expected.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  value_type value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << id.value();
}

struct ProviderTag {};
struct CollectorTag {};
struct GovernorTag {};
struct NodeTag {};
struct ShardTag {};

/// Identifier of a provider node (tier 1 of the hierarchy).
using ProviderId = StrongId<ProviderTag>;
/// Identifier of a collector node (tier 2).
using CollectorId = StrongId<CollectorTag>;
/// Identifier of a governor node (tier 3).
using GovernorId = StrongId<GovernorTag>;
/// Flat network-level node identifier (any tier).
using NodeId = StrongId<NodeTag>;
/// Identifier of a governor committee (shard) in a sharded deployment; the
/// single-committee default is shard 0.
using ShardId = StrongId<ShardTag>;

/// Protocol round number (one block per round).
using Round = std::uint64_t;
/// Block serial number; blocks carry one-by-one increasing serials from 1.
using BlockSerial = std::uint64_t;

}  // namespace repchain

namespace std {
template <typename Tag>
struct hash<repchain::StrongId<Tag>> {
  size_t operator()(repchain::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
