#pragma once

#include <cstdint>

namespace repchain {

/// Simulated time in microseconds since scenario start. The synchronous model
/// of the paper (known bound on processing and transmission delay; local
/// clocks with bounded drift) is realized by the discrete-event simulator in
/// src/net against this time base.
using SimTime = std::uint64_t;
using SimDuration = std::uint64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

}  // namespace repchain
