#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace repchain {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const {
  return std::sqrt(variance());
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) throw ConfigError("Histogram requires lo < hi and bins > 0");
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  const double frac = (clamped - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace repchain
