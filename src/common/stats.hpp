#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace repchain {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Used by the bench harness and metrics collection.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Stores samples and answers percentile queries; for latency-style metrics
/// where the distribution shape matters.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }

  /// p in [0, 100]. Nearest-rank on the sorted samples; 0 if empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace repchain
