#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace repchain {

/// Deterministic pseudorandom generator (xoshiro256++ seeded via splitmix64).
///
/// Every stochastic component of the library draws from an explicitly-passed
/// Rng so whole-protocol runs are reproducible from a single seed. `derive`
/// creates statistically independent child streams, which keeps per-node
/// randomness stable under reordering of unrelated events.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Index drawn proportionally to `weights` (non-negative, at least one
  /// positive). This is the primitive behind reputation-weighted source
  /// selection in Algorithm 2.
  std::size_t weighted_choice(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Fill a buffer with pseudorandom bytes (used for simulated key material).
  void fill(Bytes& out);
  Bytes bytes(std::size_t n);

  /// Independent child stream; distinct `salt`s give distinct streams.
  [[nodiscard]] Rng derive(std::uint64_t salt) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace repchain
