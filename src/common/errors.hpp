#pragma once

#include <stdexcept>
#include <string>

namespace repchain {

/// Root of the library's exception hierarchy. Every error thrown by repchain
/// derives from this type so callers can catch library failures uniformly.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated wire data encountered while decoding.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// Cryptographic failure: bad key material, malformed signature, etc.
/// (A signature that merely fails to verify is reported by a bool, not this.)
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Misuse or failure of the simulated network layer.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net: " + what) {}
};

/// A protocol-level violation (e.g. appending a block with a bad serial).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol: " + what) {}
};

/// Invalid scenario or node configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

}  // namespace repchain
