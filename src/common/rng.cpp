#include "common/rng.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace repchain {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw ConfigError("Rng::uniform bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw ConfigError("Rng::uniform_range requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw ConfigError("weighted_choice: weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) throw ConfigError("weighted_choice: total weight must be positive");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating-point round-off: return the last positively-weighted index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

void Rng::fill(Bytes& out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t w = next_u64();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

Rng Rng::derive(std::uint64_t salt) const {
  std::uint64_t x = seed_ ^ 0xa5a5a5a5a5a5a5a5ULL;
  const std::uint64_t mixed = splitmix64(x) ^ splitmix64(salt);
  std::uint64_t y = mixed;
  return Rng(splitmix64(y));
}

}  // namespace repchain
