#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/errors.hpp"

namespace repchain {

/// Append-only binary encoder. All integers are little-endian fixed width;
/// variable-length fields are length-prefixed with u32. The format is the
/// single wire format used for message payloads, blocks and signatures'
/// preimages, so that hashing/signing is well-defined byte-exact.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  /// Adopt an existing buffer and append to it (arena reuse: move a recycled
  /// buffer in, take() it back out, and its capacity survives the round
  /// trip). The buffer is NOT cleared — callers that want a fresh encoding
  /// clear before handing it over. The adopted buffer must not alias any
  /// BytesView later passed to bytes()/raw().
  explicit BinaryWriter(Bytes&& recycle) : buf_(std::move(recycle)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(BytesView v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(buf_, v);
  }

  /// Raw bytes with no length prefix (fixed-size fields like digests).
  void raw(BytesView v) { append(buf_, v); }

  void str(std::string_view s) {
    bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked binary decoder matching BinaryWriter. Throws DecodeError on
/// truncation or overlong length prefixes; never reads out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw DecodeError("boolean byte out of range");
    return v == 1;
  }

  [[nodiscard]] Bytes bytes() {
    const std::uint32_t n = u32();
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Read exactly `n` raw bytes (fixed-size fields).
  [[nodiscard]] Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  template <std::size_t N>
  [[nodiscard]] ByteArray<N> raw_array() {
    need(N);
    ByteArray<N> out{};
    for (std::size_t i = 0; i < N; ++i) out[i] = data_[pos_ + i];
    pos_ += N;
    return out;
  }

  [[nodiscard]] std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  /// Guard against hostile length prefixes: a claimed element count whose
  /// minimal wire size exceeds the remaining bytes cannot be honest. Call
  /// before reserving count-sized containers.
  void expect_count(std::uint64_t count, std::size_t min_bytes_per_element) const {
    if (min_bytes_per_element == 0) return;
    if (count > remaining() / min_bytes_per_element) {
      throw DecodeError("element count exceeds remaining input");
    }
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Throw unless the whole input has been consumed; call at the end of a
  /// top-level decode to reject trailing garbage.
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after decode");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw DecodeError("truncated input");
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace repchain
