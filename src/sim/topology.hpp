#pragma once

#include <cstddef>

#include "protocol/directory.hpp"

namespace repchain::sim {

/// Size and overlap structure of the Figure 1 hierarchy: l providers, n
/// collectors, m governors; each provider linked with r collectors and each
/// collector with s providers, where r*l = s*n must hold (§3.1).
struct TopologyConfig {
  std::size_t providers = 8;   // l
  std::size_t collectors = 4;  // n
  std::size_t governors = 3;   // m
  std::size_t r = 2;           // collectors per provider

  /// s = r*l/n, the providers per collector.
  [[nodiscard]] std::size_t s() const { return r * providers / collectors; }

  /// Throws ConfigError unless the structure is realizable: all tiers
  /// non-empty, r <= n, and r*l divisible by n (so every collector oversees
  /// exactly s providers).
  void validate() const;
};

/// Populate `directory`'s link structure with a balanced circulant
/// assignment: provider i is linked to collectors (i*r + j) mod n for
/// j = 0..r-1, giving every collector exactly s providers and the overlap
/// the reputation mechanism exploits.
void build_links(const TopologyConfig& config, protocol::Directory& directory);

}  // namespace repchain::sim
