#include "sim/scenario.hpp"

#include "sim/harness/fault_plan.hpp"
#include "sim/harness/spec_codec.hpp"

namespace repchain::sim {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)), rng_(config_.seed) {
  // Normalize the spec before any machinery sees it: validation plus the
  // implied-flag rules that make attack/fault configs self-consistent.
  normalize_config(config_);

  wiring_ = std::make_unique<Wiring>(config_, rng_, queue_, observation_.observer());
  observation_.observer().watch(wiring_->directory_.node_of(GovernorId(0)));
  FaultPlan::install_adversary(config_, *wiring_, queue_);
  workload_ = std::make_unique<Workload>(config_, rng_, queue_, *wiring_);

  observation_.init(config_.topology.collectors, config_.topology.governors);
  observation_.set_bounded_history(config_.bounded_history);
}

Scenario::~Scenario() = default;

void Scenario::run_round() {
  ++round_;
  const SimTime t0 = queue_.now();
  // Scheduled restarts happen at the round boundary, before timers are
  // armed, so the recovered governor takes part in this round's election.
  FaultPlan::apply_restarts(config_, *wiring_, round_);
  observation_.begin_round(round_, *wiring_);

  // Arm every node's phase timers (election -> screening settle -> propose ->
  // stake consensus -> audit). Node order fixes the FIFO tie-break for timers
  // sharing a deadline.
  const protocol::RoundTiming& timing = wiring_->timing_;
  for (auto& g : wiring_->governors_) {
    if (g) g->arm_round(round_, t0, timing);
  }
  for (auto& p : wiring_->providers_) p.arm_round(t0, timing);
  queue_.schedule_at(t0 + timing.rewards_offset,
                     [this] { observation_.sample_rewards(config_, *wiring_); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing.audit_offset,
                       [this] { workload_->run_audit(round_); });
  }
  // Scheduled crashes fire mid-round at their configured offset.
  FaultPlan::schedule_crashes(config_, *wiring_, queue_, round_, t0);

  // Collecting phase: inject the workload once the election has settled.
  queue_.run_until(t0 + timing.workload_offset);
  workload_->inject(round_);

  // The armed timers drive every remaining phase; just run the clock to the
  // round boundary.
  queue_.run_until(t0 + timing.round_span);

  observation_.end_round(*wiring_);

  // Cross-shard anchoring: commit every committee's chain head into the
  // beacon at the interval boundary (pure observation — no messages, no RNG,
  // so classic fixed-seed runs are untouched).
  if (round_ % config_.anchor_interval == 0) {
    observation_.record_anchors(*wiring_, round_);
  }
}

void Scenario::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();
}

}  // namespace repchain::sim
