#include "sim/scenario.hpp"

#include <cmath>
#include <string>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"
#include "storage/file_state_store.hpp"

namespace repchain::sim {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)), rng_(config_.seed) {
  config_.topology.validate();
  config_.governor.rep.validate();
  config_.governor.enable_label_gossip |= config_.enable_label_gossip;
  config_.governor.reliable_delivery |= config_.reliable_delivery;
  // A scheduled adversary switches on the paired defenses: the Byzantine
  // checks (proposal echo + 2Delta hold, sync corroboration, double-spend
  // serial guard) and the label gossip the equivocation detector feeds on.
  if (!config_.adversary.empty()) {
    config_.governor.byzantine_defense = true;
    config_.governor.enable_label_gossip = true;
  }
  // Fault schedules default the liveness watchdog on; clean runs keep it off
  // so the crash-recovery goldens (whose stalls are the *expected* outcome of
  // a dead governor) stay bit-identical.
  if (!config_.faults.empty() && config_.governor.watchdog_rounds == 0) {
    config_.governor.watchdog_rounds = 2;
  }

  net_ = std::make_unique<net::SimNetwork>(queue_, rng_.derive(1), config_.latency);
  transport_ = net_.get();
  Rng key_rng = rng_.derive(2);
  im_ = std::make_unique<identity::IdentityManager>(crypto::random_seed(key_rng));
  oracle_ = std::make_unique<ledger::ValidationOracle>(config_.validation_cost);

  const auto& topo = config_.topology;

  // Phase deadlines for the self-driving rounds, keyed to the synchrony
  // bound Delta and the collecting-phase span.
  timing_ = protocol::RoundTiming::derive(
      net_->max_delay(), config_.governor.aggregation_delta,
      static_cast<SimDuration>(topo.providers * config_.txs_per_provider_per_round) *
          kMillisecond,
      config_.governor.enable_label_gossip);

  // Register network nodes and identities for every member, then links.
  std::vector<crypto::SigningKey> provider_keys, collector_keys, governor_keys;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_provider(ProviderId(static_cast<std::uint32_t>(i)), node);
    provider_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kProvider, provider_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_collector(CollectorId(static_cast<std::uint32_t>(i)), node);
    collector_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kCollector, collector_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_governor(GovernorId(static_cast<std::uint32_t>(i)), node);
    governor_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kGovernor, governor_keys.back().public_key());
  }
  build_links(topo, directory_);
  install_faults();  // replaces transport_ with the decorator when scheduled

  governor_group_ = std::make_unique<runtime::AtomicBroadcastGroup>(
      *transport_, directory_.governor_nodes());

  // Genesis stake (retained: a restarted governor without a snapshot starts
  // from genesis again).
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const std::uint64_t units =
        i < config_.governor_stakes.size() ? config_.governor_stakes[i] : 1;
    genesis_.set(GovernorId(static_cast<std::uint32_t>(i)), units);
  }

  // Instantiate nodes behind their runtime contexts (deques keep references
  // stable while wiring handlers).
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const ProviderId id(static_cast<std::uint32_t>(i));
    provider_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(3000 + i));
    providers_.emplace_back(id, provider_ctxs_.back(), std::move(provider_keys[i]),
                            *im_, *oracle_, directory_, config_.providers_active,
                            config_.reliable_delivery);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      providers_[i].on_message(m);
    });
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const CollectorId id(static_cast<std::uint32_t>(i));
    const protocol::CollectorBehavior behavior =
        config_.behaviors.empty()
            ? protocol::CollectorBehavior::honest()
            : config_.behaviors[i % config_.behaviors.size()];
    collector_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                 rng_.derive(1000 + i));
    collector_baselines_.push_back(behavior);
    collectors_.emplace_back(id, collector_ctxs_.back(), std::move(collector_keys[i]),
                             *im_, *oracle_, directory_, *governor_group_, behavior,
                             config_.reliable_delivery);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      collectors_[i].on_message(m);
    });
  }
  if (config_.governor_visibility <= 0.0 || config_.governor_visibility > 1.0) {
    throw ConfigError("governor_visibility must be in (0, 1]");
  }
  // Governors keep their rebuild material (key, visibility view, store) in
  // the Scenario so a crashed one can be reconstructed in place.
  governor_keys_ = std::move(governor_keys);
  governor_byz_.assign(topo.governors, adversary::GovernorByzantine{});
  const bool durable = config_.durable_governors || !config_.crashes.empty();
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const GovernorId id(static_cast<std::uint32_t>(i));
    std::vector<CollectorId> visible;
    if (config_.governor_visibility < 1.0) {
      const auto count = static_cast<std::size_t>(
          std::ceil(config_.governor_visibility * static_cast<double>(topo.collectors)));
      for (std::size_t k = 0; k < std::max<std::size_t>(count, 1); ++k) {
        visible.push_back(
            CollectorId(static_cast<std::uint32_t>((i + k) % topo.collectors)));
      }
    }
    governor_visible_.push_back(std::move(visible));
    if (durable) {
      if (config_.storage_dir.empty()) {
        governor_stores_.push_back(std::make_unique<storage::MemoryStateStore>());
      } else {
        governor_stores_.push_back(std::make_unique<storage::FileStateStore>(
            config_.storage_dir / ("gov" + std::to_string(i))));
      }
    }
    governor_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(2000 + i), &observer_);
    governors_.emplace_back();
    governor_epochs_.push_back(0);
    make_governor(i);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      if (governors_[i]) governors_[i]->on_message(m);  // null slot = crashed
    });
  }
  observer_.watch(directory_.node_of(GovernorId(0)));
  install_adversary();

  rewards_.assign(topo.collectors, 0.0);
  leader_counts_.assign(topo.governors, 0);
}

Scenario::~Scenario() = default;

void Scenario::install_faults() {
  if (config_.faults.empty()) return;
  const auto& spec = config_.faults;
  runtime::FaultSchedule schedule;
  for (const auto& p : spec.partitions) {
    runtime::PartitionFault f;
    f.from = round_start(p.from_round);
    f.until = round_start(p.until_round);
    for (const std::size_t g : p.governors) {
      f.island.push_back(directory_.node_of(GovernorId(static_cast<std::uint32_t>(g))));
    }
    for (const std::size_t c : p.collectors) {
      f.island.push_back(directory_.node_of(CollectorId(static_cast<std::uint32_t>(c))));
    }
    for (const std::size_t pr : p.providers) {
      f.island.push_back(directory_.node_of(ProviderId(static_cast<std::uint32_t>(pr))));
    }
    schedule.add(std::move(f));
  }
  for (const auto& l : spec.losses) {
    schedule.add(runtime::LossFault{round_start(l.from_round),
                                    round_start(l.until_round), l.probability,
                                    std::nullopt});
  }
  for (const auto& d : spec.delay_spikes) {
    schedule.add(runtime::DelayFault{round_start(d.from_round),
                                     round_start(d.until_round), d.extra, d.jitter});
  }
  for (const auto& d : spec.duplications) {
    schedule.add(runtime::DuplicateFault{round_start(d.from_round),
                                         round_start(d.until_round), d.probability});
  }
  for (const auto& r : spec.reorders) {
    schedule.add(runtime::ReorderFault{round_start(r.from_round),
                                       round_start(r.until_round), r.probability,
                                       r.max_extra});
  }
  // Slow links reuse the network's own per-link delay hook (they must affect
  // broadcast deliveries scheduled by the network, not just unicasts).
  for (const auto& ld : spec.link_delays) {
    const NodeId a =
        directory_.node_of(GovernorId(static_cast<std::uint32_t>(ld.from_governor)));
    const NodeId b =
        directory_.node_of(GovernorId(static_cast<std::uint32_t>(ld.to_governor)));
    queue_.schedule_at(round_start(ld.from_round), [this, a, b, extra = ld.extra] {
      net_->set_link_delay(a, b, extra);
    });
    queue_.schedule_at(round_start(ld.until_round),
                       [this, a, b] { net_->set_link_delay(a, b, 0); });
  }
  faulty_ = std::make_unique<runtime::FaultyTransport>(*net_, std::move(schedule),
                                                       rng_.derive(7));
  transport_ = faulty_.get();
}

void Scenario::install_adversary() {
  if (config_.adversary.empty()) return;
  const auto& spec = config_.adversary;
  // Window boundaries are enqueued here, before any round's phase timers, so
  // a swap at round_start(r) fires ahead of round r's election (FIFO
  // tie-break on equal deadlines). governor_byz_ is the source of truth the
  // lambdas mutate; make_governor re-reads it, so a Byzantine governor stays
  // Byzantine across a crash/restart inside its window.
  const auto set_governor_flags =
      [this](std::size_t g, auto member, bool value, std::size_t round) {
        queue_.schedule_at(round_start(round), [this, g, member, value] {
          governor_byz_[g].*member = value;
          if (governors_[g]) governors_[g]->set_byzantine(governor_byz_[g]);
        });
      };
  for (const auto& s : spec.equivocating_leaders) {
    set_governor_flags(s.governor, &adversary::GovernorByzantine::equivocate_proposals,
                       true, s.from_round);
    set_governor_flags(s.governor, &adversary::GovernorByzantine::equivocate_proposals,
                       false, s.until_round);
  }
  for (const auto& s : spec.lying_sync_peers) {
    set_governor_flags(s.governor, &adversary::GovernorByzantine::lying_sync, true,
                       s.from_round);
    set_governor_flags(s.governor, &adversary::GovernorByzantine::lying_sync, false,
                       s.until_round);
  }
  for (const auto& s : spec.byzantine_collectors) {
    protocol::CollectorBehavior deviating = collector_baselines_[s.collector];
    deviating.flip_probability = s.flip_probability;
    deviating.forge_probability = s.forge_probability;
    deviating.equivocate = s.equivocate;
    deviating.flip_by_provider = s.flip_by_provider;
    queue_.schedule_at(round_start(s.from_round),
                       [this, c = s.collector, deviating = std::move(deviating)] {
                         collectors_[c].set_behavior(deviating);
                       });
    queue_.schedule_at(round_start(s.until_round), [this, c = s.collector] {
      collectors_[c].set_behavior(collector_baselines_[c]);
    });
  }
  for (const auto& s : spec.double_spenders) {
    queue_.schedule_at(round_start(s.from_round), [this, p = s.provider,
                                                   probability = s.probability] {
      providers_[p].set_double_spend(probability);
    });
    queue_.schedule_at(round_start(s.until_round),
                       [this, p = s.provider] { providers_[p].set_double_spend(0.0); });
  }
}

void Scenario::make_governor(std::size_t i) {
  const GovernorId id(static_cast<std::uint32_t>(i));
  storage::NodeStateStore* store =
      governor_stores_.empty() ? nullptr : governor_stores_[i].get();
  protocol::GovernorConfig gc = config_.governor;
  gc.channel_epoch = governor_epochs_[i];
  governors_[i] = std::make_unique<protocol::Governor>(
      id, governor_ctxs_[i], governor_keys_[i], *im_, *oracle_, directory_,
      *governor_group_, gc, genesis_, governor_visible_[i], store);
  if (governor_byz_[i].any()) governors_[i]->set_byzantine(governor_byz_[i]);
}

void Scenario::crash_governor(std::size_t i) {
  // Kill -9 equivalent: pending timer callbacks become no-ops, the object
  // (and with it every byte of in-memory state) is destroyed. The store —
  // owned by the Scenario, like a disk outlives a process — stays.
  governor_ctxs_[i].revoke_timers();
  governors_[i].reset();
}

void Scenario::restart_governor(std::size_t i) {
  ++governor_epochs_[i];  // fresh ReliableChannel incarnation
  make_governor(i);
  governors_[i]->recover_from_store();
  governors_[i]->sync_chain();
}

const protocol::Governor* Scenario::first_live_governor() const {
  for (const auto& g : governors_) {
    if (g) return g.get();
  }
  return nullptr;
}

void Scenario::sample_rewards() {
  // Track leadership and distribute rewards from the leader's reputation.
  const protocol::Governor* ref = first_live_governor();
  if (ref == nullptr) return;
  const auto leader = ref->round_leader();
  if (!leader) return;
  leader_counts_[leader->value()] += 1;
  if (!governors_[leader->value()]) return;  // leader crashed mid-round
  auto& leader_gov = *governors_[leader->value()];
  if (leader_gov.chain().empty()) return;
  const auto& block = leader_gov.chain().head();
  std::size_t valid_txs = 0;
  for (const auto& rec : block.txs) {
    if (rec.status != ledger::TxStatus::kUncheckedInvalid) ++valid_txs;
  }
  const double profit = config_.reward_per_valid_tx * static_cast<double>(valid_txs);
  if (profit > 0.0) {
    for (const auto& [c, share] : leader_gov.revenue_shares()) {
      rewards_[c.value()] += profit * share;
    }
  }
}

void Scenario::run_audit() {
  // Remaining unrevealed unchecked truths surface through "other evidence".
  // One shared stream consumed in governor order keeps the draw sequence
  // deterministic.
  Rng audit = rng_.derive(20'000 + round_);
  for (auto& g : governors_) {
    if (!g) continue;
    for (const auto& id : g->unrevealed_unchecked()) {
      if (audit.bernoulli(config_.audit_probability)) {
        (void)g->reveal_unchecked(id);
      }
    }
  }
}

void Scenario::run_round() {
  ++round_;
  const SimTime t0 = queue_.now();
  // Scheduled restarts happen at the round boundary, before timers are
  // armed, so the recovered governor takes part in this round's election.
  for (const auto& plan : config_.crashes) {
    if (plan.restart_round == round_ && !governors_[plan.governor]) {
      restart_governor(plan.governor);
    }
  }
  RoundRecord record;
  record.round = round_;
  const std::uint64_t validations_before = oracle_->validations();
  const std::uint64_t messages_before = net_->stats().messages_sent;
  const protocol::Governor* ref = first_live_governor();
  const double loss_before = ref ? ref->metrics().expected_loss : 0.0;
  std::uint64_t argues_before = 0;
  for (const auto& g : governors_) {
    if (g) argues_before += g->metrics().argues_accepted;
  }

  // Arm every node's phase timers (election -> screening settle -> propose ->
  // stake consensus -> audit). Node order fixes the FIFO tie-break for timers
  // sharing a deadline.
  for (auto& g : governors_) {
    if (g) g->arm_round(round_, t0, timing_);
  }
  for (auto& p : providers_) p.arm_round(t0, timing_);
  queue_.schedule_at(t0 + timing_.rewards_offset, [this] { sample_rewards(); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing_.audit_offset, [this] { run_audit(); });
  }
  // Scheduled crashes fire mid-round at their configured offset.
  for (const auto& plan : config_.crashes) {
    if (plan.crash_round == round_) {
      queue_.schedule_at(t0 + plan.crash_offset,
                         [this, g = plan.governor] { crash_governor(g); });
    }
  }

  // Collecting phase: inject the workload once the election has settled.
  queue_.run_until(t0 + timing_.workload_offset);
  Rng workload = rng_.derive(10'000 + round_);
  for (auto& p : providers_) {
    for (std::size_t t = 0; t < config_.txs_per_provider_per_round; ++t) {
      const bool valid = workload.bernoulli(config_.p_valid);
      Bytes payload = workload.bytes(24);
      (void)p.submit(std::move(payload), valid);
      // Spread submissions a little so aggregation windows interleave.
      queue_.run_until(queue_.now() + 1 * kMillisecond);
    }
  }

  // The armed timers drive every remaining phase; just run the clock to the
  // round boundary.
  queue_.run_until(t0 + timing_.round_span);

  record.leader = observer_.leader(round_);
  record.block_txs = observer_.block_txs(round_);
  record.validations_delta = oracle_->validations() - validations_before;
  record.messages_delta = net_->stats().messages_sent - messages_before;
  ref = first_live_governor();
  record.expected_loss_delta =
      (ref ? ref->metrics().expected_loss : 0.0) - loss_before;
  std::uint64_t argues_after = 0;
  for (const auto& g : governors_) {
    if (g) argues_after += g->metrics().argues_accepted;
  }
  record.argues_delta = argues_after - argues_before;
  history_.push_back(record);
}

void Scenario::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();
}

ScenarioSummary Scenario::summary() const {
  ScenarioSummary s;
  for (const auto& p : providers_) s.txs_submitted += p.submitted();

  // Currently-dead governors are excluded: the summary reflects the view of
  // the live replicas (agreement/audit over a null chain is meaningless).
  const protocol::Governor* ref = first_live_governor();
  if (ref == nullptr) return s;
  const auto& chain0 = ref->chain();
  s.blocks = chain0.height();
  s.chain_valid_txs = chain0.count_status(ledger::TxStatus::kCheckedValid);
  s.chain_unchecked_txs = chain0.count_status(ledger::TxStatus::kUncheckedInvalid);
  s.chain_argued_txs = chain0.count_status(ledger::TxStatus::kArguedValid);

  s.agreement = true;
  s.chains_audit_ok = true;
  s.stalled_events = observer_.stalled_events();
  s.byzantine_evidence = observer_.byzantine_evidence();
  for (const auto& g : governors_) {
    if (!g) continue;
    s.chains_audit_ok = s.chains_audit_ok && g->chain().audit();
    if (g.get() != ref) {
      s.agreement =
          s.agreement && ledger::ChainStore::same_prefix(chain0, g->chain());
    }
  }

  s.validations_total = oracle_->validations();
  double exp_loss = 0.0, real_loss = 0.0;
  std::uint64_t mistakes = 0;
  std::size_t live = 0;
  for (const auto& g : governors_) {
    if (!g) continue;
    ++live;
    exp_loss += g->metrics().expected_loss;
    real_loss += g->metrics().realized_loss;
    mistakes += g->metrics().mistakes;
  }
  const double m = static_cast<double>(live);
  s.mean_governor_expected_loss = exp_loss / m;
  s.mean_governor_realized_loss = real_loss / m;
  s.mean_governor_mistakes =
      static_cast<std::uint64_t>(static_cast<double>(mistakes) / m);
  s.network = net_->stats();
  return s;
}

}  // namespace repchain::sim
