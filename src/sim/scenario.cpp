#include "sim/scenario.hpp"

#include <cmath>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"

namespace repchain::sim {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)), rng_(config_.seed) {
  config_.topology.validate();
  config_.governor.rep.validate();
  config_.governor.enable_label_gossip |= config_.enable_label_gossip;

  net_ = std::make_unique<net::SimNetwork>(queue_, rng_.derive(1), config_.latency);
  Rng key_rng = rng_.derive(2);
  im_ = std::make_unique<identity::IdentityManager>(crypto::random_seed(key_rng));
  oracle_ = std::make_unique<ledger::ValidationOracle>(config_.validation_cost);

  const auto& topo = config_.topology;

  // Phase deadlines for the self-driving rounds, keyed to the synchrony
  // bound Delta and the collecting-phase span.
  timing_ = protocol::RoundTiming::derive(
      net_->max_delay(), config_.governor.aggregation_delta,
      static_cast<SimDuration>(topo.providers * config_.txs_per_provider_per_round) *
          kMillisecond,
      config_.governor.enable_label_gossip);

  // Register network nodes and identities for every member, then links.
  std::vector<crypto::SigningKey> provider_keys, collector_keys, governor_keys;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_provider(ProviderId(static_cast<std::uint32_t>(i)), node);
    provider_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kProvider, provider_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_collector(CollectorId(static_cast<std::uint32_t>(i)), node);
    collector_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kCollector, collector_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_governor(GovernorId(static_cast<std::uint32_t>(i)), node);
    governor_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kGovernor, governor_keys.back().public_key());
  }
  build_links(topo, directory_);

  governor_group_ = std::make_unique<runtime::AtomicBroadcastGroup>(
      *net_, directory_.governor_nodes());

  // Genesis stake.
  protocol::StakeLedger genesis;
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const std::uint64_t units =
        i < config_.governor_stakes.size() ? config_.governor_stakes[i] : 1;
    genesis.set(GovernorId(static_cast<std::uint32_t>(i)), units);
  }

  // Instantiate nodes behind their runtime contexts (deques keep references
  // stable while wiring handlers).
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const ProviderId id(static_cast<std::uint32_t>(i));
    provider_ctxs_.emplace_back(directory_.node_of(id), *net_, rng_.derive(3000 + i));
    providers_.emplace_back(id, provider_ctxs_.back(), std::move(provider_keys[i]),
                            *im_, *oracle_, directory_, config_.providers_active);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      providers_[i].on_message(m);
    });
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const CollectorId id(static_cast<std::uint32_t>(i));
    const protocol::CollectorBehavior behavior =
        config_.behaviors.empty()
            ? protocol::CollectorBehavior::honest()
            : config_.behaviors[i % config_.behaviors.size()];
    collector_ctxs_.emplace_back(directory_.node_of(id), *net_, rng_.derive(1000 + i));
    collectors_.emplace_back(id, collector_ctxs_.back(), std::move(collector_keys[i]),
                             *im_, *oracle_, directory_, *governor_group_, behavior);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      collectors_[i].on_message(m);
    });
  }
  if (config_.governor_visibility <= 0.0 || config_.governor_visibility > 1.0) {
    throw ConfigError("governor_visibility must be in (0, 1]");
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const GovernorId id(static_cast<std::uint32_t>(i));
    std::vector<CollectorId> visible;
    if (config_.governor_visibility < 1.0) {
      const auto count = static_cast<std::size_t>(
          std::ceil(config_.governor_visibility * static_cast<double>(topo.collectors)));
      for (std::size_t k = 0; k < std::max<std::size_t>(count, 1); ++k) {
        visible.push_back(
            CollectorId(static_cast<std::uint32_t>((i + k) % topo.collectors)));
      }
    }
    governor_ctxs_.emplace_back(directory_.node_of(id), *net_, rng_.derive(2000 + i),
                                &observer_);
    governors_.emplace_back(id, governor_ctxs_.back(), std::move(governor_keys[i]),
                            *im_, *oracle_, directory_, *governor_group_,
                            config_.governor, genesis, std::move(visible));
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      governors_[i].on_message(m);
    });
  }
  observer_.watch(directory_.node_of(GovernorId(0)));

  rewards_.assign(topo.collectors, 0.0);
  leader_counts_.assign(topo.governors, 0);
}

Scenario::~Scenario() = default;

void Scenario::sample_rewards() {
  // Track leadership and distribute rewards from the leader's reputation.
  const auto leader = governors_.front().round_leader();
  if (!leader) return;
  leader_counts_[leader->value()] += 1;
  auto& leader_gov = governors_[leader->value()];
  if (leader_gov.chain().empty()) return;
  const auto& block = leader_gov.chain().head();
  std::size_t valid_txs = 0;
  for (const auto& rec : block.txs) {
    if (rec.status != ledger::TxStatus::kUncheckedInvalid) ++valid_txs;
  }
  const double profit = config_.reward_per_valid_tx * static_cast<double>(valid_txs);
  if (profit > 0.0) {
    for (const auto& [c, share] : leader_gov.revenue_shares()) {
      rewards_[c.value()] += profit * share;
    }
  }
}

void Scenario::run_audit() {
  // Remaining unrevealed unchecked truths surface through "other evidence".
  // One shared stream consumed in governor order keeps the draw sequence
  // deterministic.
  Rng audit = rng_.derive(20'000 + round_);
  for (auto& g : governors_) {
    for (const auto& id : g.unrevealed_unchecked()) {
      if (audit.bernoulli(config_.audit_probability)) {
        (void)g.reveal_unchecked(id);
      }
    }
  }
}

void Scenario::run_round() {
  ++round_;
  const SimTime t0 = queue_.now();
  RoundRecord record;
  record.round = round_;
  const std::uint64_t validations_before = oracle_->validations();
  const std::uint64_t messages_before = net_->stats().messages_sent;
  const double loss_before = governors_.front().metrics().expected_loss;
  std::uint64_t argues_before = 0;
  for (const auto& g : governors_) argues_before += g.metrics().argues_accepted;

  // Arm every node's phase timers (election -> screening settle -> propose ->
  // stake consensus -> audit). Node order fixes the FIFO tie-break for timers
  // sharing a deadline.
  for (auto& g : governors_) g.arm_round(round_, t0, timing_);
  for (auto& p : providers_) p.arm_round(t0, timing_);
  queue_.schedule_at(t0 + timing_.rewards_offset, [this] { sample_rewards(); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing_.audit_offset, [this] { run_audit(); });
  }

  // Collecting phase: inject the workload once the election has settled.
  queue_.run_until(t0 + timing_.workload_offset);
  Rng workload = rng_.derive(10'000 + round_);
  for (auto& p : providers_) {
    for (std::size_t t = 0; t < config_.txs_per_provider_per_round; ++t) {
      const bool valid = workload.bernoulli(config_.p_valid);
      Bytes payload = workload.bytes(24);
      (void)p.submit(std::move(payload), valid);
      // Spread submissions a little so aggregation windows interleave.
      queue_.run_until(queue_.now() + 1 * kMillisecond);
    }
  }

  // The armed timers drive every remaining phase; just run the clock to the
  // round boundary.
  queue_.run_until(t0 + timing_.round_span);

  record.leader = observer_.leader(round_);
  record.block_txs = observer_.block_txs(round_);
  record.validations_delta = oracle_->validations() - validations_before;
  record.messages_delta = net_->stats().messages_sent - messages_before;
  record.expected_loss_delta =
      governors_.front().metrics().expected_loss - loss_before;
  std::uint64_t argues_after = 0;
  for (const auto& g : governors_) argues_after += g.metrics().argues_accepted;
  record.argues_delta = argues_after - argues_before;
  history_.push_back(record);
}

void Scenario::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();
}

ScenarioSummary Scenario::summary() const {
  ScenarioSummary s;
  for (const auto& p : providers_) s.txs_submitted += p.submitted();

  const auto& chain0 = governors_.front().chain();
  s.blocks = chain0.height();
  s.chain_valid_txs = chain0.count_status(ledger::TxStatus::kCheckedValid);
  s.chain_unchecked_txs = chain0.count_status(ledger::TxStatus::kUncheckedInvalid);
  s.chain_argued_txs = chain0.count_status(ledger::TxStatus::kArguedValid);

  s.agreement = true;
  s.chains_audit_ok = true;
  for (std::size_t i = 0; i < governors_.size(); ++i) {
    s.chains_audit_ok = s.chains_audit_ok && governors_[i].chain().audit();
    if (i > 0) {
      s.agreement = s.agreement && ledger::ChainStore::same_prefix(
                                       governors_[0].chain(), governors_[i].chain());
    }
  }

  s.validations_total = oracle_->validations();
  double exp_loss = 0.0, real_loss = 0.0;
  std::uint64_t mistakes = 0;
  for (const auto& g : governors_) {
    exp_loss += g.metrics().expected_loss;
    real_loss += g.metrics().realized_loss;
    mistakes += g.metrics().mistakes;
  }
  const double m = static_cast<double>(governors_.size());
  s.mean_governor_expected_loss = exp_loss / m;
  s.mean_governor_realized_loss = real_loss / m;
  s.mean_governor_mistakes =
      static_cast<std::uint64_t>(static_cast<double>(mistakes) / m);
  s.network = net_->stats();
  return s;
}

}  // namespace repchain::sim
