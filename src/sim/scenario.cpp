#include "sim/scenario.hpp"

#include "sim/harness/fault_plan.hpp"

namespace repchain::sim {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)), rng_(config_.seed) {
  // Normalize the spec before any machinery sees it: validation plus the
  // implied-flag rules that make attack/fault configs self-consistent.
  config_.topology.validate();
  config_.governor.rep.validate();
  config_.governor.enable_label_gossip |= config_.enable_label_gossip;
  config_.governor.reliable_delivery |= config_.reliable_delivery;
  // A scheduled adversary switches on the paired defenses: the Byzantine
  // checks (proposal echo + 2Delta hold, sync corroboration, double-spend
  // serial guard) and the label gossip the equivocation detector feeds on.
  if (!config_.adversary.empty()) {
    config_.governor.byzantine_defense = true;
    config_.governor.enable_label_gossip = true;
  }
  // Fault schedules default the liveness watchdog on; clean runs keep it off
  // so the crash-recovery goldens (whose stalls are the *expected* outcome of
  // a dead governor) stay bit-identical.
  if (!config_.faults.empty() && config_.governor.watchdog_rounds == 0) {
    config_.governor.watchdog_rounds = 2;
  }

  wiring_ = std::make_unique<Wiring>(config_, rng_, queue_, observation_.observer());
  observation_.observer().watch(wiring_->directory_.node_of(GovernorId(0)));
  FaultPlan::install_adversary(config_, *wiring_, queue_);
  workload_ = std::make_unique<Workload>(config_, rng_, queue_, *wiring_);

  observation_.init(config_.topology.collectors, config_.topology.governors);
}

Scenario::~Scenario() = default;

void Scenario::run_round() {
  ++round_;
  const SimTime t0 = queue_.now();
  // Scheduled restarts happen at the round boundary, before timers are
  // armed, so the recovered governor takes part in this round's election.
  FaultPlan::apply_restarts(config_, *wiring_, round_);
  observation_.begin_round(round_, *wiring_);

  // Arm every node's phase timers (election -> screening settle -> propose ->
  // stake consensus -> audit). Node order fixes the FIFO tie-break for timers
  // sharing a deadline.
  const protocol::RoundTiming& timing = wiring_->timing_;
  for (auto& g : wiring_->governors_) {
    if (g) g->arm_round(round_, t0, timing);
  }
  for (auto& p : wiring_->providers_) p.arm_round(t0, timing);
  queue_.schedule_at(t0 + timing.rewards_offset,
                     [this] { observation_.sample_rewards(config_, *wiring_); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing.audit_offset,
                       [this] { workload_->run_audit(round_); });
  }
  // Scheduled crashes fire mid-round at their configured offset.
  FaultPlan::schedule_crashes(config_, *wiring_, queue_, round_, t0);

  // Collecting phase: inject the workload once the election has settled.
  queue_.run_until(t0 + timing.workload_offset);
  workload_->inject(round_);

  // The armed timers drive every remaining phase; just run the clock to the
  // round boundary.
  queue_.run_until(t0 + timing.round_span);

  observation_.end_round(*wiring_);
}

void Scenario::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();
}

}  // namespace repchain::sim
