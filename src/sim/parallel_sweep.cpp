#include "sim/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace repchain::sim {

std::size_t ParallelSweep::resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelSweep::for_each(std::size_t count,
                             const std::function<void(std::size_t)>& task) const {
  if (count == 0) return;
  if (jobs_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  // Work-stealing by atomic counter: shards are claimed in index order, so
  // load imbalance (one slow seed) never idles the other workers.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t threads = std::min(jobs_, count);
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace repchain::sim
