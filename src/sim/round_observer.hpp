#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "runtime/trace.hpp"

namespace repchain::sim {

/// Passive trace sink for the self-driving rounds: collects the
/// kLeaderElected / kBlockCommitted events one watched node emits so the
/// harness can assemble RoundRecords without poking the protocol objects
/// between phases.
class RoundObserver final : public runtime::TraceSink {
 public:
  /// Restrict collection to events emitted by `node` (the reference replica);
  /// without a watched node every event is collected.
  void watch(NodeId node) { watched_ = node; }

  void on_event(const runtime::TraceEvent& ev) override;

  /// The leader the watched node elected in `round` (nullopt if the election
  /// never completed there).
  [[nodiscard]] std::optional<GovernorId> leader(Round round) const;

  /// Transactions in the block the watched node committed in `round` (0 when
  /// no block committed).
  [[nodiscard]] std::size_t block_txs(Round round) const;

  /// When the watched node committed its block in `round` (the *last* commit
  /// event of the round, covering catch-up adoptions); nullopt when none.
  [[nodiscard]] std::optional<SimTime> commit_at(Round round) const;

  /// Rounds that emitted at least one watched event.
  [[nodiscard]] std::size_t rounds_seen() const { return rounds_.size(); }

  /// kRoundStalled events across ALL nodes (not just the watched one): the
  /// liveness-watchdog signal the chaos harness fails on.
  [[nodiscard]] std::uint64_t stalled_events() const { return stalled_events_; }

  /// kByzantineEvidence events across ALL nodes: each one is a defense
  /// catching active misbehavior (the adversary harness asserts on these).
  [[nodiscard]] std::uint64_t byzantine_evidence() const { return byzantine_evidence_; }

  /// kCrossShardRejected events across ALL nodes: collectors refusing
  /// transactions whose provider lives in another committee.
  [[nodiscard]] std::uint64_t cross_shard_rejected() const {
    return cross_shard_rejected_;
  }

  /// kDeliveryFailed events across ALL nodes: ReliableChannel retry budgets
  /// exhausted (the envelope was abandoned to the sync/watchdog fallbacks).
  [[nodiscard]] std::uint64_t delivery_failures() const {
    return delivery_failures_;
  }

  /// kPeerDead events across ALL nodes: keepalive timeouts on socket links.
  [[nodiscard]] std::uint64_t dead_peer_events() const {
    return dead_peer_events_;
  }

  /// Keep only the newest `rounds` round entries (0 = unbounded, the
  /// default). Long sweeps over large populations set this so the per-round
  /// map stays memory-bounded; global tallies are unaffected.
  void set_retention(std::size_t rounds) { retention_ = rounds; }

 private:
  struct Entry {
    std::optional<GovernorId> leader;
    std::size_t block_txs = 0;
    std::optional<SimTime> commit_at;
  };

  void prune();

  std::optional<NodeId> watched_;
  std::unordered_map<Round, Entry> rounds_;
  std::uint64_t stalled_events_ = 0;
  std::uint64_t byzantine_evidence_ = 0;
  std::uint64_t cross_shard_rejected_ = 0;
  std::uint64_t delivery_failures_ = 0;
  std::uint64_t dead_peer_events_ = 0;
  std::size_t retention_ = 0;
};

}  // namespace repchain::sim
