#include "sim/harness/wiring.hpp"

#include <string>

#include "sim/harness/fault_plan.hpp"
#include "sim/round_observer.hpp"
#include "storage/file_state_store.hpp"

namespace repchain::sim {

Wiring::Wiring(ScenarioConfig& config, const Rng& rng, net::EventQueue& queue,
               RoundObserver& observer, RemoteGovernorLink* remote)
    : config_(config), rng_(rng), remote_(remote) {
  net_ = std::make_unique<net::SimNetwork>(queue, rng_.derive(1), config_.latency);
  transport_ = net_.get();
  oracle_ = std::make_unique<ledger::ValidationOracle>(config_.validation_cost);

  const auto& topo = config_.topology;

  // The deterministic build material — keys, identities, directory, timing,
  // genesis stake, visibility views — derives purely from (config, rng); a
  // cluster node process rebuilds the identical model from the same inputs.
  SystemModel model = SystemModel::build(config_, rng_);
  im_ = std::move(model.im);
  directory_ = std::move(model.directory);
  router_ = std::move(model.router);
  shard_directories_ = std::move(model.shard_directories);
  shard_genesis_ = std::move(model.shard_genesis);
  timing_ = model.timing;
  genesis_ = std::move(model.genesis);
  governor_visible_ = std::move(model.governor_visible);
  std::vector<crypto::SigningKey> provider_keys = std::move(model.provider_keys);
  std::vector<crypto::SigningKey> collector_keys = std::move(model.collector_keys);
  std::vector<crypto::SigningKey> governor_keys = std::move(model.governor_keys);

  // Register the network node slots; SimNetwork assigns the same sequential
  // flat ids the model derived.
  const std::size_t total = topo.providers + topo.collectors + topo.governors;
  for (std::size_t i = 0; i < total; ++i) (void)net_->add_node();

  // Replaces transport_ with the decorator when faults are scheduled.
  faulty_ = FaultPlan::install_network_faults(config_, *net_, directory_, timing_,
                                              queue, rng_);
  if (faulty_) transport_ = faulty_.get();

  // One atomic-broadcast group per committee: collectors upload to (and
  // governors gossip within) their own shard's governors only. On classic
  // runs this is the single global governor group, same member list as ever.
  for (const auto& shard_dir : shard_directories_) {
    shard_groups_.push_back(std::make_unique<runtime::AtomicBroadcastGroup>(
        *transport_, shard_dir.governor_nodes()));
  }
  governor_group_ = shard_groups_.front().get();

  // Instantiate nodes behind their runtime contexts (deques keep references
  // stable while wiring handlers).
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const ProviderId id(static_cast<std::uint32_t>(i));
    provider_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(3000 + i));
    providers_.emplace_back(id, provider_ctxs_.back(), std::move(provider_keys[i]),
                            *im_, *oracle_,
                            shard_directories_[router_.shard_of(id).value()],
                            config_.providers_active, config_.reliable_delivery);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      providers_[i].on_message(m);
    });
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const CollectorId id(static_cast<std::uint32_t>(i));
    const ShardId shard = router_.shard_of(id);
    const protocol::CollectorBehavior behavior =
        config_.behaviors.empty()
            ? protocol::CollectorBehavior::honest()
            : config_.behaviors[i % config_.behaviors.size()];
    // Sharded collectors get the trace sink (cross-shard rejects are round
    // observations); classic ones keep their sink-less context as before.
    collector_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                 rng_.derive(1000 + i),
                                 config_.shard_count > 1
                                     ? static_cast<runtime::TraceSink*>(&observer)
                                     : nullptr);
    collector_baselines_.push_back(behavior);
    collectors_.emplace_back(id, collector_ctxs_.back(), std::move(collector_keys[i]),
                             *im_, *oracle_, shard_directories_[shard.value()],
                             *shard_groups_[shard.value()], behavior,
                             config_.reliable_delivery);
    if (config_.shard_count > 1) {
      collectors_.back().set_shard_filter([this, shard](ProviderId p) {
        return router_.shard_of(p) == shard;
      });
    }
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      collectors_[i].on_message(m);
    });
  }
  // Governors keep their rebuild material (key, visibility view, store) here
  // so a crashed one can be reconstructed in place.
  governor_keys_ = std::move(governor_keys);
  governor_byz_.assign(topo.governors, adversary::GovernorByzantine{});
  const bool durable = config_.durable_governors || !config_.crashes.empty();
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const GovernorId id(static_cast<std::uint32_t>(i));
    if (durable) {
      if (config_.storage_dir.empty()) {
        governor_stores_.push_back(std::make_unique<storage::MemoryStateStore>());
      } else {
        governor_stores_.push_back(std::make_unique<storage::FileStateStore>(
            config_.storage_dir / ("gov" + std::to_string(i))));
      }
    }
    governor_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(2000 + i), &observer);
    governors_.emplace_back();
    governor_epochs_.push_back(0);
    if (remote_ == nullptr) make_governor(i);  // remote: slot stays null
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      if (remote_ != nullptr) {
        remote_->deliver(i, m);
      } else if (governors_[i]) {
        governors_[i]->on_message(m);  // null slot = crashed
      }
    });
  }
}

Wiring::~Wiring() = default;

void Wiring::make_governor(std::size_t i) {
  const GovernorId id(static_cast<std::uint32_t>(i));
  const ShardId shard = router_.shard_of(id);
  storage::NodeStateStore* store =
      governor_stores_.empty() ? nullptr : governor_stores_[i].get();
  protocol::GovernorConfig gc = config_.governor;
  gc.channel_epoch = governor_epochs_[i];
  governors_[i] = std::make_unique<protocol::Governor>(
      id, governor_ctxs_[i], governor_keys_[i], *im_, *oracle_,
      shard_directories_[shard.value()], *shard_groups_[shard.value()], gc,
      shard_genesis_[shard.value()], governor_visible_[i], store);
  if (governor_byz_[i].any()) governors_[i]->set_byzantine(governor_byz_[i]);
}

void Wiring::crash_governor(std::size_t i) {
  // Kill -9 equivalent: pending timer callbacks become no-ops, the object
  // (and with it every byte of in-memory state) is destroyed. The store —
  // owned here, like a disk outlives a process — stays.
  governor_ctxs_[i].revoke_timers();
  governors_[i].reset();
}

void Wiring::restart_governor(std::size_t i) {
  ++governor_epochs_[i];  // fresh ReliableChannel incarnation
  make_governor(i);
  governors_[i]->recover_from_store();
  governors_[i]->sync_chain();
}

const protocol::Governor* Wiring::first_live_governor() const {
  for (const auto& g : governors_) {
    if (g) return g.get();
  }
  return nullptr;
}

}  // namespace repchain::sim
