#include "sim/harness/wiring.hpp"

#include <cmath>
#include <string>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"
#include "sim/harness/fault_plan.hpp"
#include "sim/round_observer.hpp"
#include "storage/file_state_store.hpp"

namespace repchain::sim {

Wiring::Wiring(ScenarioConfig& config, const Rng& rng, net::EventQueue& queue,
               RoundObserver& observer)
    : config_(config), rng_(rng) {
  net_ = std::make_unique<net::SimNetwork>(queue, rng_.derive(1), config_.latency);
  transport_ = net_.get();
  Rng key_rng = rng_.derive(2);
  im_ = std::make_unique<identity::IdentityManager>(crypto::random_seed(key_rng));
  oracle_ = std::make_unique<ledger::ValidationOracle>(config_.validation_cost);

  const auto& topo = config_.topology;

  // Phase deadlines for the self-driving rounds, keyed to the synchrony
  // bound Delta and the collecting-phase span.
  timing_ = protocol::RoundTiming::derive(
      net_->max_delay(), config_.governor.aggregation_delta,
      static_cast<SimDuration>(topo.providers * config_.txs_per_provider_per_round) *
          kMillisecond,
      config_.governor.enable_label_gossip);

  // Register network nodes and identities for every member, then links.
  std::vector<crypto::SigningKey> provider_keys, collector_keys, governor_keys;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_provider(ProviderId(static_cast<std::uint32_t>(i)), node);
    provider_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kProvider, provider_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_collector(CollectorId(static_cast<std::uint32_t>(i)), node);
    collector_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kCollector, collector_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const NodeId node = net_->add_node();
    directory_.add_governor(GovernorId(static_cast<std::uint32_t>(i)), node);
    governor_keys.emplace_back(crypto::random_seed(key_rng));
    im_->enroll(node, identity::Role::kGovernor, governor_keys.back().public_key());
  }
  build_links(topo, directory_);
  // Replaces transport_ with the decorator when faults are scheduled.
  faulty_ = FaultPlan::install_network_faults(config_, *net_, directory_, timing_,
                                              queue, rng_);
  if (faulty_) transport_ = faulty_.get();

  governor_group_ = std::make_unique<runtime::AtomicBroadcastGroup>(
      *transport_, directory_.governor_nodes());

  // Genesis stake (retained: a restarted governor without a snapshot starts
  // from genesis again).
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const std::uint64_t units =
        i < config_.governor_stakes.size() ? config_.governor_stakes[i] : 1;
    genesis_.set(GovernorId(static_cast<std::uint32_t>(i)), units);
  }

  // Instantiate nodes behind their runtime contexts (deques keep references
  // stable while wiring handlers).
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const ProviderId id(static_cast<std::uint32_t>(i));
    provider_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(3000 + i));
    providers_.emplace_back(id, provider_ctxs_.back(), std::move(provider_keys[i]),
                            *im_, *oracle_, directory_, config_.providers_active,
                            config_.reliable_delivery);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      providers_[i].on_message(m);
    });
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const CollectorId id(static_cast<std::uint32_t>(i));
    const protocol::CollectorBehavior behavior =
        config_.behaviors.empty()
            ? protocol::CollectorBehavior::honest()
            : config_.behaviors[i % config_.behaviors.size()];
    collector_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                 rng_.derive(1000 + i));
    collector_baselines_.push_back(behavior);
    collectors_.emplace_back(id, collector_ctxs_.back(), std::move(collector_keys[i]),
                             *im_, *oracle_, directory_, *governor_group_, behavior,
                             config_.reliable_delivery);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      collectors_[i].on_message(m);
    });
  }
  if (config_.governor_visibility <= 0.0 || config_.governor_visibility > 1.0) {
    throw ConfigError("governor_visibility must be in (0, 1]");
  }
  // Governors keep their rebuild material (key, visibility view, store) here
  // so a crashed one can be reconstructed in place.
  governor_keys_ = std::move(governor_keys);
  governor_byz_.assign(topo.governors, adversary::GovernorByzantine{});
  const bool durable = config_.durable_governors || !config_.crashes.empty();
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const GovernorId id(static_cast<std::uint32_t>(i));
    std::vector<CollectorId> visible;
    if (config_.governor_visibility < 1.0) {
      const auto count = static_cast<std::size_t>(
          std::ceil(config_.governor_visibility * static_cast<double>(topo.collectors)));
      for (std::size_t k = 0; k < std::max<std::size_t>(count, 1); ++k) {
        visible.push_back(
            CollectorId(static_cast<std::uint32_t>((i + k) % topo.collectors)));
      }
    }
    governor_visible_.push_back(std::move(visible));
    if (durable) {
      if (config_.storage_dir.empty()) {
        governor_stores_.push_back(std::make_unique<storage::MemoryStateStore>());
      } else {
        governor_stores_.push_back(std::make_unique<storage::FileStateStore>(
            config_.storage_dir / ("gov" + std::to_string(i))));
      }
    }
    governor_ctxs_.emplace_back(directory_.node_of(id), *transport_,
                                rng_.derive(2000 + i), &observer);
    governors_.emplace_back();
    governor_epochs_.push_back(0);
    make_governor(i);
    net_->set_handler(directory_.node_of(id), [this, i](const net::Message& m) {
      if (governors_[i]) governors_[i]->on_message(m);  // null slot = crashed
    });
  }
}

Wiring::~Wiring() = default;

void Wiring::make_governor(std::size_t i) {
  const GovernorId id(static_cast<std::uint32_t>(i));
  storage::NodeStateStore* store =
      governor_stores_.empty() ? nullptr : governor_stores_[i].get();
  protocol::GovernorConfig gc = config_.governor;
  gc.channel_epoch = governor_epochs_[i];
  governors_[i] = std::make_unique<protocol::Governor>(
      id, governor_ctxs_[i], governor_keys_[i], *im_, *oracle_, directory_,
      *governor_group_, gc, genesis_, governor_visible_[i], store);
  if (governor_byz_[i].any()) governors_[i]->set_byzantine(governor_byz_[i]);
}

void Wiring::crash_governor(std::size_t i) {
  // Kill -9 equivalent: pending timer callbacks become no-ops, the object
  // (and with it every byte of in-memory state) is destroyed. The store —
  // owned here, like a disk outlives a process — stays.
  governor_ctxs_[i].revoke_timers();
  governors_[i].reset();
}

void Wiring::restart_governor(std::size_t i) {
  ++governor_epochs_[i];  // fresh ReliableChannel incarnation
  make_governor(i);
  governors_[i]->recover_from_store();
  governors_[i]->sync_chain();
}

const protocol::Governor* Wiring::first_live_governor() const {
  for (const auto& g : governors_) {
    if (g) return g.get();
  }
  return nullptr;
}

}  // namespace repchain::sim
