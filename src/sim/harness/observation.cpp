#include "sim/harness/observation.hpp"

#include "sim/harness/wiring.hpp"

namespace repchain::sim {

void Observation::begin_round(Round round, const Wiring& wiring) {
  pending_ = RoundRecord{};
  pending_.round = round;
  validations_before_ = wiring.oracle_->validations();
  messages_before_ = wiring.net_->stats().messages_sent;
  const protocol::Governor* ref = wiring.first_live_governor();
  loss_before_ = ref ? ref->metrics().expected_loss : 0.0;
  argues_before_ = 0;
  for (const auto& g : wiring.governors_) {
    if (g) argues_before_ += g->metrics().argues_accepted;
  }
}

void Observation::end_round(const Wiring& wiring) {
  pending_.leader = observer_.leader(pending_.round);
  pending_.block_txs = observer_.block_txs(pending_.round);
  pending_.validations_delta = wiring.oracle_->validations() - validations_before_;
  pending_.messages_delta = wiring.net_->stats().messages_sent - messages_before_;
  const protocol::Governor* ref = wiring.first_live_governor();
  pending_.expected_loss_delta =
      (ref ? ref->metrics().expected_loss : 0.0) - loss_before_;
  std::uint64_t argues_after = 0;
  for (const auto& g : wiring.governors_) {
    if (g) argues_after += g->metrics().argues_accepted;
  }
  pending_.argues_delta = argues_after - argues_before_;
  history_.push_back(pending_);
}

void Observation::sample_rewards(const ScenarioConfig& config, const Wiring& wiring) {
  // Track leadership and distribute rewards from the leader's reputation.
  const protocol::Governor* ref = wiring.first_live_governor();
  if (ref == nullptr) return;
  const auto leader = ref->round_leader();
  if (!leader) return;
  leader_counts_[leader->value()] += 1;
  if (!wiring.governors_[leader->value()]) return;  // leader crashed mid-round
  auto& leader_gov = *wiring.governors_[leader->value()];
  if (leader_gov.chain().empty()) return;
  const auto& block = leader_gov.chain().head();
  std::size_t valid_txs = 0;
  for (const auto& rec : block.txs) {
    if (rec.status != ledger::TxStatus::kUncheckedInvalid) ++valid_txs;
  }
  const double profit = config.reward_per_valid_tx * static_cast<double>(valid_txs);
  if (profit > 0.0) {
    for (const auto& [c, share] : leader_gov.revenue_shares()) {
      rewards_[c.value()] += profit * share;
    }
  }
}

ScenarioSummary Observation::summarize(const Wiring& wiring) const {
  ScenarioSummary s;
  for (const auto& p : wiring.providers_) s.txs_submitted += p.submitted();

  // Currently-dead governors are excluded: the summary reflects the view of
  // the live replicas (agreement/audit over a null chain is meaningless).
  const protocol::Governor* ref = wiring.first_live_governor();
  if (ref == nullptr) return s;
  const auto& chain0 = ref->chain();
  s.blocks = chain0.height();
  s.chain_valid_txs = chain0.count_status(ledger::TxStatus::kCheckedValid);
  s.chain_unchecked_txs = chain0.count_status(ledger::TxStatus::kUncheckedInvalid);
  s.chain_argued_txs = chain0.count_status(ledger::TxStatus::kArguedValid);

  s.agreement = true;
  s.chains_audit_ok = true;
  s.stalled_events = observer_.stalled_events();
  s.byzantine_evidence = observer_.byzantine_evidence();
  for (const auto& g : wiring.governors_) {
    if (!g) continue;
    s.chains_audit_ok = s.chains_audit_ok && g->chain().audit();
    if (g.get() != ref) {
      s.agreement =
          s.agreement && ledger::ChainStore::same_prefix(chain0, g->chain());
    }
  }

  s.validations_total = wiring.oracle_->validations();
  double exp_loss = 0.0, real_loss = 0.0;
  std::uint64_t mistakes = 0;
  std::size_t live = 0;
  for (const auto& g : wiring.governors_) {
    if (!g) continue;
    ++live;
    exp_loss += g->metrics().expected_loss;
    real_loss += g->metrics().realized_loss;
    mistakes += g->metrics().mistakes;
  }
  const double m = static_cast<double>(live);
  s.mean_governor_expected_loss = exp_loss / m;
  s.mean_governor_realized_loss = real_loss / m;
  s.mean_governor_mistakes =
      static_cast<std::uint64_t>(static_cast<double>(mistakes) / m);
  s.network = wiring.net_->stats();
  return s;
}

}  // namespace repchain::sim
