#include "sim/harness/observation.hpp"

#include "sim/harness/wiring.hpp"

namespace repchain::sim {

CounterProbe Observation::probe_counters(const Wiring& wiring) {
  CounterProbe p;
  p.validations = wiring.oracle_->validations();
  p.messages = wiring.net_->stats().messages_sent;
  const protocol::Governor* ref = wiring.first_live_governor();
  p.ref_expected_loss = ref ? ref->metrics().expected_loss : 0.0;
  for (const auto& g : wiring.governors_) {
    if (g) p.argues += g->metrics().argues_accepted;
  }
  return p;
}

void Observation::begin_round(Round round, const CounterProbe& probe) {
  pending_ = RoundRecord{};
  pending_.round = round;
  before_ = probe;
}

void Observation::begin_round(Round round, const Wiring& wiring) {
  begin_round(round, probe_counters(wiring));
}

void Observation::end_round(const CounterProbe& probe) {
  pending_.leader = observer_.leader(pending_.round);
  pending_.block_txs = observer_.block_txs(pending_.round);
  pending_.validations_delta = probe.validations - before_.validations;
  pending_.messages_delta = probe.messages - before_.messages;
  pending_.expected_loss_delta = probe.ref_expected_loss - before_.ref_expected_loss;
  pending_.argues_delta = probe.argues - before_.argues;
  history_.push_back(pending_);
  if (bounded_history_ != 0 && history_.size() > bounded_history_) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(bounded_history_));
  }
}

void Observation::end_round(const Wiring& wiring) {
  end_round(probe_counters(wiring));
}

void Observation::sample_rewards(const ScenarioConfig& config,
                                 const RewardSample& sample) {
  // Track leadership and distribute rewards from the leader's reputation.
  if (!sample.leader) return;
  leader_counts_[sample.leader->value()] += 1;
  if (!sample.leader_live) return;  // leader crashed mid-round
  if (sample.chain_empty) return;
  const double profit =
      config.reward_per_valid_tx * static_cast<double>(sample.head_valid_txs);
  if (profit > 0.0) {
    for (const auto& [c, share] : sample.shares) {
      rewards_[c.value()] += profit * share;
    }
  }
}

void Observation::sample_rewards(const ScenarioConfig& config, const Wiring& wiring) {
  const protocol::Governor* ref = wiring.first_live_governor();
  if (ref == nullptr) return;
  RewardSample sample;
  sample.leader = ref->round_leader();
  if (!sample.leader) {
    sample_rewards(config, sample);
    return;
  }
  const auto& slot = wiring.governors_[sample.leader->value()];
  sample.leader_live = slot != nullptr;
  if (sample.leader_live) {
    sample.chain_empty = slot->chain().empty();
    if (!sample.chain_empty) {
      for (const auto& rec : slot->chain().head().txs) {
        if (rec.status != ledger::TxStatus::kUncheckedInvalid) ++sample.head_valid_txs;
      }
      sample.shares = slot->revenue_shares();
    }
  }
  sample_rewards(config, sample);
}

void Observation::record_anchors(const Wiring& wiring, Round round) {
  for (std::size_t s = 0; s < wiring.shard_directories_.size(); ++s) {
    const ShardId shard(static_cast<std::uint32_t>(s));
    const ledger::ChainStore* ref = nullptr;
    for (const GovernorId g : wiring.router_.governors_of(shard)) {
      if (wiring.governors_[g.value()]) {
        ref = &wiring.governors_[g.value()]->chain();
        break;
      }
    }
    if (ref == nullptr) continue;  // whole committee dead right now
    const ledger::AnchorRecord rec = ledger::make_anchor(shard, round, *ref);
    if (const auto prev = beacon_.latest(shard)) {
      // A reference replica that changed to a lagging restartee must not
      // regress the beacon; skip this interval instead.
      if (rec.round <= prev->round || rec.head_serial < prev->head_serial) continue;
    }
    beacon_.append(rec);
  }
}

ScenarioSummary Observation::summarize(
    std::uint64_t txs_submitted, const std::vector<GovernorSnapshot>& governors,
    std::uint64_t validations_total, const net::NetworkStats& network) const {
  ScenarioSummary s;
  s.txs_submitted = txs_submitted;

  // Currently-dead governors are excluded: the summary reflects the view of
  // the live replicas (agreement/audit over a null chain is meaningless).
  if (governors.empty()) return s;
  const ledger::ChainStore& chain0 = *governors.front().chain;
  s.blocks = chain0.height();
  s.chain_valid_txs = chain0.count_status(ledger::TxStatus::kCheckedValid);
  s.chain_unchecked_txs = chain0.count_status(ledger::TxStatus::kUncheckedInvalid);
  s.chain_argued_txs = chain0.count_status(ledger::TxStatus::kArguedValid);

  s.agreement = true;
  s.chains_audit_ok = true;
  s.stalled_events = observer_.stalled_events();
  s.byzantine_evidence = observer_.byzantine_evidence();
  for (const auto& g : governors) {
    s.chains_audit_ok = s.chains_audit_ok && g.chain->audit();
    if (g.chain != &chain0) {
      s.agreement = s.agreement && ledger::ChainStore::same_prefix(chain0, *g.chain);
    }
  }

  s.validations_total = validations_total;
  double exp_loss = 0.0, real_loss = 0.0;
  std::uint64_t mistakes = 0;
  for (const auto& g : governors) {
    exp_loss += g.expected_loss;
    real_loss += g.realized_loss;
    mistakes += g.mistakes;
  }
  const double m = static_cast<double>(governors.size());
  s.mean_governor_expected_loss = exp_loss / m;
  s.mean_governor_realized_loss = real_loss / m;
  s.mean_governor_mistakes =
      static_cast<std::uint64_t>(static_cast<double>(mistakes) / m);
  s.network = network;
  return s;
}

ScenarioSummary Observation::summarize(const Wiring& wiring) const {
  std::uint64_t txs_submitted = 0;
  for (const auto& p : wiring.providers_) txs_submitted += p.submitted();

  ScenarioSummary s;
  if (wiring.shard_directories_.size() <= 1) {
    // Classic single-committee path: the probe-core aggregation, unchanged.
    std::vector<GovernorSnapshot> snapshots;
    for (const auto& g : wiring.governors_) {
      if (!g) continue;
      snapshots.push_back(GovernorSnapshot{&g->chain(), g->metrics().expected_loss,
                                           g->metrics().realized_loss,
                                           g->metrics().mistakes});
    }
    s = summarize(txs_submitted, snapshots, wiring.oracle_->validations(),
                  wiring.net_->stats());
  } else {
    // Sharded: aggregate committee by committee. Agreement and audit are
    // committee-local properties (different shards legitimately hold
    // different chains); the global flags are the conjunction, the global
    // tx/block totals the sum across committees.
    s.txs_submitted = txs_submitted;
    s.agreement = true;
    s.chains_audit_ok = true;
    s.stalled_events = observer_.stalled_events();
    s.byzantine_evidence = observer_.byzantine_evidence();
    s.validations_total = wiring.oracle_->validations();
    s.network = wiring.net_->stats();
    double exp_loss = 0.0, real_loss = 0.0;
    std::uint64_t mistakes = 0;
    std::size_t live = 0;
    for (const auto& g : wiring.governors_) {
      if (!g) continue;
      ++live;
      exp_loss += g->metrics().expected_loss;
      real_loss += g->metrics().realized_loss;
      mistakes += g->metrics().mistakes;
    }
    if (live > 0) {
      const double m = static_cast<double>(live);
      s.mean_governor_expected_loss = exp_loss / m;
      s.mean_governor_realized_loss = real_loss / m;
      s.mean_governor_mistakes =
          static_cast<std::uint64_t>(static_cast<double>(mistakes) / m);
    }
  }

  // Per-committee slices (a single entry on classic runs), the cross-shard
  // reject tally, and the beacon verdict.
  for (std::size_t i = 0; i < wiring.shard_directories_.size(); ++i) {
    const ShardId shard(static_cast<std::uint32_t>(i));
    ShardSummary sh;
    sh.shard = shard;
    sh.providers = wiring.router_.providers_of(shard).size();
    sh.collectors = wiring.router_.collectors_of(shard).size();
    sh.governors = wiring.router_.governors_of(shard).size();
    sh.agreement = true;
    sh.chains_audit_ok = true;
    const ledger::ChainStore* ref = nullptr;
    for (const GovernorId g : wiring.router_.governors_of(shard)) {
      const auto& slot = wiring.governors_[g.value()];
      if (!slot) continue;
      const ledger::ChainStore& chain = slot->chain();
      sh.chains_audit_ok = sh.chains_audit_ok && chain.audit();
      if (ref == nullptr) {
        ref = &chain;
        sh.blocks = chain.height();
        sh.chain_valid_txs = chain.count_status(ledger::TxStatus::kCheckedValid);
        sh.chain_unchecked_txs =
            chain.count_status(ledger::TxStatus::kUncheckedInvalid);
        sh.chain_argued_txs = chain.count_status(ledger::TxStatus::kArguedValid);
      } else {
        sh.agreement =
            sh.agreement && ledger::ChainStore::same_prefix(*ref, chain);
      }
    }
    if (wiring.shard_directories_.size() > 1) {
      s.blocks += sh.blocks;
      s.chain_valid_txs += sh.chain_valid_txs;
      s.chain_unchecked_txs += sh.chain_unchecked_txs;
      s.chain_argued_txs += sh.chain_argued_txs;
      s.agreement = s.agreement && sh.agreement;
      s.chains_audit_ok = s.chains_audit_ok && sh.chains_audit_ok;
    }
    s.shards.push_back(sh);
  }
  for (const auto& c : wiring.collectors_) {
    s.cross_shard_rejected += c.stats().rejected_cross_shard;
  }
  s.anchors_recorded = beacon_.size();
  s.anchors_ok = true;
  for (std::size_t i = 0; i < wiring.shard_directories_.size(); ++i) {
    const ShardId shard(static_cast<std::uint32_t>(i));
    for (const GovernorId g : wiring.router_.governors_of(shard)) {
      const auto& slot = wiring.governors_[g.value()];
      if (!slot) continue;
      s.anchors_ok = s.anchors_ok && beacon_.verify(shard, slot->chain());
    }
  }
  return s;
}

}  // namespace repchain::sim
