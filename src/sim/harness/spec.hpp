#pragma once

// Declarative run specification for the simulation harness: topology,
// protocol parameters, workload mix, and the fault/adversary plan, plus the
// record types a finished run reports. Pure data — the lowering onto live
// objects happens in the harness layer (Wiring, FaultPlan, Workload,
// Observation) behind the Scenario facade.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "adversary/spec.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "net/network.hpp"
#include "protocol/collector.hpp"
#include "protocol/governor.hpp"
#include "sim/topology.hpp"

namespace repchain::sim {

/// One scheduled crash/restart fault: the governor loses all in-memory state
/// at `crash_round` + `crash_offset` (its pending timers are revoked, its
/// object destroyed) and is rebuilt at the start of `restart_round` from its
/// NodeStateStore — recover_from_store + sync_chain — before that round's
/// timers are armed. Rounds are 1-based, matching Scenario::current_round().
struct CrashPlan {
  std::size_t governor = 0;
  std::size_t crash_round = 1;
  SimDuration crash_offset = 0;  // within the round, relative to its t0
  std::size_t restart_round = 2;
};

// --- Round-based network fault specs -----------------------------------------
//
// Declarative fault windows expressed in 1-based round numbers; the FaultPlan
// lowers them onto the FaultSchedule's absolute time windows using the
// derived RoundTiming (round r spans [(r-1), r) * round_span). Every window
// is half-open: [from_round, until_round).

/// Cut the island (governor/collector/provider indices) off from everyone
/// else; traffic within the island and among outsiders still flows. The
/// partition heals at until_round.
struct PartitionSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  std::vector<std::size_t> governors;
  std::vector<std::size_t> collectors;
  std::vector<std::size_t> providers;
};

/// Burst loss on every link.
struct LossSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
};

/// Global delay spike (extra + uniform jitter on every drawn delay). May
/// deliberately exceed the synchrony bound Delta.
struct DelaySpikeSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  SimDuration extra = 0;
  SimDuration jitter = 0;
};

/// Message duplication.
struct DuplicationSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
};

/// Bounded reordering of unicasts.
struct ReorderSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
  SimDuration max_extra = 5 * kMillisecond;
};

/// One slow governor-to-governor link (SimNetwork::set_link_delay), applied
/// at from_round and removed at until_round.
struct LinkDelaySpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  std::size_t from_governor = 0;
  std::size_t to_governor = 1;
  SimDuration extra = 0;
};

/// The full declarative fault plan of a run.
struct FaultScheduleSpec {
  std::vector<PartitionSpec> partitions;
  std::vector<LossSpec> losses;
  std::vector<DelaySpikeSpec> delay_spikes;
  std::vector<DuplicationSpec> duplications;
  std::vector<ReorderSpec> reorders;
  std::vector<LinkDelaySpec> link_delays;

  [[nodiscard]] bool empty() const {
    return partitions.empty() && losses.empty() && delay_spikes.empty() &&
           duplications.empty() && reorders.empty() && link_delays.empty();
  }
};

/// Full scenario configuration: topology, protocol parameters, workload and
/// fault mix. One Scenario = one deterministic whole-protocol run.
struct ScenarioConfig {
  TopologyConfig topology;
  protocol::GovernorConfig governor;
  net::LatencyModel latency;

  std::size_t rounds = 10;
  std::size_t txs_per_provider_per_round = 2;
  /// Ground-truth probability that a generated transaction is valid.
  double p_valid = 0.8;
  /// Providers argue over wrongly-buried transactions (Validity liveness).
  bool providers_active = true;
  /// Probability that the truth of a still-unrevealed unchecked transaction
  /// surfaces through "other evidence" at the end of each round (the paper's
  /// "real states ... are revealed sometime after"; argue only covers valid
  /// transactions of active providers).
  double audit_probability = 1.0;
  /// Collector behaviours, assigned round-robin over the n collectors.
  /// Empty => all honest.
  std::vector<protocol::CollectorBehavior> behaviors;
  /// Genesis stake per governor; empty => 1 unit each.
  std::vector<std::uint64_t> governor_stakes;
  /// Reward paid to collectors per valid transaction in an accepted block.
  double reward_per_valid_tx = 1.0;
  /// validate(tx) cost charged by the oracle.
  SimDuration validation_cost = 1 * kMillisecond;
  /// Fraction of collectors each governor perceives (1.0 = the paper's
  /// default full connectivity). With v < 1, governor j sees the
  /// ceil(v*n) collectors {(j + k) mod n}, staggered so views overlap.
  double governor_visibility = 1.0;
  /// Enable the equivocation-detection extension (label gossip between
  /// governors after each uploading phase). Mirrors
  /// GovernorConfig::enable_label_gossip, set here for convenience.
  bool enable_label_gossip = false;

  /// Crash/restart fault schedule (governors only). Scheduling any crash
  /// implies durable_governors.
  std::vector<CrashPlan> crashes;
  /// Network fault plan (partitions, loss, delay spikes, duplication,
  /// reordering, slow links), applied through a FaultyTransport decorator.
  /// Scheduling any fault defaults the governors' liveness watchdog on
  /// (watchdog_rounds = 2) unless the config sets it explicitly.
  FaultScheduleSpec faults;
  /// In-protocol Byzantine behavior plan (equivocating leaders, lying sync
  /// peers, Byzantine collectors, double-spending providers), expressed in
  /// the same round-windowed style as `faults`. A non-empty plan switches the
  /// governors' Byzantine defenses on (GovernorConfig::byzantine_defense and
  /// label gossip) — attacks without their paired defenses are not a
  /// supported configuration.
  adversary::AdversarySpec adversary;
  /// Route protocol traffic through per-node ReliableChannels (ack +
  /// retransmit + backoff) and let elections close on a majority quorum.
  /// Mirrors GovernorConfig::reliable_delivery and enables the same mode on
  /// providers and collectors.
  bool reliable_delivery = false;
  /// Attach a NodeStateStore to every governor even without crashes (to
  /// measure persistence overhead or snapshot sizes).
  bool durable_governors = false;
  /// Directory for on-disk stores (one subdirectory per governor). Empty =>
  /// in-memory stores, which exercise the same framed WAL/snapshot images.
  std::filesystem::path storage_dir;

  /// Number of governor committees (shards). 1 = the classic single-committee
  /// deployment (bit-identical to the pre-sharding harness). With S > 1 the
  /// ShardRouter partitions providers/collectors by stable hash and governors
  /// round-robin; each committee runs the full pipeline on its own chain.
  std::size_t shard_count = 1;
  /// Anchor each committee's chain head into the beacon every K rounds.
  std::size_t anchor_interval = 1;
  /// Fraction of injected transactions deliberately routed to a collector in
  /// a *different* shard (exercising the cross-shard reject path). Only
  /// meaningful with shard_count > 1; 0 keeps the workload RNG stream
  /// untouched.
  double cross_shard_probability = 0.0;
  /// Cap Observation's per-round history and reward series at this many
  /// entries (ring buffer semantics: the newest N are kept). 0 = unbounded,
  /// the classic behaviour.
  std::size_t bounded_history = 0;

  std::uint64_t seed = 1;
};

/// Per-round time series entry (what a dashboard would chart).
struct RoundRecord {
  Round round = 0;
  std::optional<GovernorId> leader;
  std::size_t block_txs = 0;            // size of this round's block
  std::uint64_t validations_delta = 0;  // oracle validations this round
  std::uint64_t messages_delta = 0;     // network messages this round
  double expected_loss_delta = 0.0;     // governor 0's L increment
  std::uint64_t argues_delta = 0;       // argues accepted (all governors)
};

/// Per-committee slice of a sharded run's outcome.
struct ShardSummary {
  ShardId shard;
  std::size_t providers = 0;
  std::size_t collectors = 0;
  std::size_t governors = 0;
  std::uint64_t blocks = 0;
  std::uint64_t chain_valid_txs = 0;
  std::uint64_t chain_unchecked_txs = 0;
  std::uint64_t chain_argued_txs = 0;
  bool agreement = false;        // committee replicas share a prefix
  bool chains_audit_ok = false;  // integrity on every committee replica
};

/// Aggregated outcome of a run (also see per-node accessors on Scenario).
struct ScenarioSummary {
  std::uint64_t txs_submitted = 0;
  std::uint64_t blocks = 0;
  std::uint64_t chain_valid_txs = 0;
  std::uint64_t chain_unchecked_txs = 0;
  std::uint64_t chain_argued_txs = 0;
  bool agreement = false;        // all governor chains share a prefix
  bool chains_audit_ok = false;  // integrity + no-skipping on every replica
  std::uint64_t stalled_events = 0;     // watchdog kRoundStalled, all nodes
  std::uint64_t byzantine_evidence = 0;  // kByzantineEvidence, all nodes
  std::uint64_t validations_total = 0;  // oracle-wide validate() calls
  double mean_governor_expected_loss = 0.0;
  double mean_governor_realized_loss = 0.0;
  std::uint64_t mean_governor_mistakes = 0;
  net::NetworkStats network;

  /// Sharding: one entry per committee (size 1 for classic runs).
  std::vector<ShardSummary> shards;
  /// Transactions refused at collector intake because provider and collector
  /// live in different committees (TraceKind::kCrossShardRejected).
  std::uint64_t cross_shard_rejected = 0;
  /// Beacon anchors recorded across all committees.
  std::uint64_t anchors_recorded = 0;
  /// Every live replica verified against its shard's latest anchor.
  bool anchors_ok = false;
};

}  // namespace repchain::sim
