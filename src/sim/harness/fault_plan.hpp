#pragma once

// Harness layer: fault and adversary installation. FaultPlan lowers the
// declarative, round-windowed specs in a ScenarioConfig (network faults,
// Byzantine behavior windows, crash/restart plans) onto the live run: the
// FaultyTransport decorator, scheduled behavior swaps, and round-boundary
// crash/restart application. Stateless — every function reads the spec and
// acts on the Wiring.

#include <memory>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/network.hpp"
#include "protocol/round_timing.hpp"
#include "runtime/fault_schedule.hpp"
#include "sim/harness/spec.hpp"

namespace repchain::sim {

struct Wiring;

class FaultPlan {
 public:
  /// Lower config.faults (round windows) onto an absolute-time FaultSchedule
  /// and build the FaultyTransport decorator; schedule the link-delay spans.
  /// Returns null when no network faults are scheduled.
  static std::unique_ptr<runtime::FaultyTransport> install_network_faults(
      const ScenarioConfig& config, net::SimNetwork& net,
      const protocol::Directory& directory, const protocol::RoundTiming& timing,
      net::EventQueue& queue, const Rng& rng);

  /// Lower config.adversary (round windows) onto scheduled behavior swaps:
  /// governor Byzantine flags, collector deviation profiles, and provider
  /// double-spend rates are installed at each window start and reverted at
  /// its end. Governor flags also persist through crash/restart rebuilds.
  static void install_adversary(const ScenarioConfig& config, Wiring& wiring,
                                net::EventQueue& queue);

  /// Rebuild every governor whose CrashPlan restarts at `round` (called at
  /// the round boundary, before timers are armed, so the recovered governor
  /// takes part in this round's election).
  static void apply_restarts(const ScenarioConfig& config, Wiring& wiring,
                             Round round);

  /// Schedule this round's crashes at their configured mid-round offsets.
  static void schedule_crashes(const ScenarioConfig& config, Wiring& wiring,
                               net::EventQueue& queue, Round round, SimTime t0);
};

}  // namespace repchain::sim
