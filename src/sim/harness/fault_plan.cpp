#include "sim/harness/fault_plan.hpp"

#include <utility>

#include "sim/harness/wiring.hpp"

namespace repchain::sim {

std::unique_ptr<runtime::FaultyTransport> FaultPlan::install_network_faults(
    const ScenarioConfig& config, net::SimNetwork& net,
    const protocol::Directory& directory, const protocol::RoundTiming& timing,
    net::EventQueue& queue, const Rng& rng) {
  if (config.faults.empty()) return nullptr;
  const auto round_start = [&timing](std::size_t r) {
    return static_cast<SimTime>(r - 1) * timing.round_span;
  };
  const auto& spec = config.faults;
  runtime::FaultSchedule schedule;
  for (const auto& p : spec.partitions) {
    runtime::PartitionFault f;
    f.from = round_start(p.from_round);
    f.until = round_start(p.until_round);
    for (const std::size_t g : p.governors) {
      f.island.push_back(directory.node_of(GovernorId(static_cast<std::uint32_t>(g))));
    }
    for (const std::size_t c : p.collectors) {
      f.island.push_back(directory.node_of(CollectorId(static_cast<std::uint32_t>(c))));
    }
    for (const std::size_t pr : p.providers) {
      f.island.push_back(directory.node_of(ProviderId(static_cast<std::uint32_t>(pr))));
    }
    schedule.add(std::move(f));
  }
  for (const auto& l : spec.losses) {
    schedule.add(runtime::LossFault{round_start(l.from_round),
                                    round_start(l.until_round), l.probability,
                                    std::nullopt});
  }
  for (const auto& d : spec.delay_spikes) {
    schedule.add(runtime::DelayFault{round_start(d.from_round),
                                     round_start(d.until_round), d.extra, d.jitter});
  }
  for (const auto& d : spec.duplications) {
    schedule.add(runtime::DuplicateFault{round_start(d.from_round),
                                         round_start(d.until_round), d.probability});
  }
  for (const auto& r : spec.reorders) {
    schedule.add(runtime::ReorderFault{round_start(r.from_round),
                                       round_start(r.until_round), r.probability,
                                       r.max_extra});
  }
  // Slow links reuse the network's own per-link delay hook (they must affect
  // broadcast deliveries scheduled by the network, not just unicasts).
  for (const auto& ld : spec.link_delays) {
    const NodeId a =
        directory.node_of(GovernorId(static_cast<std::uint32_t>(ld.from_governor)));
    const NodeId b =
        directory.node_of(GovernorId(static_cast<std::uint32_t>(ld.to_governor)));
    queue.schedule_at(round_start(ld.from_round), [&net, a, b, extra = ld.extra] {
      net.set_link_delay(a, b, extra);
    });
    queue.schedule_at(round_start(ld.until_round),
                      [&net, a, b] { net.set_link_delay(a, b, 0); });
  }
  return std::make_unique<runtime::FaultyTransport>(net, std::move(schedule),
                                                    rng.derive(7));
}

void FaultPlan::install_adversary(const ScenarioConfig& config, Wiring& wiring,
                                  net::EventQueue& queue) {
  if (config.adversary.empty()) return;
  const auto& spec = config.adversary;
  // Window boundaries are enqueued here, before any round's phase timers, so
  // a swap at round_start(r) fires ahead of round r's election (FIFO
  // tie-break on equal deadlines). governor_byz_ is the source of truth the
  // lambdas mutate; make_governor re-reads it, so a Byzantine governor stays
  // Byzantine across a crash/restart inside its window.
  const auto set_governor_flags =
      [&wiring, &queue](std::size_t g, auto member, bool value, std::size_t round) {
        queue.schedule_at(wiring.round_start(round), [&wiring, g, member, value] {
          wiring.governor_byz_[g].*member = value;
          if (wiring.governors_[g]) {
            wiring.governors_[g]->set_byzantine(wiring.governor_byz_[g]);
          }
        });
      };
  for (const auto& s : spec.equivocating_leaders) {
    set_governor_flags(s.governor, &adversary::GovernorByzantine::equivocate_proposals,
                       true, s.from_round);
    set_governor_flags(s.governor, &adversary::GovernorByzantine::equivocate_proposals,
                       false, s.until_round);
  }
  for (const auto& s : spec.lying_sync_peers) {
    set_governor_flags(s.governor, &adversary::GovernorByzantine::lying_sync, true,
                       s.from_round);
    set_governor_flags(s.governor, &adversary::GovernorByzantine::lying_sync, false,
                       s.until_round);
  }
  for (const auto& s : spec.byzantine_collectors) {
    protocol::CollectorBehavior deviating = wiring.collector_baselines_[s.collector];
    deviating.flip_probability = s.flip_probability;
    deviating.forge_probability = s.forge_probability;
    deviating.equivocate = s.equivocate;
    deviating.flip_by_provider = s.flip_by_provider;
    queue.schedule_at(wiring.round_start(s.from_round),
                      [&wiring, c = s.collector, deviating = std::move(deviating)] {
                        wiring.collectors_[c].set_behavior(deviating);
                      });
    queue.schedule_at(wiring.round_start(s.until_round), [&wiring, c = s.collector] {
      wiring.collectors_[c].set_behavior(wiring.collector_baselines_[c]);
    });
  }
  for (const auto& s : spec.double_spenders) {
    queue.schedule_at(wiring.round_start(s.from_round),
                      [&wiring, p = s.provider, probability = s.probability] {
                        wiring.providers_[p].set_double_spend(probability);
                      });
    queue.schedule_at(wiring.round_start(s.until_round), [&wiring, p = s.provider] {
      wiring.providers_[p].set_double_spend(0.0);
    });
  }
}

void FaultPlan::apply_restarts(const ScenarioConfig& config, Wiring& wiring,
                               Round round) {
  for (const auto& plan : config.crashes) {
    if (plan.restart_round == round && !wiring.governors_[plan.governor]) {
      wiring.restart_governor(plan.governor);
    }
  }
}

void FaultPlan::schedule_crashes(const ScenarioConfig& config, Wiring& wiring,
                                 net::EventQueue& queue, Round round, SimTime t0) {
  for (const auto& plan : config.crashes) {
    if (plan.crash_round == round) {
      queue.schedule_at(t0 + plan.crash_offset,
                        [&wiring, g = plan.governor] { wiring.crash_governor(g); });
    }
  }
}

}  // namespace repchain::sim
