#pragma once

// Canonical encoding of a finished run's observable outcome. The cluster
// driver byte-compares encode_run_result(simulated) against
// encode_run_result(socket replay) — equality of these buffers is the
// "byte-identical run summary" acceptance check. Doubles are encoded as
// their IEEE-754 bit patterns (and rendered as hexfloats), so the compare
// has no tolerance: a single ULP of drift anywhere fails it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/harness/spec.hpp"

namespace repchain::sim {

/// Everything a run reports: the aggregate summary, the per-round time
/// series, and the reward/leadership tallies.
struct RunResult {
  ScenarioSummary summary;
  std::vector<RoundRecord> history;
  std::vector<double> rewards;
  std::vector<std::uint64_t> leader_counts;
};

[[nodiscard]] Bytes encode_run_result(const RunResult& r);

/// Run `config` to completion in-process and collect its RunResult — the
/// reference side of the socket-vs-simulated compare.
[[nodiscard]] RunResult simulate_run(ScenarioConfig config);

/// Human-readable rendering (one field per line, doubles as hexfloats) for
/// the socket-vs-simulated diff artifact uploaded on a failed compare.
[[nodiscard]] std::string render_run_result(const RunResult& r);

}  // namespace repchain::sim
