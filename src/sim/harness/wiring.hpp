#pragma once

// Harness layer: node construction and plumbing. Wiring owns every live
// object of a run — network, identities, oracle, runtime contexts, the node
// objects themselves, and the rebuild material (keys, genesis stake,
// visibility views, durable stores) that lets a crashed governor be
// reconstructed in place. Members are public: this is internal machinery the
// Scenario facade encapsulates; FaultPlan and Workload reach in by design.

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/validation_oracle.hpp"
#include "net/network.hpp"
#include "protocol/collector.hpp"
#include "protocol/governor.hpp"
#include "protocol/provider.hpp"
#include "protocol/round_timing.hpp"
#include "runtime/atomic_broadcast.hpp"
#include "runtime/fault_schedule.hpp"
#include "runtime/node_context.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/system_model.hpp"
#include "sim/topology.hpp"
#include "storage/node_state_store.hpp"

namespace repchain::sim {

class RoundObserver;

/// Cluster seam: when a run hosts its governors in separate processes, the
/// driver installs this link and Wiring forwards every network delivery
/// addressed to governor `index` instead of constructing a local object.
class RemoteGovernorLink {
 public:
  virtual ~RemoteGovernorLink() = default;
  virtual void deliver(std::size_t index, const runtime::Message& msg) = 0;
};

/// Builds the whole system — identity manager, simulated network, per-node
/// runtime contexts, atomic broadcast groups, providers/collectors/governors
/// — and wires it per the topology. The constructor performs the full
/// deterministic build sequence (RNG stream derivation order is part of the
/// pinned-seed contract); afterwards Wiring is the registry the rest of the
/// harness works against, plus the governor crash/restart lifecycle.
struct Wiring {
  /// `config` must already be normalized (validated, implied flags applied)
  /// and must outlive the Wiring; governor rebuilds re-read it. With a
  /// non-null `remote`, governor slots stay empty and deliveries to governor
  /// nodes are forwarded through the link (multi-process cluster runs).
  Wiring(ScenarioConfig& config, const Rng& rng, net::EventQueue& queue,
         RoundObserver& observer, RemoteGovernorLink* remote = nullptr);
  ~Wiring();

  Wiring(const Wiring&) = delete;
  Wiring& operator=(const Wiring&) = delete;

  /// (Re)construct governor i in its slot from the retained rebuild material.
  void make_governor(std::size_t i);
  /// Kill governor `i` right now: revoke its pending timer callbacks and
  /// destroy the object (all in-memory state is gone; its NodeStateStore,
  /// held here, survives). Messages to the dead node are dropped.
  void crash_governor(std::size_t i);
  /// Rebuild governor `i` from its store and start catching up with peers.
  void restart_governor(std::size_t i);
  [[nodiscard]] const protocol::Governor* first_live_governor() const;

  /// Absolute start time of 1-based round `r`.
  [[nodiscard]] SimTime round_start(std::size_t r) const {
    return static_cast<SimTime>(r - 1) * timing_.round_span;
  }

  /// Committee of a member id (shard 0 on classic runs).
  [[nodiscard]] ShardId shard_of(ProviderId id) const { return router_.shard_of(id); }
  [[nodiscard]] ShardId shard_of(CollectorId id) const { return router_.shard_of(id); }
  [[nodiscard]] ShardId shard_of(GovernorId id) const { return router_.shard_of(id); }

  ScenarioConfig& config_;
  Rng rng_;
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<runtime::FaultyTransport> faulty_;
  runtime::Transport* transport_ = nullptr;  // faulty_ if faults, else net_
  std::unique_ptr<identity::IdentityManager> im_;
  std::unique_ptr<ledger::ValidationOracle> oracle_;
  protocol::Directory directory_;
  // Committee partition: the router plus per-shard directories / genesis /
  // broadcast groups. One shard on classic runs, where shard 0's structures
  // are content-identical to the global ones.
  protocol::ShardRouter router_;
  std::vector<protocol::Directory> shard_directories_;
  std::vector<protocol::StakeLedger> shard_genesis_;
  std::vector<std::unique_ptr<runtime::AtomicBroadcastGroup>> shard_groups_;
  // The shard-0 group; the committee every governor of a classic run is in.
  // Kept as a named alias because the cluster driver (single-committee by
  // require_cluster_runnable) re-broadcasts through it.
  runtime::AtomicBroadcastGroup* governor_group_ = nullptr;
  protocol::RoundTiming timing_;

  // deques: node objects must never relocate (handlers, contexts and the
  // governors' internal references are address-stable).
  std::deque<runtime::NodeContext> provider_ctxs_;
  std::deque<runtime::NodeContext> collector_ctxs_;
  std::deque<runtime::NodeContext> governor_ctxs_;
  std::deque<protocol::Provider> providers_;
  std::deque<protocol::Collector> collectors_;
  std::deque<std::unique_ptr<protocol::Governor>> governors_;

  // Rebuild material for crashed governors: their signing keys, genesis
  // stake, partial-visibility views, and (outliving the governor objects)
  // their durable stores.
  std::vector<crypto::SigningKey> governor_keys_;
  protocol::StakeLedger genesis_;
  std::vector<std::vector<CollectorId>> governor_visible_;
  std::deque<std::unique_ptr<storage::NodeStateStore>> governor_stores_;
  // ReliableChannel incarnation per governor, bumped on every restart so the
  // new life's sequence space is distinct from the old one.
  std::vector<std::uint32_t> governor_epochs_;
  // Current adversary toggles per governor (re-applied by make_governor so a
  // Byzantine governor stays Byzantine across a crash/restart) and the
  // collectors' baseline behaviors (restored when a Byzantine window ends).
  std::vector<adversary::GovernorByzantine> governor_byz_;
  std::vector<protocol::CollectorBehavior> collector_baselines_;
  // Cluster seam (null for ordinary in-process runs).
  RemoteGovernorLink* remote_ = nullptr;
};

}  // namespace repchain::sim
