#pragma once

// Harness layer: passive measurement. Observation owns the RoundObserver
// (fed by node trace events), the reward/leadership tallies, and the
// per-round time series; it probes counters at round open, assembles the
// RoundRecord at round close, and renders the end-of-run ScenarioSummary.
// It never injects events — everything here is read-only with respect to
// the protocol run (sample_rewards mutates only its own tallies).
//
// Each measurement has two entry points: a probe-struct core (CounterProbe /
// RewardSample / GovernorSnapshot inputs, used by the cluster driver whose
// governors answer over RPC) and a Wiring convenience wrapper that gathers
// the same probe from in-process objects. Both paths consume the data in the
// same order, so a cluster run and a simulated run accumulate bit-identical
// tallies.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ledger/anchor.hpp"
#include "ledger/chain.hpp"
#include "sim/harness/spec.hpp"
#include "sim/round_observer.hpp"

namespace repchain::sim {

struct Wiring;

/// Counters probed at both edges of a round.
struct CounterProbe {
  std::uint64_t validations = 0;  // oracle validations, all replicas summed
  std::uint64_t messages = 0;     // network messages_sent
  double ref_expected_loss = 0.0;  // first live governor's L
  std::uint64_t argues = 0;        // argues_accepted over all live governors
};

/// What the reward timer needs from the current leader.
struct RewardSample {
  std::optional<GovernorId> leader;
  bool leader_live = false;
  bool chain_empty = true;
  std::size_t head_valid_txs = 0;  // head-block txs not kUncheckedInvalid
  std::vector<std::pair<CollectorId, double>> shares;  // leader's revenue split
};

/// One governor's end-of-run state for the summary.
struct GovernorSnapshot {
  const ledger::ChainStore* chain = nullptr;
  double expected_loss = 0.0;
  double realized_loss = 0.0;
  std::uint64_t mistakes = 0;
};

class Observation {
 public:
  void init(std::size_t collectors, std::size_t governors) {
    rewards_.assign(collectors, 0.0);
    leader_counts_.assign(governors, 0);
  }

  /// Cap the per-round history at the newest `cap` records (ring-buffer
  /// semantics) and bound the RoundObserver's round map likewise. 0 (the
  /// default) keeps everything — the classic behaviour.
  void set_bounded_history(std::size_t cap) {
    bounded_history_ = cap;
    observer_.set_retention(cap);
  }

  /// Probe the before-counters of a new round.
  void begin_round(Round round, const CounterProbe& probe);
  void begin_round(Round round, const Wiring& wiring);
  /// Assemble and append the round's RoundRecord from the probes, the
  /// observer, and the after-counters.
  void end_round(const CounterProbe& probe);
  void end_round(const Wiring& wiring);

  /// Timer target: leadership tally + collector reward split (leader-share
  /// based, §3.4.3).
  void sample_rewards(const ScenarioConfig& config, const RewardSample& sample);
  void sample_rewards(const ScenarioConfig& config, const Wiring& wiring);

  /// Cross-shard anchoring: commit every committee's reference-replica chain
  /// head into the beacon at `round`. An anchor that would regress its
  /// shard's previous one (reference replica changed to a lagging restartee)
  /// is skipped rather than recorded — the beacon stays monotone.
  void record_anchors(const Wiring& wiring, Round round);
  [[nodiscard]] const ledger::BeaconLog& beacon() const { return beacon_; }

  /// Aggregate a finished (or in-flight) run into a ScenarioSummary. The
  /// snapshot list holds one entry per LIVE governor, in governor order; the
  /// first entry is the reference replica.
  [[nodiscard]] ScenarioSummary summarize(
      std::uint64_t txs_submitted, const std::vector<GovernorSnapshot>& governors,
      std::uint64_t validations_total, const net::NetworkStats& network) const;
  [[nodiscard]] ScenarioSummary summarize(const Wiring& wiring) const;

  [[nodiscard]] RoundObserver& observer() { return observer_; }
  [[nodiscard]] const RoundObserver& observer() const { return observer_; }
  [[nodiscard]] const std::vector<double>& rewards() const { return rewards_; }
  [[nodiscard]] const std::vector<std::uint64_t>& leader_counts() const {
    return leader_counts_;
  }
  [[nodiscard]] const std::vector<RoundRecord>& history() const { return history_; }

 private:
  [[nodiscard]] static CounterProbe probe_counters(const Wiring& wiring);

  RoundObserver observer_;
  std::vector<double> rewards_;
  std::vector<std::uint64_t> leader_counts_;
  std::vector<RoundRecord> history_;
  ledger::BeaconLog beacon_;
  std::size_t bounded_history_ = 0;

  // Probes captured by begin_round, consumed by end_round.
  RoundRecord pending_;
  CounterProbe before_;
};

}  // namespace repchain::sim
