#pragma once

// Harness layer: passive measurement. Observation owns the RoundObserver
// (fed by node trace events), the reward/leadership tallies, and the
// per-round time series; it probes counters at round open, assembles the
// RoundRecord at round close, and renders the end-of-run ScenarioSummary.
// It never injects events — everything here is read-only with respect to
// the protocol run (sample_rewards mutates only its own tallies).

#include <cstdint>
#include <vector>

#include "sim/harness/spec.hpp"
#include "sim/round_observer.hpp"

namespace repchain::sim {

struct Wiring;

class Observation {
 public:
  void init(std::size_t collectors, std::size_t governors) {
    rewards_.assign(collectors, 0.0);
    leader_counts_.assign(governors, 0);
  }

  /// Probe the before-counters of a new round.
  void begin_round(Round round, const Wiring& wiring);
  /// Assemble and append the round's RoundRecord from the probes, the
  /// observer, and the after-counters.
  void end_round(const Wiring& wiring);

  /// Timer target: leadership tally + collector reward split (leader-share
  /// based, §3.4.3).
  void sample_rewards(const ScenarioConfig& config, const Wiring& wiring);

  /// Aggregate a finished (or in-flight) run into a ScenarioSummary.
  [[nodiscard]] ScenarioSummary summarize(const Wiring& wiring) const;

  [[nodiscard]] RoundObserver& observer() { return observer_; }
  [[nodiscard]] const RoundObserver& observer() const { return observer_; }
  [[nodiscard]] const std::vector<double>& rewards() const { return rewards_; }
  [[nodiscard]] const std::vector<std::uint64_t>& leader_counts() const {
    return leader_counts_;
  }
  [[nodiscard]] const std::vector<RoundRecord>& history() const { return history_; }

 private:
  RoundObserver observer_;
  std::vector<double> rewards_;
  std::vector<std::uint64_t> leader_counts_;
  std::vector<RoundRecord> history_;

  // Probes captured by begin_round, consumed by end_round.
  RoundRecord pending_;
  std::uint64_t validations_before_ = 0;
  std::uint64_t messages_before_ = 0;
  double loss_before_ = 0.0;
  std::uint64_t argues_before_ = 0;
};

}  // namespace repchain::sim
