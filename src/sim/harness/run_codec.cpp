#include "sim/harness/run_codec.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/serial.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

void encode_network(BinaryWriter& w, const net::NetworkStats& n) {
  w.u64(n.messages_sent);
  w.u64(n.messages_dropped);
  w.u64(n.bytes_sent);
  w.u64(n.duplicates_ignored);
  // std::map iteration is sorted by kind: canonical.
  w.u32(static_cast<std::uint32_t>(n.by_kind.size()));
  for (const auto& [kind, count] : n.by_kind) {
    w.u16(static_cast<std::uint16_t>(kind));
    w.u64(count);
  }
  w.u32(static_cast<std::uint32_t>(n.bytes_by_kind.size()));
  for (const auto& [kind, bytes] : n.bytes_by_kind) {
    w.u16(static_cast<std::uint16_t>(kind));
    w.u64(bytes);
  }
}

std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

RunResult simulate_run(ScenarioConfig config) {
  Scenario scenario(std::move(config));
  scenario.run();
  RunResult r;
  r.summary = scenario.summary();
  r.history = scenario.history();
  r.rewards = scenario.collector_rewards();
  r.leader_counts = scenario.leader_counts();
  return r;
}

Bytes encode_run_result(const RunResult& r) {
  BinaryWriter w;
  const ScenarioSummary& s = r.summary;
  w.u64(s.txs_submitted);
  w.u64(s.blocks);
  w.u64(s.chain_valid_txs);
  w.u64(s.chain_unchecked_txs);
  w.u64(s.chain_argued_txs);
  w.boolean(s.agreement);
  w.boolean(s.chains_audit_ok);
  w.u64(s.stalled_events);
  w.u64(s.byzantine_evidence);
  w.u64(s.validations_total);
  w.f64(s.mean_governor_expected_loss);
  w.f64(s.mean_governor_realized_loss);
  w.u64(s.mean_governor_mistakes);
  encode_network(w, s.network);
  w.u32(static_cast<std::uint32_t>(r.history.size()));
  for (const RoundRecord& rec : r.history) {
    w.u64(rec.round);
    w.boolean(rec.leader.has_value());
    w.u32(rec.leader ? rec.leader->value() : 0);
    w.u64(rec.block_txs);
    w.u64(rec.validations_delta);
    w.u64(rec.messages_delta);
    w.f64(rec.expected_loss_delta);
    w.u64(rec.argues_delta);
  }
  w.u32(static_cast<std::uint32_t>(r.rewards.size()));
  for (const double v : r.rewards) w.f64(v);
  w.u32(static_cast<std::uint32_t>(r.leader_counts.size()));
  for (const std::uint64_t v : r.leader_counts) w.u64(v);
  return std::move(w).take();
}

std::string render_run_result(const RunResult& r) {
  std::string out;
  char line[160];
  const ScenarioSummary& s = r.summary;
  auto field = [&](const char* name, std::uint64_t v) {
    std::snprintf(line, sizeof(line), "%s: %" PRIu64 "\n", name, v);
    out += line;
  };
  field("txs_submitted", s.txs_submitted);
  field("blocks", s.blocks);
  field("chain_valid_txs", s.chain_valid_txs);
  field("chain_unchecked_txs", s.chain_unchecked_txs);
  field("chain_argued_txs", s.chain_argued_txs);
  field("agreement", s.agreement ? 1 : 0);
  field("chains_audit_ok", s.chains_audit_ok ? 1 : 0);
  field("stalled_events", s.stalled_events);
  field("byzantine_evidence", s.byzantine_evidence);
  field("validations_total", s.validations_total);
  out += "mean_governor_expected_loss: " + hexf(s.mean_governor_expected_loss) + "\n";
  out += "mean_governor_realized_loss: " + hexf(s.mean_governor_realized_loss) + "\n";
  field("mean_governor_mistakes", s.mean_governor_mistakes);
  field("network.messages_sent", s.network.messages_sent);
  field("network.messages_dropped", s.network.messages_dropped);
  field("network.bytes_sent", s.network.bytes_sent);
  field("network.duplicates_ignored", s.network.duplicates_ignored);
  for (const auto& [kind, count] : s.network.by_kind) {
    std::snprintf(line, sizeof(line), "network.by_kind[%u]: %" PRIu64 "\n",
                  static_cast<unsigned>(kind), count);
    out += line;
  }
  for (const auto& [kind, bytes] : s.network.bytes_by_kind) {
    std::snprintf(line, sizeof(line), "network.bytes_by_kind[%u]: %" PRIu64 "\n",
                  static_cast<unsigned>(kind), bytes);
    out += line;
  }
  for (const RoundRecord& rec : r.history) {
    std::snprintf(line, sizeof(line),
                  "round %" PRIu64 ": leader=%d block_txs=%zu validations=%" PRIu64
                  " messages=%" PRIu64 " expected_loss_delta=%s argues=%" PRIu64 "\n",
                  rec.round, rec.leader ? static_cast<int>(rec.leader->value()) : -1,
                  rec.block_txs, rec.validations_delta, rec.messages_delta,
                  hexf(rec.expected_loss_delta).c_str(), rec.argues_delta);
    out += line;
  }
  for (std::size_t i = 0; i < r.rewards.size(); ++i) {
    std::snprintf(line, sizeof(line), "reward[%zu]: %s\n", i,
                  hexf(r.rewards[i]).c_str());
    out += line;
  }
  for (std::size_t i = 0; i < r.leader_counts.size(); ++i) {
    std::snprintf(line, sizeof(line), "leader_counts[%zu]: %" PRIu64 "\n", i,
                  r.leader_counts[i]);
    out += line;
  }
  return out;
}

}  // namespace repchain::sim
