#pragma once

// Spec normalization and the canonical ScenarioConfig encoding. The
// normalization rules (implied-flag wiring that makes attack/fault configs
// self-consistent) used to live in the Scenario constructor; they are shared
// here so a cluster node process, handed a config blob, applies exactly the
// same rules as the driver. The canonical encoding doubles as the genesis
// identity of a run: its sha256 is the hash both sides of the cluster
// handshake must present, so two processes can only talk if they were
// configured for the same universe.

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "sim/harness/spec.hpp"

namespace repchain::sim {

/// Validate the spec and apply the implied-flag rules in place (idempotent):
/// scenario-level gossip/reliable mirror into GovernorConfig, a scheduled
/// adversary switches the paired defenses on, fault schedules default the
/// liveness watchdog on.
void normalize_config(ScenarioConfig& config);

/// Throws ConfigError on features the canonical encoding cannot express:
/// crash plans, network fault schedules, adversary plans, durable governors,
/// on-disk storage — those need in-process access to the governor objects.
/// Sharded configs ARE encodable (their genesis identity must be computable
/// so two differently-sharded universes cannot admit each other).
void require_encodable(const ScenarioConfig& config);

/// Everything require_encodable checks, plus rejection of `shard_count > 1`:
/// the multi-process cluster hosts exactly one committee graph per run.
void require_cluster_runnable(const ScenarioConfig& config);

/// Canonical byte encoding of an encodable config (see require_encodable,
/// which this applies). Throws ConfigError on inexpressible features.
[[nodiscard]] Bytes encode_config(const ScenarioConfig& config);

/// Inverse of encode_config. Throws DecodeError on malformed input.
[[nodiscard]] ScenarioConfig decode_config(BytesView data);

/// The run's genesis identity: sha256 of the canonical encoding of the
/// normalized config. Presented in the cluster welcome handshake.
[[nodiscard]] crypto::Hash256 config_genesis(const ScenarioConfig& config);

}  // namespace repchain::sim
