#include "sim/harness/spec_codec.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::sim {
namespace {

// v1 predates sharding; v2 appends shard_count / anchor_interval /
// cross_shard_probability / bounded_history. The version byte leads the
// encoding, so v1 and v2 universes can never present the same genesis hash.
constexpr std::uint8_t kConfigVersion = 2;

}  // namespace

void require_encodable(const ScenarioConfig& c) {
  if (!c.crashes.empty())
    throw ConfigError("encodable config cannot schedule crashes");
  if (!c.faults.empty())
    throw ConfigError("encodable config cannot schedule network faults");
  if (!c.adversary.empty())
    throw ConfigError("encodable config cannot schedule an adversary plan");
  if (c.durable_governors)
    throw ConfigError("encodable config cannot attach durable governors");
  if (!c.storage_dir.empty())
    throw ConfigError("encodable config cannot use on-disk storage");
}

void require_cluster_runnable(const ScenarioConfig& c) {
  require_encodable(c);
  if (c.shard_count > 1)
    throw ConfigError("cluster config cannot host a sharded deployment "
                      "(one committee graph per run)");
}

void normalize_config(ScenarioConfig& config) {
  config.topology.validate();
  config.governor.rep.validate();
  if (config.shard_count == 0)
    throw ConfigError("shard_count must be >= 1");
  if (config.shard_count > config.topology.governors)
    throw ConfigError("shard_count exceeds the governor count");
  if (config.anchor_interval == 0)
    throw ConfigError("anchor_interval must be >= 1");
  if (config.cross_shard_probability < 0.0 || config.cross_shard_probability > 1.0)
    throw ConfigError("cross_shard_probability must be within [0, 1]");
  if (config.cross_shard_probability > 0.0 && config.shard_count == 1)
    throw ConfigError("cross_shard_probability needs shard_count > 1");
  if (config.shard_count > 1 && config.governor_visibility < 1.0)
    throw ConfigError(
        "partial governor visibility is not supported with shard_count > 1 "
        "(visibility views are drawn over the global collector set)");
  config.governor.enable_label_gossip |= config.enable_label_gossip;
  config.governor.reliable_delivery |= config.reliable_delivery;
  // A scheduled adversary switches on the paired defenses: the Byzantine
  // checks (proposal echo + 2Delta hold, sync corroboration, double-spend
  // serial guard) and the label gossip the equivocation detector feeds on.
  if (!config.adversary.empty()) {
    config.governor.byzantine_defense = true;
    config.governor.enable_label_gossip = true;
  }
  // Fault schedules default the liveness watchdog on; clean runs keep it off
  // so the crash-recovery goldens (whose stalls are the *expected* outcome of
  // a dead governor) stay bit-identical.
  if (!config.faults.empty() && config.governor.watchdog_rounds == 0) {
    config.governor.watchdog_rounds = 2;
  }
}

Bytes encode_config(const ScenarioConfig& c) {
  require_encodable(c);
  BinaryWriter w;
  w.u8(kConfigVersion);
  w.u64(c.topology.providers);
  w.u64(c.topology.collectors);
  w.u64(c.topology.governors);
  w.u64(c.topology.r);
  const auto& rep = c.governor.rep;
  w.f64(rep.beta);
  w.f64(rep.f);
  w.f64(rep.mu);
  w.f64(rep.nu);
  w.i64(rep.conceal_checked_penalty);
  w.u64(rep.argue_latency_u);
  w.u64(c.governor.block_limit);
  w.u64(c.governor.aggregation_delta);
  w.boolean(c.governor.enable_label_gossip);
  w.u64(c.governor.snapshot_interval);
  w.u64(c.governor.wal_compaction_appends);
  w.boolean(c.governor.reliable_delivery);
  w.u64(c.governor.watchdog_rounds);
  w.u32(c.governor.channel_epoch);
  w.boolean(c.governor.byzantine_defense);
  w.u64(c.latency.min_delay);
  w.u64(c.latency.max_delay);
  w.u64(c.rounds);
  w.u64(c.txs_per_provider_per_round);
  w.f64(c.p_valid);
  w.boolean(c.providers_active);
  w.f64(c.audit_probability);
  w.u32(static_cast<std::uint32_t>(c.behaviors.size()));
  for (const auto& b : c.behaviors) {
    w.f64(b.accuracy);
    w.f64(b.flip_probability);
    w.f64(b.drop_probability);
    w.f64(b.forge_probability);
    w.boolean(b.equivocate);
    w.u32(static_cast<std::uint32_t>(b.flip_by_provider.size()));
    for (const auto& [provider, p] : b.flip_by_provider) {
      w.u32(provider);
      w.f64(p);
    }
  }
  w.u32(static_cast<std::uint32_t>(c.governor_stakes.size()));
  for (const std::uint64_t s : c.governor_stakes) w.u64(s);
  w.f64(c.reward_per_valid_tx);
  w.u64(c.validation_cost);
  w.f64(c.governor_visibility);
  w.boolean(c.enable_label_gossip);
  w.boolean(c.reliable_delivery);
  w.u64(c.seed);
  w.u64(c.shard_count);
  w.u64(c.anchor_interval);
  w.f64(c.cross_shard_probability);
  w.u64(c.bounded_history);
  return std::move(w).take();
}

ScenarioConfig decode_config(BytesView data) {
  BinaryReader r(data);
  if (r.u8() != kConfigVersion) throw DecodeError("unknown config version");
  ScenarioConfig c;
  c.topology.providers = r.u64();
  c.topology.collectors = r.u64();
  c.topology.governors = r.u64();
  c.topology.r = r.u64();
  auto& rep = c.governor.rep;
  rep.beta = r.f64();
  rep.f = r.f64();
  rep.mu = r.f64();
  rep.nu = r.f64();
  rep.conceal_checked_penalty = r.i64();
  rep.argue_latency_u = r.u64();
  c.governor.block_limit = r.u64();
  c.governor.aggregation_delta = r.u64();
  c.governor.enable_label_gossip = r.boolean();
  c.governor.snapshot_interval = r.u64();
  c.governor.wal_compaction_appends = r.u64();
  c.governor.reliable_delivery = r.boolean();
  c.governor.watchdog_rounds = r.u64();
  c.governor.channel_epoch = r.u32();
  c.governor.byzantine_defense = r.boolean();
  c.latency.min_delay = r.u64();
  c.latency.max_delay = r.u64();
  c.rounds = r.u64();
  c.txs_per_provider_per_round = r.u64();
  c.p_valid = r.f64();
  c.providers_active = r.boolean();
  c.audit_probability = r.f64();
  const std::uint32_t behaviors = r.u32();
  r.expect_count(behaviors, 4 * 8 + 1 + 4);
  for (std::uint32_t i = 0; i < behaviors; ++i) {
    protocol::CollectorBehavior b;
    b.accuracy = r.f64();
    b.flip_probability = r.f64();
    b.drop_probability = r.f64();
    b.forge_probability = r.f64();
    b.equivocate = r.boolean();
    const std::uint32_t overrides = r.u32();
    r.expect_count(overrides, 4 + 8);
    for (std::uint32_t k = 0; k < overrides; ++k) {
      const std::uint32_t provider = r.u32();
      b.flip_by_provider.emplace_back(provider, r.f64());
    }
    c.behaviors.push_back(std::move(b));
  }
  const std::uint32_t stakes = r.u32();
  r.expect_count(stakes, 8);
  for (std::uint32_t i = 0; i < stakes; ++i) c.governor_stakes.push_back(r.u64());
  c.reward_per_valid_tx = r.f64();
  c.validation_cost = r.u64();
  c.governor_visibility = r.f64();
  c.enable_label_gossip = r.boolean();
  c.reliable_delivery = r.boolean();
  c.seed = r.u64();
  c.shard_count = r.u64();
  c.anchor_interval = r.u64();
  c.cross_shard_probability = r.f64();
  c.bounded_history = r.u64();
  r.expect_done();
  return c;
}

crypto::Hash256 config_genesis(const ScenarioConfig& config) {
  return crypto::Sha256::hash(encode_config(config));
}

}  // namespace repchain::sim
