#include "sim/harness/workload.hpp"

#include "sim/harness/wiring.hpp"

namespace repchain::sim {

void Workload::inject(Round round) {
  Rng workload = rng_.derive(10'000 + round);
  // cross_shard_probability == 0 must not touch the workload stream at all
  // (no gating draw), so classic runs replay byte-identically.
  const bool cross_enabled = config_.cross_shard_probability > 0.0;
  for (auto& p : wiring_.providers_) {
    for (std::size_t t = 0; t < config_.txs_per_provider_per_round; ++t) {
      const bool valid = workload.bernoulli(config_.p_valid);
      Bytes payload = workload.bytes(24);
      if (cross_enabled && workload.bernoulli(config_.cross_shard_probability)) {
        // Misrouted traffic: aim the signed transaction at a collector in a
        // *foreign* committee, which must refuse it with the cross-shard
        // code rather than uploading it.
        const ShardId home = wiring_.router_.shard_of(p.id());
        std::vector<CollectorId> foreign;
        for (const CollectorId c : wiring_.directory_.collectors()) {
          if (wiring_.router_.shard_of(c) != home) foreign.push_back(c);
        }
        const CollectorId target = foreign[workload.uniform(foreign.size())];
        (void)p.submit_to(wiring_.directory_.node_of(target), std::move(payload),
                          valid);
      } else {
        (void)p.submit(std::move(payload), valid);
      }
      // Spread submissions a little so aggregation windows interleave.
      queue_.run_until(queue_.now() + 1 * kMillisecond);
    }
  }
}

void Workload::run_audit(Round round) {
  // One shared stream consumed in governor order keeps the draw sequence
  // deterministic.
  Rng audit = rng_.derive(20'000 + round);
  for (auto& g : wiring_.governors_) {
    if (!g) continue;
    for (const auto& id : g->unrevealed_unchecked()) {
      if (audit.bernoulli(config_.audit_probability)) {
        (void)g->reveal_unchecked(id);
      }
    }
  }
}

}  // namespace repchain::sim
