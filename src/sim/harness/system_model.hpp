#pragma once

// The deterministic build material of a run, derived purely from the
// normalized ScenarioConfig and the scenario Rng: node ids, key material,
// enrolled identities, link structure, round timing, genesis stake, and the
// governors' partial-visibility views. Extracted from Wiring so a cluster
// node process — handed only (config, seed) — reconstructs byte-identical
// material without a network or any live object. The derive() salts and the
// draw order inside each stream are part of the pinned-seed contract.

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "identity/identity_manager.hpp"
#include "protocol/directory.hpp"
#include "protocol/round_timing.hpp"
#include "protocol/shard_router.hpp"
#include "protocol/stake.hpp"
#include "sim/harness/spec.hpp"

namespace repchain::sim {

struct SystemModel {
  std::unique_ptr<identity::IdentityManager> im;
  protocol::Directory directory;
  protocol::RoundTiming timing;
  // Signing keys in enrollment order; Wiring moves them into the node
  // objects, a cluster node host picks the one governor key it needs.
  std::vector<crypto::SigningKey> provider_keys;
  std::vector<crypto::SigningKey> collector_keys;
  std::vector<crypto::SigningKey> governor_keys;
  protocol::StakeLedger genesis;
  std::vector<std::vector<CollectorId>> governor_visible;

  // Committee partition. At shard_count = 1 every per-shard structure is
  // content-identical to its global counterpart above (same insertion order,
  // same circulant links), which is what keeps classic runs bit-identical.
  protocol::ShardRouter router;
  std::vector<protocol::Directory> shard_directories;  // global ids retained
  std::vector<protocol::StakeLedger> shard_genesis;

  /// `config` must already be normalized. Key derivation consumes one
  /// derive(2) child stream of `scenario_rng`: the identity-manager seed
  /// first, then provider, collector, governor keys in enrollment order.
  /// Node ids are sequential in that same order, matching
  /// SimNetwork::add_node. Throws ConfigError on an invalid visibility.
  [[nodiscard]] static SystemModel build(const ScenarioConfig& config,
                                         const Rng& scenario_rng);
};

}  // namespace repchain::sim
