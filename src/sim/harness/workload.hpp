#pragma once

// Harness layer: provider traffic and out-of-band audits. Workload owns the
// per-round RNG stream derivation for injected transactions (derive(10'000 +
// round)) and truth reveals (derive(20'000 + round)) — salts that are part of
// the pinned-seed contract.

#include "common/rng.hpp"
#include "net/event_queue.hpp"
#include "sim/harness/spec.hpp"

namespace repchain::sim {

struct Wiring;

class Workload {
 public:
  Workload(const ScenarioConfig& config, const Rng& rng, net::EventQueue& queue,
           Wiring& wiring)
      : config_(config), rng_(rng), queue_(queue), wiring_(wiring) {}

  /// Collecting-phase traffic: every provider submits its per-round quota,
  /// spread a little so aggregation windows interleave (runs the clock).
  void inject(Round round);

  /// Remaining unrevealed unchecked truths surface through "other evidence".
  void run_audit(Round round);

 private:
  const ScenarioConfig& config_;
  Rng rng_;
  net::EventQueue& queue_;
  Wiring& wiring_;
};

}  // namespace repchain::sim
