#include "sim/harness/system_model.hpp"

#include <cmath>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"
#include "sim/topology.hpp"

namespace repchain::sim {

SystemModel SystemModel::build(const ScenarioConfig& config,
                               const Rng& scenario_rng) {
  SystemModel m;
  Rng key_rng = scenario_rng.derive(2);
  m.im = std::make_unique<identity::IdentityManager>(crypto::random_seed(key_rng));

  const auto& topo = config.topology;

  // Phase deadlines for the self-driving rounds, keyed to the synchrony
  // bound Delta and the collecting-phase span.
  m.timing = protocol::RoundTiming::derive(
      config.latency.max_delay, config.governor.aggregation_delta,
      static_cast<SimDuration>(topo.providers * config.txs_per_provider_per_round) *
          kMillisecond,
      config.governor.enable_label_gossip);

  // Node ids and identities for every member: sequential flat ids in
  // provider, collector, governor order (the order SimNetwork::add_node
  // assigns them), one key drawn per member.
  std::uint32_t next_node = 0;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const NodeId node(next_node++);
    m.directory.add_provider(ProviderId(static_cast<std::uint32_t>(i)), node);
    m.provider_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kProvider, m.provider_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const NodeId node(next_node++);
    m.directory.add_collector(CollectorId(static_cast<std::uint32_t>(i)), node);
    m.collector_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kCollector, m.collector_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const NodeId node(next_node++);
    m.directory.add_governor(GovernorId(static_cast<std::uint32_t>(i)), node);
    m.governor_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kGovernor, m.governor_keys.back().public_key());
  }
  build_links(topo, m.directory);

  // Genesis stake (retained: a restarted governor without a snapshot starts
  // from genesis again).
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const std::uint64_t units =
        i < config.governor_stakes.size() ? config.governor_stakes[i] : 1;
    m.genesis.set(GovernorId(static_cast<std::uint32_t>(i)), units);
  }

  if (config.governor_visibility <= 0.0 || config.governor_visibility > 1.0) {
    throw ConfigError("governor_visibility must be in (0, 1]");
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    std::vector<CollectorId> visible;
    if (config.governor_visibility < 1.0) {
      const auto count = static_cast<std::size_t>(
          std::ceil(config.governor_visibility * static_cast<double>(topo.collectors)));
      for (std::size_t k = 0; k < std::max<std::size_t>(count, 1); ++k) {
        visible.push_back(
            CollectorId(static_cast<std::uint32_t>((i + k) % topo.collectors)));
      }
    }
    m.governor_visible.push_back(std::move(visible));
  }
  return m;
}

}  // namespace repchain::sim
