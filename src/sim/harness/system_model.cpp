#include "sim/harness/system_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"
#include "sim/topology.hpp"

namespace repchain::sim {

SystemModel SystemModel::build(const ScenarioConfig& config,
                               const Rng& scenario_rng) {
  SystemModel m;
  Rng key_rng = scenario_rng.derive(2);
  m.im = std::make_unique<identity::IdentityManager>(crypto::random_seed(key_rng));

  const auto& topo = config.topology;

  // Phase deadlines for the self-driving rounds, keyed to the synchrony
  // bound Delta and the collecting-phase span.
  m.timing = protocol::RoundTiming::derive(
      config.latency.max_delay, config.governor.aggregation_delta,
      static_cast<SimDuration>(topo.providers * config.txs_per_provider_per_round) *
          kMillisecond,
      config.governor.enable_label_gossip);

  // Node ids and identities for every member: sequential flat ids in
  // provider, collector, governor order (the order SimNetwork::add_node
  // assigns them), one key drawn per member.
  std::uint32_t next_node = 0;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const NodeId node(next_node++);
    m.directory.add_provider(ProviderId(static_cast<std::uint32_t>(i)), node);
    m.provider_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kProvider, m.provider_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const NodeId node(next_node++);
    m.directory.add_collector(CollectorId(static_cast<std::uint32_t>(i)), node);
    m.collector_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kCollector, m.collector_keys.back().public_key());
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const NodeId node(next_node++);
    m.directory.add_governor(GovernorId(static_cast<std::uint32_t>(i)), node);
    m.governor_keys.emplace_back(crypto::random_seed(key_rng));
    m.im->enroll(node, identity::Role::kGovernor, m.governor_keys.back().public_key());
  }
  build_links(topo, m.directory);

  // Genesis stake (retained: a restarted governor without a snapshot starts
  // from genesis again).
  for (std::size_t i = 0; i < topo.governors; ++i) {
    const std::uint64_t units =
        i < config.governor_stakes.size() ? config.governor_stakes[i] : 1;
    m.genesis.set(GovernorId(static_cast<std::uint32_t>(i)), units);
  }

  if (config.governor_visibility <= 0.0 || config.governor_visibility > 1.0) {
    throw ConfigError("governor_visibility must be in (0, 1]");
  }
  for (std::size_t i = 0; i < topo.governors; ++i) {
    std::vector<CollectorId> visible;
    if (config.governor_visibility < 1.0) {
      const auto count = static_cast<std::size_t>(
          std::ceil(config.governor_visibility * static_cast<double>(topo.collectors)));
      for (std::size_t k = 0; k < std::max<std::size_t>(count, 1); ++k) {
        visible.push_back(
            CollectorId(static_cast<std::uint32_t>((i + k) % topo.collectors)));
      }
    }
    m.governor_visible.push_back(std::move(visible));
  }

  // Committee partition: per-shard directories over the same global ids and
  // node ids, with a per-committee circulant link structure. At
  // shard_count = 1 the single shard directory replays build_links exactly
  // (local member order == global id order, r_s == r), so the classic
  // deployment is reproduced bit-for-bit.
  m.router = protocol::ShardRouter(config.shard_count, topo.providers,
                                   topo.collectors, topo.governors);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    const ShardId shard(static_cast<std::uint32_t>(s));
    protocol::Directory d;
    const auto& ps = m.router.providers_of(shard);
    const auto& cs = m.router.collectors_of(shard);
    for (const ProviderId p : ps) d.add_provider(p, m.directory.node_of(p));
    for (const CollectorId c : cs) d.add_collector(c, m.directory.node_of(c));
    for (const GovernorId g : m.router.governors_of(shard)) {
      d.add_governor(g, m.directory.node_of(g));
    }
    const std::size_t r_s = std::min(topo.r, cs.size());
    for (std::size_t ip = 0; ip < ps.size(); ++ip) {
      for (std::size_t j = 0; j < r_s; ++j) {
        d.link(ps[ip], cs[(ip * r_s + j) % cs.size()]);
      }
    }
    protocol::StakeLedger genesis;
    for (const GovernorId g : m.router.governors_of(shard)) {
      const std::uint64_t units = g.value() < config.governor_stakes.size()
                                      ? config.governor_stakes[g.value()]
                                      : 1;
      genesis.set(g, units);
    }
    m.shard_directories.push_back(std::move(d));
    m.shard_genesis.push_back(std::move(genesis));
  }
  return m;
}

}  // namespace repchain::sim
