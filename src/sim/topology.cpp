#include "sim/topology.hpp"

#include "common/errors.hpp"

namespace repchain::sim {

void TopologyConfig::validate() const {
  if (providers == 0 || collectors == 0 || governors == 0) {
    throw ConfigError("topology: all tiers must be non-empty");
  }
  if (r == 0 || r > collectors) {
    throw ConfigError("topology: need 0 < r <= n");
  }
  if ((r * providers) % collectors != 0) {
    throw ConfigError("topology: r*l must be divisible by n (r*l = s*n)");
  }
}

void build_links(const TopologyConfig& config, protocol::Directory& directory) {
  config.validate();
  for (std::size_t i = 0; i < config.providers; ++i) {
    for (std::size_t j = 0; j < config.r; ++j) {
      const std::size_t c = (i * config.r + j) % config.collectors;
      directory.link(ProviderId(static_cast<std::uint32_t>(i)),
                     CollectorId(static_cast<std::uint32_t>(c)));
    }
  }
}

}  // namespace repchain::sim
