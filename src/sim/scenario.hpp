#pragma once

#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/spec.hpp"
#include "identity/identity_manager.hpp"
#include "ledger/validation_oracle.hpp"
#include "net/network.hpp"
#include "protocol/collector.hpp"
#include "protocol/governor.hpp"
#include "protocol/provider.hpp"
#include "protocol/round_timing.hpp"
#include "runtime/atomic_broadcast.hpp"
#include "runtime/fault_schedule.hpp"
#include "runtime/node_context.hpp"
#include "sim/round_observer.hpp"
#include "sim/topology.hpp"
#include "storage/node_state_store.hpp"

namespace repchain::sim {

/// One scheduled crash/restart fault: the governor loses all in-memory state
/// at `crash_round` + `crash_offset` (its pending timers are revoked, its
/// object destroyed) and is rebuilt at the start of `restart_round` from its
/// NodeStateStore — recover_from_store + sync_chain — before that round's
/// timers are armed. Rounds are 1-based, matching Scenario::current_round().
struct CrashPlan {
  std::size_t governor = 0;
  std::size_t crash_round = 1;
  SimDuration crash_offset = 0;  // within the round, relative to its t0
  std::size_t restart_round = 2;
};

// --- Round-based network fault specs -----------------------------------------
//
// Declarative fault windows expressed in 1-based round numbers; the Scenario
// lowers them onto the FaultSchedule's absolute time windows using the
// derived RoundTiming (round r spans [(r-1), r) * round_span). Every window
// is half-open: [from_round, until_round).

/// Cut the island (governor/collector/provider indices) off from everyone
/// else; traffic within the island and among outsiders still flows. The
/// partition heals at until_round.
struct PartitionSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  std::vector<std::size_t> governors;
  std::vector<std::size_t> collectors;
  std::vector<std::size_t> providers;
};

/// Burst loss on every link.
struct LossSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
};

/// Global delay spike (extra + uniform jitter on every drawn delay). May
/// deliberately exceed the synchrony bound Delta.
struct DelaySpikeSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  SimDuration extra = 0;
  SimDuration jitter = 0;
};

/// Message duplication.
struct DuplicationSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
};

/// Bounded reordering of unicasts.
struct ReorderSpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  double probability = 0.0;
  SimDuration max_extra = 5 * kMillisecond;
};

/// One slow governor-to-governor link (SimNetwork::set_link_delay), applied
/// at from_round and removed at until_round.
struct LinkDelaySpec {
  std::size_t from_round = 1;
  std::size_t until_round = 2;
  std::size_t from_governor = 0;
  std::size_t to_governor = 1;
  SimDuration extra = 0;
};

/// The full declarative fault plan of a run.
struct FaultScheduleSpec {
  std::vector<PartitionSpec> partitions;
  std::vector<LossSpec> losses;
  std::vector<DelaySpikeSpec> delay_spikes;
  std::vector<DuplicationSpec> duplications;
  std::vector<ReorderSpec> reorders;
  std::vector<LinkDelaySpec> link_delays;

  [[nodiscard]] bool empty() const {
    return partitions.empty() && losses.empty() && delay_spikes.empty() &&
           duplications.empty() && reorders.empty() && link_delays.empty();
  }
};

/// Full scenario configuration: topology, protocol parameters, workload and
/// fault mix. One Scenario = one deterministic whole-protocol run.
struct ScenarioConfig {
  TopologyConfig topology;
  protocol::GovernorConfig governor;
  net::LatencyModel latency;

  std::size_t rounds = 10;
  std::size_t txs_per_provider_per_round = 2;
  /// Ground-truth probability that a generated transaction is valid.
  double p_valid = 0.8;
  /// Providers argue over wrongly-buried transactions (Validity liveness).
  bool providers_active = true;
  /// Probability that the truth of a still-unrevealed unchecked transaction
  /// surfaces through "other evidence" at the end of each round (the paper's
  /// "real states ... are revealed sometime after"; argue only covers valid
  /// transactions of active providers).
  double audit_probability = 1.0;
  /// Collector behaviours, assigned round-robin over the n collectors.
  /// Empty => all honest.
  std::vector<protocol::CollectorBehavior> behaviors;
  /// Genesis stake per governor; empty => 1 unit each.
  std::vector<std::uint64_t> governor_stakes;
  /// Reward paid to collectors per valid transaction in an accepted block.
  double reward_per_valid_tx = 1.0;
  /// validate(tx) cost charged by the oracle.
  SimDuration validation_cost = 1 * kMillisecond;
  /// Fraction of collectors each governor perceives (1.0 = the paper's
  /// default full connectivity). With v < 1, governor j sees the
  /// ceil(v*n) collectors {(j + k) mod n}, staggered so views overlap.
  double governor_visibility = 1.0;
  /// Enable the equivocation-detection extension (label gossip between
  /// governors after each uploading phase). Mirrors
  /// GovernorConfig::enable_label_gossip, set here for convenience.
  bool enable_label_gossip = false;

  /// Crash/restart fault schedule (governors only). Scheduling any crash
  /// implies durable_governors.
  std::vector<CrashPlan> crashes;
  /// Network fault plan (partitions, loss, delay spikes, duplication,
  /// reordering, slow links), applied through a FaultyTransport decorator.
  /// Scheduling any fault defaults the governors' liveness watchdog on
  /// (watchdog_rounds = 2) unless the config sets it explicitly.
  FaultScheduleSpec faults;
  /// In-protocol Byzantine behavior plan (equivocating leaders, lying sync
  /// peers, Byzantine collectors, double-spending providers), expressed in
  /// the same round-windowed style as `faults`. A non-empty plan switches the
  /// governors' Byzantine defenses on (GovernorConfig::byzantine_defense and
  /// label gossip) — attacks without their paired defenses are not a
  /// supported configuration.
  adversary::AdversarySpec adversary;
  /// Route protocol traffic through per-node ReliableChannels (ack +
  /// retransmit + backoff) and let elections close on a majority quorum.
  /// Mirrors GovernorConfig::reliable_delivery and enables the same mode on
  /// providers and collectors.
  bool reliable_delivery = false;
  /// Attach a NodeStateStore to every governor even without crashes (to
  /// measure persistence overhead or snapshot sizes).
  bool durable_governors = false;
  /// Directory for on-disk stores (one subdirectory per governor). Empty =>
  /// in-memory stores, which exercise the same framed WAL/snapshot images.
  std::filesystem::path storage_dir;

  std::uint64_t seed = 1;
};

/// Per-round time series entry (what a dashboard would chart).
struct RoundRecord {
  Round round = 0;
  std::optional<GovernorId> leader;
  std::size_t block_txs = 0;            // size of this round's block
  std::uint64_t validations_delta = 0;  // oracle validations this round
  std::uint64_t messages_delta = 0;     // network messages this round
  double expected_loss_delta = 0.0;     // governor 0's L increment
  std::uint64_t argues_delta = 0;       // argues accepted (all governors)
};

/// Aggregated outcome of a run (also see per-node accessors on Scenario).
struct ScenarioSummary {
  std::uint64_t txs_submitted = 0;
  std::uint64_t blocks = 0;
  std::uint64_t chain_valid_txs = 0;
  std::uint64_t chain_unchecked_txs = 0;
  std::uint64_t chain_argued_txs = 0;
  bool agreement = false;        // all governor chains share a prefix
  bool chains_audit_ok = false;  // integrity + no-skipping on every replica
  std::uint64_t stalled_events = 0;     // watchdog kRoundStalled, all nodes
  std::uint64_t byzantine_evidence = 0;  // kByzantineEvidence, all nodes
  std::uint64_t validations_total = 0;  // oracle-wide validate() calls
  double mean_governor_expected_loss = 0.0;
  double mean_governor_realized_loss = 0.0;
  std::uint64_t mean_governor_mistakes = 0;
  net::NetworkStats network;
};

/// Builds the whole system — identity manager, simulated network, per-node
/// runtime contexts, atomic broadcast groups, providers/collectors/governors
/// — and wires it per the topology. Rounds are self-driving: run_round arms
/// every node's phase timers (keyed to the synchrony bound Delta via
/// RoundTiming), injects the collecting-phase workload, and then just runs
/// the clock to the round boundary while a passive RoundObserver assembles
/// the RoundRecord from emitted trace events.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Run all configured rounds.
  void run();
  /// Run a single round (callable repeatedly; advances the round counter).
  void run_round();

  /// Kill governor `i` right now: revoke its pending timer callbacks and
  /// destroy the object (all in-memory state is gone; its NodeStateStore,
  /// held by the Scenario, survives). Messages to the dead node are dropped.
  void crash_governor(std::size_t i);
  /// Rebuild governor `i` from its store and start catching up with peers.
  void restart_governor(std::size_t i);

  [[nodiscard]] ScenarioSummary summary() const;

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const protocol::RoundTiming& timing() const { return timing_; }
  [[nodiscard]] std::deque<protocol::Provider>& providers() { return providers_; }
  [[nodiscard]] std::deque<protocol::Collector>& collectors() { return collectors_; }
  /// Governors are held behind pointers so a crash can destroy one while the
  /// deque slot (and the network handler indexing it) stays put; a null slot
  /// is a currently-dead node.
  [[nodiscard]] std::deque<std::unique_ptr<protocol::Governor>>& governors() {
    return governors_;
  }
  /// Governor `i`, which must be alive.
  [[nodiscard]] protocol::Governor& governor(std::size_t i) { return *governors_[i]; }
  [[nodiscard]] const protocol::Governor& governor(std::size_t i) const {
    return *governors_[i];
  }
  /// The store backing governor `i` (null unless durable/crash-scheduled).
  [[nodiscard]] storage::NodeStateStore* governor_store(std::size_t i) {
    return governor_stores_.empty() ? nullptr : governor_stores_[i].get();
  }
  [[nodiscard]] const protocol::Directory& directory() const { return directory_; }
  [[nodiscard]] ledger::ValidationOracle& oracle() { return *oracle_; }
  [[nodiscard]] net::SimNetwork& network() { return *net_; }
  /// Fault-injection stats (null when no faults are scheduled).
  [[nodiscard]] const runtime::FaultStats* fault_stats() const {
    return faulty_ ? &faulty_->stats() : nullptr;
  }
  [[nodiscard]] const RoundObserver& observer() const { return observer_; }
  [[nodiscard]] net::EventQueue& queue() { return queue_; }
  [[nodiscard]] identity::IdentityManager& identity_manager() { return *im_; }
  [[nodiscard]] Round current_round() const { return round_; }

  /// Cumulative reward paid to each collector (leader-share based, §3.4.3).
  [[nodiscard]] const std::vector<double>& collector_rewards() const { return rewards_; }
  /// Rounds each governor led.
  [[nodiscard]] const std::vector<std::uint64_t>& leader_counts() const {
    return leader_counts_;
  }
  /// Per-round time series (one entry per completed round).
  [[nodiscard]] const std::vector<RoundRecord>& history() const { return history_; }

 private:
  void sample_rewards();  // timer: leadership tally + collector reward split
  void run_audit();       // timer: out-of-band reveal of unchecked truths
  void make_governor(std::size_t i);  // (re)construct governor i in its slot
  [[nodiscard]] const protocol::Governor* first_live_governor() const;
  /// Lower config.faults (round windows) onto an absolute-time FaultSchedule
  /// and build the FaultyTransport decorator; schedule the link-delay spans.
  void install_faults();
  /// Lower config.adversary (round windows) onto scheduled behavior swaps:
  /// governor Byzantine flags, collector deviation profiles, and provider
  /// double-spend rates are installed at each window start and reverted at
  /// its end. Governor flags also persist through crash/restart rebuilds.
  void install_adversary();
  /// Absolute start time of 1-based round `r`.
  [[nodiscard]] SimTime round_start(std::size_t r) const {
    return static_cast<SimTime>(r - 1) * timing_.round_span;
  }

  ScenarioConfig config_;
  Rng rng_;
  net::EventQueue queue_;
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<runtime::FaultyTransport> faulty_;
  runtime::Transport* transport_ = nullptr;  // faulty_ if faults, else net_
  std::unique_ptr<identity::IdentityManager> im_;
  std::unique_ptr<ledger::ValidationOracle> oracle_;
  protocol::Directory directory_;
  std::unique_ptr<runtime::AtomicBroadcastGroup> governor_group_;
  protocol::RoundTiming timing_;
  RoundObserver observer_;

  // deques: node objects must never relocate (handlers, contexts and the
  // governors' internal references are address-stable).
  std::deque<runtime::NodeContext> provider_ctxs_;
  std::deque<runtime::NodeContext> collector_ctxs_;
  std::deque<runtime::NodeContext> governor_ctxs_;
  std::deque<protocol::Provider> providers_;
  std::deque<protocol::Collector> collectors_;
  std::deque<std::unique_ptr<protocol::Governor>> governors_;

  // Rebuild material for crashed governors: their signing keys, genesis
  // stake, partial-visibility views, and (outliving the governor objects)
  // their durable stores.
  std::vector<crypto::SigningKey> governor_keys_;
  protocol::StakeLedger genesis_;
  std::vector<std::vector<CollectorId>> governor_visible_;
  std::deque<std::unique_ptr<storage::NodeStateStore>> governor_stores_;
  // ReliableChannel incarnation per governor, bumped on every restart so the
  // new life's sequence space is distinct from the old one.
  std::vector<std::uint32_t> governor_epochs_;
  // Current adversary toggles per governor (re-applied by make_governor so a
  // Byzantine governor stays Byzantine across a crash/restart) and the
  // collectors' baseline behaviors (restored when a Byzantine window ends).
  std::vector<adversary::GovernorByzantine> governor_byz_;
  std::vector<protocol::CollectorBehavior> collector_baselines_;

  Round round_ = 0;
  std::vector<double> rewards_;
  std::vector<std::uint64_t> leader_counts_;
  std::vector<RoundRecord> history_;
};

}  // namespace repchain::sim
