#pragma once

// Thin facade over the simulation harness. The run specification lives in
// sim/harness/spec.hpp; the machinery is decomposed under sim/harness/ —
// Wiring (node construction + transport/storage plumbing), FaultPlan
// (fault/adversary/crash lowering), Workload (provider traffic + audits),
// Observation (passive measurement + summary). Scenario owns the EventLoop
// and orchestrates the round loop; everything else delegates.

#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "net/event_queue.hpp"
#include "sim/harness/observation.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/wiring.hpp"
#include "sim/harness/workload.hpp"
#include "sim/round_observer.hpp"

namespace repchain::sim {

/// One deterministic whole-protocol run. Rounds are self-driving: run_round
/// arms every node's phase timers (keyed to the synchrony bound Delta via
/// RoundTiming), injects the collecting-phase workload, and then just runs
/// the clock to the round boundary while a passive RoundObserver assembles
/// the RoundRecord from emitted trace events.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Run all configured rounds.
  void run();
  /// Run a single round (callable repeatedly; advances the round counter).
  void run_round();

  /// Kill governor `i` right now: revoke its pending timer callbacks and
  /// destroy the object (all in-memory state is gone; its NodeStateStore,
  /// held by the harness, survives). Messages to the dead node are dropped.
  void crash_governor(std::size_t i) { wiring_->crash_governor(i); }
  /// Rebuild governor `i` from its store and start catching up with peers.
  void restart_governor(std::size_t i) { wiring_->restart_governor(i); }

  [[nodiscard]] ScenarioSummary summary() const {
    return observation_.summarize(*wiring_);
  }

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const protocol::RoundTiming& timing() const { return wiring_->timing_; }
  [[nodiscard]] std::deque<protocol::Provider>& providers() {
    return wiring_->providers_;
  }
  [[nodiscard]] std::deque<protocol::Collector>& collectors() {
    return wiring_->collectors_;
  }
  /// Governors are held behind pointers so a crash can destroy one while the
  /// deque slot (and the network handler indexing it) stays put; a null slot
  /// is a currently-dead node.
  [[nodiscard]] std::deque<std::unique_ptr<protocol::Governor>>& governors() {
    return wiring_->governors_;
  }
  /// Governor `i`, which must be alive.
  [[nodiscard]] protocol::Governor& governor(std::size_t i) {
    return *wiring_->governors_[i];
  }
  [[nodiscard]] const protocol::Governor& governor(std::size_t i) const {
    return *wiring_->governors_[i];
  }
  /// The store backing governor `i` (null unless durable/crash-scheduled).
  [[nodiscard]] storage::NodeStateStore* governor_store(std::size_t i) {
    return wiring_->governor_stores_.empty() ? nullptr
                                             : wiring_->governor_stores_[i].get();
  }
  [[nodiscard]] const protocol::Directory& directory() const {
    return wiring_->directory_;
  }
  /// The committee partition (identity routing on classic runs).
  [[nodiscard]] const protocol::ShardRouter& shard_router() const {
    return wiring_->router_;
  }
  /// The cross-shard anchor log (one head commitment per committee every
  /// anchor_interval rounds).
  [[nodiscard]] const ledger::BeaconLog& beacon() const {
    return observation_.beacon();
  }
  [[nodiscard]] ledger::ValidationOracle& oracle() { return *wiring_->oracle_; }
  [[nodiscard]] net::SimNetwork& network() { return *wiring_->net_; }
  /// Fault-injection stats (null when no faults are scheduled).
  [[nodiscard]] const runtime::FaultStats* fault_stats() const {
    return wiring_->faulty_ ? &wiring_->faulty_->stats() : nullptr;
  }
  [[nodiscard]] const RoundObserver& observer() const {
    return observation_.observer();
  }
  [[nodiscard]] net::EventQueue& queue() { return queue_; }
  [[nodiscard]] identity::IdentityManager& identity_manager() {
    return *wiring_->im_;
  }
  [[nodiscard]] Round current_round() const { return round_; }

  /// Cumulative reward paid to each collector (leader-share based, §3.4.3).
  [[nodiscard]] const std::vector<double>& collector_rewards() const {
    return observation_.rewards();
  }
  /// Rounds each governor led.
  [[nodiscard]] const std::vector<std::uint64_t>& leader_counts() const {
    return observation_.leader_counts();
  }
  /// Per-round time series (one entry per completed round).
  [[nodiscard]] const std::vector<RoundRecord>& history() const {
    return observation_.history();
  }

 private:
  ScenarioConfig config_;
  Rng rng_;
  net::EventQueue queue_;
  Observation observation_;  // declared before wiring_: governor contexts
                             // capture a pointer to its RoundObserver
  std::unique_ptr<Wiring> wiring_;
  std::unique_ptr<Workload> workload_;

  Round round_ = 0;
};

}  // namespace repchain::sim
