#include "sim/round_observer.hpp"

namespace repchain::sim {

void RoundObserver::on_event(const runtime::TraceEvent& ev) {
  // Stall events are a global liveness signal: count them from every node,
  // before the watched filter.
  if (ev.kind == runtime::TraceKind::kRoundStalled) ++stalled_events_;
  if (ev.kind == runtime::TraceKind::kByzantineEvidence) ++byzantine_evidence_;
  // Cross-shard rejects are a global tally too; collectors do not track
  // rounds, so the event must not open a (round 0) entry below.
  if (ev.kind == runtime::TraceKind::kCrossShardRejected) {
    ++cross_shard_rejected_;
    return;
  }
  // Transport-plane events (reliable-delivery exhaustion, keepalive death)
  // are global tallies as well: they carry no protocol round, so they must
  // not open a (round 0) entry below.
  if (ev.kind == runtime::TraceKind::kDeliveryFailed) {
    ++delivery_failures_;
    return;
  }
  if (ev.kind == runtime::TraceKind::kPeerDead) {
    ++dead_peer_events_;
    return;
  }
  if (watched_ && ev.node != *watched_) return;
  switch (ev.kind) {
    case runtime::TraceKind::kLeaderElected:
      rounds_[ev.round].leader = GovernorId(static_cast<std::uint32_t>(ev.arg0));
      break;
    case runtime::TraceKind::kBlockCommitted:
      rounds_[ev.round].block_txs = static_cast<std::size_t>(ev.arg1);
      rounds_[ev.round].commit_at = ev.at;
      break;
    default:
      // Round markers (started/ended/audit) carry no payload to collect, but
      // they still open the round entry so rounds_seen() counts them.
      rounds_.try_emplace(ev.round);
      break;
  }
  prune();
}

void RoundObserver::prune() {
  while (retention_ != 0 && rounds_.size() > retention_) {
    auto oldest = rounds_.begin();
    for (auto it = rounds_.begin(); it != rounds_.end(); ++it) {
      if (it->first < oldest->first) oldest = it;
    }
    rounds_.erase(oldest);
  }
}

std::optional<GovernorId> RoundObserver::leader(Round round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? std::nullopt : it->second.leader;
}

std::size_t RoundObserver::block_txs(Round round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? 0 : it->second.block_txs;
}

std::optional<SimTime> RoundObserver::commit_at(Round round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? std::nullopt : it->second.commit_at;
}

}  // namespace repchain::sim
