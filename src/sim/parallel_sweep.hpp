#pragma once

// Multi-core sweep runner. One simulated instance is strictly
// single-threaded and deterministic (FoundationDB-style); the only safe
// parallelism is across *fully isolated* instances — each task builds, runs,
// and summarizes its own Scenario from its own seed, touching zero shared
// mutable state. ParallelSweep shards task indices over a worker pool and
// collects results by index, so the merged output is identical for any job
// count — `--jobs 8` must be byte-for-byte `--jobs 1`.

#include <cstddef>
#include <functional>
#include <vector>

namespace repchain::sim {

class ParallelSweep {
 public:
  /// `jobs` = worker threads; 0 picks the hardware concurrency (at least 1).
  explicit ParallelSweep(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {}

  /// 0 => std::thread::hardware_concurrency() (or 1 if unknown).
  [[nodiscard]] static std::size_t resolve_jobs(std::size_t requested);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Invoke task(i) for every i in [0, count), sharded over the pool. Tasks
  /// must be independent: they may not touch shared mutable state. A thrown
  /// exception is captured and rethrown on the calling thread (remaining
  /// tasks may still run). With jobs() == 1 the tasks run inline, in order.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& task) const;

  /// for_each + collect: results[i] = task(i), ordered by index — the merge
  /// is deterministic regardless of which worker ran which shard. R must be
  /// default-constructible.
  template <typename R>
  [[nodiscard]] std::vector<R> map(
      std::size_t count, const std::function<R(std::size_t)>& task) const {
    std::vector<R> results(count);
    for_each(count, [&results, &task](std::size_t i) { results[i] = task(i); });
    return results;
  }

 private:
  std::size_t jobs_ = 1;
};

}  // namespace repchain::sim
