#include "cluster/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/errors.hpp"

namespace repchain::cluster {

ProcessSupervisor::ProcessSupervisor(Options opts, std::size_t nodes)
    : opts_(std::move(opts)), pids_(nodes, -1), state_dirs_(nodes) {
  if (!opts_.state_root.empty()) {
    (void)::mkdir(opts_.state_root.c_str(), 0755);
    for (std::size_t i = 0; i < nodes; ++i) {
      state_dirs_[i] = opts_.state_root + "/node" + std::to_string(i);
    }
  }
  if (!opts_.log_dir.empty()) (void)::mkdir(opts_.log_dir.c_str(), 0755);
}

ProcessSupervisor::~ProcessSupervisor() {
  for (std::size_t i = 0; i < pids_.size(); ++i) kill(i);
}

void ProcessSupervisor::spawn(std::size_t index, std::uint32_t incarnation) {
  // A failed respawn attempt leaves an exited child behind; reap it before
  // forking the next one so retries don't accumulate zombies.
  kill(index);
  const pid_t pid = ::fork();
  if (pid < 0) throw NetError(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    if (!opts_.log_dir.empty()) {
      const std::string log =
          opts_.log_dir + "/node" + std::to_string(index) + ".log";
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        (void)::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }
    const std::string cfg_arg = "--config=" + opts_.config_blob;
    const std::string idx_arg = "--index=" + std::to_string(index);
    const std::string port_arg = "--connect=" + std::to_string(opts_.port);
    std::vector<std::string> args = {opts_.node_bin, cfg_arg, idx_arg,
                                     port_arg};
    if (!state_dirs_[index].empty()) {
      args.push_back("--state-dir=" + state_dirs_[index]);
    }
    if (incarnation > 0) {
      args.push_back("--incarnation=" + std::to_string(incarnation));
    }
    for (const std::string& extra : opts_.extra_args) args.push_back(extra);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(opts_.node_bin.c_str(), argv.data());
    std::fprintf(stderr, "exec %s: %s\n", opts_.node_bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  pids_[index] = pid;
}

void ProcessSupervisor::kill(std::size_t index) {
  const pid_t pid = pids_[index];
  if (pid <= 0) return;
  // A victim may have died on its own (crash, exec failure) before we got
  // here; reap and record that instead of claiming the SIGKILL worked.
  int status = 0;
  const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
  if (reaped == pid) {
    ++report_.spontaneous_exits;
    std::fprintf(stderr,
                 "supervisor: node %zu (pid %d) exited on its own "
                 "(status 0x%x) before kill\n",
                 index, static_cast<int>(pid), status);
    pids_[index] = -1;
    return;
  }
  (void)::kill(pid, SIGKILL);
  (void)::waitpid(pid, &status, 0);
  pids_[index] = -1;
}

int ProcessSupervisor::wait_exit(std::size_t index) {
  const pid_t pid = pids_[index];
  if (pid <= 0) return 0;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    throw NetError(std::string("waitpid: ") + std::strerror(errno));
  }
  pids_[index] = -1;
  return status;
}

std::unique_ptr<SyncConn> admit_node(int listen_fd, const wire::Welcome& local,
                                     const crypto::Hash256& genesis,
                                     std::size_t governors, int timeout_ms,
                                     wire::Welcome* welcome_out) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      throw wire::WireError(wire::ProtocolError::kPeerTimeout,
                            "no node dialed within the admission deadline");
    }
    break;
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) throw NetError(std::string("accept: ") + std::strerror(errno));
  auto conn = std::make_unique<SyncConn>(fd);
  // Bound the handshake too: a child that connects and hangs must not
  // wedge the admission loop.
  conn->set_timeout(static_cast<std::uint64_t>(timeout_ms) * 1000);
  const wire::Welcome remote = handshake(*conn, local, genesis);
  conn->set_timeout(0);
  if (remote.role != wire::Role::kNode) {
    throw wire::WireError(wire::ProtocolError::kBadRole,
                          "peer is not a cluster node");
  }
  if (remote.node_index >= governors) {
    throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                          "governor index " + std::to_string(remote.node_index));
  }
  if (welcome_out != nullptr) *welcome_out = remote;
  return conn;
}

}  // namespace repchain::cluster
