#pragma once

// Process supervision for live clusters: fork/exec of `node` processes with
// per-node persisted state directories, SIGKILL mid-run, respawn as a
// higher incarnation, and bounded-wait admission (accept + handshake with a
// deadline). Shared by the cluster_driver tool's convergence mode and
// bench_recovery's cluster-restart section; the ClusterRun supervision
// callbacks (KillFn/RespawnFn) are thin lambdas over this class.

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/sync_conn.hpp"
#include "crypto/sha256.hpp"
#include "wire/codec.hpp"

namespace repchain::cluster {

class ProcessSupervisor {
 public:
  struct Options {
    std::string node_bin;     // path to the node binary
    std::string config_blob;  // path to the encoded ScenarioConfig
    std::uint16_t port = 0;   // where nodes dial the driver (or the proxy)
    /// Non-empty: per-node state directories <state_root>/node<i> are
    /// passed as --state-dir so chains survive a SIGKILL.
    std::string state_root;
    /// Non-empty: each child's stderr is appended to <log_dir>/node<i>.log
    /// (the convergence-diff artifact CI uploads on failure).
    std::string log_dir;
    /// Extra argv entries appended to every spawn (e.g. --free-run,
    /// --peer-base=<port> for free-running nodes).
    std::vector<std::string> extra_args;
  };

  /// Lifecycle observations across the run.
  struct Report {
    /// Victims found already dead when kill() went to SIGKILL them: the
    /// child exited on its own (crash, exec failure) during the wait
    /// window, so the "kill" would otherwise be reported as a success it
    /// never was.
    std::uint32_t spontaneous_exits = 0;
  };

  ProcessSupervisor(Options opts, std::size_t nodes);
  /// SIGKILLs and reaps any children still running.
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Fork/exec governor `index` as `incarnation` (0 = first life). Throws
  /// NetError on fork failure.
  void spawn(std::size_t index, std::uint32_t incarnation = 0);

  /// SIGKILL + reap. No-op when the child is already gone. A victim that
  /// already exited on its own is reaped, logged and counted in
  /// report().spontaneous_exits instead of being treated as a kill.
  void kill(std::size_t index);

  /// Reap a child expected to exit on its own; returns its wait status.
  int wait_exit(std::size_t index);

  [[nodiscard]] pid_t pid(std::size_t index) const { return pids_[index]; }
  [[nodiscard]] const std::string& state_dir(std::size_t index) const {
    return state_dirs_[index];
  }
  [[nodiscard]] const Report& report() const { return report_; }

 private:
  Options opts_;
  std::vector<pid_t> pids_;
  std::vector<std::string> state_dirs_;
  Report report_;
};

/// Accept one node connection on `listen_fd` within `timeout_ms` (poll(2)
/// bounded), run the driver handshake against `genesis`, and verify the
/// peer is a node with an index below `governors`. Returns the admitted
/// connection; the peer's welcome (index, resume fields) lands in
/// `welcome_out` when non-null. Throws WireError(kPeerTimeout) when nothing
/// dials in time.
[[nodiscard]] std::unique_ptr<SyncConn> admit_node(
    int listen_fd, const wire::Welcome& local, const crypto::Hash256& genesis,
    std::size_t governors, int timeout_ms, wire::Welcome* welcome_out = nullptr);

}  // namespace repchain::cluster
