#pragma once

// Cluster RPC vocabulary: the driver/node packet types layered on the wire
// frame format (type values from 16 upward; 1..15 belong to the shared wire
// layer), plus the codecs for their payloads. The central idea is the
// Effect list: a node process runs its governor's handler synchronously and
// records every externally-visible action — sends, multicasts, atomic
// broadcasts, timer arms, trace events — in program order. The driver
// applies that list to its master event loop in the same order, which is
// exactly the order a locally-hosted governor would have performed them in,
// so the lockstep replay stays bit-identical to the simulation.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "runtime/message.hpp"
#include "runtime/trace.hpp"

namespace repchain::cluster {

/// RPC packet types. Driver->node requests carry the node's virtual clock;
/// every request that can execute protocol code gets a kDone reply carrying
/// the recorded effects. Queries (kQuery*, kSnapshot) are pure reads with
/// typed replies. kRegisterTx is fire-and-forget: the socket's FIFO puts it
/// ahead of any later delivery that could validate the transaction.
enum class ClusterPacket : std::uint16_t {
  // driver -> node
  kRegisterTx = 16,  // ground-truth forwarding (no reply)
  kDeliver = 17,     // network delivery for the hosted governor
  kFireTimer = 18,   // a timer the node armed earlier is due
  kArmRound = 19,    // Governor::arm_round(round, t0, timing)
  kReveal = 20,      // audit: reveal_unchecked(txid)
  kQueryState = 21,
  kQueryShares = 22,
  kQueryUnrevealed = 23,
  kSnapshot = 24,  // end-of-run chain + metrics
  kShutdown = 25,
  kQueryHead = 26,  // convergence probe: chain head identity
  kResync = 27,     // post-restart: recover clock and start sync_chain()
  kFreeStart = 28,      // free-run: self-drive rounds from an aligned t0
  kQueryFreeStats = 29, // free-run probe: head + liveness counters
  kQueryBlockAt = 30,   // fork probe: hash of the block at a given serial
  // node -> driver
  kDone = 32,   // effects recorded while serving the request
  kState = 33,  // GovernorState
  kShares = 34,
  kUnrevealed = 35,
  kSnapshotData = 36,  // GovernorSnapshotData
  kHead = 37,          // HeadInfo
  kFreeStats = 38,     // FreeRunStats
  kBlockHash = 39,     // BlockHashInfo
};

/// One externally-visible action recorded by a node while running governor
/// code, in program order. The driver replays kSend/kMulticast through its
/// SimNetwork (drawing link delays there, in the same order a local
/// governor would have), kBroadcast through the shared sequencer,
/// kArmTimer onto the master event loop, and kTrace into the observer.
struct Effect {
  enum class Kind : std::uint8_t {
    kSend = 1,
    kMulticast = 2,
    kBroadcast = 3,
    kArmTimer = 4,
    kTrace = 5,
  };

  Kind kind = Kind::kSend;
  // kSend / kMulticast / kBroadcast
  NodeId from;
  runtime::MsgKind msg_kind = runtime::MsgKind::kTest;
  Bytes payload;
  std::vector<NodeId> to;  // one entry for kSend; the list for kMulticast
  // kArmTimer
  SimTime at = 0;
  std::uint64_t timer_id = 0;
  // kTrace
  runtime::TraceEvent trace{};
};

[[nodiscard]] Bytes encode_effects(const std::vector<Effect>& effects);
[[nodiscard]] std::vector<Effect> decode_effects(BytesView data);

/// kQueryState reply: the live counters Observation probes each round.
struct GovernorState {
  std::optional<GovernorId> leader;
  double expected_loss = 0.0;
  std::uint64_t argues_accepted = 0;
  std::uint64_t validations = 0;  // the node-local oracle's count
  bool chain_empty = true;
  std::uint64_t head_valid_txs = 0;  // head-block txs not kUncheckedInvalid
};

[[nodiscard]] Bytes encode_state(const GovernorState& s);
[[nodiscard]] GovernorState decode_state(BytesView data);

/// kHead reply: the chain-head identity the convergence check compares
/// across survivors and the restarted node.
struct HeadInfo {
  std::uint64_t serial = 0;        // head block serial (0 = empty chain)
  crypto::Hash256 hash{};          // H(head block)
  std::uint64_t committed_txs = 0; // tx records across the whole chain
  std::uint32_t incarnation = 0;   // the node's restart count
};

[[nodiscard]] Bytes encode_head(const HeadInfo& h);
[[nodiscard]] HeadInfo decode_head(BytesView data);

/// kResync: the master clock at re-admission; the node re-seats its virtual
/// clock and starts the governor's chain catch-up.
[[nodiscard]] Bytes encode_resync(SimTime now);
[[nodiscard]] SimTime decode_resync(BytesView data);

/// kSnapshotData reply: everything the end-of-run summary needs.
struct GovernorSnapshotData {
  std::vector<ledger::Block> blocks;
  double expected_loss = 0.0;
  double realized_loss = 0.0;
  std::uint64_t mistakes = 0;
};

[[nodiscard]] Bytes encode_snapshot(const GovernorSnapshotData& s);
[[nodiscard]] GovernorSnapshotData decode_snapshot(BytesView data);

// --- Small request/reply payloads -------------------------------------------

struct RegisterTx {
  ledger::TxId id{};
  bool valid = false;
};

[[nodiscard]] Bytes encode_register_tx(const RegisterTx& r);
[[nodiscard]] RegisterTx decode_register_tx(BytesView data);

/// kDeliver: the node's virtual clock plus the canonical message envelope.
[[nodiscard]] Bytes encode_deliver(SimTime now, const runtime::Message& msg);
[[nodiscard]] std::pair<SimTime, runtime::Message> decode_deliver(BytesView data);

/// kFireTimer: clock + the timer_id from an earlier kArmTimer effect.
[[nodiscard]] Bytes encode_fire_timer(SimTime now, std::uint64_t timer_id);
[[nodiscard]] std::pair<SimTime, std::uint64_t> decode_fire_timer(BytesView data);

struct ArmRound {
  SimTime now = 0;
  Round round = 0;
  SimTime t0 = 0;
};

[[nodiscard]] Bytes encode_arm_round(const ArmRound& a);
[[nodiscard]] ArmRound decode_arm_round(BytesView data);

/// kReveal: clock + the tx to reveal.
[[nodiscard]] Bytes encode_reveal(SimTime now, const ledger::TxId& id);
[[nodiscard]] std::pair<SimTime, ledger::TxId> decode_reveal(BytesView data);

/// kShares reply (also reused for kUnrevealed via the TxId list codec).
[[nodiscard]] Bytes encode_shares(
    const std::vector<std::pair<CollectorId, double>>& shares);
[[nodiscard]] std::vector<std::pair<CollectorId, double>> decode_shares(
    BytesView data);

[[nodiscard]] Bytes encode_txid_list(const std::vector<ledger::TxId>& ids);
[[nodiscard]] std::vector<ledger::TxId> decode_txid_list(BytesView data);

// --- Free-running mode -------------------------------------------------------

/// kFreeStart: arm self-driving rounds. Each process measures time on its
/// own CLOCK_MONOTONIC epoch, so absolute times cannot cross the wire; the
/// driver instead announces "round `first_round` begins `start_delay`
/// microseconds after you receive this", which every node converts to its
/// local clock. Skew is one loopback RPC (sub-millisecond) against phase
/// offsets keyed to Delta (milliseconds).
struct FreeStart {
  Round first_round = 1;
  SimDuration start_delay = 0;
};

[[nodiscard]] Bytes encode_free_start(const FreeStart& s);
[[nodiscard]] FreeStart decode_free_start(BytesView data);

/// kFreeStats reply: the head identity plus the liveness counters a
/// free-running observer needs for the convergence contract and the
/// degradation report (watchdog trips, stall events, channel exhaustion).
struct FreeRunStats {
  HeadInfo head;
  std::uint64_t current_round = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t stalled_events = 0;     // kRoundStalled traces emitted
  std::uint64_t watchdog_trips = 0;
  std::uint64_t delivery_failures = 0;  // reliable-channel budget exhaustion
  std::uint64_t reconnects = 0;         // transport links re-established
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_synced = 0;
};

[[nodiscard]] Bytes encode_free_stats(const FreeRunStats& s);
[[nodiscard]] FreeRunStats decode_free_stats(BytesView data);

/// kQueryBlockAt request: a block serial. Reply kBlockHash: whether the
/// node's chain holds that serial yet and, if so, the block's hash — the
/// observer cross-checks these across nodes to prove common-prefix (no
/// fork) without shipping whole blocks.
[[nodiscard]] Bytes encode_block_at(std::uint64_t serial);
[[nodiscard]] std::uint64_t decode_block_at(BytesView data);

struct BlockHashInfo {
  std::uint64_t serial = 0;
  bool found = false;
  crypto::Hash256 hash{};
};

[[nodiscard]] Bytes encode_block_hash(const BlockHashInfo& b);
[[nodiscard]] BlockHashInfo decode_block_hash(BytesView data);

}  // namespace repchain::cluster
