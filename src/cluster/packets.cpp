#include "cluster/packets.hpp"

#include <string>

#include "common/serial.hpp"
#include "wire/codec.hpp"
#include "wire/protocol_error.hpp"

namespace repchain::cluster {
namespace {

/// Decode with the wire layer's error discipline: serial truncation maps to
/// kTruncatedPayload, leftover bytes to kTrailingBytes.
template <typename Fn>
auto decode_exact(BytesView data, Fn&& fn) {
  BinaryReader r(data);
  try {
    auto value = fn(r);
    if (r.remaining() != 0) {
      throw wire::WireError(wire::ProtocolError::kTrailingBytes,
                            std::to_string(r.remaining()) +
                                " bytes after the last field");
    }
    return value;
  } catch (const wire::WireError&) {
    throw;
  } catch (const DecodeError& e) {
    throw wire::WireError(wire::ProtocolError::kTruncatedPayload, e.what());
  }
}

void encode_effect(BinaryWriter& w, const Effect& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  switch (e.kind) {
    case Effect::Kind::kSend:
    case Effect::Kind::kMulticast:
    case Effect::Kind::kBroadcast:
      w.u32(e.from.value());
      w.u16(static_cast<std::uint16_t>(e.msg_kind));
      w.bytes(e.payload);
      w.u32(static_cast<std::uint32_t>(e.to.size()));
      for (const NodeId n : e.to) w.u32(n.value());
      break;
    case Effect::Kind::kArmTimer:
      w.u64(e.at);
      w.u64(e.timer_id);
      break;
    case Effect::Kind::kTrace:
      w.bytes(wire::encode_trace(e.trace));
      break;
  }
}

Effect decode_effect(BinaryReader& r) {
  Effect e;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 5) {
    throw wire::WireError(wire::ProtocolError::kBadPayload,
                          "effect kind " + std::to_string(kind));
  }
  e.kind = static_cast<Effect::Kind>(kind);
  switch (e.kind) {
    case Effect::Kind::kSend:
    case Effect::Kind::kMulticast:
    case Effect::Kind::kBroadcast: {
      e.from = NodeId(r.u32());
      e.msg_kind = static_cast<runtime::MsgKind>(r.u16());
      e.payload = r.bytes();
      const std::uint32_t n = r.u32();
      r.expect_count(n, 4);
      e.to.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) e.to.emplace_back(r.u32());
      if (e.kind == Effect::Kind::kSend && e.to.size() != 1) {
        throw wire::WireError(wire::ProtocolError::kBadPayload,
                              "send effect needs exactly one destination");
      }
      break;
    }
    case Effect::Kind::kArmTimer:
      e.at = r.u64();
      e.timer_id = r.u64();
      break;
    case Effect::Kind::kTrace:
      e.trace = wire::decode_trace(r.bytes());
      break;
  }
  return e;
}

}  // namespace

Bytes encode_effects(const std::vector<Effect>& effects) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(effects.size()));
  for (const Effect& e : effects) encode_effect(w, e);
  return std::move(w).take();
}

std::vector<Effect> decode_effects(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    const std::uint32_t n = r.u32();
    r.expect_count(n, 1);
    std::vector<Effect> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(decode_effect(r));
    return out;
  });
}

Bytes encode_state(const GovernorState& s) {
  BinaryWriter w;
  w.boolean(s.leader.has_value());
  w.u32(s.leader ? s.leader->value() : 0);
  w.f64(s.expected_loss);
  w.u64(s.argues_accepted);
  w.u64(s.validations);
  w.boolean(s.chain_empty);
  w.u64(s.head_valid_txs);
  return std::move(w).take();
}

GovernorState decode_state(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    GovernorState s;
    const bool has_leader = r.boolean();
    const std::uint32_t leader = r.u32();
    if (has_leader) s.leader = GovernorId(leader);
    s.expected_loss = r.f64();
    s.argues_accepted = r.u64();
    s.validations = r.u64();
    s.chain_empty = r.boolean();
    s.head_valid_txs = r.u64();
    return s;
  });
}

Bytes encode_snapshot(const GovernorSnapshotData& s) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(s.blocks.size()));
  for (const ledger::Block& b : s.blocks) w.bytes(b.encode());
  w.f64(s.expected_loss);
  w.f64(s.realized_loss);
  w.u64(s.mistakes);
  return std::move(w).take();
}

GovernorSnapshotData decode_snapshot(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    GovernorSnapshotData s;
    const std::uint32_t n = r.u32();
    r.expect_count(n, 4);
    s.blocks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      s.blocks.push_back(ledger::Block::decode(r.bytes()));
    }
    s.expected_loss = r.f64();
    s.realized_loss = r.f64();
    s.mistakes = r.u64();
    return s;
  });
}

Bytes encode_head(const HeadInfo& h) {
  BinaryWriter w;
  w.u64(h.serial);
  w.raw(view(h.hash));
  w.u64(h.committed_txs);
  w.u32(h.incarnation);
  return std::move(w).take();
}

HeadInfo decode_head(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    HeadInfo h;
    h.serial = r.u64();
    h.hash = r.raw_array<32>();
    h.committed_txs = r.u64();
    h.incarnation = r.u32();
    return h;
  });
}

Bytes encode_resync(SimTime now) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now));
  return std::move(w).take();
}

SimTime decode_resync(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    return static_cast<SimTime>(r.u64());
  });
}

Bytes encode_register_tx(const RegisterTx& reg) {
  BinaryWriter w;
  w.raw(view(reg.id));
  w.boolean(reg.valid);
  return std::move(w).take();
}

RegisterTx decode_register_tx(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    RegisterTx reg;
    reg.id = r.raw_array<32>();
    reg.valid = r.boolean();
    return reg;
  });
}

Bytes encode_deliver(SimTime now, const runtime::Message& msg) {
  BinaryWriter w;
  w.u64(now);
  w.raw(wire::encode_message(msg));
  return std::move(w).take();
}

std::pair<SimTime, runtime::Message> decode_deliver(BytesView data) {
  if (data.size() < 8) {
    throw wire::WireError(wire::ProtocolError::kTruncatedPayload,
                          "deliver payload shorter than its clock");
  }
  BinaryReader r(data);
  const SimTime now = r.u64();
  return {now, wire::decode_message(data.subspan(8))};
}

Bytes encode_fire_timer(SimTime now, std::uint64_t timer_id) {
  BinaryWriter w;
  w.u64(now);
  w.u64(timer_id);
  return std::move(w).take();
}

std::pair<SimTime, std::uint64_t> decode_fire_timer(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    const SimTime now = r.u64();
    const std::uint64_t id = r.u64();
    return std::pair<SimTime, std::uint64_t>{now, id};
  });
}

Bytes encode_arm_round(const ArmRound& a) {
  BinaryWriter w;
  w.u64(a.now);
  w.u64(a.round);
  w.u64(a.t0);
  return std::move(w).take();
}

ArmRound decode_arm_round(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    ArmRound a;
    a.now = r.u64();
    a.round = r.u64();
    a.t0 = r.u64();
    return a;
  });
}

Bytes encode_reveal(SimTime now, const ledger::TxId& id) {
  BinaryWriter w;
  w.u64(now);
  w.raw(view(id));
  return std::move(w).take();
}

std::pair<SimTime, ledger::TxId> decode_reveal(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    const SimTime now = r.u64();
    const ledger::TxId id = r.raw_array<32>();
    return std::pair<SimTime, ledger::TxId>{now, id};
  });
}

Bytes encode_shares(const std::vector<std::pair<CollectorId, double>>& shares) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(shares.size()));
  for (const auto& [c, share] : shares) {
    w.u32(c.value());
    w.f64(share);
  }
  return std::move(w).take();
}

std::vector<std::pair<CollectorId, double>> decode_shares(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    const std::uint32_t n = r.u32();
    r.expect_count(n, 12);
    std::vector<std::pair<CollectorId, double>> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const CollectorId c(r.u32());
      const double share = r.f64();
      out.emplace_back(c, share);
    }
    return out;
  });
}

Bytes encode_txid_list(const std::vector<ledger::TxId>& ids) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const ledger::TxId& id : ids) w.raw(view(id));
  return std::move(w).take();
}

std::vector<ledger::TxId> decode_txid_list(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    const std::uint32_t n = r.u32();
    r.expect_count(n, 32);
    std::vector<ledger::TxId> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.raw_array<32>());
    return out;
  });
}

Bytes encode_free_start(const FreeStart& s) {
  BinaryWriter w;
  w.u64(s.first_round);
  w.u64(static_cast<std::uint64_t>(s.start_delay));
  return std::move(w).take();
}

FreeStart decode_free_start(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    FreeStart s;
    s.first_round = r.u64();
    s.start_delay = static_cast<SimDuration>(r.u64());
    return s;
  });
}

Bytes encode_free_stats(const FreeRunStats& s) {
  BinaryWriter w;
  w.raw(encode_head(s.head));
  w.u64(s.current_round);
  w.u64(s.rounds_started);
  w.u64(s.stalled_events);
  w.u64(s.watchdog_trips);
  w.u64(s.delivery_failures);
  w.u64(s.reconnects);
  w.u64(s.blocks_accepted);
  w.u64(s.blocks_synced);
  return std::move(w).take();
}

FreeRunStats decode_free_stats(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    FreeRunStats s;
    s.head.serial = r.u64();
    s.head.hash = r.raw_array<32>();
    s.head.committed_txs = r.u64();
    s.head.incarnation = r.u32();
    s.current_round = r.u64();
    s.rounds_started = r.u64();
    s.stalled_events = r.u64();
    s.watchdog_trips = r.u64();
    s.delivery_failures = r.u64();
    s.reconnects = r.u64();
    s.blocks_accepted = r.u64();
    s.blocks_synced = r.u64();
    return s;
  });
}

Bytes encode_block_at(std::uint64_t serial) {
  BinaryWriter w;
  w.u64(serial);
  return std::move(w).take();
}

std::uint64_t decode_block_at(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) { return r.u64(); });
}

Bytes encode_block_hash(const BlockHashInfo& b) {
  BinaryWriter w;
  w.u64(b.serial);
  w.boolean(b.found);
  w.raw(view(b.hash));
  return std::move(w).take();
}

BlockHashInfo decode_block_hash(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    BlockHashInfo b;
    b.serial = r.u64();
    b.found = r.boolean();
    b.hash = r.raw_array<32>();
    return b;
  });
}

}  // namespace repchain::cluster
