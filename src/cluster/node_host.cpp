#include "cluster/node_host.hpp"

#include <string>
#include <utility>

#include "common/errors.hpp"
#include "sim/harness/spec_codec.hpp"
#include "storage/file_state_store.hpp"
#include "wire/codec.hpp"

namespace repchain::cluster {
namespace {

sim::ScenarioConfig normalized(sim::ScenarioConfig config) {
  sim::normalize_config(config);
  sim::require_cluster_runnable(config);
  return config;
}

std::size_t checked_index(const sim::ScenarioConfig& config, std::size_t i) {
  if (i >= config.topology.governors) {
    throw ConfigError("cluster node: governor index " + std::to_string(i) +
                      " out of range (" +
                      std::to_string(config.topology.governors) + " governors)");
  }
  return i;
}

std::unique_ptr<storage::NodeStateStore> make_store(const std::string& dir) {
  if (dir.empty()) return nullptr;
  return std::make_unique<storage::FileStateStore>(dir);
}

}  // namespace

void RemoteTimers::fire(std::uint64_t id) {
  auto it = armed_.find(id);
  if (it == armed_.end()) {
    throw NetError("cluster node: fire for unknown timer " + std::to_string(id) +
                   " (driver/node schedules diverged)");
  }
  Callback cb = std::move(it->second);
  armed_.erase(it);
  cb();
}

void RemoteTransport::send(NodeId from, NodeId to, runtime::MsgKind kind,
                           Bytes payload) {
  Effect e;
  e.kind = Effect::Kind::kSend;
  e.from = from;
  e.msg_kind = kind;
  e.payload = std::move(payload);
  e.to = {to};
  effects_.push_back(std::move(e));
}

void RemoteTransport::multicast(NodeId from, std::span<const NodeId> to,
                                runtime::MsgKind kind, const Bytes& payload) {
  Effect e;
  e.kind = Effect::Kind::kMulticast;
  e.from = from;
  e.msg_kind = kind;
  e.payload = payload;
  e.to.assign(to.begin(), to.end());
  effects_.push_back(std::move(e));
}

SimDuration RemoteTransport::draw_delay() {
  // Link delays are drawn from the driver's network RNG when the effect is
  // replayed; a draw here would fork the stream.
  throw NetError("cluster node: draw_delay called on the remote transport");
}

void RemoteTransport::deliver_direct(const runtime::Message&) {
  // Pre-ordered deliveries originate from the driver-side sequencer and
  // arrive as kDeliver requests; nothing node-side may shortcut them.
  throw NetError("cluster node: deliver_direct called on the remote transport");
}

void RemoteTransport::count_broadcast(runtime::MsgKind, std::size_t, std::size_t) {
  // Broadcast accounting lives with the driver's SimNetwork.
}

void RemoteBroadcaster::broadcast(NodeId from, runtime::MsgKind kind,
                                  const Bytes& payload) {
  Effect e;
  e.kind = Effect::Kind::kBroadcast;
  e.from = from;
  e.msg_kind = kind;
  e.payload = payload;
  effects_.push_back(std::move(e));
}

void RemoteTraceSink::on_event(const runtime::TraceEvent& ev) {
  Effect e;
  e.kind = Effect::Kind::kTrace;
  e.trace = ev;
  effects_.push_back(std::move(e));
}

NodeHost::NodeHost(sim::ScenarioConfig config, std::size_t governor_index,
                   const std::string& state_dir, std::uint32_t incarnation)
    : config_(normalized(std::move(config))),
      index_(checked_index(config_, governor_index)),
      incarnation_(incarnation),
      genesis_(sim::config_genesis(config_)),
      model_(sim::SystemModel::build(config_, Rng(config_.seed))),
      store_(make_store(state_dir)),
      timers_(effects_),
      transport_(effects_, timers_, config_.latency.max_delay),
      broadcaster_(effects_, model_.directory.governor_nodes()),
      trace_(effects_),
      oracle_(config_.validation_cost),
      ctx_(model_.directory.node_of(GovernorId(static_cast<std::uint32_t>(index_))),
           transport_, Rng(config_.seed).derive(2000 + index_), &trace_) {
  const GovernorId id(static_cast<std::uint32_t>(index_));
  protocol::GovernorConfig gc = config_.governor;
  // The ReliableChannel epoch is the restart count, so a returning life's
  // sequence space is distinct from every earlier one (mirrors the sim's
  // Wiring::restart_governor epoch bump).
  gc.channel_epoch = incarnation_;
  governor_ = std::make_unique<protocol::Governor>(
      id, ctx_, model_.governor_keys[index_], *model_.im, oracle_,
      model_.directory, broadcaster_, gc, model_.genesis,
      model_.governor_visible[index_], store_.get());
  if (incarnation_ > 0 && store_ != nullptr) {
    // Restarted process: replay snapshot + WAL tail before serving. The
    // catch-up sync is driven by the driver's kResync once re-admitted.
    governor_->recover_from_store();
    // Replay pushes effects (commit trace events) into the shims; none of
    // that predates the driver connection, so drop it.
    effects_.clear();
  }
}

NodeHost::~NodeHost() = default;

void NodeHost::reply_done(SyncConn& conn) {
  conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kDone),
                  encode_effects(effects_));
  effects_.clear();
}

GovernorState NodeHost::state() const {
  GovernorState s;
  s.leader = governor_->round_leader();
  s.expected_loss = governor_->metrics().expected_loss;
  s.argues_accepted = governor_->metrics().argues_accepted;
  s.validations = oracle_.validations();
  s.chain_empty = governor_->chain().empty();
  if (!s.chain_empty) {
    for (const auto& rec : governor_->chain().head().txs) {
      if (rec.status != ledger::TxStatus::kUncheckedInvalid) ++s.head_valid_txs;
    }
  }
  return s;
}

HeadInfo NodeHost::head() const {
  HeadInfo h;
  h.incarnation = incarnation_;
  const ledger::ChainStore& chain = governor_->chain();
  if (chain.empty()) return h;
  h.serial = chain.head().serial;
  h.hash = chain.head_hash();
  for (const ledger::Block& b : chain.blocks())
    h.committed_txs += b.txs.size();
  return h;
}

GovernorSnapshotData NodeHost::snapshot() const {
  GovernorSnapshotData s;
  s.blocks = governor_->chain().blocks();
  s.expected_loss = governor_->metrics().expected_loss;
  s.realized_loss = governor_->metrics().realized_loss;
  s.mistakes = governor_->metrics().mistakes;
  return s;
}

void NodeHost::handle(SyncConn& conn, const wire::Frame& frame, bool& done) {
  switch (static_cast<ClusterPacket>(frame.type)) {
    case ClusterPacket::kRegisterTx: {
      const RegisterTx reg = decode_register_tx(frame.payload);
      oracle_.register_tx(reg.id, reg.valid);
      return;  // fire-and-forget
    }
    case ClusterPacket::kDeliver: {
      auto [now, msg] = decode_deliver(frame.payload);
      timers_.set_now(now);
      governor_->on_message(msg);
      reply_done(conn);
      return;
    }
    case ClusterPacket::kFireTimer: {
      const auto [now, id] = decode_fire_timer(frame.payload);
      timers_.set_now(now);
      timers_.fire(id);
      reply_done(conn);
      return;
    }
    case ClusterPacket::kArmRound: {
      const ArmRound a = decode_arm_round(frame.payload);
      timers_.set_now(a.now);
      governor_->arm_round(a.round, a.t0, model_.timing);
      reply_done(conn);
      return;
    }
    case ClusterPacket::kReveal: {
      const auto [now, id] = decode_reveal(frame.payload);
      timers_.set_now(now);
      (void)governor_->reveal_unchecked(id);
      reply_done(conn);
      return;
    }
    case ClusterPacket::kQueryState:
      conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kState),
                      encode_state(state()));
      return;
    case ClusterPacket::kQueryShares:
      conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kShares),
                      encode_shares(governor_->revenue_shares()));
      return;
    case ClusterPacket::kQueryUnrevealed:
      conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kUnrevealed),
                      encode_txid_list(governor_->unrevealed_unchecked()));
      return;
    case ClusterPacket::kSnapshot:
      conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kSnapshotData),
                      encode_snapshot(snapshot()));
      return;
    case ClusterPacket::kQueryHead:
      conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kHead),
                      encode_head(head()));
      return;
    case ClusterPacket::kResync: {
      // Re-seat the virtual clock at the master loop's instant and start
      // the governor's peer catch-up; the sync requests ride back as send
      // effects and flow through the replay like any other traffic.
      timers_.set_now(decode_resync(frame.payload));
      governor_->sync_chain();
      reply_done(conn);
      return;
    }
    case ClusterPacket::kShutdown:
      reply_done(conn);
      done = true;
      return;
    default:
      throw wire::WireError(wire::ProtocolError::kUnknownPacket,
                            "cluster node: packet type " +
                                std::to_string(frame.type));
  }
}

void NodeHost::serve(int fd) {
  SyncConn conn(fd);

  wire::Welcome local;
  local.genesis = genesis_;
  local.role = wire::Role::kNode;
  local.node_index = static_cast<std::uint32_t>(index_);
  local.hosted = {governor_->node()};
  // v2 session resume: a restarted process announces its incarnation and
  // the chain head it recovered, so the driver re-admits it as the same
  // logical governor instead of a stranger.
  local.resume = incarnation_ > 0;
  local.incarnation = incarnation_;
  local.head_serial = head().serial;
  const wire::Welcome remote = handshake(conn, local, genesis_);
  if (remote.role != wire::Role::kDriver) {
    conn.send_error(wire::ProtocolError::kBadRole, "expected the driver");
    throw wire::WireError(wire::ProtocolError::kBadRole,
                          "cluster node: peer is not a driver");
  }

  bool done = false;
  while (!done) {
    wire::Frame frame;
    try {
      frame = conn.recv_frame();
    } catch (const NetError&) {
      return;  // driver went away: nothing left to serve
    }
    try {
      handle(conn, frame, done);
    } catch (const wire::WireError& e) {
      conn.send_error(e.code(), e.what());
      throw;
    }
  }
}

}  // namespace repchain::cluster
