#pragma once

// Observer side of the free-running cluster. In lockstep mode the driver
// owns the master event loop and every nondeterministic decision; here the
// governors own their clocks (FreeNodeHost, real CLOCK_MONOTONIC rounds,
// peer-to-peer TcpTransport mesh) and the driver degrades to a supervisor:
// it hosts the providers and collectors on its own PollLoop, injects the
// workload on the shared round cadence, executes the multi-victim crash
// schedule, and polls head/serial RPCs. Byte-identical replay is impossible
// off the simulator's total order, so the acceptance check becomes a
// statistical convergence contract:
//
//   1. every node's head serial is monotone across polls,
//   2. no two nodes ever report different hashes for the same serial
//      (common prefix — no fork),
//   3. after the configured rounds (plus bounded grace) all nodes report
//      an identical non-empty head,
//   4. the committed transaction total lands within a tolerance band of
//      the in-process simulation of the same config.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/driver.hpp"
#include "cluster/packets.hpp"
#include "cluster/sync_conn.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/collector.hpp"
#include "protocol/provider.hpp"
#include "runtime/atomic_broadcast.hpp"
#include "runtime/node_context.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/tcp_transport.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/system_model.hpp"

namespace repchain::cluster {

/// Derive the free-running variant of a golden scenario config. The lockstep
/// goldens themselves stay untouched: free mode copies the config and flips
/// what the mode requires — reliable delivery (no cross-process sequencer),
/// a live watchdog (stall detection is the degradation story), and no audit
/// reveals (they would need mid-round reveal RPCs on the self-driving
/// schedule). Both the observer and every node process run the same derived
/// config, so the config-genesis admission check still binds them.
[[nodiscard]] sim::ScenarioConfig free_run_config(sim::ScenarioConfig base);

/// Outcome of a free-running run, judged by the statistical contract.
struct FreeRunReport {
  bool converged = false;       // identical non-empty heads, all alive
  bool monotone_ok = true;      // no node's serial ever decreased
  bool prefix_ok = true;        // no conflicting hashes at one serial
  bool txs_in_tolerance = false;
  Round rounds_run = 0;
  Round converged_round = 0;
  std::uint64_t head_serial = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t reference_txs = 0;  // simulated committed total (same config)
  std::uint64_t tolerance_lo = 0;   // accepted band around the scaled reference
  std::uint64_t tolerance_hi = 0;
  std::string head_hash_hex;
  SimTime killed_at = 0;    // observer clock of the first SIGKILL
  SimTime rejoined_at = 0;  // observer clock of the last completed respawn
  std::uint32_t restart_attempts = 0;
  DegradationReport degradation;
  std::vector<FreeRunStats> node_stats;  // final poll per node (dead = zeroed)

  [[nodiscard]] bool ok() const {
    return converged && monotone_ok && prefix_ok && txs_in_tolerance;
  }
};

/// One free-running cluster run. `conns[i]` must be the already-handshaken
/// control connection to the process hosting governor i (spawned with
/// --free-run against the same derived config).
class FreeRunDriver {
 public:
  struct Options {
    /// Node i's peer mesh listens on peer_base + i; the observer dials all.
    std::uint16_t peer_base = 0;
    /// Extra full rounds (workload included) granted past the configured
    /// count for heads to agree after faults.
    Round grace_rounds = 6;
    /// Accepted committed-tx band, as fractions of the reference total
    /// scaled by rounds actually run.
    double tolerance_lo = 0.2;
    double tolerance_hi = 2.5;
    /// Delay between the kFreeStart announcement and round 1's t0: covers
    /// the announcement fan-out so every node starts near-aligned.
    SimDuration start_cushion = 300 * kMillisecond;
    /// Deadline for the peer mesh to reach every governor before starting.
    SimDuration mesh_deadline = 5 * kSecond;
  };

  FreeRunDriver(sim::ScenarioConfig config,
                std::vector<std::unique_ptr<SyncConn>> conns, Options opts);
  ~FreeRunDriver();

  FreeRunDriver(const FreeRunDriver&) = delete;
  FreeRunDriver& operator=(const FreeRunDriver&) = delete;

  /// Install the multi-victim crash schedule (validated with
  /// validate_crash_plans). Kill/respawn callbacks follow ClusterRun's:
  /// kill is SIGKILL-now, respawn spawns incarnation `i` and returns its
  /// admitted control connection.
  void set_supervision(std::vector<CrashPlan> plans, ClusterRun::KillFn kill,
                       ClusterRun::RespawnFn respawn,
                       std::uint32_t max_restart_attempts = 3,
                       std::uint64_t rpc_timeout_us = 10'000'000);

  /// Run the configured rounds (plus grace), enforce the statistical
  /// contract, shut the nodes down, and report.
  [[nodiscard]] FreeRunReport run();

 private:
  void start_nodes();
  void run_round();
  void inject_workload(Round round);
  void kill_due_victims();
  void respawn_victim(std::size_t victim);
  void end_round_checks();
  void mark_dead(std::size_t index);
  void note_liveness();
  [[nodiscard]] std::size_t live_count() const;
  /// Blocking control RPC; marks the node dead (returns nullopt) on error.
  [[nodiscard]] std::optional<Bytes> try_query(std::size_t index,
                                               ClusterPacket request,
                                               BytesView payload,
                                               ClusterPacket reply);
  void shutdown_nodes();

  sim::ScenarioConfig config_;
  Options opts_;
  Rng rng_;
  sim::SystemModel model_;
  runtime::PollLoop loop_;
  runtime::TcpTransport transport_;
  runtime::AtomicBroadcastGroup upload_group_;
  ledger::ValidationOracle oracle_;
  std::deque<runtime::NodeContext> provider_ctxs_;
  std::deque<protocol::Provider> providers_;
  std::deque<runtime::NodeContext> collector_ctxs_;
  std::deque<protocol::Collector> collectors_;

  std::vector<std::unique_ptr<SyncConn>> conns_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> incarnations_;
  std::vector<CrashPlan> plans_;
  ClusterRun::KillFn kill_;
  ClusterRun::RespawnFn respawn_;
  std::uint32_t max_restarts_ = 3;
  std::uint64_t rpc_timeout_us_ = 10'000'000;

  Round round_ = 0;
  SimTime round_start_ = 0;  // observer-clock t0 of the current round
  std::vector<std::uint64_t> last_serial_;       // monotonicity per node
  std::unordered_map<std::uint64_t, crypto::Hash256> seen_hashes_;  // by serial
  std::uint64_t last_max_serial_ = 0;  // driver-observed stall detection
  FreeRunReport report_;
};

}  // namespace repchain::cluster
