#pragma once

// Blocking framed connection for the cluster RPC plane. The driver/node
// dialogue is strictly request/reply in lockstep with the master event
// loop, so unlike the TcpTransport mesh there is nothing to multiplex:
// plain blocking reads and writes (looped over partial transfers) keep the
// control flow linear. Frames and the welcome admission check are the same
// wire-layer machinery the mesh uses.

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace repchain::cluster {

class SyncConn {
 public:
  /// Takes ownership of `fd` (a connected stream socket) and closes it on
  /// destruction.
  explicit SyncConn(int fd);
  ~SyncConn();

  SyncConn(const SyncConn&) = delete;
  SyncConn& operator=(const SyncConn&) = delete;

  /// Bound every subsequent blocking send/recv to `micros` microseconds
  /// (0 restores indefinite blocking). On expiry the call throws
  /// WireError(kPeerTimeout) instead of hanging on a peer that died without
  /// closing its socket — the supervised driver's liveness seam.
  void set_timeout(std::uint64_t micros);

  /// Write one frame, looping over partial writes until it is fully out.
  /// Throws NetError on a broken socket, WireError(kPeerTimeout) when a
  /// deadline is set and the peer stops draining.
  void send_frame(std::uint16_t type, BytesView payload);

  /// Block until the next complete frame arrives. Throws NetError on EOF or
  /// a socket error, WireError on a structurally bad stream,
  /// WireError(kPeerTimeout) when a deadline is set and nothing arrives.
  [[nodiscard]] wire::Frame recv_frame();

  /// Best-effort kError notification before dropping the connection; never
  /// throws (the caller is already unwinding).
  void send_error(wire::ProtocolError code, const std::string& detail) noexcept;

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  wire::FrameReader reader_;
  std::vector<wire::Frame> pending_;
  std::size_t next_ = 0;  // cursor into pending_
};

/// Mutual admission over a fresh connection: send `local`, read the peer's
/// welcome, run check_welcome against `genesis`. Returns the peer's welcome.
/// On a failed check the peer is notified with a kError packet and the
/// WireError is rethrown.
[[nodiscard]] wire::Welcome handshake(SyncConn& conn, const wire::Welcome& local,
                                      const crypto::Hash256& genesis);

}  // namespace repchain::cluster
