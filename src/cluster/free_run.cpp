#include "cluster/free_run.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/errors.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec_codec.hpp"

namespace repchain::cluster {
namespace {

sim::ScenarioConfig observer_normalized(sim::ScenarioConfig config) {
  sim::normalize_config(config);
  sim::require_cluster_runnable(config);
  if (!config.reliable_delivery) {
    throw ConfigError(
        "free-run observer: reliable_delivery is required (run the config "
        "through free_run_config first)");
  }
  return config;
}

runtime::TcpTransport::Options observer_mesh_options(
    const sim::ScenarioConfig& config) {
  runtime::TcpTransport::Options opts;
  opts.max_delay = config.latency.max_delay;
  opts.auto_reconnect = true;
  opts.reconnect_base = 25 * kMillisecond;
  opts.reconnect_max = 250 * kMillisecond;
  return opts;
}

}  // namespace

sim::ScenarioConfig free_run_config(sim::ScenarioConfig base) {
  base.reliable_delivery = true;
  if (base.governor.watchdog_rounds == 0) base.governor.watchdog_rounds = 2;
  // Audits would need mid-round reveal RPCs riding the self-driving
  // schedule; cross-shard traffic is meaningless with one committee.
  base.audit_probability = 0.0;
  base.cross_shard_probability = 0.0;
  // The protocol's phase windows assume every message lands within Delta.
  // On real sockets the wire is microseconds, but a single-threaded node
  // verifying a large block holds its loop for tens of milliseconds, and a
  // VRF announcement delayed past a peer's 2-Delta election deadline splits
  // the leader election — a fork. Widen Delta so real scheduling satisfies
  // the synchrony bound with margin; the reference simulation runs the same
  // derived config, so the convergence contract stays aligned.
  if (base.latency.max_delay < 50 * kMillisecond) {
    base.latency.max_delay = 50 * kMillisecond;
  }
  return base;
}

FreeRunDriver::FreeRunDriver(sim::ScenarioConfig config,
                             std::vector<std::unique_ptr<SyncConn>> conns,
                             Options opts)
    : config_(observer_normalized(std::move(config))),
      opts_(opts),
      rng_(config_.seed),
      model_(sim::SystemModel::build(config_, Rng(config_.seed))),
      transport_(loop_, sim::config_genesis(config_),
                 observer_mesh_options(config_)),
      upload_group_(transport_, model_.directory.governor_nodes()),
      oracle_(config_.validation_cost),
      conns_(std::move(conns)) {
  if (conns_.size() != config_.topology.governors) {
    throw ConfigError("free-run observer: " + std::to_string(conns_.size()) +
                      " control connections for " +
                      std::to_string(config_.topology.governors) +
                      " governors");
  }
  alive_.assign(conns_.size(), true);
  incarnations_.assign(conns_.size(), 0);
  last_serial_.assign(conns_.size(), 0);
  report_.degradation.min_live = conns_.size();
  for (auto& conn : conns_) conn->set_timeout(rpc_timeout_us_);

  // Forward every ground-truth registration to the node oracles; the
  // control FIFO puts a truth ahead of any traffic that could validate it.
  oracle_.set_register_hook([this](const ledger::TxId& id, bool valid) {
    const Bytes payload = encode_register_tx({id, valid});
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!alive_[i] || conns_[i] == nullptr) continue;
      try {
        conns_[i]->send_frame(
            static_cast<std::uint16_t>(ClusterPacket::kRegisterTx), payload);
      } catch (const std::exception&) {
        mark_dead(i);
      }
    }
  });

  // Providers and collectors live here, on the observer's loop, built with
  // the same identities and rng salts as Wiring builds them — the traffic
  // pattern matches the simulated reference run statistically.
  const auto& topo = config_.topology;
  for (std::size_t i = 0; i < topo.providers; ++i) {
    const ProviderId id(static_cast<std::uint32_t>(i));
    provider_ctxs_.emplace_back(model_.directory.node_of(id), transport_,
                                rng_.derive(3000 + i));
    providers_.emplace_back(id, provider_ctxs_.back(),
                            std::move(model_.provider_keys[i]), *model_.im,
                            oracle_, model_.directory, config_.providers_active,
                            config_.reliable_delivery);
    transport_.host(model_.directory.node_of(id),
                    [this, i](const runtime::Message& m) {
                      providers_[i].on_message(m);
                    });
  }
  for (std::size_t i = 0; i < topo.collectors; ++i) {
    const CollectorId id(static_cast<std::uint32_t>(i));
    const protocol::CollectorBehavior behavior =
        config_.behaviors.empty()
            ? protocol::CollectorBehavior::honest()
            : config_.behaviors[i % config_.behaviors.size()];
    collector_ctxs_.emplace_back(model_.directory.node_of(id), transport_,
                                 rng_.derive(1000 + i));
    collectors_.emplace_back(id, collector_ctxs_.back(),
                             std::move(model_.collector_keys[i]), *model_.im,
                             oracle_, model_.directory, upload_group_, behavior,
                             config_.reliable_delivery);
    transport_.host(model_.directory.node_of(id),
                    [this, i](const runtime::Message& m) {
                      collectors_[i].on_message(m);
                    });
  }
  // A healed node link refreshes every local channel aimed at it.
  transport_.set_reconnect_hook([this](NodeId peer) {
    for (auto& p : providers_) p.on_peer_reconnected(peer);
    for (auto& c : collectors_) c.on_peer_reconnected(peer);
  });
  for (std::size_t i = 0; i < topo.governors; ++i) {
    transport_.connect(static_cast<std::uint16_t>(opts_.peer_base + i));
  }
}

FreeRunDriver::~FreeRunDriver() = default;

void FreeRunDriver::set_supervision(std::vector<CrashPlan> plans,
                                    ClusterRun::KillFn kill,
                                    ClusterRun::RespawnFn respawn,
                                    std::uint32_t max_restart_attempts,
                                    std::uint64_t rpc_timeout_us) {
  plans_ = std::move(plans);
  kill_ = std::move(kill);
  respawn_ = std::move(respawn);
  max_restarts_ = max_restart_attempts;
  rpc_timeout_us_ = rpc_timeout_us;
  for (auto& conn : conns_) {
    if (conn != nullptr) conn->set_timeout(rpc_timeout_us_);
  }
}

std::size_t FreeRunDriver::live_count() const {
  std::size_t live = 0;
  for (const bool a : alive_) {
    if (a) ++live;
  }
  return live;
}

void FreeRunDriver::note_liveness() {
  DegradationReport& d = report_.degradation;
  const std::size_t live = live_count();
  d.min_live = std::min(d.min_live, live);
  if (live < election_quorum(conns_.size())) d.quorum_lost = true;
}

void FreeRunDriver::mark_dead(std::size_t index) {
  if (!alive_[index]) return;
  alive_[index] = false;
  conns_[index].reset();
  note_liveness();
}

std::optional<Bytes> FreeRunDriver::try_query(std::size_t index,
                                              ClusterPacket request,
                                              BytesView payload,
                                              ClusterPacket reply) {
  if (!alive_[index] || conns_[index] == nullptr) return std::nullopt;
  try {
    conns_[index]->send_frame(static_cast<std::uint16_t>(request), payload);
    const wire::Frame frame = conns_[index]->recv_frame();
    if (frame.type != static_cast<std::uint16_t>(reply)) {
      mark_dead(index);
      return std::nullopt;
    }
    return frame.payload;
  } catch (const std::exception&) {
    mark_dead(index);
    return std::nullopt;
  }
}

void FreeRunDriver::start_nodes() {
  // The observer mesh must reach every governor before round 1: a provider
  // whose first submission races the welcome exchange only costs latency,
  // but starting the schedule blind would skew the whole first round.
  const std::vector<NodeId>& governors = model_.directory.governor_nodes();
  const bool reached =
      loop_.run_until(loop_.now() + opts_.mesh_deadline, [&] {
        return std::all_of(governors.begin(), governors.end(),
                           [&](NodeId g) { return transport_.reaches(g); });
      });
  if (!reached) {
    throw NetError("free-run: peer mesh did not reach every governor node");
  }
  round_start_ = loop_.now() + opts_.start_cushion;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    FreeStart s;
    s.first_round = 1;
    // Re-derived per node: each one measures the delay from its own receive
    // instant, so the fan-out time of earlier announcements cancels out.
    s.start_delay = round_start_ - loop_.now();
    conns_[i]->send_frame(static_cast<std::uint16_t>(ClusterPacket::kFreeStart),
                          encode_free_start(s));
    const wire::Frame reply = conns_[i]->recv_frame();
    if (reply.type != static_cast<std::uint16_t>(ClusterPacket::kDone)) {
      throw NetError("free-run: node " + std::to_string(i) +
                     " rejected the start announcement");
    }
  }
}

void FreeRunDriver::inject_workload(Round round) {
  // Same derivation and draw order as Workload::inject, so the traffic the
  // reference simulation saw is reproduced tx for tx; only the delivery
  // fabric differs. Draws happen up front (provider-major), submissions are
  // spread at the same 1 ms spacing as loop timers.
  Rng workload = rng_.derive(10'000 + round);
  struct Draw {
    std::size_t provider;
    Bytes payload;
    bool valid;
  };
  std::vector<Draw> draws;
  draws.reserve(providers_.size() * config_.txs_per_provider_per_round);
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    for (std::size_t t = 0; t < config_.txs_per_provider_per_round; ++t) {
      const bool valid = workload.bernoulli(config_.p_valid);
      draws.push_back({i, workload.bytes(24), valid});
    }
  }
  SimTime at = loop_.now();
  for (Draw& d : draws) {
    loop_.schedule_at(at, [this, draw = std::move(d)]() mutable {
      (void)providers_[draw.provider].submit(std::move(draw.payload),
                                             draw.valid);
    });
    at += 1 * kMillisecond;
  }
}

void FreeRunDriver::kill_due_victims() {
  for (const CrashPlan& plan : plans_) {
    if (round_ != plan.kill_round || !alive_[plan.victim]) continue;
    // SIGKILL mid-round: the victim's in-memory state (and its peer mesh
    // endpoint) vanish; survivors' channels retransmit into the gap.
    kill_(plan.victim);
    mark_dead(plan.victim);
    if (report_.killed_at == 0) report_.killed_at = loop_.now();
  }
}

void FreeRunDriver::respawn_victim(std::size_t victim) {
  const std::uint32_t incarnation = ++incarnations_[victim];
  std::unique_ptr<SyncConn> conn;
  for (std::uint32_t a = 0; a < max_restarts_ && conn == nullptr; ++a) {
    ++report_.restart_attempts;
    try {
      conn = respawn_(victim, incarnation);
    } catch (const std::exception&) {
      conn = nullptr;
    }
  }
  if (conn == nullptr) return;  // stays dead; the convergence check fails
  conn->set_timeout(rpc_timeout_us_);
  conns_[victim] = std::move(conn);
  alive_[victim] = true;
  // Fresh process, empty oracle replica: replay the ground truth before the
  // catch-up sync can validate anything.
  for (const auto& [id, valid] : oracle_.truth()) {
    const Bytes payload = encode_register_tx({id, valid});
    try {
      conns_[victim]->send_frame(
          static_cast<std::uint16_t>(ClusterPacket::kRegisterTx), payload);
    } catch (const std::exception&) {
      mark_dead(victim);
      return;
    }
  }
  // Point the node at the next boundary it can realistically make; it runs
  // its chain catch-up in the meantime and rejoins the election there.
  FreeStart s;
  SimTime start = round_start_;
  Round first = round_;
  const SimTime earliest = loop_.now() + 50 * kMillisecond;
  while (start < earliest) {
    start += model_.timing.round_span;
    ++first;
  }
  s.first_round = first;
  s.start_delay = start - loop_.now();
  try {
    conns_[victim]->send_frame(
        static_cast<std::uint16_t>(ClusterPacket::kFreeStart),
        encode_free_start(s));
    const wire::Frame reply = conns_[victim]->recv_frame();
    if (reply.type != static_cast<std::uint16_t>(ClusterPacket::kDone)) {
      mark_dead(victim);
      return;
    }
  } catch (const std::exception&) {
    mark_dead(victim);
    return;
  }
  report_.rejoined_at = loop_.now();
  report_.degradation.last_restart_round = round_;
  note_liveness();
}

void FreeRunDriver::end_round_checks() {
  std::uint64_t max_serial = 0;
  std::uint64_t min_serial = std::numeric_limits<std::uint64_t>::max();
  std::optional<HeadInfo> ref;
  bool all_same = true;
  report_.node_stats.assign(conns_.size(), FreeRunStats{});
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (!alive_[i]) {
      all_same = false;
      continue;
    }
    const auto bytes =
        try_query(i, ClusterPacket::kQueryFreeStats, {}, ClusterPacket::kFreeStats);
    if (!bytes) {
      all_same = false;
      continue;
    }
    const FreeRunStats s = decode_free_stats(*bytes);
    report_.node_stats[i] = s;
    if (s.head.serial < last_serial_[i]) report_.monotone_ok = false;
    last_serial_[i] = s.head.serial;
    max_serial = std::max(max_serial, s.head.serial);
    min_serial = std::min(min_serial, s.head.serial);
    if (!ref) {
      ref = s.head;
    } else if (s.head.serial != ref->serial || s.head.hash != ref->hash ||
               s.head.committed_txs != ref->committed_txs) {
      all_same = false;
    }
  }
  // Common-prefix probe at the lowest live head: every node already holding
  // that serial must report the same block hash, this round and forever.
  if (min_serial != std::numeric_limits<std::uint64_t>::max() &&
      min_serial > 0) {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!alive_[i]) continue;
      const auto bytes = try_query(i, ClusterPacket::kQueryBlockAt,
                                   encode_block_at(min_serial),
                                   ClusterPacket::kBlockHash);
      if (!bytes) continue;
      const BlockHashInfo info = decode_block_hash(*bytes);
      if (!info.found) continue;
      const auto [it, inserted] = seen_hashes_.try_emplace(min_serial, info.hash);
      if (!inserted && it->second != info.hash) report_.prefix_ok = false;
    }
  }
  // Observer-side stall detection: a full round with no serial advance
  // anywhere spans the degradation window even if node counters were lost
  // with a crash.
  if (max_serial <= last_max_serial_) {
    DegradationReport& d = report_.degradation;
    if (d.stall_first == 0) d.stall_first = loop_.now();
    d.stall_last = loop_.now();
  }
  last_max_serial_ = std::max(last_max_serial_, max_serial);

  if (!report_.converged && all_same && ref && ref->serial > 0 &&
      live_count() == conns_.size() && round_ >= config_.rounds) {
    report_.converged = true;
    report_.converged_round = round_;
    report_.head_serial = ref->serial;
    report_.committed_txs = ref->committed_txs;
    report_.head_hash_hex = to_hex(view(ref->hash));
  }
}

void FreeRunDriver::run_round() {
  ++round_;
  const SimTime t0 = round_start_;
  const protocol::RoundTiming& timing = model_.timing;
  for (auto& p : providers_) p.arm_round(t0, timing);
  // Respawns due at this boundary happen before the round's traffic: the
  // returning governor syncs during the round and rejoins at the next
  // aligned boundary.
  for (const CrashPlan& plan : plans_) {
    if (round_ == plan.restart_round && !alive_[plan.victim]) {
      respawn_victim(plan.victim);
    }
  }
  loop_.run_until(t0 + timing.workload_offset);
  kill_due_victims();
  inject_workload(round_);
  loop_.run_until(t0 + timing.round_span);
  end_round_checks();
  round_start_ = t0 + timing.round_span;
}

void FreeRunDriver::shutdown_nodes() {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (!alive_[i] || conns_[i] == nullptr) continue;
    try {
      conns_[i]->send_frame(static_cast<std::uint16_t>(ClusterPacket::kShutdown),
                            Bytes{});
      (void)conns_[i]->recv_frame();
    } catch (const std::exception&) {
    }
    conns_[i].reset();
  }
}

FreeRunReport FreeRunDriver::run() {
  // Reference side of the tolerance check: the identical config, simulated
  // in-process on the deterministic event loop.
  {
    const sim::RunResult ref = sim::simulate_run(config_);
    report_.reference_txs = ref.summary.chain_valid_txs +
                            ref.summary.chain_unchecked_txs +
                            ref.summary.chain_argued_txs;
  }
  start_nodes();
  const Round configured = static_cast<Round>(config_.rounds);
  while (round_ < configured + opts_.grace_rounds && !report_.converged) {
    run_round();
  }
  report_.rounds_run = round_;
  std::uint64_t stalled = 0;
  for (const FreeRunStats& s : report_.node_stats) stalled += s.stalled_events;
  report_.degradation.stalled_events = stalled;
  if (report_.converged && report_.degradation.last_restart_round > 0) {
    report_.degradation.rounds_to_recover =
        report_.converged_round - report_.degradation.last_restart_round;
  }
  // The committed-tx contract scales the reference to the rounds actually
  // run: grace rounds keep injecting workload, so a recovered cluster that
  // needed them commits proportionally more.
  const double scale =
      config_.rounds > 0
          ? static_cast<double>(report_.rounds_run) / config_.rounds
          : 1.0;
  const double expected = static_cast<double>(report_.reference_txs) * scale;
  report_.tolerance_lo =
      static_cast<std::uint64_t>(expected * opts_.tolerance_lo);
  report_.tolerance_hi =
      static_cast<std::uint64_t>(expected * opts_.tolerance_hi) + 1;
  report_.txs_in_tolerance = report_.converged &&
                             report_.committed_txs >= report_.tolerance_lo &&
                             report_.committed_txs <= report_.tolerance_hi;
  shutdown_nodes();
  return report_;
}

}  // namespace repchain::cluster
