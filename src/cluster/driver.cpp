#include "cluster/driver.hpp"

#include <deque>
#include <string>
#include <utility>

#include "common/errors.hpp"
#include "ledger/chain.hpp"
#include "sim/harness/spec_codec.hpp"
#include "sim/round_observer.hpp"

namespace repchain::cluster {

wire::Welcome driver_welcome(const crypto::Hash256& genesis) {
  wire::Welcome w;
  w.genesis = genesis;
  w.role = wire::Role::kDriver;
  return w;
}

ClusterRun::ClusterRun(sim::ScenarioConfig config,
                       std::vector<std::unique_ptr<SyncConn>> conns)
    : config_(std::move(config)), rng_(config_.seed), conns_(std::move(conns)) {
  sim::normalize_config(config_);
  sim::require_cluster_runnable(config_);
  if (conns_.size() != config_.topology.governors) {
    throw ConfigError("cluster driver: " + std::to_string(conns_.size()) +
                      " node connections for " +
                      std::to_string(config_.topology.governors) + " governors");
  }

  // Mirror the Scenario constructor sequence on the driver-side objects.
  wiring_ = std::make_unique<sim::Wiring>(config_, rng_, queue_,
                                          observation_.observer(), this);
  observation_.observer().watch(wiring_->directory_.node_of(GovernorId(0)));
  workload_ = std::make_unique<sim::Workload>(config_, rng_, queue_, *wiring_);
  observation_.init(config_.topology.collectors, config_.topology.governors);

  // Forward every ground-truth registration to the replica oracles. The
  // frames are fire-and-forget; the per-connection FIFO puts them ahead of
  // any later delivery that could validate the transaction.
  wiring_->oracle_->set_register_hook([this](const ledger::TxId& id, bool valid) {
    const Bytes payload = encode_register_tx({id, valid});
    for (auto& conn : conns_) {
      conn->send_frame(static_cast<std::uint16_t>(ClusterPacket::kRegisterTx),
                       payload);
    }
  });
}

ClusterRun::~ClusterRun() = default;

std::vector<Effect> ClusterRun::rpc_done(std::size_t index, ClusterPacket type,
                                         BytesView payload) {
  SyncConn& conn = *conns_[index];
  conn.send_frame(static_cast<std::uint16_t>(type), payload);
  const wire::Frame reply = conn.recv_frame();
  if (reply.type == static_cast<std::uint16_t>(wire::PacketType::kError)) {
    const wire::ErrorPacket err = wire::decode_error(reply.payload);
    throw wire::WireError(err.code, "node " + std::to_string(index) +
                                        " failed: " + err.detail);
  }
  if (reply.type != static_cast<std::uint16_t>(ClusterPacket::kDone)) {
    throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                          "node " + std::to_string(index) +
                              ": expected kDone, got type " +
                              std::to_string(reply.type));
  }
  return decode_effects(reply.payload);
}

Bytes ClusterRun::rpc_query(std::size_t index, ClusterPacket request,
                            ClusterPacket reply_type) {
  SyncConn& conn = *conns_[index];
  conn.send_frame(static_cast<std::uint16_t>(request), BytesView{});
  const wire::Frame reply = conn.recv_frame();
  if (reply.type == static_cast<std::uint16_t>(wire::PacketType::kError)) {
    const wire::ErrorPacket err = wire::decode_error(reply.payload);
    throw wire::WireError(err.code, "node " + std::to_string(index) +
                                        " failed: " + err.detail);
  }
  if (reply.type != static_cast<std::uint16_t>(reply_type)) {
    throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                          "node " + std::to_string(index) +
                              ": unexpected reply type " +
                              std::to_string(reply.type));
  }
  return reply.payload;
}

GovernorState ClusterRun::query_state(std::size_t index) {
  return decode_state(
      rpc_query(index, ClusterPacket::kQueryState, ClusterPacket::kState));
}

void ClusterRun::apply_effects(std::size_t index,
                               const std::vector<Effect>& effects) {
  for (const Effect& e : effects) {
    switch (e.kind) {
      case Effect::Kind::kSend:
        wiring_->transport_->send(e.from, e.to.front(), e.msg_kind, e.payload);
        break;
      case Effect::Kind::kMulticast:
        wiring_->transport_->multicast(e.from, e.to, e.msg_kind, e.payload);
        break;
      case Effect::Kind::kBroadcast:
        wiring_->governor_group_->broadcast(e.from, e.msg_kind, e.payload);
        break;
      case Effect::Kind::kArmTimer:
        queue_.schedule_at(e.at, [this, index, id = e.timer_id] {
          fire_timer(index, id);
        });
        break;
      case Effect::Kind::kTrace:
        observation_.observer().on_event(e.trace);
        break;
    }
  }
}

void ClusterRun::fire_timer(std::size_t index, std::uint64_t timer_id) {
  apply_effects(index, rpc_done(index, ClusterPacket::kFireTimer,
                                encode_fire_timer(queue_.now(), timer_id)));
}

void ClusterRun::deliver(std::size_t index, const runtime::Message& msg) {
  apply_effects(index, rpc_done(index, ClusterPacket::kDeliver,
                                encode_deliver(queue_.now(), msg)));
}

sim::CounterProbe ClusterRun::probe_counters() {
  sim::CounterProbe p;
  p.validations = wiring_->oracle_->validations();
  p.messages = wiring_->net_->stats().messages_sent;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const GovernorState s = query_state(i);
    p.validations += s.validations;
    if (i == 0) p.ref_expected_loss = s.expected_loss;  // reference replica
    p.argues += s.argues_accepted;
  }
  return p;
}

void ClusterRun::sample_rewards() {
  sim::RewardSample sample;
  const GovernorState ref = query_state(0);
  sample.leader = ref.leader;
  if (sample.leader) {
    sample.leader_live = true;  // cluster configs forbid crashes
    const std::size_t li = sample.leader->value();
    const GovernorState ls = li == 0 ? ref : query_state(li);
    sample.chain_empty = ls.chain_empty;
    if (!ls.chain_empty) {
      sample.head_valid_txs = ls.head_valid_txs;
      sample.shares = decode_shares(
          rpc_query(li, ClusterPacket::kQueryShares, ClusterPacket::kShares));
    }
  }
  observation_.sample_rewards(config_, sample);
}

void ClusterRun::run_audit(Round round) {
  // Same derive salt and draw order as Workload::run_audit: one shared
  // stream consumed in governor order.
  Rng audit = rng_.derive(20'000 + round);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const std::vector<ledger::TxId> ids = decode_txid_list(rpc_query(
        i, ClusterPacket::kQueryUnrevealed, ClusterPacket::kUnrevealed));
    for (const ledger::TxId& id : ids) {
      if (audit.bernoulli(config_.audit_probability)) {
        apply_effects(i, rpc_done(i, ClusterPacket::kReveal,
                                  encode_reveal(queue_.now(), id)));
      }
    }
  }
}

void ClusterRun::run_round() {
  ++round_;
  const SimTime t0 = queue_.now();
  observation_.begin_round(round_, probe_counters());

  // Arm phase timers in node order — governor i's arms land on the master
  // loop before governor i+1's, the order a local loop would produce.
  const protocol::RoundTiming& timing = wiring_->timing_;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    apply_effects(i, rpc_done(i, ClusterPacket::kArmRound,
                              encode_arm_round({queue_.now(), round_, t0})));
  }
  for (auto& p : wiring_->providers_) p.arm_round(t0, timing);
  queue_.schedule_at(t0 + timing.rewards_offset, [this] { sample_rewards(); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing.audit_offset, [this] { run_audit(round_); });
  }

  queue_.run_until(t0 + timing.workload_offset);
  workload_->inject(round_);
  queue_.run_until(t0 + timing.round_span);

  observation_.end_round(probe_counters());
}

sim::RunResult ClusterRun::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();

  std::uint64_t txs_submitted = 0;
  for (const auto& p : wiring_->providers_) txs_submitted += p.submitted();

  // Rebuild each governor's chain from its snapshot; append() re-validates
  // serials and hash links, so a node cannot ship a corrupt chain unnoticed.
  std::deque<ledger::ChainStore> chains;
  std::vector<sim::GovernorSnapshot> snapshots;
  std::uint64_t validations = wiring_->oracle_->validations();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const GovernorSnapshotData snap = decode_snapshot(
        rpc_query(i, ClusterPacket::kSnapshot, ClusterPacket::kSnapshotData));
    chains.emplace_back();
    for (const ledger::Block& b : snap.blocks) chains.back().append(b);
    snapshots.push_back(sim::GovernorSnapshot{&chains.back(), snap.expected_loss,
                                              snap.realized_loss, snap.mistakes});
    validations += query_state(i).validations;
  }

  sim::RunResult result;
  result.summary = observation_.summarize(txs_submitted, snapshots, validations,
                                          wiring_->net_->stats());
  result.history = observation_.history();
  result.rewards = observation_.rewards();
  result.leader_counts = observation_.leader_counts();

  for (std::size_t i = 0; i < conns_.size(); ++i) {
    (void)rpc_done(i, ClusterPacket::kShutdown, BytesView{});
  }
  return result;
}

}  // namespace repchain::cluster
