#include "cluster/driver.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "ledger/chain.hpp"
#include "sim/harness/spec_codec.hpp"
#include "sim/round_observer.hpp"

namespace repchain::cluster {

wire::Welcome driver_welcome(const crypto::Hash256& genesis) {
  wire::Welcome w;
  w.genesis = genesis;
  w.role = wire::Role::kDriver;
  return w;
}

bool parse_crash_plan(const std::string& spec, CrashPlan& plan) {
  const std::size_t at = spec.find('@');
  const std::size_t colon = spec.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos || at == 0 ||
      colon <= at + 1 || colon + 1 >= spec.size()) {
    return false;
  }
  try {
    std::size_t used = 0;
    plan.victim = std::stoul(spec.substr(0, at), &used);
    if (used != at) return false;
    const std::string kill = spec.substr(at + 1, colon - at - 1);
    plan.kill_round = std::stoul(kill, &used);
    if (used != kill.size()) return false;
    const std::string restart = spec.substr(colon + 1);
    plan.restart_round = std::stoul(restart, &used);
    if (used != restart.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return plan.kill_round > 0 && plan.restart_round > plan.kill_round;
}

void validate_crash_plans(const std::vector<CrashPlan>& plans,
                          std::size_t governors, Round rounds) {
  std::vector<bool> seen(governors, false);
  for (const CrashPlan& p : plans) {
    if (p.victim >= governors) {
      throw ConfigError("crash plan: victim " + std::to_string(p.victim) +
                        " out of range (" + std::to_string(governors) +
                        " governors)");
    }
    if (seen[p.victim]) {
      throw ConfigError("crash plan: victim " + std::to_string(p.victim) +
                        " scheduled twice");
    }
    seen[p.victim] = true;
    if (p.kill_round == 0 || p.kill_round > rounds) {
      throw ConfigError("crash plan: kill round " +
                        std::to_string(p.kill_round) + " outside [1, " +
                        std::to_string(rounds) + "]");
    }
    if (p.restart_round <= p.kill_round) {
      throw ConfigError("crash plan: restart round " +
                        std::to_string(p.restart_round) +
                        " not after kill round " +
                        std::to_string(p.kill_round));
    }
  }
}

std::size_t min_live_governors(const std::vector<CrashPlan>& plans,
                               std::size_t governors, Round rounds) {
  std::size_t min_live = governors;
  for (Round r = 1; r <= rounds; ++r) {
    std::size_t dead = 0;
    for (const CrashPlan& p : plans) {
      if (p.kill_round <= r && r < p.restart_round) ++dead;
    }
    min_live = std::min(min_live, governors - dead);
  }
  return min_live;
}

ClusterRun::ClusterRun(sim::ScenarioConfig config,
                       std::vector<std::unique_ptr<SyncConn>> conns)
    : config_(std::move(config)), rng_(config_.seed), conns_(std::move(conns)) {
  sim::normalize_config(config_);
  sim::require_cluster_runnable(config_);
  if (conns_.size() != config_.topology.governors) {
    throw ConfigError("cluster driver: " + std::to_string(conns_.size()) +
                      " node connections for " +
                      std::to_string(config_.topology.governors) + " governors");
  }
  alive_.assign(conns_.size(), true);
  generation_.assign(conns_.size(), 0);
  incarnations_.assign(conns_.size(), 0);

  // Mirror the Scenario constructor sequence on the driver-side objects.
  wiring_ = std::make_unique<sim::Wiring>(config_, rng_, queue_,
                                          observation_.observer(), this);
  observation_.observer().watch(wiring_->directory_.node_of(GovernorId(0)));
  workload_ = std::make_unique<sim::Workload>(config_, rng_, queue_, *wiring_);
  observation_.init(config_.topology.collectors, config_.topology.governors);

  // Forward every ground-truth registration to the replica oracles. The
  // frames are fire-and-forget; the per-connection FIFO puts them ahead of
  // any later delivery that could validate the transaction.
  wiring_->oracle_->set_register_hook([this](const ledger::TxId& id, bool valid) {
    const Bytes payload = encode_register_tx({id, valid});
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!alive_[i] || conns_[i] == nullptr) continue;
      try {
        conns_[i]->send_frame(
            static_cast<std::uint16_t>(ClusterPacket::kRegisterTx), payload);
      } catch (const std::exception&) {
        if (!converge_) throw;
        mark_dead(i);
      }
    }
  });
}

void ClusterRun::set_supervision(std::vector<CrashPlan> plans, KillFn kill,
                                 RespawnFn respawn,
                                 std::uint32_t max_restart_attempts,
                                 std::uint64_t rpc_timeout_us) {
  converge_ = true;
  plans_ = std::move(plans);
  kill_ = std::move(kill);
  respawn_ = std::move(respawn);
  max_restarts_ = max_restart_attempts;
  rpc_timeout_us_ = rpc_timeout_us;
  report_.degradation.min_live = conns_.size();
  // A node that dies mid-RPC without closing its socket must not wedge the
  // driver: bound every blocking call (SyncConn throws kPeerTimeout).
  for (auto& conn : conns_) {
    if (conn != nullptr) conn->set_timeout(rpc_timeout_us_);
  }
}

void ClusterRun::set_supervision(CrashPlan plan, KillFn kill, RespawnFn respawn,
                                 std::uint32_t max_restart_attempts,
                                 std::uint64_t rpc_timeout_us) {
  set_supervision(std::vector<CrashPlan>{plan}, std::move(kill),
                  std::move(respawn), max_restart_attempts, rpc_timeout_us);
}

void ClusterRun::mark_dead(std::size_t index) {
  if (!alive_[index]) return;
  alive_[index] = false;
  ++generation_[index];
  conns_[index].reset();
  note_liveness();
}

void ClusterRun::note_liveness() {
  if (!converge_) return;
  std::size_t live = 0;
  for (const bool a : alive_)
    if (a) ++live;
  DegradationReport& d = report_.degradation;
  d.min_live = std::min(d.min_live, live);
  if (live < election_quorum(alive_.size())) d.quorum_lost = true;
}

std::size_t ClusterRun::first_alive() const {
  for (std::size_t i = 0; i < alive_.size(); ++i)
    if (alive_[i]) return i;
  return alive_.size();
}

ClusterRun::~ClusterRun() = default;

std::vector<Effect> ClusterRun::rpc_done(std::size_t index, ClusterPacket type,
                                         BytesView payload) {
  if (converge_ && (!alive_[index] || conns_[index] == nullptr)) return {};
  try {
    SyncConn& conn = *conns_[index];
    conn.send_frame(static_cast<std::uint16_t>(type), payload);
    const wire::Frame reply = conn.recv_frame();
    if (reply.type == static_cast<std::uint16_t>(wire::PacketType::kError)) {
      const wire::ErrorPacket err = wire::decode_error(reply.payload);
      throw wire::WireError(err.code, "node " + std::to_string(index) +
                                          " failed: " + err.detail);
    }
    if (reply.type != static_cast<std::uint16_t>(ClusterPacket::kDone)) {
      throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                            "node " + std::to_string(index) +
                                ": expected kDone, got type " +
                                std::to_string(reply.type));
    }
    return decode_effects(reply.payload);
  } catch (const std::exception&) {
    // Convergence mode treats a broken/hung/expelled node as a crash: mark
    // it dead and let the round continue over the survivors.
    if (!converge_) throw;
    mark_dead(index);
    return {};
  }
}

Bytes ClusterRun::rpc_query(std::size_t index, ClusterPacket request,
                            ClusterPacket reply_type) {
  SyncConn& conn = *conns_[index];
  conn.send_frame(static_cast<std::uint16_t>(request), BytesView{});
  const wire::Frame reply = conn.recv_frame();
  if (reply.type == static_cast<std::uint16_t>(wire::PacketType::kError)) {
    const wire::ErrorPacket err = wire::decode_error(reply.payload);
    throw wire::WireError(err.code, "node " + std::to_string(index) +
                                        " failed: " + err.detail);
  }
  if (reply.type != static_cast<std::uint16_t>(reply_type)) {
    throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                          "node " + std::to_string(index) +
                              ": unexpected reply type " +
                              std::to_string(reply.type));
  }
  return reply.payload;
}

GovernorState ClusterRun::query_state(std::size_t index) {
  return decode_state(
      rpc_query(index, ClusterPacket::kQueryState, ClusterPacket::kState));
}

std::optional<Bytes> ClusterRun::try_query(std::size_t index,
                                           ClusterPacket request,
                                           ClusterPacket reply) {
  if (converge_ && (!alive_[index] || conns_[index] == nullptr))
    return std::nullopt;
  try {
    return rpc_query(index, request, reply);
  } catch (const std::exception&) {
    if (!converge_) throw;
    mark_dead(index);
    return std::nullopt;
  }
}

void ClusterRun::apply_effects(std::size_t index,
                               const std::vector<Effect>& effects) {
  for (const Effect& e : effects) {
    switch (e.kind) {
      case Effect::Kind::kSend:
        wiring_->transport_->send(e.from, e.to.front(), e.msg_kind, e.payload);
        break;
      case Effect::Kind::kMulticast:
        wiring_->transport_->multicast(e.from, e.to, e.msg_kind, e.payload);
        break;
      case Effect::Kind::kBroadcast:
        wiring_->governor_group_->broadcast(e.from, e.msg_kind, e.payload);
        break;
      case Effect::Kind::kArmTimer:
        // The generation captured at arm time guards against stale fires: a
        // timer armed by a killed incarnation must not be fired into its
        // successor (whose timer-id space restarted from scratch).
        queue_.schedule_at(
            e.at, [this, index, id = e.timer_id, gen = generation_[index]] {
              if (converge_ && (!alive_[index] || generation_[index] != gen))
                return;
              fire_timer(index, id);
            });
        break;
      case Effect::Kind::kTrace:
        // Degradation accounting: each kRoundStalled is one watchdog trip
        // on a live replica; the first/last timestamps bound the stall span.
        if (converge_ && e.trace.kind == runtime::TraceKind::kRoundStalled) {
          DegradationReport& d = report_.degradation;
          ++d.stalled_events;
          if (d.stall_first == 0) d.stall_first = e.trace.at;
          d.stall_last = e.trace.at;
        }
        observation_.observer().on_event(e.trace);
        break;
    }
  }
}

void ClusterRun::fire_timer(std::size_t index, std::uint64_t timer_id) {
  apply_effects(index, rpc_done(index, ClusterPacket::kFireTimer,
                                encode_fire_timer(queue_.now(), timer_id)));
}

void ClusterRun::deliver(std::size_t index, const runtime::Message& msg) {
  if (converge_ && !alive_[index]) return;  // messages to the dead are lost
  apply_effects(index, rpc_done(index, ClusterPacket::kDeliver,
                                encode_deliver(queue_.now(), msg)));
}

sim::CounterProbe ClusterRun::probe_counters() {
  sim::CounterProbe p;
  p.validations = wiring_->oracle_->validations();
  p.messages = wiring_->net_->stats().messages_sent;
  bool ref_set = false;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const auto bytes = try_query(i, ClusterPacket::kQueryState,
                                 ClusterPacket::kState);
    if (!bytes) continue;  // dead node (convergence mode only)
    const GovernorState s = decode_state(*bytes);
    p.validations += s.validations;
    if (!ref_set) {  // reference replica: first live governor
      p.ref_expected_loss = s.expected_loss;
      ref_set = true;
    }
    p.argues += s.argues_accepted;
  }
  return p;
}

void ClusterRun::sample_rewards() {
  sim::RewardSample sample;
  const std::size_t ref = first_alive();
  if (ref < conns_.size()) {
    if (const auto refb = try_query(ref, ClusterPacket::kQueryState,
                                    ClusterPacket::kState)) {
      const GovernorState rs = decode_state(*refb);
      sample.leader = rs.leader;
      if (sample.leader) {
        const std::size_t li = sample.leader->value();
        sample.leader_live = li < alive_.size() && alive_[li];
        if (sample.leader_live) {
          const auto lb = li == ref
                              ? refb
                              : try_query(li, ClusterPacket::kQueryState,
                                          ClusterPacket::kState);
          if (lb) {
            const GovernorState ls = decode_state(*lb);
            sample.chain_empty = ls.chain_empty;
            if (!ls.chain_empty) {
              sample.head_valid_txs = ls.head_valid_txs;
              if (const auto sb = try_query(li, ClusterPacket::kQueryShares,
                                            ClusterPacket::kShares)) {
                sample.shares = decode_shares(*sb);
              }
            }
          } else {
            sample.leader_live = false;
          }
        }
      }
    }
  }
  observation_.sample_rewards(config_, sample);
}

void ClusterRun::run_audit(Round round) {
  // Same derive salt and draw order as Workload::run_audit: one shared
  // stream consumed in governor order.
  Rng audit = rng_.derive(20'000 + round);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const auto bytes = try_query(i, ClusterPacket::kQueryUnrevealed,
                                 ClusterPacket::kUnrevealed);
    if (!bytes) continue;
    const std::vector<ledger::TxId> ids = decode_txid_list(*bytes);
    for (const ledger::TxId& id : ids) {
      if (audit.bernoulli(config_.audit_probability)) {
        apply_effects(i, rpc_done(i, ClusterPacket::kReveal,
                                  encode_reveal(queue_.now(), id)));
      }
    }
  }
}

void ClusterRun::run_round() {
  ++round_;
  // Supervision: respawns happen at a round boundary (before arming, like
  // the sim's restart_governor), kills strike mid-round below. Plans may
  // overlap: several victims can be down at once, and a round can respawn
  // one victim while another is still dead.
  if (converge_) {
    for (const CrashPlan& plan : plans_) {
      if (round_ == plan.restart_round && !alive_[plan.victim]) {
        respawn_victim(plan.victim);
      }
    }
  }
  const SimTime t0 = queue_.now();
  observation_.begin_round(round_, probe_counters());

  // Arm phase timers in node order — governor i's arms land on the master
  // loop before governor i+1's, the order a local loop would produce.
  const protocol::RoundTiming& timing = wiring_->timing_;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (converge_ && !alive_[i]) continue;
    apply_effects(i, rpc_done(i, ClusterPacket::kArmRound,
                              encode_arm_round({queue_.now(), round_, t0})));
  }
  for (auto& p : wiring_->providers_) p.arm_round(t0, timing);
  queue_.schedule_at(t0 + timing.rewards_offset, [this] { sample_rewards(); });
  if (config_.audit_probability > 0.0) {
    queue_.schedule_at(t0 + timing.audit_offset, [this] { run_audit(round_); });
  }

  queue_.run_until(t0 + timing.workload_offset);
  if (converge_ && kill_) {
    for (const CrashPlan& plan : plans_) {
      if (round_ != plan.kill_round || !alive_[plan.victim]) continue;
      // SIGKILL mid-round: in-memory state (including any uncommitted round
      // progress) is gone; only the WAL/snapshot survive on disk.
      kill_(plan.victim);
      mark_dead(plan.victim);
      if (report_.killed_at == 0) report_.killed_at = queue_.now();
    }
  }
  workload_->inject(round_);
  queue_.run_until(t0 + timing.round_span);

  observation_.end_round(probe_counters());
}

void ClusterRun::respawn_victim(std::size_t v) {
  const std::uint32_t incarnation = ++incarnations_[v];
  std::unique_ptr<SyncConn> conn;
  for (std::uint32_t a = 0; a < max_restarts_ && conn == nullptr; ++a) {
    ++report_.restart_attempts;
    try {
      conn = respawn_(v, incarnation);
    } catch (const std::exception&) {
      conn = nullptr;
    }
  }
  if (conn == nullptr) return;  // stays dead; the convergence check fails
  conn->set_timeout(rpc_timeout_us_);
  conns_[v] = std::move(conn);
  alive_[v] = true;
  ++generation_[v];
  // The fresh process recovered its chain from disk but its oracle replica
  // is empty: replay the full ground truth before anything can validate.
  const auto& truth = wiring_->oracle_->truth();
  for (const auto& [id, valid] : truth) {
    const Bytes payload = encode_register_tx({id, valid});
    try {
      conns_[v]->send_frame(
          static_cast<std::uint16_t>(ClusterPacket::kRegisterTx), payload);
    } catch (const std::exception&) {
      mark_dead(v);
      return;
    }
  }
  // Hand the node the master clock and let it start chasing the chain; its
  // sync requests to peers come back as ordinary send effects.
  apply_effects(v, rpc_done(v, ClusterPacket::kResync,
                            encode_resync(queue_.now())));
  if (alive_[v]) {
    report_.rejoined_at = queue_.now();
    report_.degradation.last_restart_round = round_;
  }
}

bool ClusterRun::check_converged() {
  std::optional<HeadInfo> ref;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (!alive_[i]) return false;  // a hole in the cluster is not converged
    const auto bytes =
        try_query(i, ClusterPacket::kQueryHead, ClusterPacket::kHead);
    if (!bytes) return false;
    const HeadInfo h = decode_head(*bytes);
    if (!ref) {
      ref = h;
    } else if (h.serial != ref->serial || h.hash != ref->hash ||
               h.committed_txs != ref->committed_txs) {
      return false;
    }
  }
  if (!ref || ref->serial == 0) return false;
  report_.head_serial = ref->serial;
  report_.committed_txs = ref->committed_txs;
  report_.head_hash_hex = to_hex(view(ref->hash));
  return true;
}

ConvergenceReport ClusterRun::run_converge(Round grace_rounds) {
  if (!converge_) {
    throw ConfigError("cluster driver: run_converge without set_supervision");
  }
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();
  report_.converged = check_converged();
  Round extra = 0;
  // Grace rounds: catch-up traffic needs master-loop time to flow, so keep
  // running full rounds until the heads agree or patience runs out.
  while (!report_.converged && extra < grace_rounds) {
    run_round();
    ++extra;
    report_.converged = check_converged();
  }
  if (report_.converged) {
    report_.converged_round = round_;
    if (report_.degradation.last_restart_round > 0) {
      report_.degradation.rounds_to_recover =
          round_ - report_.degradation.last_restart_round;
    }
  }
  report_.rounds_run = round_;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (alive_[i]) (void)rpc_done(i, ClusterPacket::kShutdown, BytesView{});
  }
  return report_;
}

sim::RunResult ClusterRun::run() {
  for (std::size_t i = 0; i < config_.rounds; ++i) run_round();

  std::uint64_t txs_submitted = 0;
  for (const auto& p : wiring_->providers_) txs_submitted += p.submitted();

  // Rebuild each governor's chain from its snapshot; append() re-validates
  // serials and hash links, so a node cannot ship a corrupt chain unnoticed.
  std::deque<ledger::ChainStore> chains;
  std::vector<sim::GovernorSnapshot> snapshots;
  std::uint64_t validations = wiring_->oracle_->validations();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const GovernorSnapshotData snap = decode_snapshot(
        rpc_query(i, ClusterPacket::kSnapshot, ClusterPacket::kSnapshotData));
    chains.emplace_back();
    for (const ledger::Block& b : snap.blocks) chains.back().append(b);
    snapshots.push_back(sim::GovernorSnapshot{&chains.back(), snap.expected_loss,
                                              snap.realized_loss, snap.mistakes});
    validations += query_state(i).validations;
  }

  sim::RunResult result;
  result.summary = observation_.summarize(txs_submitted, snapshots, validations,
                                          wiring_->net_->stats());
  result.history = observation_.history();
  result.rewards = observation_.rewards();
  result.leader_counts = observation_.leader_counts();

  for (std::size_t i = 0; i < conns_.size(); ++i) {
    (void)rpc_done(i, ClusterPacket::kShutdown, BytesView{});
  }
  return result;
}

}  // namespace repchain::cluster
