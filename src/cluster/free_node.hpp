#pragma once

// One free-running governor process. Where NodeHost inherits determinism
// from the driver's master event loop (every timer fired by RPC, every send
// shipped back as an Effect), a FreeNodeHost owns its clock: the governor's
// round schedule is armed on a real PollLoop over CLOCK_MONOTONIC, and
// protocol messages travel peer-to-peer over a TcpTransport mesh with
// auto-reconnect. The driver degrades from conductor to observer — it
// announces the aligned start instant, injects workload, and polls the
// head/serial RPCs that back the statistical convergence contract.
//
// Free-running requires reliable delivery: there is no cross-process atomic
// broadcast sequencer, so the governor's rbroadcast path must be the
// ReliableChannel one (order-tolerant receive paths, per-peer retransmit).
// The Broadcaster handed to the governor therefore throws on use — a call
// means a code path that cannot be correct off the simulator's total order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/packets.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/governor.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/node_context.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/trace.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/system_model.hpp"
#include "storage/node_state_store.hpp"
#include "wire/frame.hpp"

namespace repchain::cluster {

/// Broadcaster tripwire for reliable-mode-only hosts: the member list is
/// real (the protocol sizes quorums from it), but a broadcast() call throws
/// — nothing in a free-running process can provide the total order the
/// atomic-broadcast contract promises.
class NoBroadcaster final : public runtime::Broadcaster {
 public:
  explicit NoBroadcaster(std::vector<NodeId> members)
      : members_(std::move(members)) {}

  void broadcast(NodeId from, runtime::MsgKind kind, const Bytes& payload) override;
  [[nodiscard]] const std::vector<NodeId>& members() const override {
    return members_;
  }

 private:
  std::vector<NodeId> members_;
};

/// Trace sink counting the liveness events the free-run observer polls for
/// (kQueryFreeStats); stall and delivery-failure events are also mirrored to
/// stderr so the per-node log files tell the degradation story.
class TraceCounters final : public runtime::TraceSink {
 public:
  void on_event(const runtime::TraceEvent& ev) override;

  std::uint64_t rounds_started = 0;
  std::uint64_t stalled_events = 0;     // kRoundStalled
  std::uint64_t delivery_failures = 0;  // kDeliveryFailed
};

/// The governor process behind one free-running cluster node.
class FreeNodeHost {
 public:
  /// `config` is normalized in place; throws ConfigError when it is not
  /// cluster-runnable, not reliable-delivery, or `governor_index` is out of
  /// range. The peer mesh binds loopback port `peer_base + index` and dials
  /// `peer_base + j` for every j < index (higher-indexed peers and the
  /// driver dial us; auto-reconnect heals the mesh from both sides after a
  /// crash). `state_dir`/`incarnation` follow NodeHost: a restarted process
  /// replays snapshot + WAL, announces session resume, and runs its
  /// ReliableChannel under the incarnation epoch.
  FreeNodeHost(sim::ScenarioConfig config, std::size_t governor_index,
               std::uint16_t peer_base, const std::string& state_dir = "",
               std::uint32_t incarnation = 0);
  ~FreeNodeHost();

  FreeNodeHost(const FreeNodeHost&) = delete;
  FreeNodeHost& operator=(const FreeNodeHost&) = delete;

  /// Handshake on the control connection `fd` (taking ownership), then run
  /// the PollLoop — timers, peer sockets and control requests all on one
  /// thread — until kShutdown or control EOF.
  void run(int fd);

  [[nodiscard]] const crypto::Hash256& genesis() const { return genesis_; }
  [[nodiscard]] protocol::Governor& governor() { return *governor_; }
  [[nodiscard]] FreeRunStats stats() const;

 private:
  void handle_control(const wire::Frame& frame);
  void on_control_readable();
  /// Write one frame to the control fd, looping over partial writes
  /// (poll(POLLOUT) bridges EAGAIN on the non-blocking socket).
  void send_control(std::uint16_t type, BytesView payload);
  [[nodiscard]] HeadInfo head() const;

  sim::ScenarioConfig config_;
  std::size_t index_;
  std::uint32_t incarnation_;
  crypto::Hash256 genesis_;
  sim::SystemModel model_;
  std::unique_ptr<storage::NodeStateStore> store_;
  runtime::PollLoop loop_;
  runtime::TcpTransport transport_;
  NoBroadcaster broadcaster_;
  TraceCounters counters_;
  ledger::ValidationOracle oracle_;
  runtime::NodeContext ctx_;
  std::unique_ptr<protocol::Governor> governor_;

  int control_fd_ = -1;
  wire::FrameReader control_reader_;
  bool done_ = false;
  // Mesh traffic held until the driver's kFreeStart. A respawned node's
  // listener is reachable the moment the transport binds, and survivors'
  // reliable channels immediately retransmit their backlog — reports and
  // argues naming transactions whose ground truth only arrives with the
  // driver's kRegisterTx replay on the control FIFO (always ahead of
  // kFreeStart). Delivering the backlog early would validate unregistered
  // transactions; parking it here keeps the channels retransmitting until
  // the oracle is complete.
  bool started_ = false;
  std::vector<runtime::Message> pre_start_;
};

}  // namespace repchain::cluster
