#pragma once

// Driver side of the lockstep cluster: one process keeps the master event
// loop, the simulated network (with its delay RNG and traffic accounting),
// the shared atomic-broadcast sequencer, the ground-truth oracle and every
// provider/collector — exactly the parts of a run whose determinism depends
// on a single ordered stream of decisions. Only the governors live in other
// processes. Each delivery or timer firing addressed to a remote governor
// becomes a synchronous RPC: the node runs the handler, ships back the
// ordered Effect list, and the driver applies it to the master loop in
// recorded order. Every nondeterministic choice is therefore made once, in
// the driver, in the same order the in-process simulation makes it — which
// is why the replayed run's summary is byte-identical to the simulated one.

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/packets.hpp"
#include "cluster/sync_conn.hpp"
#include "common/rng.hpp"
#include "net/event_queue.hpp"
#include "sim/harness/observation.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/wiring.hpp"
#include "sim/harness/workload.hpp"
#include "wire/codec.hpp"

namespace repchain::cluster {

/// The welcome the driver presents on every node connection.
[[nodiscard]] wire::Welcome driver_welcome(const crypto::Hash256& genesis);

/// One cluster-hosted run. `conns[i]` must be the (already handshaken)
/// connection to the process hosting governor i; the constructor mirrors the
/// Scenario constructor sequence on the driver-side objects.
class ClusterRun final : public sim::RemoteGovernorLink {
 public:
  ClusterRun(sim::ScenarioConfig config,
             std::vector<std::unique_ptr<SyncConn>> conns);
  ~ClusterRun();

  ClusterRun(const ClusterRun&) = delete;
  ClusterRun& operator=(const ClusterRun&) = delete;

  /// Run all configured rounds over the cluster, assemble the RunResult,
  /// and shut the nodes down.
  [[nodiscard]] sim::RunResult run();

  /// RemoteGovernorLink: a master-loop delivery for governor `index` — the
  /// synchronous RPC at the heart of the lockstep scheme.
  void deliver(std::size_t index, const runtime::Message& msg) override;

 private:
  void run_round();
  /// Apply a node's recorded effects to the master loop, in order.
  void apply_effects(std::size_t index, const std::vector<Effect>& effects);
  void fire_timer(std::size_t index, std::uint64_t timer_id);
  /// Request expecting a kDone reply; returns the recorded effects.
  [[nodiscard]] std::vector<Effect> rpc_done(std::size_t index, ClusterPacket type,
                                             BytesView payload);
  /// Request expecting a typed reply; returns its payload.
  [[nodiscard]] Bytes rpc_query(std::size_t index, ClusterPacket request,
                                ClusterPacket reply);
  [[nodiscard]] GovernorState query_state(std::size_t index);
  /// The cross-replica counters Observation probes at round edges.
  [[nodiscard]] sim::CounterProbe probe_counters();
  void sample_rewards();
  void run_audit(Round round);

  sim::ScenarioConfig config_;
  Rng rng_;
  net::EventQueue queue_;
  sim::Observation observation_;
  std::vector<std::unique_ptr<SyncConn>> conns_;
  std::unique_ptr<sim::Wiring> wiring_;
  std::unique_ptr<sim::Workload> workload_;

  Round round_ = 0;
};

}  // namespace repchain::cluster
