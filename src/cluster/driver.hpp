#pragma once

// Driver side of the lockstep cluster: one process keeps the master event
// loop, the simulated network (with its delay RNG and traffic accounting),
// the shared atomic-broadcast sequencer, the ground-truth oracle and every
// provider/collector — exactly the parts of a run whose determinism depends
// on a single ordered stream of decisions. Only the governors live in other
// processes. Each delivery or timer firing addressed to a remote governor
// becomes a synchronous RPC: the node runs the handler, ships back the
// ordered Effect list, and the driver applies it to the master loop in
// recorded order. Every nondeterministic choice is therefore made once, in
// the driver, in the same order the in-process simulation makes it — which
// is why the replayed run's summary is byte-identical to the simulated one.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/packets.hpp"
#include "cluster/sync_conn.hpp"
#include "common/rng.hpp"
#include "net/event_queue.hpp"
#include "sim/harness/observation.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/wiring.hpp"
#include "sim/harness/workload.hpp"
#include "wire/codec.hpp"

namespace repchain::cluster {

/// The welcome the driver presents on every node connection.
[[nodiscard]] wire::Welcome driver_welcome(const crypto::Hash256& genesis);

/// Supervision schedule for one victim of a convergence-mode run: SIGKILL
/// `victim` mid-round `kill_round`, respawn it against its persisted state
/// directory at the start of round `restart_round`. A run takes a list of
/// these (one per victim, windows may overlap) — concurrent kills that drop
/// the committee below election quorum are a legal, tested schedule.
struct CrashPlan {
  std::size_t victim = 0;
  Round kill_round = 0;
  Round restart_round = 0;
};

/// Reliable-mode election quorum: close_election() requires a strict
/// majority of the (non-expelled) committee, counted against committee size
/// — not live count — so dead governors subtract from the margin.
[[nodiscard]] constexpr std::size_t election_quorum(std::size_t governors) {
  return governors / 2 + 1;
}

/// Parse one `v@k:r` crash-plan spec (victim, kill round, restart round).
/// Returns false on malformed input.
[[nodiscard]] bool parse_crash_plan(const std::string& spec, CrashPlan& plan);

/// Reject inconsistent schedules: a duplicate victim, a victim index at or
/// past `governors`, kill_round 0 or past `rounds`, or restart_round not
/// strictly after kill_round. Throws ConfigError.
void validate_crash_plans(const std::vector<CrashPlan>& plans,
                          std::size_t governors, Round rounds);

/// Fewest governors alive in any round of [1, rounds] under `plans` (a
/// victim counts dead from its kill round until the round before its
/// restart). Compare against election_quorum() to predict a stall window.
[[nodiscard]] std::size_t min_live_governors(const std::vector<CrashPlan>& plans,
                                             std::size_t governors, Round rounds);

/// How a supervised run degraded while victims were down: whether the live
/// committee ever dropped below election quorum, the watchdog activity the
/// survivors surfaced (kRoundStalled traces and their time span), and how
/// many rounds the cluster needed after the last respawn to converge.
struct DegradationReport {
  bool quorum_lost = false;       // live committee < election_quorum at some point
  std::size_t min_live = 0;       // fewest live governors observed
  std::uint64_t stalled_events = 0;  // kRoundStalled traces (= watchdog trips)
  SimTime stall_first = 0;        // clock of the first kRoundStalled (0 = none)
  SimTime stall_last = 0;         // clock of the last kRoundStalled
  Round last_restart_round = 0;   // round of the final respawn
  Round rounds_to_recover = 0;    // converged_round - last_restart_round
  std::uint32_t spontaneous_exits = 0;  // from ProcessSupervisor::report()
};

/// What a supervised run reports instead of a byte-compared summary: did
/// every survivor plus the restarted nodes end on the same chain head, and
/// how long did the rejoin take.
struct ConvergenceReport {
  bool converged = false;
  Round rounds_run = 0;        // configured rounds + any grace rounds
  Round converged_round = 0;   // round at whose end the heads first agreed
  std::uint64_t head_serial = 0;
  std::uint64_t committed_txs = 0;
  std::string head_hash_hex;
  SimTime killed_at = 0;       // master-clock instant of the first SIGKILL
  SimTime rejoined_at = 0;     // instant the last respawn finished re-admission
  std::uint32_t restart_attempts = 0;
  DegradationReport degradation;
};

/// One cluster-hosted run. `conns[i]` must be the (already handshaken)
/// connection to the process hosting governor i; the constructor mirrors the
/// Scenario constructor sequence on the driver-side objects.
class ClusterRun final : public sim::RemoteGovernorLink {
 public:
  ClusterRun(sim::ScenarioConfig config,
             std::vector<std::unique_ptr<SyncConn>> conns);
  ~ClusterRun();

  ClusterRun(const ClusterRun&) = delete;
  ClusterRun& operator=(const ClusterRun&) = delete;

  /// Run all configured rounds over the cluster, assemble the RunResult,
  /// and shut the nodes down.
  [[nodiscard]] sim::RunResult run();

  /// Kills the victim process (SIGKILL, no RPC goodbye).
  using KillFn = std::function<void(std::size_t index)>;
  /// Respawns governor `index` as incarnation `incarnation` against its
  /// persisted state directory and returns the admitted (handshaken)
  /// connection; throws or returns null on a failed attempt.
  using RespawnFn = std::function<std::unique_ptr<SyncConn>(
      std::size_t index, std::uint32_t incarnation)>;

  /// Switch this run to convergence mode: RPC failures mark a node dead
  /// instead of aborting, every connection gets a blocking-IO deadline, the
  /// crash schedule executes during run_converge(), and a failed node is
  /// respawned at most `max_restart_attempts` times per restart point.
  /// `plans` holds one entry per victim; overlapping kill/restart windows
  /// (including quorum-breaking ones) are allowed. Validate the schedule
  /// with validate_crash_plans() first.
  void set_supervision(std::vector<CrashPlan> plans, KillFn kill,
                       RespawnFn respawn,
                       std::uint32_t max_restart_attempts = 3,
                       std::uint64_t rpc_timeout_us = 10'000'000);
  /// Single-victim convenience overload.
  void set_supervision(CrashPlan plan, KillFn kill, RespawnFn respawn,
                       std::uint32_t max_restart_attempts = 3,
                       std::uint64_t rpc_timeout_us = 10'000'000);

  /// Convergence-mode counterpart of run(): executes the configured rounds
  /// (with the crash plan), then up to `grace_rounds` extra rounds until
  /// all nodes report an identical chain head. Shuts the nodes down.
  [[nodiscard]] ConvergenceReport run_converge(Round grace_rounds = 4);

  /// RemoteGovernorLink: a master-loop delivery for governor `index` — the
  /// synchronous RPC at the heart of the lockstep scheme.
  void deliver(std::size_t index, const runtime::Message& msg) override;

 private:
  void run_round();
  /// Apply a node's recorded effects to the master loop, in order.
  void apply_effects(std::size_t index, const std::vector<Effect>& effects);
  void fire_timer(std::size_t index, std::uint64_t timer_id);
  /// Request expecting a kDone reply; returns the recorded effects.
  [[nodiscard]] std::vector<Effect> rpc_done(std::size_t index, ClusterPacket type,
                                             BytesView payload);
  /// Request expecting a typed reply; returns its payload.
  [[nodiscard]] Bytes rpc_query(std::size_t index, ClusterPacket request,
                                ClusterPacket reply);
  [[nodiscard]] GovernorState query_state(std::size_t index);
  /// rpc_query that, in convergence mode, converts a dead peer into
  /// std::nullopt (marking the node) instead of throwing.
  [[nodiscard]] std::optional<Bytes> try_query(std::size_t index,
                                               ClusterPacket request,
                                               ClusterPacket reply);
  /// The cross-replica counters Observation probes at round edges.
  [[nodiscard]] sim::CounterProbe probe_counters();
  void sample_rewards();
  void run_audit(Round round);
  // --- convergence mode ------------------------------------------------------
  void mark_dead(std::size_t index);
  [[nodiscard]] std::size_t first_alive() const;
  void respawn_victim(std::size_t victim);
  /// Track the live count against quorum for the degradation report.
  void note_liveness();
  /// Query every node's head; true when all alive and identical (non-empty).
  bool check_converged();

  sim::ScenarioConfig config_;
  Rng rng_;
  net::EventQueue queue_;
  sim::Observation observation_;
  std::vector<std::unique_ptr<SyncConn>> conns_;
  std::unique_ptr<sim::Wiring> wiring_;
  std::unique_ptr<sim::Workload> workload_;

  Round round_ = 0;

  // Convergence-mode state. In lockstep mode alive_ stays all-true and
  // generation_ all-zero, so the shared paths behave identically.
  bool converge_ = false;
  std::vector<CrashPlan> plans_;
  KillFn kill_;
  RespawnFn respawn_;
  std::uint32_t max_restarts_ = 3;
  std::uint64_t rpc_timeout_us_ = 0;
  std::vector<bool> alive_;
  // Bumped on every kill and respawn of a node: timers armed by an earlier
  // life are skipped when they fire (the new incarnation re-arms its own).
  std::vector<std::uint32_t> generation_;
  std::vector<std::uint32_t> incarnations_;
  ConvergenceReport report_;
};

}  // namespace repchain::cluster
