#include "cluster/free_node.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/errors.hpp"
#include "sim/harness/spec_codec.hpp"
#include "storage/file_state_store.hpp"
#include "wire/codec.hpp"

namespace repchain::cluster {
namespace {

sim::ScenarioConfig free_normalized(sim::ScenarioConfig config) {
  sim::normalize_config(config);
  sim::require_cluster_runnable(config);
  if (!config.reliable_delivery) {
    throw ConfigError(
        "free-running node: reliable_delivery is required (no cross-process "
        "atomic-broadcast sequencer exists off the lockstep plane)");
  }
  return config;
}

std::size_t free_checked_index(const sim::ScenarioConfig& config, std::size_t i) {
  if (i >= config.topology.governors) {
    throw ConfigError("free-running node: governor index " + std::to_string(i) +
                      " out of range (" +
                      std::to_string(config.topology.governors) + " governors)");
  }
  return i;
}

std::unique_ptr<storage::NodeStateStore> free_make_store(const std::string& dir) {
  if (dir.empty()) return nullptr;
  return std::make_unique<storage::FileStateStore>(dir);
}

runtime::TcpTransport::Options mesh_options(const sim::ScenarioConfig& config) {
  runtime::TcpTransport::Options opts;
  opts.max_delay = config.latency.max_delay;
  // A crashed peer's link must heal well inside the ReliableChannel retry
  // ladder, so the re-dial schedule is much tighter than the deployment
  // defaults (rounds are hundreds of milliseconds, not seconds).
  opts.auto_reconnect = true;
  opts.reconnect_base = 25 * kMillisecond;
  opts.reconnect_max = 250 * kMillisecond;
  return opts;
}

std::uint16_t peer_port(std::uint16_t base, std::size_t index) {
  return static_cast<std::uint16_t>(base + index);
}

}  // namespace

void NoBroadcaster::broadcast(NodeId, runtime::MsgKind, const Bytes&) {
  throw NetError(
      "free-running node: atomic broadcast requested — only the reliable "
      "(per-peer channel) paths may run here");
}

void TraceCounters::on_event(const runtime::TraceEvent& ev) {
  switch (ev.kind) {
    case runtime::TraceKind::kRoundStarted:
      ++rounds_started;
      return;
    case runtime::TraceKind::kRoundStalled:
      ++stalled_events;
      std::fprintf(stderr, "free-node: round %llu stalled (%llu consecutive)\n",
                   static_cast<unsigned long long>(ev.round),
                   static_cast<unsigned long long>(ev.arg0));
      return;
    case runtime::TraceKind::kDeliveryFailed:
      ++delivery_failures;
      std::fprintf(stderr,
                   "free-node: reliable delivery exhausted (peer key %llu)\n",
                   static_cast<unsigned long long>(ev.arg0));
      return;
    default:
      return;
  }
}

FreeNodeHost::FreeNodeHost(sim::ScenarioConfig config, std::size_t governor_index,
                           std::uint16_t peer_base, const std::string& state_dir,
                           std::uint32_t incarnation)
    : config_(free_normalized(std::move(config))),
      index_(free_checked_index(config_, governor_index)),
      incarnation_(incarnation),
      genesis_(sim::config_genesis(config_)),
      model_(sim::SystemModel::build(config_, Rng(config_.seed))),
      store_(free_make_store(state_dir)),
      transport_(loop_, genesis_, mesh_options(config_)),
      broadcaster_(model_.directory.governor_nodes()),
      oracle_(config_.validation_cost),
      ctx_(model_.directory.node_of(GovernorId(static_cast<std::uint32_t>(index_))),
           transport_, Rng(config_.seed).derive(2000 + index_), &counters_) {
  const GovernorId id(static_cast<std::uint32_t>(index_));
  protocol::GovernorConfig gc = config_.governor;
  gc.channel_epoch = incarnation_;
  governor_ = std::make_unique<protocol::Governor>(
      id, ctx_, model_.governor_keys[index_], *model_.im, oracle_,
      model_.directory, broadcaster_, gc, model_.genesis,
      model_.governor_visible[index_], store_.get());
  if (incarnation_ > 0 && store_ != nullptr) {
    // Restarted process: replay snapshot + WAL before joining the mesh; the
    // catch-up sync itself starts when the driver's kFreeStart arrives.
    governor_->recover_from_store();
  }
  if (incarnation_ > 0) transport_.set_resume(incarnation_, head().serial);
  transport_.set_trace_sink(&counters_);
  // A healed link refreshes the retry budget of every in-flight envelope
  // addressed to the returning peer — without this, a crash window longer
  // than the backoff ladder burns budget against a dead socket.
  transport_.set_reconnect_hook(
      [this](NodeId peer) { governor_->on_peer_reconnected(peer); });
  transport_.host(governor_->node(), [this](const runtime::Message& m) {
    if (!started_) {
      pre_start_.push_back(m);
      return;
    }
    governor_->on_message(m);
  });
  (void)transport_.listen(peer_port(peer_base, index_));
  // Dial every lower-indexed peer; higher-indexed peers (and the driver)
  // dial us. After a crash both halves heal: our respawn re-dials downward,
  // the survivors' auto-reconnect backoff re-dials our fresh listener.
  for (std::size_t j = 0; j < index_; ++j) transport_.connect(peer_port(peer_base, j));
}

FreeNodeHost::~FreeNodeHost() {
  if (control_fd_ >= 0) ::close(control_fd_);
}

HeadInfo FreeNodeHost::head() const {
  HeadInfo h;
  h.incarnation = incarnation_;
  const ledger::ChainStore& chain = governor_->chain();
  if (chain.empty()) return h;
  h.serial = chain.head().serial;
  h.hash = chain.head_hash();
  for (const ledger::Block& b : chain.blocks()) h.committed_txs += b.txs.size();
  return h;
}

FreeRunStats FreeNodeHost::stats() const {
  FreeRunStats s;
  s.head = head();
  s.current_round = governor_->current_round();
  s.rounds_started = counters_.rounds_started;
  s.stalled_events = counters_.stalled_events;
  s.watchdog_trips = governor_->metrics().watchdog_trips;
  s.delivery_failures = counters_.delivery_failures;
  s.reconnects = transport_.stats().reconnects;
  s.blocks_accepted = governor_->metrics().blocks_accepted;
  s.blocks_synced = governor_->metrics().blocks_synced;
  return s;
}

void FreeNodeHost::send_control(std::uint16_t type, BytesView payload) {
  const Bytes frame = wire::encode_frame(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(control_fd_, frame.data() + off,
                             frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Control replies are tiny and the driver drains promptly; a short
        // blocking poll bridges a momentarily full socket buffer.
        pollfd pfd{};
        pfd.fd = control_fd_;
        pfd.events = POLLOUT;
        const int rc = ::poll(&pfd, 1, 5000);
        if (rc > 0) continue;
        throw NetError("free-node control send: driver stopped draining");
      }
      throw NetError(std::string("free-node control send: ") +
                     std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void FreeNodeHost::handle_control(const wire::Frame& frame) {
  switch (static_cast<ClusterPacket>(frame.type)) {
    case ClusterPacket::kRegisterTx: {
      const RegisterTx reg = decode_register_tx(frame.payload);
      oracle_.register_tx(reg.id, reg.valid);
      return;  // fire-and-forget
    }
    case ClusterPacket::kFreeStart: {
      const FreeStart s = decode_free_start(frame.payload);
      // Every kRegisterTx the driver replayed sits ahead of this frame on
      // the control FIFO, so the oracle is complete: release the parked
      // mesh backlog before anything can screen or argue against it.
      started_ = true;
      std::vector<runtime::Message> held;
      held.swap(pre_start_);
      for (const runtime::Message& m : held) governor_->on_message(m);
      // A returning incarnation starts its chain catch-up before its first
      // self-driven round; survivors answer the sync while they keep
      // committing, and recovery holds announcements until the head checks.
      if (incarnation_ > 0) governor_->sync_chain();
      governor_->drive_rounds(s.first_round, loop_.now() + s.start_delay,
                              model_.timing);
      send_control(static_cast<std::uint16_t>(ClusterPacket::kDone),
                   encode_effects({}));
      return;
    }
    case ClusterPacket::kQueryHead:
      send_control(static_cast<std::uint16_t>(ClusterPacket::kHead),
                   encode_head(head()));
      return;
    case ClusterPacket::kQueryFreeStats:
      send_control(static_cast<std::uint16_t>(ClusterPacket::kFreeStats),
                   encode_free_stats(stats()));
      return;
    case ClusterPacket::kQueryBlockAt: {
      BlockHashInfo info;
      info.serial = decode_block_at(frame.payload);
      if (const auto block = governor_->chain().retrieve(info.serial)) {
        info.found = true;
        info.hash = block->hash();
      }
      send_control(static_cast<std::uint16_t>(ClusterPacket::kBlockHash),
                   encode_block_hash(info));
      return;
    }
    case ClusterPacket::kShutdown:
      send_control(static_cast<std::uint16_t>(ClusterPacket::kDone),
                   encode_effects({}));
      done_ = true;
      return;
    default:
      throw wire::WireError(wire::ProtocolError::kUnknownPacket,
                            "free-running node: packet type " +
                                std::to_string(frame.type));
  }
}

void FreeNodeHost::on_control_readable() {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(control_fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      done_ = true;  // driver went away mid-read
      return;
    }
    if (n == 0) {
      done_ = true;  // driver closed: nothing left to serve
      return;
    }
    std::vector<wire::Frame> frames;
    control_reader_.feed(BytesView(buf, static_cast<std::size_t>(n)), frames);
    for (const wire::Frame& frame : frames) {
      handle_control(frame);
      if (done_) return;
    }
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }
}

void FreeNodeHost::run(int fd) {
  control_fd_ = fd;

  // Blocking handshake, SyncConn-style but without surrendering fd
  // ownership: the same descriptor continues as a PollLoop watch.
  wire::Welcome local;
  local.genesis = genesis_;
  local.role = wire::Role::kNode;
  local.node_index = static_cast<std::uint32_t>(index_);
  local.hosted = {governor_->node()};
  local.resume = incarnation_ > 0;
  local.incarnation = incarnation_;
  local.head_serial = head().serial;
  send_control(static_cast<std::uint16_t>(wire::PacketType::kWelcome),
               wire::encode_welcome(local));

  std::vector<wire::Frame> frames;
  while (frames.empty()) {
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(control_fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("free-node handshake recv: ") +
                     std::strerror(errno));
    }
    if (n == 0) throw NetError("free-node handshake: connection closed");
    control_reader_.feed(BytesView(buf, static_cast<std::size_t>(n)), frames);
  }
  const wire::Frame& first = frames.front();
  if (first.type != static_cast<std::uint16_t>(wire::PacketType::kWelcome)) {
    throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                          "free-running node: first packet was not a welcome");
  }
  const wire::Welcome remote = wire::decode_welcome(first.payload);
  (void)wire::check_welcome(remote, genesis_);
  if (remote.role != wire::Role::kDriver) {
    throw wire::WireError(wire::ProtocolError::kBadRole,
                          "free-running node: peer is not a driver");
  }
  // Anything the driver pipelined behind its welcome is already decoded.
  for (std::size_t i = 1; i < frames.size() && !done_; ++i) {
    handle_control(frames[i]);
  }

  const int flags = ::fcntl(control_fd_, F_GETFL, 0);
  (void)::fcntl(control_fd_, F_SETFL, flags | O_NONBLOCK);
  loop_.watch(control_fd_, POLLIN, [this](short) { on_control_readable(); });

  while (!done_) {
    (void)loop_.run_until(loop_.now() + 100 * kMillisecond,
                          [this] { return done_; });
  }
  loop_.unwatch(control_fd_);
  ::close(control_fd_);
  control_fd_ = -1;
}

}  // namespace repchain::cluster
