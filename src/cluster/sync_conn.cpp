#include "cluster/sync_conn.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/errors.hpp"

namespace repchain::cluster {

SyncConn::SyncConn(int fd) : fd_(fd) {
  // Control traffic mixes RPC ping-pong with one-way fire-and-forget frames
  // (kRegisterTx): Nagle coalescing against a delayed ACK would hold those
  // for tens of milliseconds, losing races against the peer's phase timers.
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SyncConn::set_timeout(std::uint64_t micros) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(micros / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1000000);
  (void)setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

SyncConn::~SyncConn() {
  if (fd_ >= 0) ::close(fd_);
}

void SyncConn::send_frame(std::uint16_t type, BytesView payload) {
  const Bytes frame = wire::encode_frame(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw wire::WireError(wire::ProtocolError::kPeerTimeout,
                              "cluster send: deadline expired");
      throw NetError(std::string("cluster send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

wire::Frame SyncConn::recv_frame() {
  while (true) {
    if (next_ < pending_.size()) {
      wire::Frame f = std::move(pending_[next_++]);
      if (next_ == pending_.size()) {
        pending_.clear();
        next_ = 0;
      }
      return f;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw wire::WireError(wire::ProtocolError::kPeerTimeout,
                              "cluster recv: deadline expired");
      throw NetError(std::string("cluster recv: ") + std::strerror(errno));
    }
    if (n == 0) throw NetError("cluster recv: connection closed");
    reader_.feed(BytesView(buf, static_cast<std::size_t>(n)), pending_);
  }
}

void SyncConn::send_error(wire::ProtocolError code,
                          const std::string& detail) noexcept {
  try {
    const Bytes payload = wire::encode_error({code, detail});
    const Bytes frame =
        wire::encode_frame(static_cast<std::uint16_t>(wire::PacketType::kError),
                           payload);
    // One best-effort write; the peer may already be gone.
    (void)::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  } catch (...) {
  }
}

wire::Welcome handshake(SyncConn& conn, const wire::Welcome& local,
                        const crypto::Hash256& genesis) {
  conn.send_frame(static_cast<std::uint16_t>(wire::PacketType::kWelcome),
                  wire::encode_welcome(local));
  const wire::Frame frame = conn.recv_frame();
  if (frame.type == static_cast<std::uint16_t>(wire::PacketType::kError)) {
    const wire::ErrorPacket err = wire::decode_error(frame.payload);
    throw wire::WireError(err.code, "peer rejected handshake: " + err.detail);
  }
  if (frame.type != static_cast<std::uint16_t>(wire::PacketType::kWelcome)) {
    conn.send_error(wire::ProtocolError::kUnexpectedPacket,
                    "expected a welcome");
    throw wire::WireError(wire::ProtocolError::kUnexpectedPacket,
                          "first packet was not a welcome");
  }
  try {
    const wire::Welcome remote = wire::decode_welcome(frame.payload);
    (void)wire::check_welcome(remote, genesis);
    return remote;
  } catch (const wire::WireError& e) {
    conn.send_error(e.code(), e.what());
    throw;
  }
}

}  // namespace repchain::cluster
