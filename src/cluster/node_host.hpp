#pragma once

// One governor process. A NodeHost is handed only (normalized config,
// governor index): it rebuilds the deterministic SystemModel a driver-side
// Wiring would have built from the same inputs, constructs its one Governor
// on top of Remote* runtime shims, and serves the driver's RPC loop. The
// shims never act on their own — every externally-visible action the
// governor takes (send, multicast, atomic broadcast, timer arm, trace
// event) is recorded as an Effect in program order and shipped back in the
// kDone reply, and the node's virtual clock only advances when a request
// carries a new timestamp. The process has no independent time source and
// no direct peer links: determinism is inherited from the driver's master
// event loop rather than re-established.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/packets.hpp"
#include "cluster/sync_conn.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "ledger/validation_oracle.hpp"
#include "protocol/governor.hpp"
#include "runtime/broadcaster.hpp"
#include "runtime/node_context.hpp"
#include "runtime/timer.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport.hpp"
#include "sim/harness/spec.hpp"
#include "sim/harness/system_model.hpp"
#include "storage/node_state_store.hpp"

namespace repchain::cluster {

/// TimerService whose clock is set from request frames and whose arms
/// become effects. Firing is driven by the driver: the master loop runs the
/// schedule, the node only keeps the callbacks.
class RemoteTimers final : public runtime::TimerService {
 public:
  explicit RemoteTimers(std::vector<Effect>& effects) : effects_(effects) {}

  [[nodiscard]] SimTime now() const override { return now_; }

  void schedule_at(SimTime t, Callback cb) override {
    const std::uint64_t id = next_id_++;
    armed_.emplace(id, std::move(cb));
    Effect e;
    e.kind = Effect::Kind::kArmTimer;
    e.at = t;
    e.timer_id = id;
    effects_.push_back(std::move(e));
  }

  void set_now(SimTime t) { now_ = t; }

  /// Run (and forget) the callback armed under `id`. Throws NetError on an
  /// unknown id — the driver and node schedules have diverged.
  void fire(std::uint64_t id);

  [[nodiscard]] std::size_t armed_count() const { return armed_.size(); }

 private:
  std::vector<Effect>& effects_;
  SimTime now_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Callback> armed_;
};

/// Transport shim: unicast/multicast become effects (the driver replays
/// them through its SimNetwork, which draws the link delays in the same
/// order a locally-hosted governor would have). The sequencer hooks are
/// driver-side by construction, so draw_delay and deliver_direct throw: a
/// call means governor code is doing something the lockstep replay cannot
/// keep deterministic, and failing loudly beats drifting silently.
class RemoteTransport final : public runtime::Transport {
 public:
  RemoteTransport(std::vector<Effect>& effects, RemoteTimers& timers,
                  SimDuration max_delay)
      : effects_(effects), timers_(timers), max_delay_(max_delay) {}

  void send(NodeId from, NodeId to, runtime::MsgKind kind, Bytes payload) override;
  void multicast(NodeId from, std::span<const NodeId> to, runtime::MsgKind kind,
                 const Bytes& payload) override;
  [[nodiscard]] SimDuration max_delay() const override { return max_delay_; }
  [[nodiscard]] runtime::TimerService& timers() override { return timers_; }
  [[nodiscard]] SimDuration draw_delay() override;
  void deliver_direct(const runtime::Message& msg) override;
  void count_broadcast(runtime::MsgKind kind, std::size_t copies,
                       std::size_t payload_bytes) override;

 private:
  std::vector<Effect>& effects_;
  RemoteTimers& timers_;
  SimDuration max_delay_;
};

/// Broadcaster shim standing in for the driver's AtomicBroadcastGroup: the
/// broadcast becomes an effect, sequencing happens where the sequencer is.
class RemoteBroadcaster final : public runtime::Broadcaster {
 public:
  RemoteBroadcaster(std::vector<Effect>& effects, std::vector<NodeId> members)
      : effects_(effects), members_(std::move(members)) {}

  void broadcast(NodeId from, runtime::MsgKind kind, const Bytes& payload) override;
  [[nodiscard]] const std::vector<NodeId>& members() const override {
    return members_;
  }

 private:
  std::vector<Effect>& effects_;
  std::vector<NodeId> members_;
};

/// Trace shim: events ride back as effects, the driver feeds them to its
/// RoundObserver, so watched-node accounting matches an in-process run.
class RemoteTraceSink final : public runtime::TraceSink {
 public:
  explicit RemoteTraceSink(std::vector<Effect>& effects) : effects_(effects) {}
  void on_event(const runtime::TraceEvent& ev) override;

 private:
  std::vector<Effect>& effects_;
};

/// The governor process behind one driver connection.
class NodeHost {
 public:
  /// `config` is normalized in place; throws ConfigError when it is not
  /// cluster-runnable or `governor_index` is out of range.
  ///
  /// `state_dir` (optional) attaches a FileStateStore so every commit is
  /// durable; `incarnation` > 0 marks a restarted process: the governor
  /// replays its snapshot + WAL tail before serving, its ReliableChannel
  /// epoch becomes the incarnation, and the welcome announces session
  /// resume with the recovered chain head.
  NodeHost(sim::ScenarioConfig config, std::size_t governor_index,
           const std::string& state_dir = "", std::uint32_t incarnation = 0);
  ~NodeHost();

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  /// Handshake on `fd` (taking ownership) and serve requests until
  /// kShutdown or EOF. Protocol violations notify the driver with a kError
  /// packet and rethrow.
  void serve(int fd);

  [[nodiscard]] const crypto::Hash256& genesis() const { return genesis_; }
  [[nodiscard]] protocol::Governor& governor() { return *governor_; }
  [[nodiscard]] ledger::ValidationOracle& oracle() { return oracle_; }

 private:
  void handle(SyncConn& conn, const wire::Frame& frame, bool& done);
  void reply_done(SyncConn& conn);
  [[nodiscard]] GovernorState state() const;
  [[nodiscard]] GovernorSnapshotData snapshot() const;
  [[nodiscard]] HeadInfo head() const;

  sim::ScenarioConfig config_;
  std::size_t index_;
  std::uint32_t incarnation_;
  crypto::Hash256 genesis_;
  sim::SystemModel model_;
  std::unique_ptr<storage::NodeStateStore> store_;
  std::vector<Effect> effects_;
  RemoteTimers timers_;
  RemoteTransport transport_;
  RemoteBroadcaster broadcaster_;
  RemoteTraceSink trace_;
  ledger::ValidationOracle oracle_;
  runtime::NodeContext ctx_;
  std::unique_ptr<protocol::Governor> governor_;
};

}  // namespace repchain::cluster
