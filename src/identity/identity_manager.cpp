#include "identity/identity_manager.hpp"

#include "common/errors.hpp"

namespace repchain::identity {

IdentityManager::IdentityManager(const crypto::PrivateSeed& ca_seed) : ca_key_(ca_seed) {}

Certificate IdentityManager::enroll(NodeId node, Role role, const crypto::PublicKey& key,
                                    SimTime issued_at) {
  if (certs_.contains(node)) {
    throw ConfigError("node already enrolled with the identity manager");
  }
  Certificate cert;
  cert.subject = node;
  cert.role = role;
  cert.public_key = key;
  cert.issued_at = issued_at;
  cert.serial = next_serial_++;
  cert.ca_signature = ca_key_.sign(cert.signed_preimage());
  certs_.emplace(node, cert);
  return cert;
}

bool IdentityManager::is_enrolled(NodeId node) const { return certs_.contains(node); }

const Certificate& IdentityManager::certificate(NodeId node) const {
  const auto it = certs_.find(node);
  if (it == certs_.end()) throw ConfigError("unknown node in identity manager");
  return it->second;
}

std::optional<Role> IdentityManager::role_of(NodeId node) const {
  const auto it = certs_.find(node);
  if (it == certs_.end()) return std::nullopt;
  return it->second.role;
}

bool IdentityManager::verify_certificate(const Certificate& cert) const {
  if (is_revoked(cert.subject)) return false;
  const auto it = certs_.find(cert.subject);
  if (it == certs_.end()) return false;
  // The registered certificate must match byte-for-byte (prevents swapping
  // a stale cert for the same subject).
  if (it->second.encode() != cert.encode()) return false;
  return crypto::verify(ca_key_.public_key(), cert.signed_preimage(), cert.ca_signature);
}

bool IdentityManager::authenticate(NodeId node, BytesView message,
                                   const crypto::Signature& sig) const {
  const crypto::PublicKey* key = verification_key(node);
  return key != nullptr && crypto::verify(*key, message, sig);
}

bool IdentityManager::authorize(NodeId node, Role required_role, BytesView message,
                                const crypto::Signature& sig) const {
  const crypto::PublicKey* key = verification_key(node, required_role);
  return key != nullptr && crypto::verify(*key, message, sig);
}

const crypto::PublicKey* IdentityManager::verification_key(
    NodeId node, std::optional<Role> required_role) const {
  if (is_revoked(node)) return nullptr;
  const auto it = certs_.find(node);
  if (it == certs_.end()) return nullptr;
  if (required_role && it->second.role != *required_role) return nullptr;
  return &it->second.public_key;
}

void IdentityManager::revoke(NodeId node) { revoked_.insert(node); }

bool IdentityManager::is_revoked(NodeId node) const { return revoked_.contains(node); }

}  // namespace repchain::identity
