#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "crypto/ed25519.hpp"

namespace repchain::identity {

/// Role of a network member, recorded by the Identity Manager (§3.1).
enum class Role : std::uint8_t {
  kProvider = 1,
  kCollector = 2,
  kGovernor = 3,
};

[[nodiscard]] const char* role_name(Role r);

/// Credential binding a node id and role to an Ed25519 public key, signed by
/// the Identity Manager's CA key. All protocol-level authentication
/// ultimately chains up to one of these.
struct Certificate {
  NodeId subject;
  Role role = Role::kProvider;
  crypto::PublicKey public_key;
  SimTime issued_at = 0;
  std::uint64_t serial = 0;
  crypto::Signature ca_signature;

  /// Canonical byte encoding of the signed fields (everything but the
  /// signature) — the CA's signing preimage.
  [[nodiscard]] Bytes signed_preimage() const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Certificate decode(BytesView data);
};

}  // namespace repchain::identity
