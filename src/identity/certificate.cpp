#include "identity/certificate.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"

namespace repchain::identity {

const char* role_name(Role r) {
  switch (r) {
    case Role::kProvider:
      return "provider";
    case Role::kCollector:
      return "collector";
    case Role::kGovernor:
      return "governor";
  }
  return "unknown";
}

Bytes Certificate::signed_preimage() const {
  BinaryWriter w;
  w.str("repchain-cert-v1");
  w.u32(subject.value());
  w.u8(static_cast<std::uint8_t>(role));
  w.raw(view(public_key.bytes));
  w.u64(issued_at);
  w.u64(serial);
  return std::move(w).take();
}

Bytes Certificate::encode() const {
  BinaryWriter w;
  w.u32(subject.value());
  w.u8(static_cast<std::uint8_t>(role));
  w.raw(view(public_key.bytes));
  w.u64(issued_at);
  w.u64(serial);
  w.raw(view(ca_signature.bytes));
  return std::move(w).take();
}

Certificate Certificate::decode(BytesView data) {
  BinaryReader r(data);
  Certificate c;
  c.subject = NodeId(r.u32());
  const auto role_raw = r.u8();
  if (role_raw < 1 || role_raw > 3) throw DecodeError("bad role in certificate");
  c.role = static_cast<Role>(role_raw);
  c.public_key.bytes = r.raw_array<32>();
  c.issued_at = r.u64();
  c.serial = r.u64();
  c.ca_signature.bytes = r.raw_array<64>();
  r.expect_done();
  return c;
}

}  // namespace repchain::identity
