#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.hpp"
#include "identity/certificate.hpp"

namespace repchain::identity {

/// The Identity Manager of §3.1: records members and roles, acts as a
/// Certificate Authority, and supplies the key registry that every
/// `verify(d, m)` call resolves against. In a permissioned network there is
/// exactly one IM, trusted by all parties.
class IdentityManager {
 public:
  explicit IdentityManager(const crypto::PrivateSeed& ca_seed);

  [[nodiscard]] const crypto::PublicKey& ca_public_key() const {
    return ca_key_.public_key();
  }

  /// Enroll a member: binds (node, role, key) in a CA-signed certificate.
  /// Throws ConfigError if the node is already enrolled.
  Certificate enroll(NodeId node, Role role, const crypto::PublicKey& key,
                     SimTime issued_at = 0);

  [[nodiscard]] bool is_enrolled(NodeId node) const;
  /// Throws ConfigError for unknown nodes.
  [[nodiscard]] const Certificate& certificate(NodeId node) const;
  [[nodiscard]] std::optional<Role> role_of(NodeId node) const;

  /// Certificate chain check: CA signature valid, subject enrolled with this
  /// exact certificate, and not revoked.
  [[nodiscard]] bool verify_certificate(const Certificate& cert) const;

  /// Authenticate `message` as signed by `node`'s enrolled key. False for
  /// unknown or revoked nodes — this is the inner step of the protocol's
  /// verify(d, m).
  [[nodiscard]] bool authenticate(NodeId node, BytesView message,
                                  const crypto::Signature& sig) const;

  /// Authorization: authenticate + role check.
  [[nodiscard]] bool authorize(NodeId node, Role required_role, BytesView message,
                               const crypto::Signature& sig) const;

  /// The non-cryptographic half of authenticate/authorize: the enrolled,
  /// unrevoked (and role-matching, when `required_role` is given) key for
  /// `node`, or nullptr. Batch-verification front-ends run this gate per
  /// item, collect the surviving (key, message, sig) triples into one
  /// crypto::verify_batch call, and so decide exactly what the per-item
  /// authenticate/authorize calls would have decided.
  [[nodiscard]] const crypto::PublicKey* verification_key(
      NodeId node, std::optional<Role> required_role = std::nullopt) const;

  void revoke(NodeId node);
  [[nodiscard]] bool is_revoked(NodeId node) const;

  [[nodiscard]] std::size_t member_count() const { return certs_.size(); }

 private:
  crypto::SigningKey ca_key_;
  std::unordered_map<NodeId, Certificate> certs_;
  std::unordered_set<NodeId> revoked_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace repchain::identity
