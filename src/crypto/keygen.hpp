#pragma once

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace repchain::crypto {

/// Draw a fresh Ed25519 seed from a deterministic Rng stream. The simulation
/// has no OS entropy source on purpose: all key material must be reproducible
/// from the scenario seed.
[[nodiscard]] inline PrivateSeed random_seed(Rng& rng) {
  PrivateSeed seed;
  Bytes b = rng.bytes(seed.bytes.size());
  std::copy(b.begin(), b.end(), seed.bytes.begin());
  return seed;
}

}  // namespace repchain::crypto
