#include "crypto/sc25519.hpp"

namespace repchain::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// L = 2^252 + 27742317777372353535851937790883648493, little-endian limbs.
constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0x0ULL,
                       0x1000000000000000ULL};

// Compare 256-bit values: a >= b.
bool ge256(const u64 a[4], const u64 b[4]) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// a -= b (256-bit), assumes a >= b.
void sub256(u64 a[4], const u64 b[4]) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 bi = b[i] + borrow;
    // borrow propagates iff b[i]+borrow overflowed, or a[i] < bi.
    const bool overflow = borrow != 0 && bi == 0;
    const u64 next_borrow = (overflow || a[i] < bi) ? 1 : 0;
    a[i] -= bi;
    borrow = next_borrow;
  }
}

// Reduce an n-bit little-endian limb array (bits processed MSB first) mod L,
// by binary long division. Value magnitude is unconstrained.
Scalar reduce_bits(const u64* limbs, int nlimbs) {
  u64 r[4] = {0, 0, 0, 0};
  for (int bit = nlimbs * 64 - 1; bit >= 0; --bit) {
    // r = (r << 1) | bit; r stays < L < 2^253 so the shift cannot overflow.
    u64 carry = (limbs[bit / 64] >> (bit % 64)) & 1;
    for (int i = 0; i < 4; ++i) {
      const u64 next = r[i] >> 63;
      r[i] = (r[i] << 1) | carry;
      carry = next;
    }
    if (ge256(r, kL)) sub256(r, kL);
  }
  Scalar s;
  for (int i = 0; i < 4; ++i) s.v[i] = r[i];
  return s;
}
}  // namespace

Scalar sc_from_bytes_wide(const ByteArray<64>& in) {
  u64 limbs[8];
  for (int i = 0; i < 8; ++i) {
    u64 v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
    limbs[i] = v;
  }
  return reduce_bits(limbs, 8);
}

Scalar sc_from_bytes(const ByteArray<32>& in) {
  u64 limbs[4];
  for (int i = 0; i < 4; ++i) {
    u64 v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
    limbs[i] = v;
  }
  return reduce_bits(limbs, 4);
}

bool sc_is_canonical(const ByteArray<32>& in) {
  u64 limbs[4];
  for (int i = 0; i < 4; ++i) {
    u64 v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
    limbs[i] = v;
  }
  return !ge256(limbs, kL);
}

ByteArray<32> sc_to_bytes(const Scalar& s) {
  ByteArray<32> out{};
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<std::uint8_t>(s.v[i] >> (8 * b));
    }
  }
  return out;
}

Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
  // 512-bit product a*b + c via schoolbook multiplication.
  u64 wide[8] = {};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)a.v[i] * b.v[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    wide[i + 4] += carry;
  }
  // wide += c.
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u128 cur = (u128)wide[i] + (i < 4 ? c.v[i] : 0) + carry;
    wide[i] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  return reduce_bits(wide, 8);
}

Scalar sc_add(const Scalar& a, const Scalar& b) {
  u64 limbs[5] = {};
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = (u128)a.v[i] + b.v[i] + carry;
    limbs[i] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  limbs[4] = static_cast<u64>(carry);
  u64 padded[8] = {limbs[0], limbs[1], limbs[2], limbs[3], limbs[4], 0, 0, 0};
  return reduce_bits(padded, 5);
}

Scalar sc_zero() { return Scalar{}; }

bool sc_equal(const Scalar& a, const Scalar& b) {
  u64 diff = 0;
  for (int i = 0; i < 4; ++i) diff |= a.v[i] ^ b.v[i];
  return diff == 0;
}

bool sc_is_zero(const Scalar& s) { return sc_equal(s, sc_zero()); }

}  // namespace repchain::crypto
