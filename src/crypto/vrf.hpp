#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/sha512.hpp"

namespace repchain::crypto {

/// Verifiable random function built from deterministic Ed25519 signatures:
///
///   proof  = Sign_sk(alpha)
///   output = SHA-512("repchain-vrf" || proof)
///
/// Verification checks the signature and recomputes the output. The paper
/// calls for the VRF of Micali–Rabin–Vadhan [27] in leader election; this
/// signature-based construction preserves the two properties the protocol
/// uses — pseudorandomness of the output to other parties before reveal, and
/// public verifiability that the output belongs to the claimed key — which is
/// sufficient in a permissioned deployment where keys are registered with the
/// Identity Manager (see DESIGN.md, substitutions).
struct VrfResult {
  Hash512 output{};
  Signature proof{};
};

/// Evaluate the VRF on input alpha.
[[nodiscard]] VrfResult vrf_evaluate(const SigningKey& key, BytesView alpha);

/// Verify a proof for alpha under pub; returns the output iff valid.
[[nodiscard]] std::optional<Hash512> vrf_verify(const PublicKey& pub, BytesView alpha,
                                                const Signature& proof);

/// First 8 bytes of the VRF output as a big-endian integer — the "hash value"
/// compared in leader election (least wins).
[[nodiscard]] std::uint64_t vrf_output_to_u64(const Hash512& output);

}  // namespace repchain::crypto
