#include "crypto/vrf.hpp"

namespace repchain::crypto {

namespace {
constexpr std::string_view kDomain = "repchain-vrf";

Hash512 output_from_proof(const Signature& proof) {
  return sha512_concat(
      {BytesView(reinterpret_cast<const std::uint8_t*>(kDomain.data()), kDomain.size()),
       view(proof.bytes)});
}
}  // namespace

VrfResult vrf_evaluate(const SigningKey& key, BytesView alpha) {
  VrfResult r;
  r.proof = key.sign(alpha);
  r.output = output_from_proof(r.proof);
  return r;
}

std::optional<Hash512> vrf_verify(const PublicKey& pub, BytesView alpha,
                                  const Signature& proof) {
  if (!verify(pub, alpha, proof)) return std::nullopt;
  return output_from_proof(proof);
}

std::uint64_t vrf_output_to_u64(const Hash512& output) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | output[i];
  return v;
}

}  // namespace repchain::crypto
