#include "crypto/ed25519.hpp"

#include "crypto/sha512.hpp"

namespace repchain::crypto {

namespace {
/// 2d, cached for the unified addition formula.
const Fe& fe_2d() {
  static const Fe k2d = fe_add(fe_edwards_d(), fe_edwards_d());
  return k2d;
}

Scalar clamp_scalar(ByteArray<32> a) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
  // The clamped value is < 2^255; reduce mod L for use with our scalar type.
  return sc_from_bytes(a);
}
}  // namespace

Point point_identity() {
  Point p;
  p.X = fe_zero();
  p.Y = fe_one();
  p.Z = fe_one();
  p.T = fe_zero();
  return p;
}

const Point& point_base() {
  static const Point kBase = [] {
    // y = 4/5 mod p with the even-x root, per RFC 8032.
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    ByteArray<32> enc = fe_to_bytes(y);  // sign bit 0 -> even x
    const auto p = point_decompress(enc);
    return *p;
  }();
  return kBase;
}

Point point_add(const Point& p, const Point& q) {
  // Unified addition (add-2008-hwcd-3 for a = -1); also valid for doubling.
  const Fe a = fe_mul(fe_sub(p.Y, p.X), fe_sub(q.Y, q.X));
  const Fe b = fe_mul(fe_add(p.Y, p.X), fe_add(q.Y, q.X));
  const Fe c = fe_mul(fe_mul(p.T, fe_2d()), q.T);
  const Fe d = fe_mul(fe_add(p.Z, p.Z), q.Z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  Point r;
  r.X = fe_mul(e, f);
  r.Y = fe_mul(g, h);
  r.T = fe_mul(e, h);
  r.Z = fe_mul(f, g);
  return r;
}

Point point_double(const Point& p) { return point_add(p, p); }

Point point_neg(const Point& p) {
  Point r = p;
  r.X = fe_neg(p.X);
  r.T = fe_neg(p.T);
  return r;
}

Point point_scalar_mul(const Point& p, const Scalar& s) {
  const ByteArray<32> bits = sc_to_bytes(s);
  Point acc = point_identity();
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      acc = point_double(acc);
      if ((bits[byte] >> bit) & 1) acc = point_add(acc, p);
    }
  }
  return acc;
}

Point point_base_mul(const Scalar& s) { return point_scalar_mul(point_base(), s); }

Point point_double_scalar_mul(const Scalar& a, const Point& p, const Scalar& b) {
  const ByteArray<32> abits = sc_to_bytes(a);
  const ByteArray<32> bbits = sc_to_bytes(b);
  // Table indexed by (bit_a, bit_b): 01 -> B, 10 -> P, 11 -> P + B.
  const Point& base = point_base();
  const Point p_plus_b = point_add(p, base);

  Point acc = point_identity();
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      acc = point_double(acc);
      const int ba = (abits[byte] >> bit) & 1;
      const int bb = (bbits[byte] >> bit) & 1;
      if (ba && bb) {
        acc = point_add(acc, p_plus_b);
      } else if (ba) {
        acc = point_add(acc, p);
      } else if (bb) {
        acc = point_add(acc, base);
      }
    }
  }
  return acc;
}

bool point_equal(const Point& p, const Point& q) {
  // x1/z1 == x2/z2  <=>  x1*z2 == x2*z1, same for y.
  const Fe lx = fe_mul(p.X, q.Z);
  const Fe rx = fe_mul(q.X, p.Z);
  const Fe ly = fe_mul(p.Y, q.Z);
  const Fe ry = fe_mul(q.Y, p.Z);
  return fe_equal(lx, rx) && fe_equal(ly, ry);
}

bool point_is_identity(const Point& p) { return point_equal(p, point_identity()); }

ByteArray<32> point_compress(const Point& p) {
  const Fe zinv = fe_invert(p.Z);
  const Fe x = fe_mul(p.X, zinv);
  const Fe y = fe_mul(p.Y, zinv);
  ByteArray<32> out = fe_to_bytes(y);
  if (fe_is_negative(x)) out[31] |= 0x80;
  return out;
}

std::optional<Point> point_decompress(const ByteArray<32>& in) {
  const bool x_sign = (in[31] & 0x80) != 0;
  const Fe y = fe_from_bytes(in);  // drops bit 255

  // Solve x^2 = (y^2 - 1) / (d*y^2 + 1).
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(fe_edwards_d(), y2), fe_one());

  // Candidate root x = u * v^3 * (u * v^7)^((p-5)/8).
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (fe_equal(vx2, fe_neg(u))) {
      x = fe_mul(x, fe_sqrtm1());
    } else {
      return std::nullopt;  // not a curve point
    }
  }
  if (fe_is_zero(x) && x_sign) return std::nullopt;  // -0 is not canonical
  if (fe_is_negative(x) != x_sign) x = fe_neg(x);

  Point p;
  p.X = x;
  p.Y = y;
  p.Z = fe_one();
  p.T = fe_mul(x, y);
  return p;
}

SigningKey::SigningKey(const PrivateSeed& seed) {
  const Hash512 h = Sha512::hash(view(seed.bytes));
  ByteArray<32> lower{};
  for (int i = 0; i < 32; ++i) lower[i] = h[i];
  for (int i = 0; i < 32; ++i) prefix_[i] = h[32 + i];
  secret_scalar_ = clamp_scalar(lower);
  public_.bytes = point_compress(point_base_mul(secret_scalar_));
}

Signature SigningKey::sign(BytesView message) const {
  // r = SHA-512(prefix || M) mod L.
  const Hash512 rh = sha512_concat({view(prefix_), message});
  ByteArray<64> rh_arr{};
  std::copy(rh.begin(), rh.end(), rh_arr.begin());
  const Scalar r = sc_from_bytes_wide(rh_arr);

  const ByteArray<32> r_enc = point_compress(point_base_mul(r));

  // k = SHA-512(enc(R) || pub || M) mod L.
  const Hash512 kh = sha512_concat({view(r_enc), view(public_.bytes), message});
  ByteArray<64> kh_arr{};
  std::copy(kh.begin(), kh.end(), kh_arr.begin());
  const Scalar k = sc_from_bytes_wide(kh_arr);

  const Scalar s = sc_muladd(k, secret_scalar_, r);
  const ByteArray<32> s_enc = sc_to_bytes(s);

  Signature sig;
  std::copy(r_enc.begin(), r_enc.end(), sig.bytes.begin());
  std::copy(s_enc.begin(), s_enc.end(), sig.bytes.begin() + 32);
  return sig;
}

bool verify(const PublicKey& pub, BytesView message, const Signature& sig) {
  ByteArray<32> r_enc{}, s_enc{};
  std::copy(sig.bytes.begin(), sig.bytes.begin() + 32, r_enc.begin());
  std::copy(sig.bytes.begin() + 32, sig.bytes.end(), s_enc.begin());

  if (!sc_is_canonical(s_enc)) return false;
  const Scalar s = sc_from_bytes(s_enc);

  const auto r = point_decompress(r_enc);
  if (!r) return false;
  const auto a = point_decompress(pub.bytes);
  if (!a) return false;

  const Hash512 kh = sha512_concat({view(r_enc), view(pub.bytes), message});
  ByteArray<64> kh_arr{};
  std::copy(kh.begin(), kh.end(), kh_arr.begin());
  const Scalar k = sc_from_bytes_wide(kh_arr);

  // Check [S]B == R + [k]A, rearranged as [k](-A) + [S]B == R so one
  // interleaved double-scalar ladder covers both multiplications.
  const Point lhs = point_double_scalar_mul(k, point_neg(*a), s);
  return point_equal(lhs, *r);
}

}  // namespace repchain::crypto
