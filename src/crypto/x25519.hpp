#pragma once

#include "common/bytes.hpp"
#include "crypto/chacha20poly1305.hpp"
#include "crypto/fe25519.hpp"

namespace repchain::crypto {

/// X25519 Diffie-Hellman (RFC 7748) over the Montgomery form of
/// curve25519, implemented with the constant-structure Montgomery ladder on
/// top of the same field arithmetic as the Ed25519 module.
///
/// Gives any two enrolled parties a shared payload-sealing key (see
/// chacha20poly1305.hpp) from their published DH public keys — the key
/// agreement behind the private-payload extension. Correctness is
/// cross-validated in the tests against the independently-tested Edwards
/// implementation via the birational map u = (1+y)/(1-y).
struct X25519PublicKey {
  ByteArray<32> bytes{};
};

struct X25519SecretKey {
  ByteArray<32> bytes{};
};

/// The RFC 7748 scalar clamp.
[[nodiscard]] ByteArray<32> x25519_clamp(ByteArray<32> k);

/// Scalar multiplication on the Montgomery u-line: X25519(k, u).
[[nodiscard]] ByteArray<32> x25519(const ByteArray<32>& scalar, const ByteArray<32>& u);

/// Public key = X25519(clamp(secret), 9).
[[nodiscard]] X25519PublicKey x25519_public(const X25519SecretKey& secret);

/// Shared secret = X25519(clamp(my_secret), their_public). Returns the raw
/// u-coordinate; hash before use as a symmetric key (see derive_aead_key).
[[nodiscard]] ByteArray<32> x25519_shared(const X25519SecretKey& my_secret,
                                          const X25519PublicKey& their_public);

/// HKDF-style derivation of an AEAD key from a DH shared secret and a
/// context label.
[[nodiscard]] AeadKey derive_aead_key(const ByteArray<32>& shared_secret,
                                      BytesView label);

}  // namespace repchain::crypto
