#include "crypto/merkle.hpp"

#include "common/errors.hpp"

namespace repchain::crypto {

namespace {
constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;
}  // namespace

Hash256 MerkleTree::hash_leaf(BytesView leaf) {
  return sha256_concat({BytesView(&kLeafTag, 1), leaf});
}

Hash256 MerkleTree::hash_node(const Hash256& left, const Hash256& right) {
  return sha256_concat({BytesView(&kNodeTag, 1), view(left), view(right)});
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Hash256{};
    return;
  }
  std::vector<Hash256> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(level);

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      // Odd node at the end is paired with itself (Bitcoin-style duplication).
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_node(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) throw ConfigError("MerkleTree::prove index out of range");
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleStep step;
    step.sibling_on_left = (pos % 2 == 1);
    step.sibling = sibling < level.size() ? level[sibling] : level[pos];
    proof.steps.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& root, BytesView leaf, const MerkleProof& proof) {
  Hash256 acc = hash_leaf(leaf);
  for (const auto& step : proof.steps) {
    acc = step.sibling_on_left ? hash_node(step.sibling, acc) : hash_node(acc, step.sibling);
  }
  return ct_equal(view(acc), view(root));
}

}  // namespace repchain::crypto
