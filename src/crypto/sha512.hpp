#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repchain::crypto {

/// SHA-512 digest (FIPS 180-4), implemented from scratch. Required by the
/// Ed25519 signature scheme and used to derive VRF outputs.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = ByteArray<kDigestSize>;

  Sha512();

  Sha512& update(BytesView data);
  [[nodiscard]] Digest finish();

  [[nodiscard]] static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::uint64_t state_[8];
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

using Hash512 = Sha512::Digest;

/// Hash arbitrary many parts as a single message.
[[nodiscard]] Hash512 sha512_concat(std::initializer_list<BytesView> parts);

}  // namespace repchain::crypto
