#include "crypto/chacha20poly1305.hpp"

#include <cstring>

namespace repchain::crypto {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

u32 rotl32(u32 x, int n) { return (x << n) | (x >> (32 - n)); }

u32 load32_le(const std::uint8_t* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

void store32_le(std::uint8_t* p, u32 v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(u32& a, u32& b, u32& c, u32& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

/// One 64-byte ChaCha20 block (RFC 8439 §2.3).
void chacha20_block(const AeadKey& key, const AeadNonce& nonce, u32 counter,
                    std::uint8_t out[64]) {
  u32 state[16];
  state[0] = 0x61707865;  // "expa"
  state[1] = 0x3320646e;  // "nd 3"
  state[2] = 0x79622d32;  // "2-by"
  state[3] = 0x6b206574;  // "te k"
  for (int i = 0; i < 8; ++i) state[4 + i] = load32_le(key.bytes.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32_le(nonce.bytes.data() + 4 * i);

  u32 w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) store32_le(out + 4 * i, w[i] + state[i]);
}

}  // namespace

Bytes chacha20_xor(const AeadKey& key, const AeadNonce& nonce, u32 counter,
                   BytesView data) {
  Bytes out(data.begin(), data.end());
  std::uint8_t block[64];
  std::size_t off = 0;
  while (off < out.size()) {
    chacha20_block(key, nonce, counter++, block);
    const std::size_t take = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] ^= block[i];
    off += take;
  }
  return out;
}

ByteArray<16> poly1305(const ByteArray<32>& key, BytesView message) {
  // r (clamped) and s halves of the one-time key; accumulator in radix 2^26
  // over 2^130 - 5 (the standard 5x26 implementation).
  u32 r0 = load32_le(key.data() + 0) & 0x3ffffff;
  u32 r1 = (load32_le(key.data() + 3) >> 2) & 0x3ffff03;
  u32 r2 = (load32_le(key.data() + 6) >> 4) & 0x3ffc0ff;
  u32 r3 = (load32_le(key.data() + 9) >> 6) & 0x3f03fff;
  u32 r4 = (load32_le(key.data() + 12) >> 8) & 0x00fffff;

  const u32 s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  u32 h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t off = 0;
  while (off < message.size()) {
    std::uint8_t block[17] = {};
    const std::size_t take = std::min<std::size_t>(16, message.size() - off);
    std::memcpy(block, message.data() + off, take);
    block[take] = 1;  // the 2^(8*take) bit
    off += take;

    // Load the 17-byte block into 5x26 limbs.
    const u32 t0 = load32_le(block + 0);
    const u32 t1 = load32_le(block + 4);
    const u32 t2 = load32_le(block + 8);
    const u32 t3 = load32_le(block + 12);
    const u32 t4 = block[16];

    h0 += t0 & 0x3ffffff;
    h1 += static_cast<u32>(((static_cast<u64>(t1) << 32 | t0) >> 26) & 0x3ffffff);
    h2 += static_cast<u32>(((static_cast<u64>(t2) << 32 | t1) >> 20) & 0x3ffffff);
    h3 += static_cast<u32>(((static_cast<u64>(t3) << 32 | t2) >> 14) & 0x3ffffff);
    h4 += static_cast<u32>((static_cast<u64>(t4) << 24 | (t3 >> 8)));

    // h *= r (mod 2^130 - 5).
    const u64 d0 = static_cast<u64>(h0) * r0 + static_cast<u64>(h1) * s4 +
                   static_cast<u64>(h2) * s3 + static_cast<u64>(h3) * s2 +
                   static_cast<u64>(h4) * s1;
    u64 d1 = static_cast<u64>(h0) * r1 + static_cast<u64>(h1) * r0 +
             static_cast<u64>(h2) * s4 + static_cast<u64>(h3) * s3 +
             static_cast<u64>(h4) * s2;
    u64 d2 = static_cast<u64>(h0) * r2 + static_cast<u64>(h1) * r1 +
             static_cast<u64>(h2) * r0 + static_cast<u64>(h3) * s4 +
             static_cast<u64>(h4) * s3;
    u64 d3 = static_cast<u64>(h0) * r3 + static_cast<u64>(h1) * r2 +
             static_cast<u64>(h2) * r1 + static_cast<u64>(h3) * r0 +
             static_cast<u64>(h4) * s4;
    u64 d4 = static_cast<u64>(h0) * r4 + static_cast<u64>(h1) * r3 +
             static_cast<u64>(h2) * r2 + static_cast<u64>(h3) * r1 +
             static_cast<u64>(h4) * r0;

    u64 c;
    c = d0 >> 26; h0 = static_cast<u32>(d0) & 0x3ffffff; d1 += c;
    c = d1 >> 26; h1 = static_cast<u32>(d1) & 0x3ffffff; d2 += c;
    c = d2 >> 26; h2 = static_cast<u32>(d2) & 0x3ffffff; d3 += c;
    c = d3 >> 26; h3 = static_cast<u32>(d3) & 0x3ffffff; d4 += c;
    c = d4 >> 26; h4 = static_cast<u32>(d4) & 0x3ffffff;
    h0 += static_cast<u32>(c) * 5;
    c = h0 >> 26; h0 &= 0x3ffffff;
    h1 += static_cast<u32>(c);
  }

  // Full reduction: h mod 2^130 - 5.
  u32 c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
  c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
  c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
  c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
  c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;

  // Compute h + -p (i.e. h - (2^130 - 5)) and select if non-negative.
  u32 g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
  u32 g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
  u32 g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
  u32 g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
  const u32 g4 = h4 + c;
  if (g4 >> 26) {  // h >= p: use g
    h0 = g0; h1 = g1; h2 = g2; h3 = g3; h4 = g4 & 0x3ffffff;
  }

  // Serialize h and add s (mod 2^128).
  const u32 hw0 = h0 | (h1 << 26);
  const u32 hw1 = (h1 >> 6) | (h2 << 20);
  const u32 hw2 = (h2 >> 12) | (h3 << 14);
  const u32 hw3 = (h3 >> 18) | (h4 << 8);

  u64 f;
  ByteArray<16> tag{};
  f = static_cast<u64>(hw0) + load32_le(key.data() + 16);
  store32_le(tag.data() + 0, static_cast<u32>(f));
  f = static_cast<u64>(hw1) + load32_le(key.data() + 20) + (f >> 32);
  store32_le(tag.data() + 4, static_cast<u32>(f));
  f = static_cast<u64>(hw2) + load32_le(key.data() + 24) + (f >> 32);
  store32_le(tag.data() + 8, static_cast<u32>(f));
  f = static_cast<u64>(hw3) + load32_le(key.data() + 28) + (f >> 32);
  store32_le(tag.data() + 12, static_cast<u32>(f));
  return tag;
}

namespace {

ByteArray<16> aead_tag(const AeadKey& key, const AeadNonce& nonce, BytesView ciphertext,
                       BytesView aad) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  std::uint8_t block0[64];
  chacha20_block(key, nonce, 0, block0);
  ByteArray<32> otk{};
  std::memcpy(otk.data(), block0, 32);

  // MAC input: aad || pad16 || ct || pad16 || len(aad) || len(ct), LE u64s.
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 48);
  append(mac_data, aad);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  append(mac_data, ciphertext);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(static_cast<std::uint8_t>(static_cast<u64>(aad.size()) >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(
        static_cast<std::uint8_t>(static_cast<u64>(ciphertext.size()) >> (8 * i)));
  }
  return poly1305(otk, mac_data);
}

}  // namespace

Bytes aead_seal(const AeadKey& key, const AeadNonce& nonce, BytesView plaintext,
                BytesView aad) {
  Bytes out = chacha20_xor(key, nonce, 1, plaintext);
  const ByteArray<16> tag = aead_tag(key, nonce, out, aad);
  append(out, view(tag));
  return out;
}

std::optional<Bytes> aead_open(const AeadKey& key, const AeadNonce& nonce,
                               BytesView sealed, BytesView aad) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const BytesView ciphertext(sealed.data(), sealed.size() - kAeadTagSize);
  const BytesView tag(sealed.data() + ciphertext.size(), kAeadTagSize);

  const ByteArray<16> expected = aead_tag(key, nonce, ciphertext, aad);
  if (!ct_equal(view(expected), tag)) return std::nullopt;
  return chacha20_xor(key, nonce, 1, ciphertext);
}

}  // namespace repchain::crypto
