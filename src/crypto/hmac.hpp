#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace repchain::crypto {

/// HMAC (RFC 2104) instantiated over SHA-256. Used by the identity manager
/// for credential binding where a full signature is unnecessary.
[[nodiscard]] Hash256 hmac_sha256(BytesView key, BytesView message);

/// HMAC over SHA-512.
[[nodiscard]] Hash512 hmac_sha512(BytesView key, BytesView message);

/// HKDF-style expand (single-block): derive labeled sub-keys from a master
/// secret; used to derive per-node key material deterministically in tests
/// and examples.
[[nodiscard]] Hash256 derive_key(BytesView master, BytesView label);

}  // namespace repchain::crypto
