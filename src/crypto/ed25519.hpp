#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/fe25519.hpp"
#include "crypto/sc25519.hpp"

namespace repchain::crypto {

/// Point on edwards25519 in extended twisted Edwards coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
struct Point {
  Fe X, Y, Z, T;
};

[[nodiscard]] Point point_identity();
/// The standard base point B (y = 4/5, even x).
[[nodiscard]] const Point& point_base();

[[nodiscard]] Point point_add(const Point& p, const Point& q);
[[nodiscard]] Point point_double(const Point& p);
[[nodiscard]] Point point_neg(const Point& p);

/// [s]P by double-and-add over the 253-bit scalar.
[[nodiscard]] Point point_scalar_mul(const Point& p, const Scalar& s);
/// [s]B.
[[nodiscard]] Point point_base_mul(const Scalar& s);

/// [a]P + [b]B with Strauss interleaving (one shared doubling chain and a
/// 3-entry table), ~1.7x faster than two independent ladders. This is the
/// verification hot path ([k](-A) + [S]B).
[[nodiscard]] Point point_double_scalar_mul(const Scalar& a, const Point& p,
                                            const Scalar& b);

/// Projective equality (x1 == x2 and y1 == y2 as affine points).
[[nodiscard]] bool point_equal(const Point& p, const Point& q);
[[nodiscard]] bool point_is_identity(const Point& p);

/// RFC 8032 point compression: 255-bit y plus the sign bit of x.
[[nodiscard]] ByteArray<32> point_compress(const Point& p);
/// Decompression; nullopt for encodings that are not on the curve.
[[nodiscard]] std::optional<Point> point_decompress(const ByteArray<32>& in);

/// 32-byte Ed25519 seed (the RFC 8032 private key).
struct PrivateSeed {
  ByteArray<32> bytes{};
};

/// Compressed public key.
struct PublicKey {
  ByteArray<32> bytes{};
  auto operator<=>(const PublicKey&) const = default;
};

/// 64-byte signature: R (32) || S (32).
struct Signature {
  ByteArray<64> bytes{};
  auto operator<=>(const Signature&) const = default;
};

/// Signing key with the expanded secret cached; deterministic signatures per
/// RFC 8032 (no signing-time randomness — also what makes the VRF well
/// defined, see vrf.hpp).
class SigningKey {
 public:
  explicit SigningKey(const PrivateSeed& seed);

  [[nodiscard]] const PublicKey& public_key() const { return public_; }
  [[nodiscard]] Signature sign(BytesView message) const;

 private:
  Scalar secret_scalar_;
  ByteArray<32> prefix_{};
  PublicKey public_;
};

/// Verify an Ed25519 signature. Returns false (never throws) on any
/// malformed input: non-canonical S, off-curve R or A.
[[nodiscard]] bool verify(const PublicKey& pub, BytesView message, const Signature& sig);

}  // namespace repchain::crypto
