#include "crypto/fe25519.hpp"

namespace repchain::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

// 2p in radix-2^51 (used to keep subtraction non-negative).
constexpr u64 kTwoP0 = 0x0fffffffffffdaULL;  // 2*(2^51 - 19)
constexpr u64 kTwoP1234 = 0x0ffffffffffffeULL;  // 2*(2^51 - 1)

// Propagate carries so every limb fits in 51 bits (+ tiny excess in limb 0
// from the *19 wrap, resolved by a second pass where needed).
Fe carry(const Fe& in) {
  Fe f = in;
  u64 c;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
  c = f.v[1] >> 51; f.v[1] &= kMask51; f.v[2] += c;
  c = f.v[2] >> 51; f.v[2] &= kMask51; f.v[3] += c;
  c = f.v[3] >> 51; f.v[3] &= kMask51; f.v[4] += c;
  c = f.v[4] >> 51; f.v[4] &= kMask51; f.v[0] += c * 19;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
  return f;
}
}  // namespace

Fe fe_zero() { return Fe{}; }

Fe fe_one() {
  Fe f;
  f.v[0] = 1;
  return f;
}

Fe fe_from_u64(u64 x) {
  Fe f;
  f.v[0] = x & kMask51;
  f.v[1] = x >> 51;
  return f;
}

Fe fe_from_bytes(const ByteArray<32>& in) {
  auto load64 = [&](int i) {
    u64 v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | in[i + b];
    return v;
  };
  const u64 w0 = load64(0), w1 = load64(8), w2 = load64(16), w3 = load64(24);
  Fe f;
  f.v[0] = w0 & kMask51;
  f.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
  f.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
  f.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
  f.v[4] = (w3 >> 12) & kMask51;  // also drops bit 255
  return f;
}

ByteArray<32> fe_to_bytes(const Fe& in) {
  Fe f = carry(carry(in));
  // Value is now < 2^255; subtract p once if >= p = 2^255 - 19.
  const bool ge_p = f.v[0] >= (kMask51 - 18) && f.v[1] == kMask51 && f.v[2] == kMask51 &&
                    f.v[3] == kMask51 && f.v[4] == kMask51;
  if (ge_p) {
    f.v[0] -= kMask51 - 18;
    f.v[1] = f.v[2] = f.v[3] = f.v[4] = 0;
  }
  const u64 w0 = f.v[0] | (f.v[1] << 51);
  const u64 w1 = (f.v[1] >> 13) | (f.v[2] << 38);
  const u64 w2 = (f.v[2] >> 26) | (f.v[3] << 25);
  const u64 w3 = (f.v[3] >> 39) | (f.v[4] << 12);
  ByteArray<32> out{};
  auto store64 = [&](int i, u64 v) {
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
  };
  store64(0, w0);
  store64(8, w1);
  store64(16, w2);
  store64(24, w3);
  return out;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe f;
  for (int i = 0; i < 5; ++i) f.v[i] = a.v[i] + b.v[i];
  return carry(f);
}

Fe fe_sub(const Fe& a, const Fe& b) {
  Fe f;
  f.v[0] = a.v[0] + kTwoP0 - b.v[0];
  for (int i = 1; i < 5; ++i) f.v[i] = a.v[i] + kTwoP1234 - b.v[i];
  return carry(f);
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 +
            (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 +
            (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 +
            (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe f;
  u64 c;
  c = static_cast<u64>(t0 >> 51); f.v[0] = static_cast<u64>(t0) & kMask51; t1 += c;
  c = static_cast<u64>(t1 >> 51); f.v[1] = static_cast<u64>(t1) & kMask51; t2 += c;
  c = static_cast<u64>(t2 >> 51); f.v[2] = static_cast<u64>(t2) & kMask51; t3 += c;
  c = static_cast<u64>(t3 >> 51); f.v[3] = static_cast<u64>(t3) & kMask51; t4 += c;
  c = static_cast<u64>(t4 >> 51); f.v[4] = static_cast<u64>(t4) & kMask51;
  f.v[0] += c * 19;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
  return f;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_pow(const Fe& a, const ByteArray<32>& exponent_le) {
  Fe result = fe_one();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((exponent_le[byte] >> bit) & 1) {
        result = fe_mul(result, a);
        started = true;
      }
    }
  }
  return result;
}

namespace {
ByteArray<32> exponent_all_ff(std::uint8_t low, std::uint8_t high) {
  ByteArray<32> e{};
  e[0] = low;
  for (int i = 1; i < 31; ++i) e[i] = 0xff;
  e[31] = high;
  return e;
}
}  // namespace

Fe fe_invert(const Fe& a) {
  // p - 2 = 2^255 - 21.
  static const ByteArray<32> kExp = exponent_all_ff(0xeb, 0x7f);
  return fe_pow(a, kExp);
}

Fe fe_pow22523(const Fe& a) {
  // (p - 5) / 8 = 2^252 - 3.
  static const ByteArray<32> kExp = exponent_all_ff(0xfd, 0x0f);
  return fe_pow(a, kExp);
}

bool fe_equal(const Fe& a, const Fe& b) {
  const auto ea = fe_to_bytes(a);
  const auto eb = fe_to_bytes(b);
  return ct_equal(view(ea), view(eb));
}

bool fe_is_zero(const Fe& a) { return fe_equal(a, fe_zero()); }

bool fe_is_negative(const Fe& a) { return (fe_to_bytes(a)[0] & 1) != 0; }

const Fe& fe_sqrtm1() {
  // 2 is a quadratic non-residue mod p (p = 5 mod 8), so 2^((p-1)/4) squares
  // to -1. (p - 1) / 4 = 2^253 - 5.
  static const Fe kSqrtM1 = [] {
    const ByteArray<32> exp = exponent_all_ff(0xfb, 0x1f);
    return fe_pow(fe_from_u64(2), exp);
  }();
  return kSqrtM1;
}

const Fe& fe_edwards_d() {
  static const Fe kD = [] {
    const Fe num = fe_neg(fe_from_u64(121665));
    const Fe den = fe_from_u64(121666);
    return fe_mul(num, fe_invert(den));
  }();
  return kD;
}

}  // namespace repchain::crypto
