#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repchain::crypto {

/// Scalar modulo the Ed25519 group order
/// L = 2^252 + 27742317777372353535851937790883648493,
/// stored as four little-endian 64-bit limbs, always fully reduced (< L).
struct Scalar {
  std::uint64_t v[4] = {0, 0, 0, 0};
};

/// Reduce a 64-byte little-endian integer mod L (the SHA-512-to-scalar step
/// of RFC 8032 signing/verification).
[[nodiscard]] Scalar sc_from_bytes_wide(const ByteArray<64>& in);

/// Interpret 32 little-endian bytes and reduce mod L.
[[nodiscard]] Scalar sc_from_bytes(const ByteArray<32>& in);

/// True iff the 32-byte encoding is already canonical (< L); RFC 8032
/// verification rejects signatures whose S part is not.
[[nodiscard]] bool sc_is_canonical(const ByteArray<32>& in);

[[nodiscard]] ByteArray<32> sc_to_bytes(const Scalar& s);

/// (a * b + c) mod L — the S = r + k*a step of signing.
[[nodiscard]] Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c);

[[nodiscard]] Scalar sc_add(const Scalar& a, const Scalar& b);
[[nodiscard]] Scalar sc_zero();
[[nodiscard]] bool sc_equal(const Scalar& a, const Scalar& b);
[[nodiscard]] bool sc_is_zero(const Scalar& s);

}  // namespace repchain::crypto
