#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace repchain::crypto {

/// One signature in a batch.
struct BatchItem {
  PublicKey pub;
  Bytes message;
  Signature sig;
};

/// Sum of [s_i]P_i with a single shared doubling chain (interleaved
/// Strauss, 4-bit windows). For n points this costs ~252 doublings +
/// n*(14 table + <=64 window) additions, versus n*256 doublings for
/// independent ladders; 128-bit scalars skip their zero windows for free.
[[nodiscard]] Point point_multi_scalar_mul(
    std::span<const std::pair<Scalar, Point>> terms);

/// Batch signature verification with random linear combination:
///
///   (sum_i z_i S_i) B  ==  sum_i z_i R_i  +  sum_i z_i k_i A_i
///
/// with fresh random 128-bit coefficients z_i, so corrupted signatures
/// cannot cancel each other out except with negligible probability. Returns
/// true iff every signature in the batch is valid; on false the caller
/// falls back to per-signature verification to locate offenders (see
/// verify_batch_detailed).
///
/// This accelerates bulk ingestion paths (a governor verifying a round's
/// uploads); correctness-critical single checks keep using verify().
[[nodiscard]] bool verify_batch(std::span<const BatchItem> items, Rng& rng);

/// Batch-then-fallback: one multi-scalar check; if it fails, per-item
/// verification pinpoints the invalid signatures. Returns per-item validity.
[[nodiscard]] std::vector<bool> verify_batch_detailed(std::span<const BatchItem> items,
                                                      Rng& rng);

}  // namespace repchain::crypto
