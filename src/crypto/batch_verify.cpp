#include "crypto/batch_verify.hpp"

#include "crypto/sha512.hpp"

namespace repchain::crypto {

namespace {

/// 4-bit window of scalar `b` at window index `w` (window 0 = least
/// significant nibble).
inline unsigned window_at(const ByteArray<32>& b, int w) {
  const unsigned byte = b[static_cast<std::size_t>(w >> 1)];
  return (w & 1) ? (byte >> 4) : (byte & 0xF);
}

}  // namespace

Point point_multi_scalar_mul(std::span<const std::pair<Scalar, Point>> terms) {
  const std::size_t n = terms.size();
  if (n == 0) return point_identity();

  // Interleaved Strauss with 4-bit windows: one shared doubling chain for
  // all terms (4 doublings per window step), and per term a table of the
  // first 15 multiples so each nonzero window costs a single addition. For
  // n terms this is ~252 doublings + n*(14 table adds + <=64 window adds),
  // versus 256 doublings *per term* for independent ladders — and short
  // scalars (the 128-bit batch coefficients) skip their zero windows for
  // free.
  std::vector<ByteArray<32>> bits(n);
  std::vector<std::array<Point, 15>> table(n);
  int top = -1;  // highest window index that is nonzero in any term
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = sc_to_bytes(terms[i].first);
    table[i][0] = terms[i].second;
    table[i][1] = point_double(table[i][0]);
    for (std::size_t j = 2; j < 15; ++j) {
      table[i][j] = point_add(table[i][j - 1], table[i][0]);
    }
    for (int w = 63; w > top; --w) {
      if (window_at(bits[i], w) != 0) {
        top = w;
        break;
      }
    }
  }

  Point acc = point_identity();
  for (int w = top; w >= 0; --w) {
    if (w != top) {
      acc = point_double(acc);
      acc = point_double(acc);
      acc = point_double(acc);
      acc = point_double(acc);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned nibble = window_at(bits[i], w);
      if (nibble != 0) acc = point_add(acc, table[i][nibble - 1]);
    }
  }
  return acc;
}

namespace {

/// Random 128-bit scalar (top 16 bytes zero): small enough to keep the
/// combination cheap, large enough that adversarial cancellation has
/// probability ~2^-128.
Scalar random_z(Rng& rng) {
  ByteArray<32> b{};
  const Bytes raw = rng.bytes(16);
  std::copy(raw.begin(), raw.end(), b.begin());
  Scalar z = sc_from_bytes(b);
  if (sc_is_zero(z)) {
    b[0] = 1;  // degenerate draw: force non-zero
    z = sc_from_bytes(b);
  }
  return z;
}

struct DecodedItem {
  Scalar s;
  Point r;
  Point a;
  Scalar k;
};

/// Shared per-item parsing for batch verification. Returns false on any
/// malformed item (non-canonical S, off-curve R or A).
bool decode_item(const BatchItem& item, DecodedItem& out) {
  ByteArray<32> r_enc{}, s_enc{};
  std::copy(item.sig.bytes.begin(), item.sig.bytes.begin() + 32, r_enc.begin());
  std::copy(item.sig.bytes.begin() + 32, item.sig.bytes.end(), s_enc.begin());

  if (!sc_is_canonical(s_enc)) return false;
  out.s = sc_from_bytes(s_enc);

  const auto r = point_decompress(r_enc);
  if (!r) return false;
  out.r = *r;
  const auto a = point_decompress(item.pub.bytes);
  if (!a) return false;
  out.a = *a;

  const Hash512 kh = sha512_concat({view(r_enc), view(item.pub.bytes), item.message});
  ByteArray<64> kh_arr{};
  std::copy(kh.begin(), kh.end(), kh_arr.begin());
  out.k = sc_from_bytes_wide(kh_arr);
  return true;
}

}  // namespace

bool verify_batch(std::span<const BatchItem> items, Rng& rng) {
  if (items.empty()) return true;

  Scalar b_coeff = sc_zero();
  std::vector<std::pair<Scalar, Point>> terms;
  terms.reserve(items.size() * 2);

  for (const BatchItem& item : items) {
    DecodedItem d;
    if (!decode_item(item, d)) return false;

    const Scalar z = random_z(rng);
    // Accumulate: (sum z_i S_i) B - sum z_i R_i - sum z_i k_i A_i == 0.
    b_coeff = sc_add(b_coeff, sc_muladd(z, d.s, sc_zero()));
    terms.emplace_back(z, point_neg(d.r));
    terms.emplace_back(sc_muladd(z, d.k, sc_zero()), point_neg(d.a));
  }
  terms.emplace_back(b_coeff, point_base());

  return point_is_identity(point_multi_scalar_mul(terms));
}

std::vector<bool> verify_batch_detailed(std::span<const BatchItem> items, Rng& rng) {
  std::vector<bool> result(items.size(), true);
  if (verify_batch(items, rng)) return result;
  for (std::size_t i = 0; i < items.size(); ++i) {
    result[i] = verify(items[i].pub, items[i].message, items[i].sig);
  }
  return result;
}

}  // namespace repchain::crypto
