#include "crypto/batch_verify.hpp"

#include "crypto/sha512.hpp"

namespace repchain::crypto {

Point point_multi_scalar_mul(std::span<const std::pair<Scalar, Point>> terms) {
  std::vector<ByteArray<32>> bits;
  bits.reserve(terms.size());
  for (const auto& [s, p] : terms) {
    (void)p;
    bits.push_back(sc_to_bytes(s));
  }

  Point acc = point_identity();
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      acc = point_double(acc);
      for (std::size_t i = 0; i < terms.size(); ++i) {
        if ((bits[i][byte] >> bit) & 1) acc = point_add(acc, terms[i].second);
      }
    }
  }
  return acc;
}

namespace {

/// Random 128-bit scalar (top 16 bytes zero): small enough to keep the
/// combination cheap, large enough that adversarial cancellation has
/// probability ~2^-128.
Scalar random_z(Rng& rng) {
  ByteArray<32> b{};
  const Bytes raw = rng.bytes(16);
  std::copy(raw.begin(), raw.end(), b.begin());
  Scalar z = sc_from_bytes(b);
  if (sc_is_zero(z)) {
    b[0] = 1;  // degenerate draw: force non-zero
    z = sc_from_bytes(b);
  }
  return z;
}

struct DecodedItem {
  Scalar s;
  Point r;
  Point a;
  Scalar k;
};

/// Shared per-item parsing for batch verification. Returns false on any
/// malformed item (non-canonical S, off-curve R or A).
bool decode_item(const BatchItem& item, DecodedItem& out) {
  ByteArray<32> r_enc{}, s_enc{};
  std::copy(item.sig.bytes.begin(), item.sig.bytes.begin() + 32, r_enc.begin());
  std::copy(item.sig.bytes.begin() + 32, item.sig.bytes.end(), s_enc.begin());

  if (!sc_is_canonical(s_enc)) return false;
  out.s = sc_from_bytes(s_enc);

  const auto r = point_decompress(r_enc);
  if (!r) return false;
  out.r = *r;
  const auto a = point_decompress(item.pub.bytes);
  if (!a) return false;
  out.a = *a;

  const Hash512 kh = sha512_concat({view(r_enc), view(item.pub.bytes), item.message});
  ByteArray<64> kh_arr{};
  std::copy(kh.begin(), kh.end(), kh_arr.begin());
  out.k = sc_from_bytes_wide(kh_arr);
  return true;
}

}  // namespace

bool verify_batch(std::span<const BatchItem> items, Rng& rng) {
  if (items.empty()) return true;

  Scalar b_coeff = sc_zero();
  std::vector<std::pair<Scalar, Point>> terms;
  terms.reserve(items.size() * 2);

  for (const BatchItem& item : items) {
    DecodedItem d;
    if (!decode_item(item, d)) return false;

    const Scalar z = random_z(rng);
    // Accumulate: (sum z_i S_i) B - sum z_i R_i - sum z_i k_i A_i == 0.
    b_coeff = sc_add(b_coeff, sc_muladd(z, d.s, sc_zero()));
    terms.emplace_back(z, point_neg(d.r));
    terms.emplace_back(sc_muladd(z, d.k, sc_zero()), point_neg(d.a));
  }
  terms.emplace_back(b_coeff, point_base());

  return point_is_identity(point_multi_scalar_mul(terms));
}

std::vector<bool> verify_batch_detailed(std::span<const BatchItem> items, Rng& rng) {
  std::vector<bool> result(items.size(), true);
  if (verify_batch(items, rng)) return result;
  for (std::size_t i = 0; i < items.size(); ++i) {
    result[i] = verify(items[i].pub, items[i].message, items[i].sig);
  }
  return result;
}

}  // namespace repchain::crypto
