#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace repchain::crypto {

/// One step of a Merkle inclusion proof: the sibling digest and which side it
/// sits on.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left = false;
};

/// Inclusion proof for one leaf.
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<MerkleStep> steps;
};

/// Binary Merkle tree over SHA-256 with domain-separated leaf/node hashing
/// (prevents second-preimage confusion between leaves and internal nodes).
/// Blocks commit to their TXList through this root.
class MerkleTree {
 public:
  /// Build over leaf payloads. An empty tree has the all-zero root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  [[nodiscard]] const Hash256& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Proof for the i-th leaf. Throws ConfigError if out of range.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verify a proof against a root for the given leaf payload.
  [[nodiscard]] static bool verify(const Hash256& root, BytesView leaf,
                                   const MerkleProof& proof);

  [[nodiscard]] static Hash256 hash_leaf(BytesView leaf);
  [[nodiscard]] static Hash256 hash_node(const Hash256& left, const Hash256& right);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
  Hash256 root_{};
  std::size_t leaf_count_ = 0;
};

}  // namespace repchain::crypto
