#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repchain::crypto {

/// SHA-256 digest (FIPS 180-4), implemented from scratch. This is the
/// collision-resistant hash H used for block chaining and Merkle roots.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = ByteArray<kDigestSize>;

  Sha256();

  /// Absorb more input. May be called repeatedly.
  Sha256& update(BytesView data);

  /// Finalize and return the digest. The object must not be reused after.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

using Hash256 = Sha256::Digest;

/// Hash arbitrary many parts as a single message.
[[nodiscard]] Hash256 sha256_concat(std::initializer_list<BytesView> parts);

}  // namespace repchain::crypto
