#include "crypto/x25519.hpp"

#include "crypto/hmac.hpp"

namespace repchain::crypto {

ByteArray<32> x25519_clamp(ByteArray<32> k) {
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
  return k;
}

ByteArray<32> x25519(const ByteArray<32>& scalar, const ByteArray<32>& u_in) {
  const ByteArray<32> k = x25519_clamp(scalar);
  // RFC 7748: mask the top bit of the input u-coordinate.
  ByteArray<32> u_bytes = u_in;
  u_bytes[31] &= 127;
  const Fe x1 = fe_from_bytes(u_bytes);

  // Montgomery ladder with (X2:Z2) and (X3:Z3); swap-based, MSB first over
  // the 255 relevant bits.
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  const Fe a24 = fe_from_u64(121665);  // (486662 - 2) / 4

  int swap = 0;
  for (int bit = 254; bit >= 0; --bit) {
    const int k_bit = (k[bit / 8] >> (bit % 8)) & 1;
    if ((swap ^ k_bit) != 0) {
      std::swap(x2, x3);
      std::swap(z2, z3);
    }
    swap = k_bit;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);

    const Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    const Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul(a24, e)));
  }
  if (swap != 0) {
    std::swap(x2, x3);
    std::swap(z2, z3);
  }

  return fe_to_bytes(fe_mul(x2, fe_invert(z2)));
}

X25519PublicKey x25519_public(const X25519SecretKey& secret) {
  ByteArray<32> base{};
  base[0] = 9;
  X25519PublicKey pub;
  pub.bytes = x25519(secret.bytes, base);
  return pub;
}

ByteArray<32> x25519_shared(const X25519SecretKey& my_secret,
                            const X25519PublicKey& their_public) {
  return x25519(my_secret.bytes, their_public.bytes);
}

AeadKey derive_aead_key(const ByteArray<32>& shared_secret, BytesView label) {
  const Hash256 derived = derive_key(view(shared_secret), label);
  AeadKey key;
  std::copy(derived.begin(), derived.end(), key.bytes.begin());
  return key;
}

}  // namespace repchain::crypto
