#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repchain::crypto {

/// Element of GF(2^255 - 19) in radix-2^51 representation (5 limbs).
/// Limbs are kept loosely reduced (< 2^52-ish) between operations; `carry`
/// normalizes, `to_bytes` produces the unique canonical encoding.
///
/// This is the arithmetic core of the from-scratch Ed25519 implementation
/// (see DESIGN.md: crypto substrate).
struct Fe {
  std::uint64_t v[5] = {0, 0, 0, 0, 0};
};

[[nodiscard]] Fe fe_zero();
[[nodiscard]] Fe fe_one();
[[nodiscard]] Fe fe_from_u64(std::uint64_t x);

/// Load from 32 little-endian bytes; the top (256th) bit is ignored, as in
/// RFC 8032 point decoding.
[[nodiscard]] Fe fe_from_bytes(const ByteArray<32>& in);

/// Store canonical (fully reduced) 32-byte little-endian encoding.
[[nodiscard]] ByteArray<32> fe_to_bytes(const Fe& f);

[[nodiscard]] Fe fe_add(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_sub(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_neg(const Fe& a);
[[nodiscard]] Fe fe_mul(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_sq(const Fe& a);

/// a^(2^255 - 21)  ==  a^(p-2)  ==  a^-1 (for a != 0).
[[nodiscard]] Fe fe_invert(const Fe& a);

/// a^((p-5)/8) = a^(2^252 - 3); used in square-root extraction for point
/// decompression.
[[nodiscard]] Fe fe_pow22523(const Fe& a);

/// Generic square-and-multiply with a little-endian byte exponent.
[[nodiscard]] Fe fe_pow(const Fe& a, const ByteArray<32>& exponent_le);

/// True iff canonical encodings match.
[[nodiscard]] bool fe_equal(const Fe& a, const Fe& b);
[[nodiscard]] bool fe_is_zero(const Fe& a);
/// Least significant bit of the canonical encoding (the "sign" of x in
/// RFC 8032 point compression).
[[nodiscard]] bool fe_is_negative(const Fe& a);

/// sqrt(-1) mod p, computed once as 2^((p-1)/4).
[[nodiscard]] const Fe& fe_sqrtm1();

/// Edwards curve constant d = -121665/121666 mod p, computed once.
[[nodiscard]] const Fe& fe_edwards_d();

}  // namespace repchain::crypto
