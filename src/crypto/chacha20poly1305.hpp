#pragma once

#include <optional>

#include "common/bytes.hpp"

namespace repchain::crypto {

/// ChaCha20-Poly1305 AEAD (RFC 8439), implemented from scratch.
///
/// Used by the sealed-payload extension: a provider can encrypt a
/// transaction payload under a key shared with the governors, so collectors
/// route and label without reading business data — the privacy concern the
/// paper's related work (§2.3) raises for reputation systems.
struct AeadKey {
  ByteArray<32> bytes{};
};

struct AeadNonce {
  ByteArray<12> bytes{};
};

constexpr std::size_t kAeadTagSize = 16;

/// Encrypt-and-authenticate: returns ciphertext || 16-byte tag.
[[nodiscard]] Bytes aead_seal(const AeadKey& key, const AeadNonce& nonce,
                              BytesView plaintext, BytesView aad);

/// Verify-and-decrypt; nullopt on any authentication failure.
[[nodiscard]] std::optional<Bytes> aead_open(const AeadKey& key, const AeadNonce& nonce,
                                             BytesView sealed, BytesView aad);

/// Raw ChaCha20 keystream XOR (exposed for tests; counter starts at
/// `counter`).
[[nodiscard]] Bytes chacha20_xor(const AeadKey& key, const AeadNonce& nonce,
                                 std::uint32_t counter, BytesView data);

/// One-shot Poly1305 MAC (exposed for tests).
[[nodiscard]] ByteArray<16> poly1305(const ByteArray<32>& key, BytesView message);

}  // namespace repchain::crypto
