#include "crypto/hmac.hpp"

namespace repchain::crypto {

namespace {

template <typename Hash>
typename Hash::Digest hmac_impl(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = Hash::kBlockSize;

  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    const auto digest = Hash::hash(key);
    std::copy(digest.begin(), digest.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ipad).update(message);
  const auto inner_digest = inner.finish();

  Hash outer;
  outer.update(opad).update(view(inner_digest));
  return outer.finish();
}

}  // namespace

Hash256 hmac_sha256(BytesView key, BytesView message) {
  return hmac_impl<Sha256>(key, message);
}

Hash512 hmac_sha512(BytesView key, BytesView message) {
  return hmac_impl<Sha512>(key, message);
}

Hash256 derive_key(BytesView master, BytesView label) {
  return hmac_sha256(master, label);
}

}  // namespace repchain::crypto
