#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"

namespace repchain::storage {

// Record framing shared by every NodeStateStore backend. Frames and the
// snapshot image reuse the library's single wire format (common/serial.hpp:
// little-endian fixed-width integers, u32 length prefixes) so the on-disk
// bytes are decodable with the same reader as every network payload.
//
// WAL frame:      u32 payload_len | u32 crc32(payload) | payload
// Snapshot image: str magic       | u32 crc32(payload) | bytes payload
//
// The WAL is append-only, so the only states a crash can leave behind are a
// clean log or a clean log plus one partial frame at the tail. A partial
// tail is dropped on recovery (the write never completed, so the record was
// never acknowledged); a *complete* frame whose CRC mismatches is genuine
// corruption and refuses to load.

/// Append one CRC-guarded frame to `out`.
void append_frame(Bytes& out, BytesView payload);

struct WalScan {
  std::vector<Bytes> records;   // fully-verified payloads, in append order
  std::size_t clean_bytes = 0;  // prefix length covered by `records`
  bool torn_tail = false;       // a partial trailing frame was dropped
};

/// Scan a WAL byte image. Throws ProtocolError when a complete frame fails
/// its CRC (corruption, as opposed to a torn tail).
[[nodiscard]] WalScan scan_wal(BytesView data);

/// Wrap a snapshot payload in the magic + CRC envelope.
[[nodiscard]] Bytes encode_snapshot(BytesView payload);

/// Unwrap a snapshot image. Throws DecodeError on bad magic, truncation or
/// CRC mismatch — a half-written snapshot never silently loads.
[[nodiscard]] Bytes decode_snapshot(BytesView image);

}  // namespace repchain::storage
