#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "storage/wal_format.hpp"

namespace repchain::storage {

/// Durable state behind one node: a write-ahead log of appended blocks plus
/// a single checkpoint snapshot. The contract both backends honor:
///
///  - `wal_append` is durable once it returns; a crash at any later point
///    preserves the record.
///  - `write_snapshot` atomically replaces the previous snapshot and then
///    truncates the WAL. A crash anywhere inside leaves either the old
///    snapshot + full WAL or the new snapshot (possibly + stale WAL records
///    the snapshot already covers — recovery skips those by serial).
///  - Readers (`load_snapshot`, `wal_records`) always see a consistent view:
///    torn tails are dropped, half-written snapshots never load.
class NodeStateStore {
 public:
  virtual ~NodeStateStore() = default;

  /// Durably append one record (an encoded block) to the log.
  virtual void wal_append(BytesView record) = 0;

  /// All complete, CRC-verified records in append order.
  [[nodiscard]] virtual std::vector<Bytes> wal_records() const = 0;

  /// Atomically persist a checkpoint payload, then truncate the WAL.
  virtual void write_snapshot(BytesView payload) = 0;

  /// WAL compaction: atomically persist `payload` as the snapshot, then drop
  /// the first `covered_records` WAL records — the ones the snapshot already
  /// covers — keeping the tail appended after the recovery point. A crash
  /// anywhere inside leaves either the old snapshot + full WAL or the new
  /// snapshot + (full WAL | tail); recovery skips covered records by serial
  /// either way. `covered_records` beyond the log length clears it.
  virtual void compact(BytesView payload, std::size_t covered_records) = 0;

  /// Latest durable snapshot payload, if one was ever written.
  [[nodiscard]] virtual std::optional<Bytes> load_snapshot() const = 0;

  /// Current log size in bytes (for bench/metrics).
  [[nodiscard]] virtual std::size_t wal_bytes() const = 0;

  /// Current snapshot size in bytes, 0 when absent (for bench/metrics).
  [[nodiscard]] virtual std::size_t snapshot_bytes() const = 0;
};

/// In-memory backend. Keeps the same framed byte images a file store would
/// hold on disk, so the exact scan/decode recovery path is exercised even in
/// pure-simulation runs, and survives the owning node's in-memory death as
/// long as the store object itself outlives it (Scenario keeps stores outside
/// the governors they back).
class MemoryStateStore final : public NodeStateStore {
 public:
  void wal_append(BytesView record) override { append_frame(wal_, record); }

  [[nodiscard]] std::vector<Bytes> wal_records() const override {
    return scan_wal(wal_).records;
  }

  void write_snapshot(BytesView payload) override {
    snapshot_ = encode_snapshot(payload);
    wal_.clear();
  }

  void compact(BytesView payload, std::size_t covered_records) override {
    snapshot_ = encode_snapshot(payload);
    const std::vector<Bytes> records = scan_wal(wal_).records;
    Bytes tail;
    for (std::size_t i = covered_records; i < records.size(); ++i) {
      append_frame(tail, records[i]);
    }
    wal_ = std::move(tail);
  }

  [[nodiscard]] std::optional<Bytes> load_snapshot() const override {
    if (!snapshot_) return std::nullopt;
    return decode_snapshot(*snapshot_);
  }

  [[nodiscard]] std::size_t wal_bytes() const override { return wal_.size(); }

  [[nodiscard]] std::size_t snapshot_bytes() const override {
    return snapshot_ ? snapshot_->size() : 0;
  }

  /// Test hooks: mutate the raw images to model crash artifacts.
  [[nodiscard]] Bytes& raw_wal() { return wal_; }
  [[nodiscard]] std::optional<Bytes>& raw_snapshot() { return snapshot_; }

 private:
  Bytes wal_;
  std::optional<Bytes> snapshot_;
};

}  // namespace repchain::storage
