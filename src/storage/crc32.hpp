#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repchain::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Guards every WAL frame and
/// snapshot image against bit rot and torn writes — cheap enough to run on
/// the append path, strong enough to catch any single-burst corruption a
/// crashed write can produce.
[[nodiscard]] std::uint32_t crc32(BytesView data);

}  // namespace repchain::storage
