#include "storage/file_state_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>
#include <system_error>
#include <utility>

#include "common/errors.hpp"
#include "storage/wal_format.hpp"

namespace repchain::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

/// Thin RAII fd so every early exit closes the descriptor.
class Fd {
 public:
  Fd(const std::filesystem::path& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {
    if (fd_ < 0) throw_errno("open " + path.string());
  }
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  void write_all(BytesView data) const {
    const std::uint8_t* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write");
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  void sync() const {
    if (::fsync(fd_) != 0) throw_errno("fsync");
  }

 private:
  int fd_;
};

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ProtocolError("cannot open " + path.string());
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw ProtocolError("read failed: " + path.string());
  return data;
}

void fsync_dir(const std::filesystem::path& dir) {
  const Fd fd(dir, O_RDONLY | O_DIRECTORY);
  fd.sync();
}

}  // namespace

FileStateStore::FileStateStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  // A leftover tmp file is an interrupted snapshot write (or compaction
  // rewrite); the rename never happened, so it carries no committed state.
  std::filesystem::remove(tmp_path());
  std::filesystem::remove(wal_tmp_path());
  if (std::filesystem::exists(wal_path())) {
    const Bytes image = read_file(wal_path());
    const WalScan scan = scan_wal(image);  // throws on genuine corruption
    if (scan.torn_tail) {
      std::filesystem::resize_file(wal_path(), scan.clean_bytes);
      const Fd fd(wal_path(), O_WRONLY);
      fd.sync();
    }
  }
  if (std::filesystem::exists(snapshot_path())) {
    (void)decode_snapshot(read_file(snapshot_path()));  // fail fast if corrupt
  }
}

void FileStateStore::wal_append(BytesView record) {
  Bytes frame;
  append_frame(frame, record);
  const Fd fd(wal_path(), O_WRONLY | O_CREAT | O_APPEND);
  fd.write_all(frame);
  fd.sync();
}

std::vector<Bytes> FileStateStore::wal_records() const {
  if (!std::filesystem::exists(wal_path())) return {};
  return scan_wal(read_file(wal_path())).records;
}

void FileStateStore::replace_snapshot(BytesView payload) {
  const Bytes image = encode_snapshot(payload);
  {
    const Fd fd(tmp_path(), O_WRONLY | O_CREAT | O_TRUNC);
    fd.write_all(image);
    fd.sync();
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path(), snapshot_path(), ec);
  if (ec) throw ProtocolError("snapshot rename failed: " + ec.message());
  fsync_dir(dir_);
}

void FileStateStore::write_snapshot(BytesView payload) {
  replace_snapshot(payload);
  // Snapshot is durable; the log it superseded can go. A crash right here
  // leaves stale WAL records, which recovery skips by block serial.
  std::filesystem::remove(wal_path());
  fsync_dir(dir_);
}

void FileStateStore::compact(BytesView payload, std::size_t covered_records) {
  const std::vector<Bytes> records = wal_records();
  replace_snapshot(payload);
  // Rewrite the log keeping only the frames past the recovery point, through
  // the same temp + fsync + rename discipline as the snapshot: the visible
  // wal.bin is always either the full pre-compaction log or the tail.
  Bytes tail;
  for (std::size_t i = covered_records; i < records.size(); ++i) {
    append_frame(tail, records[i]);
  }
  {
    const Fd fd(wal_tmp_path(), O_WRONLY | O_CREAT | O_TRUNC);
    fd.write_all(tail);
    fd.sync();
  }
  std::error_code ec;
  std::filesystem::rename(wal_tmp_path(), wal_path(), ec);
  if (ec) throw ProtocolError("wal rename failed: " + ec.message());
  fsync_dir(dir_);
}

std::optional<Bytes> FileStateStore::load_snapshot() const {
  if (!std::filesystem::exists(snapshot_path())) return std::nullopt;
  return decode_snapshot(read_file(snapshot_path()));
}

std::size_t FileStateStore::wal_bytes() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(wal_path(), ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

std::size_t FileStateStore::snapshot_bytes() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(snapshot_path(), ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

}  // namespace repchain::storage
