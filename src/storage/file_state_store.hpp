#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "storage/node_state_store.hpp"

namespace repchain::storage {

/// On-disk NodeStateStore. Layout inside `dir`:
///
///   wal.bin       append-only CRC-framed block log (fsync per append)
///   snapshot.bin  latest checkpoint (magic + CRC envelope)
///   snapshot.tmp  in-flight snapshot write; never read, removed on open
///   wal.tmp       in-flight compaction rewrite; never read, removed on open
///
/// Snapshot replacement is write-temp + fsync + rename + fsync(dir), so the
/// visible snapshot.bin is always a complete image. The WAL is truncated only
/// after the rename lands; recovery tolerates the crash window in between by
/// skipping WAL records the snapshot already covers.
class FileStateStore final : public NodeStateStore {
 public:
  /// Opens (creating `dir` if needed). Repairs crash artifacts eagerly:
  /// removes a leftover snapshot.tmp and truncates a torn WAL tail back to
  /// its last complete frame. Throws ProtocolError on a complete-but-corrupt
  /// WAL frame, DecodeError on a corrupt snapshot.
  explicit FileStateStore(std::filesystem::path dir);

  void wal_append(BytesView record) override;
  [[nodiscard]] std::vector<Bytes> wal_records() const override;
  void write_snapshot(BytesView payload) override;
  void compact(BytesView payload, std::size_t covered_records) override;
  [[nodiscard]] std::optional<Bytes> load_snapshot() const override;
  [[nodiscard]] std::size_t wal_bytes() const override;
  [[nodiscard]] std::size_t snapshot_bytes() const override;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  [[nodiscard]] std::filesystem::path wal_path() const { return dir_ / "wal.bin"; }
  [[nodiscard]] std::filesystem::path snapshot_path() const { return dir_ / "snapshot.bin"; }
  [[nodiscard]] std::filesystem::path tmp_path() const { return dir_ / "snapshot.tmp"; }
  [[nodiscard]] std::filesystem::path wal_tmp_path() const { return dir_ / "wal.tmp"; }

  /// Shared tail of write_snapshot/compact: snapshot.tmp + fsync + rename.
  void replace_snapshot(BytesView payload);

  std::filesystem::path dir_;
};

}  // namespace repchain::storage
