#include "storage/wal_format.hpp"

#include "common/errors.hpp"
#include "common/serial.hpp"
#include "storage/crc32.hpp"

namespace repchain::storage {

namespace {
constexpr char kSnapshotMagic[] = "repchain-snapshot-v1";
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
}  // namespace

void append_frame(Bytes& out, BytesView payload) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.raw(payload);
  append(out, std::move(w).take());
}

WalScan scan_wal(BytesView data) {
  WalScan scan;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      scan.torn_tail = true;  // header itself never finished
      break;
    }
    BinaryReader r(BytesView(data.data() + pos, data.size() - pos));
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (data.size() - pos - kFrameHeader < len) {
      scan.torn_tail = true;  // payload never finished
      break;
    }
    Bytes payload = r.raw(len);
    if (crc32(payload) != crc) {
      throw ProtocolError("WAL frame CRC mismatch at offset " + std::to_string(pos));
    }
    scan.records.push_back(std::move(payload));
    pos += kFrameHeader + len;
    scan.clean_bytes = pos;
  }
  return scan;
}

Bytes encode_snapshot(BytesView payload) {
  BinaryWriter w;
  w.str(kSnapshotMagic);
  w.u32(crc32(payload));
  w.bytes(payload);
  return std::move(w).take();
}

Bytes decode_snapshot(BytesView image) {
  BinaryReader r(image);
  if (r.str() != kSnapshotMagic) throw DecodeError("bad snapshot magic");
  const std::uint32_t crc = r.u32();
  Bytes payload = r.bytes();
  r.expect_done();
  if (crc32(payload) != crc) throw DecodeError("snapshot CRC mismatch");
  return payload;
}

}  // namespace repchain::storage
