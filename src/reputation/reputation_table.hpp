#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "ledger/transaction.hpp"
#include "reputation/params.hpp"

namespace repchain::reputation {

/// One collector's label on one transaction, as seen by a governor.
struct Report {
  CollectorId collector;
  ledger::Label label = ledger::Label::kValid;
};

/// Outcome of the screening draw in Algorithm 2: the reporter chosen with
/// probability proportional to reputation, its label, and Pr[chosen]
/// (needed for the 1 - f*Pr check coin).
struct Selection {
  CollectorId chosen;
  ledger::Label label = ledger::Label::kValid;
  double pr_chosen = 0.0;
};

/// A governor's local reputation state over all collectors — the
/// (s+2)-dimensional vector r_{j,i} of §3.4 for every collector i:
///
///   ( w_{j,i,k_1}, ..., w_{j,i,k_s}, w_misreport, w_forge )
///
/// The first s entries are per-provider multiplicative weights (initialized
/// to 1), updated only when an unchecked transaction's truth is revealed
/// (Algorithm 3 case 3). w_misreport is an additive counter updated on
/// checked transactions (case 2); w_forge is an additive counter decremented
/// on forged uploads (case 1).
///
/// Implementation note: multiplicative weights are stored as logs. All
/// selection probabilities and expected-loss values depend only on weight
/// ratios within a provider group, so log-space arithmetic (with
/// max-subtraction before exponentiation) is exact for the protocol while
/// immune to the underflow a linear representation hits after a few thousand
/// discounts.
///
/// Hot-path layout: every (collector, provider) query — linked, log_weight,
/// the per-report lookups inside selection/update — goes through a
/// composite-key index (collector<<32 | provider -> weight slot, the
/// gamebank multi_index idiom) instead of the two-level hash walk, and the
/// screening-support queries reuse mutable scratch buffers instead of
/// allocating per call. The index points into the canonical per-collector
/// storage (unordered_map nodes are address-stable), so iteration-order
/// dependent results — the revenue-weight summation, the canonical encode —
/// are byte-for-byte what they were before the index existed; it is rebuilt
/// on copy and on decode.
class ReputationTable {
 public:
  explicit ReputationTable(ReputationParams params);

  ReputationTable(const ReputationTable& other);
  ReputationTable& operator=(const ReputationTable& other);
  // Moves steal the unordered_map nodes, so the index stays valid as-is.
  ReputationTable(ReputationTable&&) noexcept = default;
  ReputationTable& operator=(ReputationTable&&) noexcept = default;

  /// Register a collector-provider link (weight starts at 1). Idempotent.
  void link(CollectorId collector, ProviderId provider);
  /// Register a collector with no links yet (so counters exist).
  void register_collector(CollectorId collector);

  [[nodiscard]] bool linked(CollectorId collector, ProviderId provider) const;
  [[nodiscard]] const std::vector<CollectorId>& collectors_for(ProviderId provider) const;

  /// w_{j,i,k} as a linear value (exp of the stored log; for inspection and
  /// short horizons — protocol code uses the ratio-based queries below).
  [[nodiscard]] double weight(CollectorId collector, ProviderId provider) const;
  [[nodiscard]] double log_weight(CollectorId collector, ProviderId provider) const;
  [[nodiscard]] std::int64_t misreport(CollectorId collector) const;
  [[nodiscard]] std::int64_t forge(CollectorId collector) const;

  // --- Algorithm 3 -------------------------------------------------------

  /// Case 1: a forged/ill-signed upload from `collector`; w_forge -= 1.
  void punish_forgery(CollectorId collector);

  /// Case 2: transaction was validated by the governor; reporters who
  /// labeled correctly get misreport += 1, incorrectly -= 1. When the
  /// conceal_checked_penalty ablation is on, linked collectors of `provider`
  /// that did not report lose that many misreport points too.
  void update_checked(ProviderId provider, std::span<const Report> reports,
                      bool tx_valid);

  /// Case 3: an unchecked transaction's truth was revealed. Reporters with
  /// the wrong label are discounted by gamma_tx, linked collectors that
  /// discarded the transaction by beta, correct reporters unchanged.
  /// Returns the gamma_tx used (nullopt when no weight mass was wrong, in
  /// which case no gamma multiplication happened).
  std::optional<double> update_revealed(ProviderId provider,
                                        std::span<const Report> reports, bool tx_valid);

  // --- Screening support (Algorithm 2) ------------------------------------

  /// Draw the source collector among reporters with probability proportional
  /// to w_{j,i,k}. Throws ProtocolError if `reports` is empty or contains an
  /// unlinked collector.
  [[nodiscard]] Selection select_reporter(ProviderId provider,
                                          std::span<const Report> reports,
                                          Rng& rng) const;

  /// Probability that the Algorithm 2 screening validates this transaction,
  ///   P_checked = 1 - f * sum_{i labeled -1} Pr[i]^2  (Lemma 2's quantity).
  [[nodiscard]] double check_probability(ProviderId provider,
                                         std::span<const Report> reports) const;

  /// L_tx = 2*W_wrong / (W_right + W_wrong) over the reporters, given the
  /// revealed truth.
  [[nodiscard]] double expected_loss_for(ProviderId provider,
                                         std::span<const Report> reports,
                                         bool tx_valid) const;

  // --- Revenue (§3.4.3) ----------------------------------------------------

  /// log of Π_u w_{i,k_u} · mu^misreport · nu^forge.
  [[nodiscard]] double log_revenue_weight(CollectorId collector) const;

  /// Normalized revenue shares over all registered collectors (softmax over
  /// log revenue weights); sums to 1.
  [[nodiscard]] std::vector<std::pair<CollectorId, double>> revenue_shares() const;

  [[nodiscard]] const ReputationParams& params() const { return params_; }
  [[nodiscard]] std::size_t collector_count() const { return collectors_.size(); }

  /// Checkpoint the full table (params + every collector's log-weights and
  /// counters) in a canonical byte encoding; decode reconstructs an
  /// equivalent table. Lets a governor persist its local reputation state
  /// across restarts.
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ReputationTable decode(BytesView data);

 private:
  struct Entry {
    std::unordered_map<ProviderId, double> log_w;  // per-provider log weight
    std::int64_t misreport = 0;
    std::int64_t forge = 0;
  };

  [[nodiscard]] const Entry& entry(CollectorId c) const;
  [[nodiscard]] Entry& entry(CollectorId c);

  [[nodiscard]] static constexpr std::uint64_t link_key(CollectorId c, ProviderId p) {
    return (static_cast<std::uint64_t>(c.value()) << 32) | p.value();
  }
  /// O(1) composite-key slot lookup; nullptr when the pair is not linked.
  [[nodiscard]] double* link_slot(CollectorId c, ProviderId p) const {
    const auto it = link_index_.find(link_key(c, p));
    return it == link_index_.end() ? nullptr : it->second;
  }
  /// Same, but throwing the pre-index error taxonomy on a miss.
  [[nodiscard]] double& link_slot_or_throw(CollectorId c, ProviderId p) const;
  /// Repoint the index at this table's own storage (after copy or decode).
  void rebuild_link_index();

  /// Relative (max-normalized) weights of the reporters for `provider`,
  /// written into `rel` (cleared first; capacity is reused across calls).
  void relative_weights_into(ProviderId provider, std::span<const Report> reports,
                             std::vector<double>& rel) const;

  ReputationParams params_;
  std::unordered_map<CollectorId, Entry> collectors_;
  std::unordered_map<ProviderId, std::vector<CollectorId>> by_provider_;
  // (collector<<32 | provider) -> &Entry::log_w[provider]. unordered_map
  // guarantees node address stability, so slots survive unrelated inserts.
  std::unordered_map<std::uint64_t, double*> link_index_;
  // Scratch for the per-screening queries (select/check/loss): these run
  // once per transaction report set, and the buffers keep their capacity.
  mutable std::vector<double> rel_scratch_;
  mutable std::vector<double> log_scratch_;
};

}  // namespace repchain::reputation
