#pragma once

#include <cstddef>
#include <cstdint>

#include "common/errors.hpp"

namespace repchain::reputation {

/// Tunables of the reputation mechanism (§3.4).
struct ReputationParams {
  /// Multiplicative discount for collectors who *discarded* a transaction
  /// whose truth was later revealed (Algorithm 3, case 3). The paper
  /// suggests 0.9 in practice and 1 - 4*sqrt(log r / T) for the theorem-
  /// optimal tuning (Theorem 1).
  double beta = 0.9;

  /// Efficiency knob f in (0, 1): a screening-chosen -1 report is validated
  /// with probability 1 - f * Pr[chosen]. Larger f => fewer validations =>
  /// faster protocol, lower correctness (§3.4.1, Lemma 2).
  double f = 0.5;

  /// Revenue bases (> 1) for the misreport and forge counters:
  /// revenue ∝ Π_u w_{i,k_u} · mu^misreport · nu^forge (§3.4.3).
  double mu = 1.1;
  double nu = 1.5;

  /// Ablation knob for a discrepancy between the paper's §4.2 prose and
  /// Algorithm 3: the text says concealing a *checked* transaction also cuts
  /// reputation ("a misreporting will lead to a higher cut ... than
  /// concealing"), while the pseudocode only updates reporters. 0 follows
  /// Algorithm 3 (default); k > 0 subtracts k from the misreport counter of
  /// every linked collector that failed to report a checked transaction.
  std::int64_t conceal_checked_penalty = 0;

  /// Argue latency bound: an unchecked-invalid transaction can be argued
  /// only until U further unchecked transactions from the same provider have
  /// been recorded (§3.1, §4.2).
  std::size_t argue_latency_u = 100;

  void validate() const {
    if (beta <= 0.0 || beta >= 1.0) throw ConfigError("beta must be in (0, 1)");
    if (f <= 0.0 || f >= 1.0) throw ConfigError("f must be in (0, 1)");
    if (mu <= 1.0) throw ConfigError("mu must be > 1");
    if (nu <= 1.0) throw ConfigError("nu must be > 1");
    if (argue_latency_u == 0) throw ConfigError("argue latency U must be positive");
    if (conceal_checked_penalty < 0) {
      throw ConfigError("conceal_checked_penalty must be non-negative");
    }
  }
};

/// Theorem-optimal beta = 1 - 4*sqrt(log r / T), clamped into the interval
/// [0.1, 0.9] where the proof's log-linearization holds (Theorem 1).
[[nodiscard]] double theorem_optimal_beta(std::size_t r, std::size_t t);

}  // namespace repchain::reputation
