#include "reputation/reputation_table.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/errors.hpp"
#include "common/serial.hpp"
#include "reputation/gamma.hpp"

namespace repchain::reputation {

using ledger::Label;

ReputationTable::ReputationTable(ReputationParams params) : params_(params) {
  params_.validate();
}

ReputationTable::ReputationTable(const ReputationTable& other)
    : params_(other.params_),
      collectors_(other.collectors_),
      by_provider_(other.by_provider_) {
  rebuild_link_index();
}

ReputationTable& ReputationTable::operator=(const ReputationTable& other) {
  if (this == &other) return *this;
  params_ = other.params_;
  collectors_ = other.collectors_;
  by_provider_ = other.by_provider_;
  rebuild_link_index();
  return *this;
}

void ReputationTable::rebuild_link_index() {
  link_index_.clear();
  link_index_.reserve(collectors_.size() * 4);
  for (auto& [c, e] : collectors_) {
    for (auto& [p, lw] : e.log_w) link_index_.emplace(link_key(c, p), &lw);
  }
}

void ReputationTable::link(CollectorId collector, ProviderId provider) {
  auto& e = collectors_[collector];
  const auto [it, inserted] = e.log_w.emplace(provider, 0.0);
  if (inserted) {
    by_provider_[provider].push_back(collector);
    link_index_.emplace(link_key(collector, provider), &it->second);
  }
}

void ReputationTable::register_collector(CollectorId collector) {
  collectors_.try_emplace(collector);
}

bool ReputationTable::linked(CollectorId collector, ProviderId provider) const {
  return link_index_.contains(link_key(collector, provider));
}

const std::vector<CollectorId>& ReputationTable::collectors_for(
    ProviderId provider) const {
  static const std::vector<CollectorId> kEmpty;
  const auto it = by_provider_.find(provider);
  return it == by_provider_.end() ? kEmpty : it->second;
}

const ReputationTable::Entry& ReputationTable::entry(CollectorId c) const {
  const auto it = collectors_.find(c);
  if (it == collectors_.end()) throw ProtocolError("unknown collector in reputation table");
  return it->second;
}

ReputationTable::Entry& ReputationTable::entry(CollectorId c) {
  const auto it = collectors_.find(c);
  if (it == collectors_.end()) throw ProtocolError("unknown collector in reputation table");
  return it->second;
}

double& ReputationTable::link_slot_or_throw(CollectorId c, ProviderId p) const {
  double* slot = link_slot(c, p);
  if (slot == nullptr) {
    // Preserve the pre-index error taxonomy: unknown collector vs known
    // collector with no link to this provider.
    if (!collectors_.contains(c)) {
      throw ProtocolError("unknown collector in reputation table");
    }
    throw ProtocolError("collector not linked with provider in reputation table");
  }
  return *slot;
}

double ReputationTable::weight(CollectorId collector, ProviderId provider) const {
  return std::exp(log_weight(collector, provider));
}

double ReputationTable::log_weight(CollectorId collector, ProviderId provider) const {
  return link_slot_or_throw(collector, provider);
}

std::int64_t ReputationTable::misreport(CollectorId collector) const {
  return entry(collector).misreport;
}

std::int64_t ReputationTable::forge(CollectorId collector) const {
  return entry(collector).forge;
}

void ReputationTable::punish_forgery(CollectorId collector) {
  // Algorithm 3, case 1.
  entry(collector).forge -= 1;
}

void ReputationTable::update_checked(ProviderId provider,
                                     std::span<const Report> reports, bool tx_valid) {
  // Algorithm 3, case 2.
  const Label truth = tx_valid ? Label::kValid : Label::kInvalid;
  for (const Report& r : reports) {
    Entry& e = entry(r.collector);
    e.misreport += (r.label == truth) ? +1 : -1;
  }
  if (params_.conceal_checked_penalty > 0) {
    // §4.2-prose ablation: concealing a checked transaction is also cut,
    // though less than a misreport (see ReputationParams).
    for (CollectorId c : collectors_for(provider)) {
      const bool reported = std::any_of(reports.begin(), reports.end(),
                                        [c](const Report& r) { return r.collector == c; });
      if (!reported) entry(c).misreport -= params_.conceal_checked_penalty;
    }
  }
}

std::optional<double> ReputationTable::update_revealed(ProviderId provider,
                                                       std::span<const Report> reports,
                                                       bool tx_valid) {
  // Algorithm 3, case 3. Compute L_tx over reporters with current weights,
  // derive gamma_tx, then apply the multiplicative updates.
  const Label truth = tx_valid ? Label::kValid : Label::kInvalid;
  std::vector<double>& rel = rel_scratch_;
  relative_weights_into(provider, reports, rel);

  double w_right = 0.0, w_wrong = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    (reports[i].label == truth ? w_right : w_wrong) += rel[i];
  }

  std::optional<double> gamma;
  if (w_wrong > 0.0) {
    gamma = gamma_tx(params_.beta, expected_loss(w_right, w_wrong));
  }

  const double log_beta = std::log(params_.beta);
  const double log_gamma = gamma ? std::log(*gamma) : 0.0;

  // Reporters: wrong label -> *gamma; correct -> unchanged.
  for (const Report& r : reports) {
    if (r.label != truth) {
      double* slot = link_slot(r.collector, provider);
      if (slot == nullptr) {
        (void)entry(r.collector);  // unknown-collector taxonomy first
        throw ProtocolError("reporter not linked with provider");
      }
      *slot += log_gamma;
    }
  }
  // Linked collectors that did not report: -> *beta.
  for (CollectorId c : collectors_for(provider)) {
    const bool reported = std::any_of(reports.begin(), reports.end(),
                                      [c](const Report& r) { return r.collector == c; });
    if (!reported) {
      link_slot_or_throw(c, provider) += log_beta;
    }
  }
  return gamma;
}

void ReputationTable::relative_weights_into(ProviderId provider,
                                            std::span<const Report> reports,
                                            std::vector<double>& rel) const {
  std::vector<double>& logs = log_scratch_;
  logs.clear();
  logs.reserve(reports.size());
  for (const Report& r : reports) {
    logs.push_back(link_slot_or_throw(r.collector, provider));
  }
  const double max_log = logs.empty() ? 0.0 : *std::max_element(logs.begin(), logs.end());
  rel.clear();
  rel.reserve(logs.size());
  for (double lw : logs) rel.push_back(std::exp(lw - max_log));
}

Selection ReputationTable::select_reporter(ProviderId provider,
                                           std::span<const Report> reports,
                                           Rng& rng) const {
  if (reports.empty()) throw ProtocolError("select_reporter with no reports");
  std::vector<double>& rel = rel_scratch_;
  relative_weights_into(provider, reports, rel);
  const double total = std::accumulate(rel.begin(), rel.end(), 0.0);
  const std::size_t idx = rng.weighted_choice(rel);

  Selection sel;
  sel.chosen = reports[idx].collector;
  sel.label = reports[idx].label;
  sel.pr_chosen = rel[idx] / total;
  return sel;
}

double ReputationTable::check_probability(ProviderId provider,
                                          std::span<const Report> reports) const {
  // P_checked = 1 - f * sum_{i labeled -1} Pr[i]^2 (Lemma 2's derivation):
  // a +1 pick is always validated; a -1 pick with probability 1 - f*Pr[i].
  std::vector<double>& rel = rel_scratch_;
  relative_weights_into(provider, reports, rel);
  const double total = std::accumulate(rel.begin(), rel.end(), 0.0);
  if (total <= 0.0) return 1.0;
  double sum_sq_invalid = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].label == Label::kInvalid) {
      const double pr = rel[i] / total;
      sum_sq_invalid += pr * pr;
    }
  }
  return 1.0 - params_.f * sum_sq_invalid;
}

double ReputationTable::expected_loss_for(ProviderId provider,
                                          std::span<const Report> reports,
                                          bool tx_valid) const {
  const Label truth = tx_valid ? Label::kValid : Label::kInvalid;
  std::vector<double>& rel = rel_scratch_;
  relative_weights_into(provider, reports, rel);
  double w_right = 0.0, w_wrong = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    (reports[i].label == truth ? w_right : w_wrong) += rel[i];
  }
  return expected_loss(w_right, w_wrong);
}

double ReputationTable::log_revenue_weight(CollectorId collector) const {
  const Entry& e = entry(collector);
  double log_rev = 0.0;
  for (const auto& [provider, lw] : e.log_w) log_rev += lw;
  log_rev += static_cast<double>(e.misreport) * std::log(params_.mu);
  log_rev += static_cast<double>(e.forge) * std::log(params_.nu);
  return log_rev;
}

std::vector<std::pair<CollectorId, double>> ReputationTable::revenue_shares() const {
  std::vector<std::pair<CollectorId, double>> shares;
  if (collectors_.empty()) return shares;

  std::vector<std::pair<CollectorId, double>> logs;
  logs.reserve(collectors_.size());
  for (const auto& [c, e] : collectors_) {
    (void)e;
    logs.emplace_back(c, log_revenue_weight(c));
  }
  std::sort(logs.begin(), logs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  double max_log = logs.front().second;
  for (const auto& [c, lw] : logs) max_log = std::max(max_log, lw);

  double total = 0.0;
  for (auto& [c, lw] : logs) {
    lw = std::exp(lw - max_log);
    total += lw;
  }
  shares.reserve(logs.size());
  for (const auto& [c, w] : logs) shares.emplace_back(c, w / total);
  return shares;
}

Bytes ReputationTable::encode() const {
  BinaryWriter w;
  w.str("repchain-reputation-v1");
  w.f64(params_.beta);
  w.f64(params_.f);
  w.f64(params_.mu);
  w.f64(params_.nu);
  w.i64(params_.conceal_checked_penalty);
  w.u64(params_.argue_latency_u);

  // Canonical order: collectors ascending, providers ascending within each.
  std::vector<CollectorId> ids;
  ids.reserve(collectors_.size());
  for (const auto& [c, e] : collectors_) {
    (void)e;
    ids.push_back(c);
  }
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (CollectorId c : ids) {
    const Entry& e = collectors_.at(c);
    w.u32(c.value());
    w.i64(e.misreport);
    w.i64(e.forge);
    std::vector<std::pair<ProviderId, double>> links(e.log_w.begin(), e.log_w.end());
    std::sort(links.begin(), links.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u32(static_cast<std::uint32_t>(links.size()));
    for (const auto& [p, lw] : links) {
      w.u32(p.value());
      w.f64(lw);
    }
  }
  return std::move(w).take();
}

ReputationTable ReputationTable::decode(BytesView data) {
  BinaryReader r(data);
  if (r.str() != "repchain-reputation-v1") {
    throw DecodeError("bad reputation table magic");
  }
  ReputationParams params;
  params.beta = r.f64();
  params.f = r.f64();
  params.mu = r.f64();
  params.nu = r.f64();
  params.conceal_checked_penalty = r.i64();
  params.argue_latency_u = r.u64();

  ReputationTable table(params);
  const auto n = r.u32();
  r.expect_count(n, 4 + 8 + 8 + 4);
  for (std::uint32_t i = 0; i < n; ++i) {
    const CollectorId c(r.u32());
    if (table.collectors_.contains(c)) {
      throw DecodeError("duplicate collector in reputation checkpoint");
    }
    Entry& e = table.collectors_[c];
    e.misreport = r.i64();
    e.forge = r.i64();
    const auto links = r.u32();
    r.expect_count(links, 4 + 8);
    for (std::uint32_t k = 0; k < links; ++k) {
      const ProviderId p(r.u32());
      const double lw = r.f64();
      if (!std::isfinite(lw) || lw > 0.0) {
        throw DecodeError("invalid log-weight in reputation checkpoint");
      }
      if (!e.log_w.emplace(p, lw).second) {
        throw DecodeError("duplicate provider link in reputation checkpoint");
      }
      table.by_provider_[p].push_back(c);
    }
  }
  r.expect_done();
  table.rebuild_link_index();
  return table;
}

}  // namespace repchain::reputation
