#pragma once

namespace repchain::reputation {

/// The governor's expected loss on an unchecked transaction,
///   L_tx = 2 * W_wrong / (W_right + W_wrong),
/// where W_right / W_wrong are summed reputations of collectors that labeled
/// the transaction correctly / incorrectly (§3.4.2). Always in [0, 2].
[[nodiscard]] double expected_loss(double w_right, double w_wrong);

/// The paper's practical mislabel discount
///   gamma_tx = max{ (beta-1)/L + (beta+1)/2 , (beta^2+beta)/2 },
/// which satisfies beta^2 <= gamma_tx <= beta <= (gamma_tx-1)*L/2 + 1 <= 1
/// for every beta in (0,1) and L in (0, 2] (§3.4.2). For L == 0 no weight is
/// multiplied by gamma, so any feasible value works; we return the lower
/// candidate.
[[nodiscard]] double gamma_tx(double beta, double loss);

/// True iff (beta, gamma, L) satisfies the §3.4.2 inequality chain.
[[nodiscard]] bool gamma_feasible(double beta, double gamma, double loss);

}  // namespace repchain::reputation
