#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace repchain::reputation {

/// An expert's behaviour in one round of the abstract game: the collector's
/// label was correct, wrong, or the collector abstained (discarded the
/// transaction).
enum class Advice : std::uint8_t {
  kCorrect = 0,
  kWrong = 1,
  kAbstain = 2,
};

/// The learning-with-expert-advice game underlying Theorem 1, isolated from
/// the rest of the protocol so the regret bound can be validated directly
/// (experiment E1).
///
/// Each round the governor faces one unchecked transaction; each expert
/// (collector) is correct, wrong, or abstains. The governor's expected loss
/// for the round is L_t = 2*W_wrong / (W_right + W_wrong) computed over
/// current weights; afterwards wrong experts are discounted by gamma_t
/// (the paper's closed form) and abstainers by beta.
///
/// Per-expert cumulative loss counts 2 per wrong round and 1 per abstention
/// (matching the exponents with which beta bounds the expert's weight from
/// below in the proof: w_i >= beta^{S_i} since gamma_t >= beta^2).
class RwmGame {
 public:
  RwmGame(std::size_t experts, double beta);

  /// Play one round. Returns this round's expected governor loss L_t.
  double step(std::span<const Advice> advice);

  [[nodiscard]] std::size_t experts() const { return log_w_.size(); }
  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] double beta() const { return beta_; }

  /// L_T: cumulative expected governor loss.
  [[nodiscard]] double cumulative_loss() const { return cumulative_loss_; }
  /// S_i per expert.
  [[nodiscard]] const std::vector<double>& expert_losses() const { return expert_loss_; }
  /// S_min = min_i S_i.
  [[nodiscard]] double min_expert_loss() const;
  /// Regret L_T - S_min.
  [[nodiscard]] double regret() const { return cumulative_loss() - min_expert_loss(); }

  /// The proof's explicit bound with this beta:
  ///   L_T <= S_min + 2*(log r / (1-beta) + 16*(1-beta)*T)   (Theorem 1).
  [[nodiscard]] double theorem_bound() const;

  /// Relative weight (max-normalized) of expert i.
  [[nodiscard]] double relative_weight(std::size_t i) const;

 private:
  double beta_;
  double log_beta_;
  std::vector<double> log_w_;
  std::vector<double> expert_loss_;
  double cumulative_loss_ = 0.0;
  std::size_t rounds_ = 0;
};

/// Convenience: L_T <= S_min + 16*sqrt(T log r), the O(sqrt(T)) headline
/// bound obtained with beta = 1 - 4*sqrt(log r / T).
[[nodiscard]] double sqrt_bound(std::size_t experts, std::size_t rounds);

}  // namespace repchain::reputation
