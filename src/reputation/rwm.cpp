#include "reputation/rwm.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "reputation/gamma.hpp"

namespace repchain::reputation {

RwmGame::RwmGame(std::size_t experts, double beta)
    : beta_(beta), log_beta_(std::log(beta)), log_w_(experts, 0.0),
      expert_loss_(experts, 0.0) {
  if (experts == 0) throw ConfigError("RwmGame needs at least one expert");
  if (beta <= 0.0 || beta >= 1.0) throw ConfigError("beta must be in (0, 1)");
}

double RwmGame::step(std::span<const Advice> advice) {
  if (advice.size() != log_w_.size()) {
    throw ConfigError("advice vector size mismatch");
  }

  const double max_log = *std::max_element(log_w_.begin(), log_w_.end());
  double w_right = 0.0, w_wrong = 0.0;
  for (std::size_t i = 0; i < advice.size(); ++i) {
    const double rel = std::exp(log_w_[i] - max_log);
    if (advice[i] == Advice::kCorrect) w_right += rel;
    if (advice[i] == Advice::kWrong) w_wrong += rel;
  }

  const double loss = expected_loss(w_right, w_wrong);
  const double log_gamma = w_wrong > 0.0 ? std::log(gamma_tx(beta_, loss)) : 0.0;

  for (std::size_t i = 0; i < advice.size(); ++i) {
    switch (advice[i]) {
      case Advice::kCorrect:
        break;
      case Advice::kWrong:
        log_w_[i] += log_gamma;
        expert_loss_[i] += 2.0;
        break;
      case Advice::kAbstain:
        log_w_[i] += log_beta_;
        expert_loss_[i] += 1.0;
        break;
    }
  }

  cumulative_loss_ += loss;
  ++rounds_;
  return loss;
}

double RwmGame::min_expert_loss() const {
  return *std::min_element(expert_loss_.begin(), expert_loss_.end());
}

double RwmGame::theorem_bound() const {
  const double r = static_cast<double>(experts());
  const double t = static_cast<double>(rounds_);
  return min_expert_loss() +
         2.0 * (std::log(r) / (1.0 - beta_) + 16.0 * (1.0 - beta_) * t);
}

double RwmGame::relative_weight(std::size_t i) const {
  const double max_log = *std::max_element(log_w_.begin(), log_w_.end());
  return std::exp(log_w_.at(i) - max_log);
}

double sqrt_bound(std::size_t experts, std::size_t rounds) {
  return 16.0 * std::sqrt(static_cast<double>(rounds) *
                          std::log(static_cast<double>(experts)));
}

}  // namespace repchain::reputation
