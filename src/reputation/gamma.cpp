#include "reputation/gamma.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "reputation/params.hpp"

namespace repchain::reputation {

double theorem_optimal_beta(std::size_t r, std::size_t t) {
  if (r < 2 || t == 0) return 0.9;
  const double raw =
      1.0 - 4.0 * std::sqrt(std::log(static_cast<double>(r)) / static_cast<double>(t));
  return std::clamp(raw, 0.1, 0.9);
}

double expected_loss(double w_right, double w_wrong) {
  if (w_right < 0.0 || w_wrong < 0.0) {
    throw ConfigError("reputation masses must be non-negative");
  }
  const double total = w_right + w_wrong;
  if (total <= 0.0) return 0.0;
  return 2.0 * w_wrong / total;
}

double gamma_tx(double beta, double loss) {
  if (beta <= 0.0 || beta >= 1.0) throw ConfigError("beta must be in (0, 1)");
  if (loss < 0.0 || loss > 2.0) throw ConfigError("loss must be in [0, 2]");
  const double low = (beta * beta + beta) / 2.0;
  if (loss == 0.0) return low;
  const double mid = (beta - 1.0) / loss + (beta + 1.0) / 2.0;
  return std::max(mid, low);
}

bool gamma_feasible(double beta, double gamma, double loss) {
  if (loss <= 0.0) return gamma >= beta * beta && gamma <= beta;
  const double upper = 0.5 * (gamma - 1.0) * loss + 1.0;
  return beta * beta <= gamma && gamma <= beta && beta <= upper && upper <= 1.0;
}

}  // namespace repchain::reputation
