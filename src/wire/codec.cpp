#include "wire/codec.hpp"

#include "common/serial.hpp"

namespace repchain::wire {
namespace {

/// Run a BinaryReader decode body, translating the serial layer's
/// DecodeError (ran off the end / bad count) into kTruncatedPayload and
/// enforcing that the payload holds nothing beyond its fields.
template <typename Fn>
auto decode_exact(BytesView data, Fn&& fn) {
  BinaryReader r(data);
  try {
    auto value = fn(r);
    if (r.remaining() != 0) {
      throw WireError(ProtocolError::kTrailingBytes,
                      std::to_string(r.remaining()) + " bytes after the last field");
    }
    return value;
  } catch (const WireError&) {
    throw;
  } catch (const DecodeError& e) {
    throw WireError(ProtocolError::kTruncatedPayload, e.what());
  }
}

}  // namespace

Bytes encode_message(const runtime::Message& msg) {
  Bytes out;
  encode_message_into(msg, out);
  return out;
}

void encode_message_into(const runtime::Message& msg, Bytes& out) {
  out.clear();
  BinaryWriter w(std::move(out));
  w.u32(msg.from.value());
  w.u32(msg.to.value());
  w.u16(static_cast<std::uint16_t>(msg.kind));
  w.u64(msg.sent_at);
  w.u64(msg.delivered_at);
  w.u64(msg.seq);
  w.bytes(msg.payload);
  out = std::move(w).take();
}

runtime::Message decode_message(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    runtime::Message m;
    m.from = NodeId(r.u32());
    m.to = NodeId(r.u32());
    m.kind = static_cast<runtime::MsgKind>(r.u16());
    m.sent_at = r.u64();
    m.delivered_at = r.u64();
    m.seq = r.u64();
    m.payload = r.bytes();
    return m;
  });
}

Bytes encode_trace(const runtime::TraceEvent& ev) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(ev.kind));
  w.u32(ev.node.value());
  w.u64(ev.round);
  w.u64(ev.arg0);
  w.u64(ev.arg1);
  w.u64(ev.at);
  return std::move(w).take();
}

runtime::TraceEvent decode_trace(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    runtime::TraceEvent ev;
    const std::uint8_t kind = r.u8();
    if (kind < static_cast<std::uint8_t>(runtime::TraceKind::kRoundStarted) ||
        kind > static_cast<std::uint8_t>(runtime::TraceKind::kDeliveryFailed)) {
      throw WireError(ProtocolError::kBadPayload,
                      "trace kind " + std::to_string(kind) + " out of range");
    }
    ev.kind = static_cast<runtime::TraceKind>(kind);
    ev.node = NodeId(r.u32());
    ev.round = r.u64();
    ev.arg0 = r.u64();
    ev.arg1 = r.u64();
    ev.at = r.u64();
    return ev;
  });
}

Bytes encode_welcome(const Welcome& w) {
  BinaryWriter out;
  out.u16(w.version_min);
  out.u16(w.version_max);
  out.raw(view(w.genesis));
  out.u8(static_cast<std::uint8_t>(w.role));
  out.u32(w.node_index);
  out.u32(static_cast<std::uint32_t>(w.hosted.size()));
  for (const NodeId n : w.hosted) out.u32(n.value());
  out.u64(w.nonce);
  // v2 session-resume extension (always encoded by this build).
  out.u8(w.resume ? 1 : 0);
  out.u32(w.incarnation);
  out.u64(w.head_serial);
  return std::move(out).take();
}

Welcome decode_welcome(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    Welcome w;
    w.version_min = r.u16();
    w.version_max = r.u16();
    if (w.version_min > w.version_max) {
      throw WireError(ProtocolError::kBadPayload, "welcome version range inverted");
    }
    w.genesis = r.raw_array<32>();
    const std::uint8_t role = r.u8();
    if (role < static_cast<std::uint8_t>(Role::kPeer) ||
        role > static_cast<std::uint8_t>(Role::kNode)) {
      throw WireError(ProtocolError::kBadRole,
                      "welcome role " + std::to_string(role) + " unknown");
    }
    w.role = static_cast<Role>(role);
    w.node_index = r.u32();
    const std::uint32_t hosted = r.u32();
    r.expect_count(hosted, 4);
    w.hosted.reserve(hosted);
    for (std::uint32_t i = 0; i < hosted; ++i) w.hosted.push_back(NodeId(r.u32()));
    w.nonce = r.u64();
    const std::uint8_t resume = r.u8();
    if (resume > 1) {
      throw WireError(ProtocolError::kBadPayload,
                      "welcome resume flag " + std::to_string(resume));
    }
    w.resume = resume == 1;
    w.incarnation = r.u32();
    w.head_serial = r.u64();
    if (w.resume && w.incarnation == 0) {
      throw WireError(ProtocolError::kBadPayload,
                      "resuming welcome with incarnation 0");
    }
    return w;
  });
}

std::uint16_t negotiate_version(std::uint16_t local_min, std::uint16_t local_max,
                                std::uint16_t remote_min, std::uint16_t remote_max) {
  if (remote_min > local_max) {
    throw WireError(ProtocolError::kHighVersion,
                    "peer speaks only versions >= " + std::to_string(remote_min) +
                        ", ours end at " + std::to_string(local_max));
  }
  if (remote_max < local_min) {
    throw WireError(ProtocolError::kLowVersion,
                    "peer speaks only versions <= " + std::to_string(remote_max) +
                        ", ours start at " + std::to_string(local_min));
  }
  return remote_max < local_max ? remote_max : local_max;
}

std::uint16_t check_welcome(const Welcome& remote, const crypto::Hash256& genesis) {
  const std::uint16_t version = negotiate_version(kVersionMin, kVersionMax,
                                                  remote.version_min,
                                                  remote.version_max);
  if (remote.genesis != genesis) {
    throw WireError(ProtocolError::kWrongGenesis,
                    "peer lives on a different genesis");
  }
  return version;
}

Bytes encode_heartbeat(const Heartbeat& h) {
  BinaryWriter w;
  w.u64(h.nonce);
  w.u64(h.sent_at);
  return std::move(w).take();
}

Heartbeat decode_heartbeat(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    Heartbeat h;
    h.nonce = r.u64();
    h.sent_at = r.u64();
    return h;
  });
}

Bytes encode_error(const ErrorPacket& e) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(e.code));
  w.str(e.detail);
  return std::move(w).take();
}

ErrorPacket decode_error(BytesView data) {
  return decode_exact(data, [](BinaryReader& r) {
    ErrorPacket e;
    const std::uint8_t code = r.u8();
    if (code >= kProtocolErrorCount) {
      throw WireError(ProtocolError::kBadPayload,
                      "error code " + std::to_string(code) + " out of range");
    }
    e.code = static_cast<ProtocolError>(code);
    e.detail = r.str();
    return e;
  });
}

}  // namespace repchain::wire
