#include "wire/frame.hpp"

#include <cstring>
#include <string>

#include "common/serial.hpp"

namespace repchain::wire {

Bytes encode_frame(std::uint16_t type, BytesView payload, std::uint16_t version) {
  Bytes out;
  append_frame(out, type, payload, version);
  return out;
}

void append_frame(Bytes& out, std::uint16_t type, BytesView payload,
                  std::uint16_t version) {
  BinaryWriter w(std::move(out));
  w.u32(kMagic);
  w.u16(version);
  w.u16(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  out = std::move(w).take();
}

void FrameReader::poison(ProtocolError code, const std::string& what) {
  poisoned_ = code;
  throw WireError(code, what);
}

void FrameReader::feed(BytesView data, std::vector<Frame>& out) {
  if (poisoned_ != ProtocolError::kNone) {
    throw WireError(poisoned_, "frame reader poisoned by an earlier error");
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  for (;;) {
    if (buf_.size() < kHeaderSize) return;
    // Fixed little-endian header reads; the BinaryReader is not used here
    // because the buffer usually holds a partial next frame behind this one.
    const auto rd_u32 = [&](std::size_t off) {
      return static_cast<std::uint32_t>(buf_[off]) |
             static_cast<std::uint32_t>(buf_[off + 1]) << 8 |
             static_cast<std::uint32_t>(buf_[off + 2]) << 16 |
             static_cast<std::uint32_t>(buf_[off + 3]) << 24;
    };
    const auto rd_u16 = [&](std::size_t off) {
      return static_cast<std::uint16_t>(static_cast<std::uint16_t>(buf_[off]) |
                                        static_cast<std::uint16_t>(buf_[off + 1]) << 8);
    };
    if (rd_u32(0) != kMagic) {
      poison(ProtocolError::kBadMagic, "stream does not carry the protocol magic");
    }
    const std::uint16_t version = rd_u16(4);
    if (version > kVersionMax) {
      poison(ProtocolError::kHighVersion,
             "frame version " + std::to_string(version) + " above max " +
                 std::to_string(kVersionMax));
    }
    if (version < kVersionMin) {
      poison(ProtocolError::kLowVersion,
             "frame version " + std::to_string(version) + " below min " +
                 std::to_string(kVersionMin));
    }
    const std::uint32_t length = rd_u32(8);
    if (length > max_payload_) {
      poison(ProtocolError::kOversizedFrame,
             "announced payload of " + std::to_string(length) + " bytes exceeds bound");
    }
    if (buf_.size() < kHeaderSize + length) return;
    Frame f;
    f.version = version;
    f.type = rd_u16(6);
    f.payload.assign(buf_.begin() + kHeaderSize,
                     buf_.begin() + kHeaderSize + length);
    buf_.erase(buf_.begin(), buf_.begin() + kHeaderSize + length);
    out.push_back(std::move(f));
  }
}

}  // namespace repchain::wire
