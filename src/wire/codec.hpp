#pragma once

// Canonical codecs for everything that crosses a socket, shared with the
// simulator: the runtime::Message envelope (so a frame on the wire and a
// delivery in the simulated network are the same bytes), trace events, and
// the welcome/error handshake packets. Every decode failure is reported as
// a WireError carrying a ProtocolError code — truncation, trailing bytes
// and out-of-domain fields map to distinct codes so tests and peers can
// tell them apart.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "runtime/message.hpp"
#include "runtime/trace.hpp"
#include "wire/frame.hpp"
#include "wire/protocol_error.hpp"

namespace repchain::wire {

// --- Message envelope --------------------------------------------------------

/// Full envelope: from, to, kind, payload, timestamps, broadcast sequence.
/// Timestamps/seq ride along so the pre-ordered deliver_direct path and the
/// lockstep cluster replay see exactly the simulator's metadata.
[[nodiscard]] Bytes encode_message(const runtime::Message& msg);
/// Encode into `out` (cleared first, capacity kept): the hot send path
/// reuses one envelope buffer instead of allocating per message.
void encode_message_into(const runtime::Message& msg, Bytes& out);
[[nodiscard]] runtime::Message decode_message(BytesView data);

// --- Trace events ------------------------------------------------------------

[[nodiscard]] Bytes encode_trace(const runtime::TraceEvent& ev);
[[nodiscard]] runtime::TraceEvent decode_trace(BytesView data);

// --- Handshake ---------------------------------------------------------------

/// Endpoint roles announced in the welcome exchange.
enum class Role : std::uint8_t {
  kPeer = 1,    // symmetric mesh endpoint (TcpTransport)
  kDriver = 2,  // cluster driver (hosts everything but the governors)
  kNode = 3,    // cluster governor node process
};

/// First packet in each direction on every fresh connection, pettycoin
/// welcome style: the version range the sender speaks, the genesis hash of
/// the universe it lives in, its role, and the NodeIds it hosts. Either
/// side drops the connection with a kError packet when the ranges do not
/// overlap or the genesis differs.
struct Welcome {
  std::uint16_t version_min = kVersionMin;
  std::uint16_t version_max = kVersionMax;
  crypto::Hash256 genesis{};
  Role role = Role::kPeer;
  std::uint32_t node_index = 0;  // governor index for Role::kNode
  std::vector<NodeId> hosted;    // NodeIds reachable through this endpoint
  std::uint64_t nonce = 0;       // self-connection detection
  // v2 session-resume extension: a restarted endpoint announces that it is
  // a returning incarnation and how far its persisted chain reaches, so the
  // admitting side re-admits it into the running session (replaying ground
  // truth, triggering catch-up sync) instead of treating it as a cold peer.
  bool resume = false;            // true = returning incarnation
  std::uint32_t incarnation = 0;  // restart count (ReliableChannel epoch)
  std::uint64_t head_serial = 0;  // chain height recovered from the store
};

[[nodiscard]] Bytes encode_welcome(const Welcome& w);
[[nodiscard]] Welcome decode_welcome(BytesView data);

/// The version both sides will speak: the highest version in both ranges.
/// Throws WireError kHighVersion when the peer only speaks newer versions,
/// kLowVersion when only older ones.
[[nodiscard]] std::uint16_t negotiate_version(std::uint16_t local_min,
                                              std::uint16_t local_max,
                                              std::uint16_t remote_min,
                                              std::uint16_t remote_max);

/// Full admission check against local expectations: version negotiation
/// plus the genesis-hash comparison (throws kWrongGenesis). Returns the
/// negotiated version.
[[nodiscard]] std::uint16_t check_welcome(const Welcome& remote,
                                          const crypto::Hash256& genesis);

// --- Heartbeat ---------------------------------------------------------------

/// v2 keepalive payload. The nonce identifies the sending endpoint (same
/// value as its welcome nonce) and sent_at carries its local clock; both are
/// diagnostic only — receipt of *any* bytes is what proves liveness.
struct Heartbeat {
  std::uint64_t nonce = 0;
  SimTime sent_at = 0;
};

[[nodiscard]] Bytes encode_heartbeat(const Heartbeat& h);
[[nodiscard]] Heartbeat decode_heartbeat(BytesView data);

// --- Error packet ------------------------------------------------------------

struct ErrorPacket {
  ProtocolError code = ProtocolError::kNone;
  std::string detail;
};

[[nodiscard]] Bytes encode_error(const ErrorPacket& e);
[[nodiscard]] ErrorPacket decode_error(BytesView data);

}  // namespace repchain::wire
