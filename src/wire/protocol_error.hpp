#pragma once

// Explicit wire-protocol error vocabulary, in the style of pettycoin's
// protocol_error enum: every way a peer's byte stream can be wrong gets its
// own code, the code travels in the kError packet that closes the
// connection, and handshake/framing tests assert on codes rather than on
// message strings.

#include <cstdint>
#include <string_view>

#include "common/errors.hpp"

namespace repchain::wire {

/// Everything that can go wrong between two endpoints before (or instead
/// of) a protocol message being understood. Codes are wire-stable: they are
/// sent inside kError packets, so values must never be reused.
enum class ProtocolError : std::uint8_t {
  kNone = 0,             // placeholder; never a valid failure
  kBadMagic = 1,         // stream does not start with the protocol magic
  kHighVersion = 2,      // peer only speaks versions newer than ours
  kLowVersion = 3,       // peer only speaks versions older than ours
  kWrongGenesis = 4,     // peer's genesis hash differs: different universe
  kOversizedFrame = 5,   // announced payload length beyond the frame bound
  kTruncatedPayload = 6, // payload ended before its fields did
  kTrailingBytes = 7,    // payload longer than its fields account for
  kBadPayload = 8,       // a field holds a value outside its domain
  kUnknownPacket = 9,    // packet type unknown at the negotiated version
  kBadRole = 10,         // handshake role invalid for this endpoint
  kBadNodeIndex = 11,    // hosted-node announcement out of range/duplicate
  kUnexpectedPacket = 12,// well-formed packet at the wrong exchange point
  kCrossShardTx = 13,    // tx's provider and collector live in different
                         // committees (pettycoin TRANS_CROSS_SHARDS)
  kPeerTimeout = 14      // blocking RPC deadline expired: the peer process
                         // hung or died without closing the socket
};

/// Number of defined codes (fuzz coverage assertions iterate the range).
inline constexpr std::size_t kProtocolErrorCount = 15;

[[nodiscard]] constexpr std::string_view to_string(ProtocolError e) {
  switch (e) {
    case ProtocolError::kNone: return "none";
    case ProtocolError::kBadMagic: return "bad-magic";
    case ProtocolError::kHighVersion: return "high-version";
    case ProtocolError::kLowVersion: return "low-version";
    case ProtocolError::kWrongGenesis: return "wrong-genesis";
    case ProtocolError::kOversizedFrame: return "oversized-frame";
    case ProtocolError::kTruncatedPayload: return "truncated-payload";
    case ProtocolError::kTrailingBytes: return "trailing-bytes";
    case ProtocolError::kBadPayload: return "bad-payload";
    case ProtocolError::kUnknownPacket: return "unknown-packet";
    case ProtocolError::kBadRole: return "bad-role";
    case ProtocolError::kBadNodeIndex: return "bad-node-index";
    case ProtocolError::kUnexpectedPacket: return "unexpected-packet";
    case ProtocolError::kCrossShardTx: return "cross-shard-tx";
    case ProtocolError::kPeerTimeout: return "peer-timeout";
  }
  return "invalid";
}

/// The exception every wire decode/handshake failure is reported through;
/// carries the ProtocolError code the kError packet (and the trace event)
/// surface.
class WireError : public Error {
 public:
  WireError(ProtocolError code, const std::string& what)
      : Error("wire [" + std::string(to_string(code)) + "]: " + what),
        code_(code) {}

  [[nodiscard]] ProtocolError code() const { return code_; }

 private:
  ProtocolError code_;
};

}  // namespace repchain::wire
