#pragma once

// Length-framed packet layer shared by every real-socket path (TcpTransport
// mesh, cluster driver/node RPC). One frame on the stream is
//
//   magic u32 | version u16 | type u16 | length u32 | payload[length]
//
// all little-endian. The magic pins stream alignment (a desynced or foreign
// stream fails immediately with kBadMagic instead of misparsing), the
// version is checked structurally against the range this build speaks, and
// the length is bounded so a hostile peer cannot make us buffer without
// limit. FrameReader is incremental: feed it whatever the socket returned —
// including single bytes — and it emits complete frames as they close.

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "wire/protocol_error.hpp"

namespace repchain::wire {

/// "RepC" in stream order (the header is little-endian).
inline constexpr std::uint32_t kMagic = 0x43706552;

/// Wire-protocol versions this build can speak, inclusive. Version 2 adds
/// the kHeartbeat keepalive packet and the session-resume fields trailing
/// the Welcome payload (resume flag + persisted chain head serial); the
/// frame format itself is unchanged, so v1 streams still parse.
inline constexpr std::uint16_t kVersionMin = 1;
inline constexpr std::uint16_t kVersionMax = 2;

inline constexpr std::size_t kHeaderSize = 12;

/// Default payload bound: generous for block sync, far below anything a
/// hostile length field could use to exhaust memory.
inline constexpr std::size_t kDefaultMaxPayload = 8u << 20;

/// Packet types in the shared (wire-level) range; subsystems extend the
/// space from 16 upward (cluster RPC vocabulary lives there).
enum class PacketType : std::uint16_t {
  kWelcome = 1,    // handshake announcement (both directions)
  kError = 2,      // ProtocolError + detail, sent before closing
  kMessage = 3,    // canonical runtime::Message envelope (transport unicast)
  kDirect = 4,     // pre-ordered envelope (Transport::deliver_direct path)
  kHeartbeat = 5,  // v2 keepalive: any traffic proves liveness, this packet
                   // exists so an idle link still produces some
};

struct Frame {
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  Bytes payload;
};

/// One encoded frame, ready for the socket.
[[nodiscard]] Bytes encode_frame(std::uint16_t type, BytesView payload,
                                 std::uint16_t version = kVersionMax);

/// Append one frame (header + payload) to `out` in place, so an outbound
/// socket buffer can be used as the encode arena — no intermediate frame
/// allocation. `payload` must not alias `out`.
void append_frame(Bytes& out, std::uint16_t type, BytesView payload,
                  std::uint16_t version = kVersionMax);

/// Incremental frame decoder over an arbitrary chunking of the stream.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Consume `data`, appending every frame completed by it to `out`.
  /// Throws WireError (kBadMagic / kHighVersion / kLowVersion /
  /// kOversizedFrame) on a structurally bad header; after a throw the
  /// reader is poisoned and every further feed re-throws.
  void feed(BytesView data, std::vector<Frame>& out);

  /// Bytes buffered toward an incomplete frame (0 on a frame boundary).
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }
  [[nodiscard]] bool poisoned() const { return poisoned_ != ProtocolError::kNone; }

 private:
  [[noreturn]] void poison(ProtocolError code, const std::string& what);

  std::size_t max_payload_;
  Bytes buf_;
  ProtocolError poisoned_ = ProtocolError::kNone;
};

}  // namespace repchain::wire
