// runtime::EventLoop determinism contracts. The loop's (time, seq) ordering
// key is the simulator's entire source of event order, so these tests pin
// the properties everything above relies on: FIFO tie-break at equal
// timestamps (including events scheduled from inside callbacks), exact
// cancellation semantics of RevocableTimers epochs, and bit-identical
// replay of a mixed schedule across independent loop instances — the
// isolation guarantee sim::ParallelSweep builds on.
#include "runtime/event_loop.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "runtime/revocable_timers.hpp"

namespace repchain::runtime {
namespace {

TEST(EventLoop, SameTimestampFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  // Interleave two timestamps; within each, insertion order must hold even
  // though the priority queue itself is not stable.
  for (int i = 0; i < 8; ++i) {
    loop.schedule_at(i % 2 == 0 ? 10 : 20, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(loop.run(), 8u);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(EventLoop, CallbackScheduledEventsKeepFifoAtSameInstant) {
  // An event firing at t may schedule more work at t; that work must run
  // after everything already queued for t, in the order it was added.
  EventLoop loop;
  std::vector<std::string> order;
  loop.schedule_at(5, [&] {
    order.push_back("first");
    loop.schedule_at(5, [&] { order.push_back("nested-a"); });
    loop.schedule_at(5, [&] { order.push_back("nested-b"); });
  });
  loop.schedule_at(5, [&] { order.push_back("second"); });
  loop.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "nested-a",
                                             "nested-b"}));
  EXPECT_EQ(loop.now(), 5u);
}

TEST(EventLoop, RunUntilLeavesLaterEventsPending) {
  EventLoop loop;
  std::vector<SimTime> fired;
  for (SimTime t : {5, 10, 15, 20}) {
    loop.schedule_at(t, [&fired, &loop] { fired.push_back(loop.now()); });
  }
  EXPECT_EQ(loop.run_until(12), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(loop.pending(), 2u);
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10, 15, 20}));
}

TEST(EventLoop, RevocableTimersCancelExactlyTheRevokedEpoch) {
  EventLoop loop;
  RevocableTimers timers(loop);
  std::vector<int> fired;
  timers.schedule_at(10, [&] { fired.push_back(1); });
  timers.schedule_at(20, [&] { fired.push_back(2); });
  timers.revoke_all();  // both armed callbacks die with the old epoch
  timers.schedule_at(15, [&] { fired.push_back(3); });
  loop.schedule_at(25, [&] { fired.push_back(4); });  // not revocable: lives
  timers.revoke_all();  // kills 3, not the raw-loop 4
  timers.schedule_at(30, [&] { fired.push_back(5); });
  // All five events still occupy queue slots (revocation disarms, it does
  // not unschedule), but only the live ones run.
  EXPECT_EQ(loop.pending(), 5u);
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{4, 5}));
}

TEST(EventLoop, IdenticalMixedSchedulesReplayIdentically) {
  // Two independent loops fed the same mixed schedule (duplicate
  // timestamps, nested scheduling, a revoked epoch) must produce the same
  // trace — the per-instance determinism ParallelSweep relies on, with no
  // shared state between instances.
  const auto trace = [] {
    EventLoop loop;
    RevocableTimers timers(loop);
    std::vector<std::pair<SimTime, int>> out;
    const auto mark = [&out, &loop](int tag) { out.emplace_back(loop.now(), tag); };
    for (int i = 0; i < 4; ++i) {
      loop.schedule_at(10, [&, i] {
        mark(i);
        loop.schedule_at(10, [&, i] { mark(100 + i); });
      });
      timers.schedule_at(30, [&, i] { mark(200 + i); });
    }
    loop.schedule_at(20, [&] {
      mark(50);
      timers.revoke_all();  // the four 200-series timers never fire
      timers.schedule_at(30, [&] { mark(60); });
    });
    loop.run();
    return out;
  };
  const auto a = trace();
  const auto b = trace();
  ASSERT_EQ(a.size(), 10u);  // 4 + 4 nested + mark(50) + mark(60)
  EXPECT_EQ(a, b);
}

TEST(EventLoop, SchedulingInPastThrowsAndCountsNothing) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), NetError);
  EXPECT_EQ(loop.processed(), 1u);
  EXPECT_TRUE(loop.empty());
}

}  // namespace
}  // namespace repchain::runtime
