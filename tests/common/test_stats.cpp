#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace repchain {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentiles, BasicQuantiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
}

TEST(Histogram, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

}  // namespace
}  // namespace repchain
