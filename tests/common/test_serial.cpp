#include "common/serial.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace repchain {
namespace {

TEST(Serial, IntegerRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);

  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Serial, DoubleRoundTrip) {
  BinaryWriter w;
  w.f64(3.14159);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());

  BinaryReader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(Serial, BooleanRoundTrip) {
  BinaryWriter w;
  w.boolean(true);
  w.boolean(false);
  BinaryReader r(w.data());
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
}

TEST(Serial, BooleanRejectsOutOfRange) {
  const Bytes raw = {2};
  BinaryReader r(raw);
  EXPECT_THROW((void)r.boolean(), DecodeError);
}

TEST(Serial, BytesAndStringRoundTrip) {
  BinaryWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});

  BinaryReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), Bytes{});
  r.expect_done();
}

TEST(Serial, RawFixedFields) {
  BinaryWriter w;
  ByteArray<4> arr = {4, 3, 2, 1};
  w.raw(view(arr));
  BinaryReader r(w.data());
  EXPECT_EQ(r.raw_array<4>(), arr);
}

TEST(Serial, TruncatedIntegerThrows) {
  const Bytes raw = {1, 2, 3};
  BinaryReader r(raw);
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(Serial, TruncatedBytesThrows) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  BinaryReader r(w.data());
  EXPECT_THROW((void)r.bytes(), DecodeError);
}

TEST(Serial, TrailingBytesDetected) {
  BinaryWriter w;
  w.u8(1);
  w.u8(2);
  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.expect_done(), DecodeError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Serial, LittleEndianLayout) {
  BinaryWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

}  // namespace
}  // namespace repchain
