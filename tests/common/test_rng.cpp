#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/errors.hpp"

namespace repchain {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), ConfigError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRangeAndRoughlyUniform) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedChoiceFrequencies) {
  Rng rng(17);
  const std::vector<double> w = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_choice(w)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, WeightedChoiceSkipsZeroWeights) {
  Rng rng(19);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_choice(w), 1u);
  }
}

TEST(Rng, WeightedChoiceRejectsBadInput) {
  Rng rng(23);
  EXPECT_THROW(rng.weighted_choice(std::vector<double>{0.0, 0.0}), ConfigError);
  EXPECT_THROW(rng.weighted_choice(std::vector<double>{-1.0, 2.0}), ConfigError);
  EXPECT_THROW(rng.weighted_choice(std::vector<double>{std::nan(""), 1.0}), ConfigError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BytesFillsRequestedLength) {
  Rng rng(31);
  const Bytes b = rng.bytes(37);
  EXPECT_EQ(b.size(), 37u);
  // Overwhelmingly unlikely to be all zero.
  bool nonzero = false;
  for (auto x : b) nonzero |= (x != 0);
  EXPECT_TRUE(nonzero);
}

TEST(Rng, DerivedStreamsIndependent) {
  Rng base(101);
  Rng a = base.derive(1);
  Rng b = base.derive(2);
  Rng a2 = base.derive(1);
  int same_ab = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next_u64();
    const auto vb = b.next_u64();
    EXPECT_EQ(va, a2.next_u64());  // same salt -> same stream
    if (va == vb) ++same_ab;
  }
  EXPECT_LT(same_ab, 2);  // different salts -> different streams
}

}  // namespace
}  // namespace repchain
