#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace repchain {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Bytes, HexOddLengthThrows) {
  EXPECT_THROW(from_hex("abc"), DecodeError);
}

TEST(Bytes, HexBadCharThrows) {
  EXPECT_THROW(from_hex("zz"), DecodeError);
  EXPECT_THROW(from_hex("0g"), DecodeError);
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "hello \x01 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, Append) {
  Bytes dst = {1, 2};
  append(dst, Bytes{3, 4});
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, Concat) {
  const Bytes a = {1}, b = {}, c = {2, 3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, FixedArrayHelpers) {
  ByteArray<4> arr = {9, 8, 7, 6};
  EXPECT_EQ(to_bytes(arr), (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(view(arr).size(), 4u);
  EXPECT_EQ(view(arr)[0], 9);
}

}  // namespace
}  // namespace repchain
