// Tests for the equivocation-detection extension: governors gossip the
// signed labels they received; conflicting signatures by one collector over
// the same transaction are a self-contained proof, punished like a forgery.
// The unit-level section at the bottom drives the detector directly through
// its edge cases: malformed gossip, signature checks, conflicts straddling
// the age-out boundary, and leader-proposal equivocation.
#include <gtest/gtest.h>

#include "crypto/keygen.hpp"
#include "ledger/block.hpp"
#include "protocol/equivocation_detector.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

using protocol::CollectorBehavior;

ScenarioConfig config_with_gossip(bool gossip) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;  // even count: the equivocator's alternating
                               // labels split 2/2 across governors
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::honest(),
                   CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = gossip;
  cfg.seed = 2112;
  return cfg;
}

TEST(Equivocation, DetectedWhenGossipEnabled) {
  Scenario s(config_with_gossip(true));
  s.run();

  std::uint64_t detections = 0;
  for (auto& g : s.governors()) detections += g->metrics().equivocations_detected;
  EXPECT_GT(detections, 0u);

  // The equivocator's forge counter went negative under every governor that
  // caught a conflict; honest collectors are untouched everywhere.
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->reputation().forge(CollectorId(0)), 0);
    EXPECT_EQ(g->reputation().forge(CollectorId(1)), 0);
  }
  bool punished_somewhere = false;
  for (auto& g : s.governors()) {
    punished_somewhere |= g->reputation().forge(CollectorId(2)) < 0;
  }
  EXPECT_TRUE(punished_somewhere);
}

TEST(Equivocation, InvisibleWithoutGossip) {
  Scenario s(config_with_gossip(false));
  s.run();
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->metrics().equivocations_detected, 0u);
    EXPECT_EQ(g->reputation().forge(CollectorId(2)), 0);
  }
}

TEST(Equivocation, HonestRunProducesNoFalsePositives) {
  auto cfg = config_with_gossip(true);
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::noisy(0.7),
                   CollectorBehavior::misreporting(0.5)};
  Scenario s(cfg);
  s.run();
  // Noise and misreporting produce *consistent* labels across governors
  // (the collector signs once and atomically broadcasts); only equivocation
  // triggers the detector.
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->metrics().equivocations_detected, 0u);
  }
}

TEST(Equivocation, PunishedAtMostOncePerTransaction) {
  Scenario s(config_with_gossip(true));
  s.run();
  // Each governor punishes each (collector, tx) conflict at most once, so
  // the forge counter magnitude never exceeds the number of transactions the
  // equivocator handled.
  std::uint64_t handled = s.collectors()[2].stats().uploaded;
  for (auto& g : s.governors()) {
    EXPECT_LE(static_cast<std::uint64_t>(-g->reputation().forge(CollectorId(2))),
              handled);
  }
}

TEST(Equivocation, GossipCutsEquivocatorRevenue) {
  auto cfg = config_with_gossip(true);
  cfg.rounds = 8;
  Scenario with(cfg);
  with.run();
  // Under gossip, the equivocator's revenue share collapses via nu^forge.
  for (auto& g : with.governors()) {
    if (g->metrics().equivocations_detected == 0) continue;
    double equiv_share = 0.0, honest_share = 0.0;
    for (const auto& [c, share] : g->revenue_shares()) {
      if (c == CollectorId(2)) equiv_share = share;
      if (c == CollectorId(0)) honest_share = share;
    }
    EXPECT_LT(equiv_share, honest_share);
  }
}

// --- Unit-level edge cases ---------------------------------------------------

struct DetectorEdgeFixture : ::testing::Test {
  DetectorEdgeFixture() {
    directory.add_collector(CollectorId(0), NodeId(0));
    im.enroll(NodeId(0), identity::Role::kCollector, collector_key.public_key());
    directory.add_governor(GovernorId(7), NodeId(1));
    im.enroll(NodeId(1), identity::Role::kGovernor, leader_key.public_key());
    table.register_collector(CollectorId(0));
    table.link(CollectorId(0), ProviderId(0));
    detector.set_evidence([this](adversary::ByzantineKind, std::uint64_t) {
      ++evidence_fired;
    });
  }

  ledger::Transaction make_tx(std::uint64_t seq) {
    return ledger::make_transaction(ProviderId(0), seq, 0, rng.bytes(8),
                                    provider_key);
  }

  /// A signed leader block at `serial`; varying `round` varies the content,
  /// so two calls with different rounds are a conflicting pair.
  ledger::Block leader_block(BlockSerial serial, Round round) {
    return ledger::make_block(serial, round, crypto::Hash256{}, GovernorId(7), {},
                              leader_key);
  }

  Rng rng{66};
  identity::IdentityManager im{crypto::random_seed(rng)};
  protocol::Directory directory;
  reputation::ReputationTable table{reputation::ReputationParams{}};
  protocol::GovernorMetrics metrics;
  crypto::SigningKey provider_key{crypto::random_seed(rng)};
  crypto::SigningKey collector_key{crypto::random_seed(rng)};
  crypto::SigningKey leader_key{crypto::random_seed(rng)};
  protocol::EquivocationDetector detector{im, directory, table, metrics};
  int evidence_fired = 0;
};

TEST_F(DetectorEdgeFixture, LabelConflictStraddlingOneAgeOutStillDetected) {
  // The two-generation window exists exactly for this: the local label lands
  // late in round r, the peer's conflicting gossip arrives in round r+1.
  const auto tx = make_tx(1);
  detector.note_label(
      tx.id(), ledger::make_labeled(tx, ledger::Label::kValid, CollectorId(0),
                                    collector_key));
  detector.age_out();  // one round boundary: evidence now in the prev generation
  detector.on_gossip({ledger::make_labeled(tx, ledger::Label::kInvalid,
                                           CollectorId(0), collector_key)});
  EXPECT_EQ(metrics.equivocations_detected, 1u);
  EXPECT_EQ(evidence_fired, 1);
}

TEST_F(DetectorEdgeFixture, RepeatedGossipAcrossAgeOutPunishesAtMostOnce) {
  // The punished set outlives the evidence generations: replaying the same
  // proof in later rounds (even after the labels aged out) never compounds
  // the punishment.
  const auto tx = make_tx(1);
  const auto mine = ledger::make_labeled(tx, ledger::Label::kValid, CollectorId(0),
                                         collector_key);
  const auto theirs = ledger::make_labeled(tx, ledger::Label::kInvalid,
                                           CollectorId(0), collector_key);
  detector.note_label(tx.id(), mine);
  detector.on_gossip({theirs});
  ASSERT_EQ(metrics.equivocations_detected, 1u);
  const auto punished_score = table.forge(CollectorId(0));

  detector.age_out();
  detector.note_label(tx.id(), mine);  // evidence resurfaces in a later round
  detector.on_gossip({theirs});
  detector.on_gossip({theirs, theirs});
  EXPECT_EQ(metrics.equivocations_detected, 1u);
  EXPECT_EQ(table.forge(CollectorId(0)), punished_score);
  EXPECT_EQ(evidence_fired, 1);
}

TEST_F(DetectorEdgeFixture, GossipWithInvalidCollectorSignatureIgnored) {
  // A conflicting label whose collector signature does not verify is not
  // evidence — anyone could fabricate it.
  const auto tx = make_tx(1);
  detector.note_label(
      tx.id(), ledger::make_labeled(tx, ledger::Label::kValid, CollectorId(0),
                                    collector_key));
  auto forged = ledger::make_labeled(tx, ledger::Label::kInvalid, CollectorId(0),
                                     collector_key);
  forged.collector_sig.bytes[0] ^= 0xFF;
  detector.on_gossip({forged});
  EXPECT_EQ(metrics.equivocations_detected, 0u);
  EXPECT_EQ(table.forge(CollectorId(0)), 0);
  EXPECT_EQ(evidence_fired, 0);
}

TEST_F(DetectorEdgeFixture, TruncatedGossipPayloadIgnoredEvenWithValidPrefix) {
  // A payload that decodes some entries and then runs out of bytes must be
  // dropped whole — partially-applied gossip would make replicas diverge on
  // what they have seen.
  const auto tx = make_tx(1);
  detector.note_label(
      tx.id(), ledger::make_labeled(tx, ledger::Label::kValid, CollectorId(0),
                                    collector_key));
  protocol::EquivocationDetector peer(im, directory, table, metrics);
  peer.note_label(tx.id(),
                  ledger::make_labeled(tx, ledger::Label::kInvalid, CollectorId(0),
                                       collector_key));
  auto payload = detector.take_gossip_payload();
  ASSERT_TRUE(payload.has_value());
  payload->pop_back();  // truncate: the batch no longer parses to completion
  peer.on_gossip_payload(*payload);
  EXPECT_EQ(metrics.equivocations_detected, 0u);
}

TEST_F(DetectorEdgeFixture, ProposalFreshDuplicateConflictAndAtMostOnce) {
  const auto first = leader_block(1, 1);
  auto note = detector.note_proposal(first);
  EXPECT_TRUE(note.fresh);
  EXPECT_FALSE(note.conflict.has_value());

  note = detector.note_proposal(first);  // byte-identical duplicate: benign
  EXPECT_FALSE(note.fresh);
  EXPECT_FALSE(note.conflict.has_value());
  EXPECT_EQ(metrics.proposal_equivocations, 0u);

  const auto second = leader_block(1, 2);  // same serial, different content
  note = detector.note_proposal(second);
  EXPECT_FALSE(note.fresh);
  ASSERT_TRUE(note.conflict.has_value());
  EXPECT_EQ(note.conflict->hash(), first.hash());
  EXPECT_EQ(metrics.proposal_equivocations, 1u);
  EXPECT_TRUE(detector.proposal_conflicted(GovernorId(7), 1));
  EXPECT_EQ(evidence_fired, 1);

  // A third variant at the same serial: already punished, no new evidence.
  note = detector.note_proposal(leader_block(1, 3));
  EXPECT_FALSE(note.fresh);
  EXPECT_FALSE(note.conflict.has_value());
  EXPECT_EQ(metrics.proposal_equivocations, 1u);
  EXPECT_EQ(evidence_fired, 1);
}

TEST_F(DetectorEdgeFixture, ProposalWithBadLeaderSignatureIsNotEvidence) {
  auto block = leader_block(1, 1);
  block.leader_sig.bytes[0] ^= 0xFF;
  const auto note = detector.note_proposal(block);
  EXPECT_FALSE(note.fresh);
  EXPECT_FALSE(note.conflict.has_value());
  // The unsigned claim was not recorded either: the genuine block is fresh.
  EXPECT_TRUE(detector.note_proposal(leader_block(1, 1)).fresh);
}

TEST_F(DetectorEdgeFixture, ProposalConflictStraddlingOneAgeOutStillDetected) {
  ASSERT_TRUE(detector.note_proposal(leader_block(2, 2)).fresh);
  detector.age_out();
  const auto note = detector.note_proposal(leader_block(2, 3));
  ASSERT_TRUE(note.conflict.has_value());
  EXPECT_EQ(metrics.proposal_equivocations, 1u);
}

TEST_F(DetectorEdgeFixture, ProposalBeyondTwoGenerationsIsForgotten) {
  ASSERT_TRUE(detector.note_proposal(leader_block(2, 2)).fresh);
  detector.age_out();
  detector.age_out();  // both generations shifted: the record is gone
  const auto note = detector.note_proposal(leader_block(2, 3));
  EXPECT_TRUE(note.fresh);
  EXPECT_FALSE(note.conflict.has_value());
  EXPECT_EQ(metrics.proposal_equivocations, 0u);
}

}  // namespace
}  // namespace repchain::sim
