// Tests for the equivocation-detection extension: governors gossip the
// signed labels they received; conflicting signatures by one collector over
// the same transaction are a self-contained proof, punished like a forgery.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

using protocol::CollectorBehavior;

ScenarioConfig config_with_gossip(bool gossip) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;  // even count: the equivocator's alternating
                               // labels split 2/2 across governors
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::honest(),
                   CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = gossip;
  cfg.seed = 2112;
  return cfg;
}

TEST(Equivocation, DetectedWhenGossipEnabled) {
  Scenario s(config_with_gossip(true));
  s.run();

  std::uint64_t detections = 0;
  for (auto& g : s.governors()) detections += g->metrics().equivocations_detected;
  EXPECT_GT(detections, 0u);

  // The equivocator's forge counter went negative under every governor that
  // caught a conflict; honest collectors are untouched everywhere.
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->reputation().forge(CollectorId(0)), 0);
    EXPECT_EQ(g->reputation().forge(CollectorId(1)), 0);
  }
  bool punished_somewhere = false;
  for (auto& g : s.governors()) {
    punished_somewhere |= g->reputation().forge(CollectorId(2)) < 0;
  }
  EXPECT_TRUE(punished_somewhere);
}

TEST(Equivocation, InvisibleWithoutGossip) {
  Scenario s(config_with_gossip(false));
  s.run();
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->metrics().equivocations_detected, 0u);
    EXPECT_EQ(g->reputation().forge(CollectorId(2)), 0);
  }
}

TEST(Equivocation, HonestRunProducesNoFalsePositives) {
  auto cfg = config_with_gossip(true);
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::noisy(0.7),
                   CollectorBehavior::misreporting(0.5)};
  Scenario s(cfg);
  s.run();
  // Noise and misreporting produce *consistent* labels across governors
  // (the collector signs once and atomically broadcasts); only equivocation
  // triggers the detector.
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->metrics().equivocations_detected, 0u);
  }
}

TEST(Equivocation, PunishedAtMostOncePerTransaction) {
  Scenario s(config_with_gossip(true));
  s.run();
  // Each governor punishes each (collector, tx) conflict at most once, so
  // the forge counter magnitude never exceeds the number of transactions the
  // equivocator handled.
  std::uint64_t handled = s.collectors()[2].stats().uploaded;
  for (auto& g : s.governors()) {
    EXPECT_LE(static_cast<std::uint64_t>(-g->reputation().forge(CollectorId(2))),
              handled);
  }
}

TEST(Equivocation, GossipCutsEquivocatorRevenue) {
  auto cfg = config_with_gossip(true);
  cfg.rounds = 8;
  Scenario with(cfg);
  with.run();
  // Under gossip, the equivocator's revenue share collapses via nu^forge.
  for (auto& g : with.governors()) {
    if (g->metrics().equivocations_detected == 0) continue;
    double equiv_share = 0.0, honest_share = 0.0;
    for (const auto& [c, share] : g->revenue_shares()) {
      if (c == CollectorId(2)) equiv_share = share;
      if (c == CollectorId(0)) honest_share = share;
    }
    EXPECT_LT(equiv_share, honest_share);
  }
}

}  // namespace
}  // namespace repchain::sim
