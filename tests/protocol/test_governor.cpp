// Surgical message-level tests of Governor: crafted (possibly malicious)
// payloads injected directly through on_message, bypassing the scenario
// runner, to pin down each verification and rejection path of Algorithm 2
// and the consensus steps.
#include <gtest/gtest.h>

#include <deque>

#include "runtime/atomic_broadcast.hpp"
#include "common/errors.hpp"
#include "common/serial.hpp"
#include "crypto/keygen.hpp"
#include "net/network.hpp"
#include "protocol/governor.hpp"
#include "sim/topology.hpp"

namespace repchain::protocol {
namespace {

using ledger::Label;

/// Hand-wired world: 2 providers, 2 collectors (both linked to both
/// providers), 2 governors.
struct World {
  explicit World(bool batch_verify_intake = true)
      : rng(12345),
        net(queue, rng.derive(1), net::LatencyModel{1 * kMillisecond, 2 * kMillisecond}),
        im(crypto::random_seed(rng)),
        oracle(0) {
    for (int i = 0; i < 2; ++i) {
      provider_keys.emplace_back(crypto::random_seed(rng));
      const NodeId node = net.add_node();
      directory.add_provider(ProviderId(i), node);
      im.enroll(node, identity::Role::kProvider, provider_keys.back().public_key());
    }
    for (int i = 0; i < 2; ++i) {
      collector_keys.emplace_back(crypto::random_seed(rng));
      const NodeId node = net.add_node();
      directory.add_collector(CollectorId(i), node);
      im.enroll(node, identity::Role::kCollector, collector_keys.back().public_key());
      directory.link(ProviderId(0), CollectorId(i));
      directory.link(ProviderId(1), CollectorId(i));
    }
    for (int i = 0; i < 2; ++i) {
      governor_keys.emplace_back(crypto::random_seed(rng));
      const NodeId node = net.add_node();
      directory.add_governor(GovernorId(i), node);
      im.enroll(node, identity::Role::kGovernor, governor_keys.back().public_key());
    }
    group = std::make_unique<runtime::AtomicBroadcastGroup>(net,
                                                            directory.governor_nodes());

    StakeLedger genesis;
    genesis.set(GovernorId(0), 1);
    genesis.set(GovernorId(1), 1);

    GovernorConfig config;
    config.aggregation_delta = 5 * kMillisecond;
    config.batch_verify_intake = batch_verify_intake;
    for (int i = 0; i < 2; ++i) {
      contexts.emplace_back(directory.node_of(GovernorId(i)), net,
                            rng.derive(100 + i));
      governors.emplace_back(GovernorId(i), contexts.back(),
                             crypto::SigningKey(governor_keys[i]), im, oracle,
                             directory, *group, config, genesis);
      const std::size_t idx = governors.size() - 1;
      net.set_handler(directory.node_of(GovernorId(i)),
                      [this, idx](const net::Message& m) {
                        governors[idx].on_message(m);
                      });
    }
  }

  ledger::Transaction make_tx(std::uint32_t provider, std::uint64_t seq, bool valid) {
    auto tx = ledger::make_transaction(ProviderId(provider), seq, seq * 10,
                                       to_bytes("payload"), provider_keys[provider]);
    oracle.register_tx(tx.id(), valid);
    return tx;
  }

  /// Inject an upload into governor 0 without draining the instant, so a
  /// burst of calls lands in one verification batch.
  void inject(const ledger::LabeledTransaction& ltx) {
    net::Message msg;
    msg.from = directory.node_of(ltx.collector);
    msg.to = directory.node_of(GovernorId(0));
    msg.kind = net::MsgKind::kCollectorUpload;
    msg.payload = ltx.encode();
    governors[0].on_message(msg);
  }

  /// Inject an upload directly into governor 0.
  void upload(const ledger::LabeledTransaction& ltx) {
    inject(ltx);
    // Batched intake settles signature checks on a same-instant flush
    // timer; drain the current instant so verdicts (and metrics) land
    // before the caller's assertions, without advancing simulated time.
    queue.run_until(queue.now());
  }

  void settle() { queue.run(); }

  net::EventQueue queue;
  Rng rng;
  net::SimNetwork net;
  identity::IdentityManager im;
  ledger::ValidationOracle oracle;
  Directory directory;
  std::unique_ptr<runtime::AtomicBroadcastGroup> group;
  std::vector<crypto::SigningKey> provider_keys;
  std::vector<crypto::SigningKey> collector_keys;
  std::vector<crypto::SigningKey> governor_keys;
  std::deque<runtime::NodeContext> contexts;
  std::deque<Governor> governors;
};

// Reconstruct a SigningKey (copyable helper for the fixture).
crypto::SigningKey copy_key(const crypto::SigningKey& k) { return k; }

TEST(GovernorUpload, ValidUploadScreensIntoPending) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  w.upload(ledger::make_labeled(tx, Label::kValid, CollectorId(0), w.collector_keys[0]));
  w.settle();  // aggregation timer fires -> screening
  EXPECT_EQ(w.governors[0].pending_txs(), 1u);
  EXPECT_EQ(w.governors[0].screening_stats().appended_valid, 1u);
  EXPECT_EQ(w.governors[0].metrics().uploads_received, 1u);
}

TEST(GovernorUpload, GarbagePayloadRejected) {
  World w;
  net::Message msg;
  msg.from = w.directory.node_of(CollectorId(0));
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kCollectorUpload;
  msg.payload = to_bytes("not a labeled transaction");
  w.governors[0].on_message(msg);
  EXPECT_EQ(w.governors[0].metrics().uploads_rejected, 1u);
  EXPECT_EQ(w.governors[0].pending_txs(), 0u);
}

TEST(GovernorUpload, BadCollectorSignatureRejectedSilently) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  // Signed with the *other* collector's key but claiming collector 0.
  auto ltx = ledger::make_labeled(tx, Label::kValid, CollectorId(0), w.collector_keys[1]);
  w.upload(ltx);
  w.settle();
  EXPECT_EQ(w.governors[0].metrics().uploads_rejected, 1u);
  // Not attributable: no forgery punishment.
  EXPECT_EQ(w.governors[0].reputation().forge(CollectorId(0)), 0);
}

TEST(GovernorUpload, ForgedProviderSignaturePunished) {
  World w;
  // Collector fabricates a transaction with a garbage provider signature.
  ledger::Transaction fake;
  fake.provider = ProviderId(0);
  fake.seq = 99;
  fake.timestamp = 1;
  fake.payload = to_bytes("fabricated");
  // default (all-zero) provider_sig is invalid
  const auto ltx =
      ledger::make_labeled(fake, Label::kValid, CollectorId(0), w.collector_keys[0]);
  w.upload(ltx);
  EXPECT_EQ(w.governors[0].metrics().forgeries_detected, 1u);
  EXPECT_EQ(w.governors[0].reputation().forge(CollectorId(0)), -1);
  EXPECT_EQ(w.governors[0].pending_txs(), 0u);
}

TEST(GovernorUpload, ForgedSignatureInsideBatchMatchesSingleVerify) {
  // Regression for the batched intake: a same-instant burst carrying two
  // genuine uploads and one forged-provider-signature upload must isolate
  // and punish exactly the bad item — byte-for-byte the same metrics,
  // reputation counters, and pending set as the single-verify path.
  struct Outcome {
    std::uint64_t received, rejected, forgeries;
    std::int64_t forge0, forge1;
    std::size_t pending;
  };
  const auto run = [](bool batched) {
    World w(batched);
    const auto good = w.make_tx(0, 1, true);
    ledger::Transaction fake;
    fake.provider = ProviderId(1);
    fake.seq = 99;
    fake.timestamp = 1;
    fake.payload = to_bytes("fabricated");  // all-zero provider sig: forged
    // One instant, one batch: genuine report from each collector plus the
    // forgery from collector 1.
    w.inject(ledger::make_labeled(good, Label::kValid, CollectorId(0),
                                  w.collector_keys[0]));
    w.inject(ledger::make_labeled(fake, Label::kValid, CollectorId(1),
                                  w.collector_keys[1]));
    w.inject(ledger::make_labeled(good, Label::kValid, CollectorId(1),
                                  w.collector_keys[1]));
    w.queue.run_until(w.queue.now());
    w.settle();
    const auto& g = w.governors[0];
    return Outcome{g.metrics().uploads_received, g.metrics().uploads_rejected,
                   g.metrics().forgeries_detected,
                   g.reputation().forge(CollectorId(0)),
                   g.reputation().forge(CollectorId(1)), g.pending_txs()};
  };

  const Outcome batched = run(true);
  const Outcome single = run(false);
  EXPECT_EQ(batched.received, single.received);
  EXPECT_EQ(batched.rejected, single.rejected);
  EXPECT_EQ(batched.forgeries, single.forgeries);
  EXPECT_EQ(batched.forge0, single.forge0);
  EXPECT_EQ(batched.forge1, single.forge1);
  EXPECT_EQ(batched.pending, single.pending);

  // And the absolute outcome is the expected one: only collector 1 punished,
  // only the genuine transaction pending.
  EXPECT_EQ(batched.forgeries, 1u);
  EXPECT_EQ(batched.forge0, 0);
  EXPECT_EQ(batched.forge1, -1);
  EXPECT_EQ(batched.pending, 1u);
}

TEST(GovernorUpload, TamperedCollectorSignatureInsideBatchRejected) {
  // The batch's other failure class: an upload whose *collector* signature
  // does not verify is unattributable and must be dropped (rejected, no
  // punishment) while its batch-mates proceed.
  World w;
  const auto tx = w.make_tx(0, 1, true);
  auto bad = ledger::make_labeled(tx, Label::kValid, CollectorId(1),
                                  w.collector_keys[1]);
  bad.collector_sig.bytes[0] ^= 0x01;
  w.inject(ledger::make_labeled(tx, Label::kValid, CollectorId(0),
                                w.collector_keys[0]));
  w.inject(bad);
  w.queue.run_until(w.queue.now());
  w.settle();
  const auto& g = w.governors[0];
  EXPECT_EQ(g.metrics().uploads_rejected, 1u);
  EXPECT_EQ(g.metrics().forgeries_detected, 0u);
  EXPECT_EQ(g.reputation().forge(CollectorId(1)), 0);
  EXPECT_EQ(g.pending_txs(), 1u);
}

TEST(GovernorUpload, UnlinkedProviderCountsAsForgery) {
  World w;
  // A genuine signature from provider 0, but uploaded by a collector that
  // is not linked with it: build a third collector with no links.
  const auto key = crypto::SigningKey(crypto::random_seed(w.rng));
  const NodeId node = w.net.add_node();
  w.directory.add_collector(CollectorId(2), node);
  w.im.enroll(node, identity::Role::kCollector, key.public_key());
  // Governor tables were built at construction; the new collector is
  // unknown there, so the forgery punishment throws internally... instead
  // verify the path for a linked-but-wrong-provider case:
  const auto tx = w.make_tx(1, 5, true);
  ledger::Transaction cross = tx;
  // Tamper provider id: signature no longer matches claimed provider 0.
  cross.provider = ProviderId(0);
  const auto ltx =
      ledger::make_labeled(cross, Label::kValid, CollectorId(0), w.collector_keys[0]);
  w.upload(ltx);
  EXPECT_EQ(w.governors[0].metrics().forgeries_detected, 1u);
}

TEST(GovernorUpload, DuplicateReportIgnored) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  const auto ltx =
      ledger::make_labeled(tx, Label::kValid, CollectorId(0), w.collector_keys[0]);
  w.upload(ltx);
  w.upload(ltx);
  EXPECT_EQ(w.governors[0].metrics().duplicate_reports, 1u);
  w.settle();
  EXPECT_EQ(w.governors[0].screening_stats().screened, 1u);
}

TEST(GovernorUpload, ReplayAfterScreeningIgnored) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  const auto ltx =
      ledger::make_labeled(tx, Label::kValid, CollectorId(0), w.collector_keys[0]);
  w.upload(ltx);
  w.settle();
  ASSERT_EQ(w.governors[0].screening_stats().screened, 1u);
  // A later replay of the same transaction must not re-enter screening, even
  // from a different collector with a different label: the intake remembers
  // every screened id, so a retransmitted upload arriving after the decision
  // (reliable-channel redelivery, duplication faults) cannot reopen an
  // aggregation window for an already-decided transaction.
  const auto ltx2 =
      ledger::make_labeled(tx, Label::kInvalid, CollectorId(1), w.collector_keys[1]);
  w.upload(ltx2);
  w.settle();
  EXPECT_EQ(w.governors[0].screening_stats().screened, 1u);  // no re-screening
}

TEST(GovernorUpload, MultipleReportsAggregateWithinDelta) {
  World w;
  const auto tx = w.make_tx(0, 1, false);
  w.upload(ledger::make_labeled(tx, Label::kInvalid, CollectorId(0), w.collector_keys[0]));
  w.upload(ledger::make_labeled(tx, Label::kInvalid, CollectorId(1), w.collector_keys[1]));
  w.settle();
  EXPECT_EQ(w.governors[0].screening_stats().screened, 1u);
  // Both collectors labeled the (invalid) tx correctly; if it was checked
  // both earn +1 misreport, if unchecked both stay 0.
  const auto m0 = w.governors[0].reputation().misreport(CollectorId(0));
  const auto m1 = w.governors[0].reputation().misreport(CollectorId(1));
  EXPECT_EQ(m0, m1);
  EXPECT_GE(m0, 0);
}

TEST(GovernorArgue, BadArgueSignatureIgnored) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  ArgueMsg argue = make_argue(ProviderId(0), tx, 1, w.provider_keys[1]);  // wrong key
  net::Message msg;
  msg.from = w.directory.node_of(ProviderId(0));
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kArgue;
  msg.payload = argue.encode();
  w.governors[0].on_message(msg);
  EXPECT_EQ(w.governors[0].metrics().argues_received, 1u);
  EXPECT_EQ(w.governors[0].metrics().argues_accepted, 0u);
}

TEST(GovernorArgue, ArgueForUnknownTxIgnored) {
  World w;
  const auto tx = w.make_tx(0, 1, true);
  ArgueMsg argue = make_argue(ProviderId(0), tx, 1, w.provider_keys[0]);
  net::Message msg;
  msg.from = w.directory.node_of(ProviderId(0));
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kArgue;
  msg.payload = argue.encode();
  w.governors[0].on_message(msg);
  EXPECT_EQ(w.governors[0].metrics().argues_accepted, 0u);
}

TEST(GovernorBlocks, ForeignLeaderProposalRejected) {
  World w;
  // Run an election so both governors agree on the winner.
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  const auto winner = w.governors[0].round_leader();
  ASSERT_TRUE(winner.has_value());
  const GovernorId loser(winner->value() == 0 ? 1 : 0);

  // The loser forges a block proposal.
  const ledger::Block block = ledger::make_block(
      1, 1, crypto::Hash256{}, loser, {}, w.governor_keys[loser.value()]);
  net::Message msg;
  msg.from = w.directory.node_of(loser);
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kBlockProposal;
  msg.payload = block.encode();
  w.governors[0].on_message(msg);
  // A non-winner proposal is never adopted; it is held until the end of the
  // round (the winner view may still converge under faults) and definitively
  // rejected when the next round begins.
  EXPECT_EQ(w.governors[0].chain().height(), 0u);
  EXPECT_EQ(w.governors[0].metrics().blocks_accepted, 0u);
  w.governors[0].begin_round(2);
  EXPECT_EQ(w.governors[0].metrics().blocks_rejected, 1u);
  EXPECT_EQ(w.governors[0].chain().height(), 0u);
}

TEST(GovernorBlocks, LegitimateLeaderProposalAccepted) {
  World w;
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  w.governors[0].propose_if_leader();
  w.governors[1].propose_if_leader();
  w.settle();
  EXPECT_EQ(w.governors[0].chain().height(), 1u);
  EXPECT_EQ(w.governors[1].chain().height(), 1u);
  EXPECT_EQ(w.governors[0].chain().head_hash(), w.governors[1].chain().head_hash());
  EXPECT_EQ(w.governors[0].metrics().blocks_accepted, 1u);
}

TEST(GovernorBlocks, WrongSerialFromRealLeaderRejected) {
  World w;
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  const auto winner = *w.governors[0].round_leader();
  // The real leader proposes a block skipping to serial 3. The receiver
  // first assumes it is the one behind and asks its peer for the missing
  // prefix; the peer has nothing above height 0, so once that sync settles
  // the unadoptable proposal is rejected.
  const ledger::Block block = ledger::make_block(
      3, 1, crypto::Hash256{}, winner, {}, w.governor_keys[winner.value()]);
  net::Message msg;
  msg.from = w.directory.node_of(winner);
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kBlockProposal;
  msg.payload = block.encode();
  w.governors[0].on_message(msg);
  w.settle();
  EXPECT_EQ(w.governors[0].metrics().blocks_rejected, 1u);
  EXPECT_EQ(w.governors[0].chain().height(), 0u);
}

TEST(GovernorElection, AgreesAcrossGovernors) {
  World w;
  for (Round r = 1; r <= 5; ++r) {
    w.governors[0].begin_round(r);
    w.governors[1].begin_round(r);
    w.settle();
    ASSERT_TRUE(w.governors[0].round_leader().has_value());
    EXPECT_EQ(w.governors[0].round_leader(), w.governors[1].round_leader());
  }
}

TEST(GovernorStake, ReplayedTransferAppliesOnce) {
  World w;
  // Governor 1 signs one transfer of 1 unit to governor 0 (seq 0); a
  // byzantine relay replays the identical signed message.
  const StakeTxMsg stx = make_stake_tx(GovernorId(1), GovernorId(0), 1, 0,
                                       w.governor_keys[1]);
  for (int copy = 0; copy < 3; ++copy) {
    for (auto& g : w.governors) {
      net::Message msg;
      msg.from = w.directory.node_of(GovernorId(1));
      msg.to = g.node();
      msg.kind = net::MsgKind::kStakeTx;
      msg.payload = stx.encode();
      g.on_message(msg);
    }
  }
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  for (auto& g : w.governors) g.run_stake_consensus_if_leader();
  w.settle();

  for (auto& g : w.governors) {
    EXPECT_EQ(g.stake().of(GovernorId(0)), 2u);  // 1 + one transfer, not three
    EXPECT_EQ(g.stake().of(GovernorId(1)), 0u);
  }
}

TEST(GovernorStake, DistinctSequencesAllApply) {
  World w;
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    const StakeTxMsg stx = make_stake_tx(GovernorId(1), GovernorId(0), 1, seq,
                                         w.governor_keys[1]);
    // Governor 1 only holds 1 unit, so the second transfer is skipped as
    // insufficient — but both are *accepted* into the round (no replay).
    for (auto& g : w.governors) {
      net::Message msg;
      msg.from = w.directory.node_of(GovernorId(1));
      msg.to = g.node();
      msg.kind = net::MsgKind::kStakeTx;
      msg.payload = stx.encode();
      g.on_message(msg);
    }
  }
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  for (auto& g : w.governors) g.run_stake_consensus_if_leader();
  w.settle();
  for (auto& g : w.governors) {
    EXPECT_EQ(g.stake().of(GovernorId(0)), 2u);
    EXPECT_EQ(g.stake().of(GovernorId(1)), 0u);
  }
}

TEST(GovernorCheckpoint, RoundTripRestoresDurableState) {
  World w;
  // Build some durable state: one block plus reputation movement.
  const auto tx = w.make_tx(0, 1, true);
  w.upload(ledger::make_labeled(tx, Label::kValid, CollectorId(0), w.collector_keys[0]));
  w.settle();
  w.governors[0].begin_round(1);
  w.governors[1].begin_round(1);
  w.settle();
  w.governors[0].propose_if_leader();
  w.governors[1].propose_if_leader();
  w.settle();
  ASSERT_EQ(w.governors[0].chain().height(), 1u);
  w.governors[0].reveal_unchecked(tx.id());  // no-op if checked; harmless

  const Bytes ckpt = w.governors[0].checkpoint();

  // A "restarted" governor 0: restore into the peer structure of a fresh
  // World would need the same keys; restore into itself after clobbering is
  // the equivalent check here.
  w.governors[0].restore(ckpt);
  EXPECT_EQ(w.governors[0].chain().height(), 1u);
  EXPECT_EQ(w.governors[0].chain().head_hash(), w.governors[1].chain().head_hash());
  EXPECT_EQ(w.governors[0].stake().of(GovernorId(0)), 1u);
  EXPECT_EQ(w.governors[0].reputation().collector_count(), 2u);
  EXPECT_EQ(w.governors[0].pending_txs(), 0u);

  // The restored governor keeps participating: another round commits.
  w.governors[0].begin_round(2);
  w.governors[1].begin_round(2);
  w.settle();
  w.governors[0].propose_if_leader();
  w.governors[1].propose_if_leader();
  w.settle();
  EXPECT_EQ(w.governors[0].chain().height(), 2u);
}

TEST(GovernorCheckpoint, RejectsForeignAndTamperedCheckpoints) {
  World w;
  const Bytes ckpt0 = w.governors[0].checkpoint();
  EXPECT_THROW(w.governors[1].restore(ckpt0), ProtocolError);  // wrong identity

  Bytes tampered = ckpt0;
  tampered[2] ^= 0x01;  // magic
  EXPECT_THROW(w.governors[0].restore(tampered), DecodeError);

  Bytes truncated = ckpt0;
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW(w.governors[0].restore(truncated), DecodeError);
}

/// Drive invalid-labeled uploads through governor 0 until screening records
/// at least one unchecked entry (the -1 label surviving the validation coin
/// is probabilistic; the fixture seed makes the loop deterministic).
std::vector<ledger::TxId> make_unchecked(World& w) {
  for (std::uint64_t seq = 1; seq <= 60; ++seq) {
    if (!w.governors[0].unrevealed_unchecked().empty()) break;
    const auto tx = w.make_tx(0, seq, false);
    w.upload(ledger::make_labeled(tx, Label::kInvalid, CollectorId(0),
                                  w.collector_keys[0]));
    w.settle();
  }
  return w.governors[0].unrevealed_unchecked();
}

TEST(GovernorCheckpoint, V2RoundTripCarriesUncheckedEntries) {
  World w;
  const auto ids = make_unchecked(w);
  ASSERT_FALSE(ids.empty());

  // The satellite-1 gap: v1 checkpoints dropped the screening-time report
  // snapshots, so a restored governor could never run the case-3 update.
  // v2 must round-trip them.
  const Bytes ckpt = w.governors[0].checkpoint();
  w.governors[0].restore(ckpt);
  EXPECT_EQ(w.governors[0].unrevealed_unchecked(), ids);

  // Case 3 fires on the *restored* entry: the out-of-band reveal succeeds
  // and consumes it exactly once.
  EXPECT_TRUE(w.governors[0].reveal_unchecked(ids.front()));
  EXPECT_FALSE(w.governors[0].reveal_unchecked(ids.front()));
}

TEST(GovernorCheckpoint, V2PreservesRevealedFlagAcrossRestore) {
  World w;
  const auto ids = make_unchecked(w);
  ASSERT_FALSE(ids.empty());
  ASSERT_TRUE(w.governors[0].reveal_unchecked(ids.front()));

  const Bytes ckpt = w.governors[0].checkpoint();
  w.governors[0].restore(ckpt);
  // Already-revealed entries stay revealed: no double case-3 update.
  EXPECT_FALSE(w.governors[0].reveal_unchecked(ids.front()));
  const auto unrevealed = w.governors[0].unrevealed_unchecked();
  for (const auto& id : unrevealed) EXPECT_FALSE(id == ids.front());
}

TEST(GovernorCheckpoint, LegacyV1BlobStillRestores) {
  World w;
  const auto ids = make_unchecked(w);
  ASSERT_FALSE(ids.empty());
  const std::size_t height_before = w.governors[0].chain().height();

  // Transcode the v2 checkpoint into the legacy v1 layout (same fields
  // minus the trailing unchecked-entry section, v1 magic).
  const Bytes ckpt = w.governors[0].checkpoint();
  BinaryReader r(ckpt);
  (void)r.str();
  BinaryWriter v1;
  v1.str("repchain-governor-ckpt-v1");
  v1.u32(r.u32());
  const std::uint64_t height = r.u64();
  v1.u64(height);
  for (std::uint64_t i = 0; i < height; ++i) v1.bytes(r.bytes());
  v1.bytes(r.bytes());  // reputation table
  v1.bytes(r.bytes());  // stake ledger

  w.governors[0].restore(std::move(v1).take());
  EXPECT_EQ(w.governors[0].chain().height(), height_before);
  EXPECT_EQ(w.governors[0].reputation().collector_count(), 2u);
  // v1 semantics: the unchecked entries are gone after restore.
  EXPECT_TRUE(w.governors[0].unrevealed_unchecked().empty());
  EXPECT_FALSE(w.governors[0].reveal_unchecked(ids.front()));
}

TEST(GovernorMisc, UnknownMessageKindIgnored) {
  World w;
  net::Message msg;
  msg.from = w.directory.node_of(CollectorId(0));
  msg.to = w.directory.node_of(GovernorId(0));
  msg.kind = net::MsgKind::kTest;
  msg.payload = to_bytes("noise");
  w.governors[0].on_message(msg);  // must not throw
  EXPECT_EQ(w.governors[0].pending_txs(), 0u);
}

TEST(GovernorMisc, CopyKeyHelperCompiles) {
  // Keeps the fixture's SigningKey copies honest.
  World w;
  const auto k = copy_key(w.collector_keys[0]);
  EXPECT_EQ(k.public_key(), w.collector_keys[0].public_key());
}

}  // namespace
}  // namespace repchain::protocol
