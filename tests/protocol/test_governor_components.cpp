// Unit tests for the components extracted from the Governor facade:
// BlockAssembler, ArgueService, StakeConsensus, EquivocationDetector, and
// the RoundTiming schedule derivation. These exercise the post-auth protocol
// logic directly, without a network or a full governor.
#include <gtest/gtest.h>

#include "crypto/keygen.hpp"
#include "ledger/chain.hpp"
#include "ledger/validation_oracle.hpp"
#include "net/network.hpp"
#include "protocol/argue_service.hpp"
#include "protocol/block_assembly.hpp"
#include "protocol/equivocation_detector.hpp"
#include "protocol/governor_types.hpp"
#include "protocol/messages.hpp"
#include "protocol/round_timing.hpp"
#include "protocol/stake_consensus.hpp"
#include "runtime/atomic_broadcast.hpp"

namespace repchain::protocol {
namespace {

using ledger::Label;
using ledger::TxStatus;

// --- BlockAssembler ----------------------------------------------------------

struct AssemblerFixture : ::testing::Test {
  Rng rng{4242};
  crypto::SigningKey provider_key{crypto::random_seed(rng)};
  crypto::SigningKey leader_key{crypto::random_seed(rng)};
  ledger::ChainStore chain;
  BlockAssembler assembler;

  ledger::TxRecord record(std::uint64_t seq) {
    ledger::TxRecord rec;
    rec.tx = ledger::make_transaction(ProviderId(0), seq, 0, rng.bytes(8),
                                      provider_key);
    rec.label = Label::kValid;
    rec.status = TxStatus::kCheckedValid;
    return rec;
  }
};

TEST_F(AssemblerFixture, ProposePacksFifoUpToLimitWithoutConsuming) {
  std::vector<ledger::TxRecord> recs;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    recs.push_back(record(s));
    assembler.add_pending(recs.back());
  }
  const ledger::Block block =
      assembler.propose(chain, 1, GovernorId(0), 2, leader_key);
  EXPECT_EQ(block.serial, 1u);
  EXPECT_EQ(block.round, 1u);
  EXPECT_EQ(block.prev_hash, chain.head_hash());
  ASSERT_EQ(block.txs.size(), 2u);
  EXPECT_EQ(block.txs[0].tx.id(), recs[0].tx.id());
  EXPECT_EQ(block.txs[1].tx.id(), recs[1].tx.id());
  EXPECT_EQ(block.tx_root, block.compute_tx_root());
  // Proposing must not consume: the proposal could be lost in transit.
  EXPECT_EQ(assembler.pending_count(), 3u);
}

TEST_F(AssemblerFixture, ReconcileDropsPackedRecordsAndMarksThem) {
  std::vector<ledger::TxRecord> recs;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    recs.push_back(record(s));
    assembler.add_pending(recs.back());
  }
  const ledger::Block block =
      assembler.propose(chain, 1, GovernorId(0), 2, leader_key);
  assembler.reconcile(block);
  EXPECT_EQ(assembler.pending_count(), 1u);
  EXPECT_TRUE(assembler.packed(recs[0].tx.id()));
  EXPECT_TRUE(assembler.packed(recs[1].tx.id()));
  EXPECT_FALSE(assembler.packed(recs[2].tx.id()));
  // The survivor is packed into the next block exactly once.
  chain.append(block);
  const ledger::Block next =
      assembler.propose(chain, 2, GovernorId(0), 10, leader_key);
  ASSERT_EQ(next.txs.size(), 1u);
  EXPECT_EQ(next.txs[0].tx.id(), recs[2].tx.id());
}

TEST_F(AssemblerFixture, ResetFromChainRebuildsPackedIndex) {
  assembler.add_pending(record(1));
  const ledger::Block block =
      assembler.propose(chain, 1, GovernorId(0), 10, leader_key);
  chain.append(block);

  BlockAssembler fresh;
  fresh.add_pending(record(99));  // transient, dropped on restore
  fresh.reset_from_chain(chain);
  EXPECT_EQ(fresh.pending_count(), 0u);
  EXPECT_TRUE(fresh.packed(block.txs[0].tx.id()));
}

// --- ArgueService ------------------------------------------------------------

struct ArgueFixture : ::testing::Test {
  ArgueFixture() {
    table.register_collector(CollectorId(0));
    table.link(CollectorId(0), ProviderId(0));
  }

  ledger::Transaction make_tx(std::uint64_t seq, bool truly_valid) {
    auto tx =
        ledger::make_transaction(ProviderId(0), seq, 0, rng.bytes(8), key);
    oracle.register_tx(tx.id(), truly_valid);
    return tx;
  }

  std::vector<reputation::Report> reports() {
    return {reputation::Report{CollectorId(0), Label::kInvalid}};
  }

  Rng rng{777};
  reputation::ReputationTable table{reputation::ReputationParams{}};
  ledger::ValidationOracle oracle{0};
  GovernorMetrics metrics;
  ArgueService argues{table, oracle, metrics, /*argue_latency_u=*/2};
  crypto::SigningKey key{crypto::random_seed(rng)};
};

TEST_F(ArgueFixture, ArgueOnTrulyValidTxYieldsArguedRecord) {
  const auto tx = make_tx(1, true);
  argues.record_unchecked(tx, reports());
  EXPECT_TRUE(argues.known(tx.id()));
  EXPECT_EQ(argues.unrevealed().size(), 1u);

  const auto rec = argues.handle_argue(make_argue(ProviderId(0), tx, 1, key));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, TxStatus::kArguedValid);
  EXPECT_EQ(rec->tx.id(), tx.id());
  EXPECT_EQ(metrics.argues_accepted, 1u);
  EXPECT_EQ(metrics.argue_validations, 1u);
  EXPECT_EQ(metrics.mistakes, 1u);  // unchecked truth was valid
  EXPECT_TRUE(argues.unrevealed().empty());
}

TEST_F(ArgueFixture, ArgueOnTrulyInvalidTxRevealsButAppendsNothing) {
  const auto tx = make_tx(1, false);
  argues.record_unchecked(tx, reports());
  const auto rec = argues.handle_argue(make_argue(ProviderId(0), tx, 1, key));
  EXPECT_FALSE(rec.has_value());
  EXPECT_EQ(metrics.argues_accepted, 1u);
  EXPECT_EQ(metrics.mistakes, 0u);
  EXPECT_TRUE(argues.unrevealed().empty());  // revealed by the re-validation
}

TEST_F(ArgueFixture, ArgueBuriedDeeperThanUIsRejectedLate) {
  const auto tx = make_tx(1, true);
  argues.record_unchecked(tx, reports());
  // Bury beyond U = 2 with newer unchecked txs from the same provider.
  for (std::uint64_t s = 2; s <= 4; ++s) {
    argues.record_unchecked(make_tx(s, false), reports());
  }
  const auto rec = argues.handle_argue(make_argue(ProviderId(0), tx, 1, key));
  EXPECT_FALSE(rec.has_value());
  EXPECT_EQ(metrics.argues_rejected_late, 1u);
  EXPECT_EQ(metrics.argues_accepted, 0u);
}

TEST_F(ArgueFixture, RevealIsIdempotentAndBlocksLaterArgues) {
  const auto tx = make_tx(1, true);
  argues.record_unchecked(tx, reports());
  EXPECT_TRUE(argues.reveal(tx.id()));
  EXPECT_FALSE(argues.reveal(tx.id()));
  EXPECT_EQ(metrics.mistakes, 1u);
  // An argue after the audit reveal is a no-op.
  EXPECT_FALSE(argues.handle_argue(make_argue(ProviderId(0), tx, 1, key)));
  EXPECT_EQ(metrics.argues_accepted, 0u);
}

TEST_F(ArgueFixture, ResetTransientDropsSnapshotsAndArgueWindow) {
  const auto tx = make_tx(1, true);
  argues.record_unchecked(tx, reports());
  argues.reset_transient();
  EXPECT_FALSE(argues.known(tx.id()));
  EXPECT_TRUE(argues.unrevealed().empty());
  // The argue-latency buffer resets with the entries: its burial positions
  // are meaningless once the snapshots they index are gone (checkpointed
  // entries come back via restore_entries, which rebuilds the buffer).
  EXPECT_FALSE(argues.buffer().arguable(ProviderId(0), tx.id()));
}

TEST_F(ArgueFixture, RestoreEntriesReopensArgueWindowsInScreeningOrder) {
  const auto tx1 = make_tx(1, true);
  const auto tx2 = make_tx(2, false);
  const auto tx3 = make_tx(3, true);
  argues.record_unchecked(tx1, reports());
  argues.record_unchecked(tx2, reports());
  argues.record_unchecked(tx3, reports());
  EXPECT_TRUE(argues.reveal(tx2.id()));

  // Round-trip through the checkpoint representation: copy the entries out
  // in order and reinstall them on a fresh reset.
  std::vector<UncheckedEntry> copied;
  for (const UncheckedEntry* e : argues.entries_in_order()) copied.push_back(*e);
  ASSERT_EQ(copied.size(), 3u);
  argues.restore_entries(std::move(copied));

  EXPECT_TRUE(argues.known(tx1.id()));
  const auto pending = argues.unrevealed();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], tx1.id());  // screening order preserved
  EXPECT_EQ(pending[1], tx3.id());
  // Unrevealed entries are arguable again; the revealed one is consumed.
  EXPECT_TRUE(argues.buffer().arguable(ProviderId(0), tx1.id()));
  EXPECT_FALSE(argues.buffer().arguable(ProviderId(0), tx2.id()));
  // And an argue still works end-to-end after the restore (case 3 fires).
  const auto rec = argues.handle_argue(make_argue(ProviderId(0), tx1, 1, key));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, TxStatus::kArguedValid);
}

// --- StakeConsensus ----------------------------------------------------------

struct StakeFixture : ::testing::Test {
  StakeFixture() {
    const NodeId n0 = net.add_node();
    directory.add_governor(GovernorId(0), n0);
    im.enroll(n0, identity::Role::kGovernor, key.public_key());
    genesis.set(GovernorId(0), 5);
    genesis.set(GovernorId(1), 1);
    group = std::make_unique<runtime::AtomicBroadcastGroup>(
        net, std::vector<NodeId>{n0});
    sc = std::make_unique<StakeConsensus>(GovernorId(0), n0, key, im, directory,
                                          net, *group, genesis);
  }

  Rng rng{31};
  net::EventQueue queue;
  net::SimNetwork net{queue, Rng(32), net::LatencyModel{1 * kMillisecond,
                                                        2 * kMillisecond}};
  identity::IdentityManager im{crypto::random_seed(rng)};
  Directory directory;
  crypto::SigningKey key{crypto::random_seed(rng)};
  StakeLedger genesis;
  std::unique_ptr<runtime::AtomicBroadcastGroup> group;
  std::unique_ptr<StakeConsensus> sc;
};

TEST_F(StakeFixture, ExpectedStateAppliesTransfersWithoutCommitting) {
  sc->on_stake_tx(make_stake_tx(GovernorId(0), GovernorId(1), 2, 1, key));
  EXPECT_TRUE(sc->has_pending_transfers());
  const StakeLedger expected = sc->expected_state();
  EXPECT_EQ(expected.of(GovernorId(0)), 3u);
  EXPECT_EQ(expected.of(GovernorId(1)), 3u);
  // The committed ledger only moves in step 3.
  EXPECT_EQ(sc->stake().of(GovernorId(0)), 5u);
}

TEST_F(StakeFixture, ReplayedTransferIsIgnored) {
  const auto stx = make_stake_tx(GovernorId(0), GovernorId(1), 2, 1, key);
  sc->on_stake_tx(stx);
  sc->on_stake_tx(stx);  // same sender sequence: replay
  EXPECT_EQ(sc->expected_state().of(GovernorId(1)), 3u);
}

TEST_F(StakeFixture, MatchesExpectedChecksRoundAndState) {
  sc->on_stake_tx(make_stake_tx(GovernorId(0), GovernorId(1), 2, 1, key));
  StateProposalMsg proposal;
  proposal.round = 7;
  proposal.leader = GovernorId(1);
  proposal.state = sc->expected_state().encode();
  EXPECT_TRUE(sc->matches_expected(proposal, 7));
  EXPECT_FALSE(sc->matches_expected(proposal, 8));
  proposal.state = sc->stake().encode();  // stale state
  EXPECT_FALSE(sc->matches_expected(proposal, 7));
}

// --- EquivocationDetector ----------------------------------------------------

struct EquivocationFixture : ::testing::Test {
  EquivocationFixture() {
    const NodeId n = NodeId(0);
    directory.add_collector(CollectorId(0), n);
    im.enroll(n, identity::Role::kCollector, collector_key.public_key());
    table.register_collector(CollectorId(0));
    table.link(CollectorId(0), ProviderId(0));
  }

  ledger::Transaction make_tx(std::uint64_t seq) {
    return ledger::make_transaction(ProviderId(0), seq, 0, rng.bytes(8),
                                    provider_key);
  }

  Rng rng{55};
  identity::IdentityManager im{crypto::random_seed(rng)};
  Directory directory;
  reputation::ReputationTable table{reputation::ReputationParams{}};
  GovernorMetrics metrics;
  crypto::SigningKey provider_key{crypto::random_seed(rng)};
  crypto::SigningKey collector_key{crypto::random_seed(rng)};
  EquivocationDetector detector{im, directory, table, metrics};
};

TEST_F(EquivocationFixture, ConflictingLabelsPunishedOncePerTx) {
  const auto tx = make_tx(1);
  const auto mine =
      ledger::make_labeled(tx, Label::kValid, CollectorId(0), collector_key);
  const auto theirs =
      ledger::make_labeled(tx, Label::kInvalid, CollectorId(0), collector_key);
  detector.note_label(tx.id(), mine);
  detector.on_gossip({theirs});
  EXPECT_EQ(metrics.equivocations_detected, 1u);
  detector.on_gossip({theirs});  // same evidence again: no double punishment
  EXPECT_EQ(metrics.equivocations_detected, 1u);
}

TEST_F(EquivocationFixture, GossipPayloadRoundTripsAndDrains) {
  const auto tx = make_tx(1);
  detector.note_label(tx.id(), ledger::make_labeled(tx, Label::kValid,
                                                    CollectorId(0),
                                                    collector_key));
  const auto payload = detector.take_gossip_payload();
  ASSERT_TRUE(payload.has_value());
  EXPECT_FALSE(detector.take_gossip_payload().has_value());  // drained

  // A peer holding the conflicting label detects through the payload path.
  EquivocationDetector peer(im, directory, table, metrics);
  peer.note_label(tx.id(), ledger::make_labeled(tx, Label::kInvalid,
                                                CollectorId(0), collector_key));
  peer.on_gossip_payload(*payload);
  EXPECT_EQ(metrics.equivocations_detected, 1u);
}

TEST_F(EquivocationFixture, MalformedGossipPayloadIgnored) {
  detector.on_gossip_payload(Bytes{0xde, 0xad, 0xbe});
  EXPECT_EQ(metrics.equivocations_detected, 0u);
}

TEST_F(EquivocationFixture, EvidenceAgesOutAfterTwoGenerations) {
  const auto tx = make_tx(1);
  detector.note_label(tx.id(), ledger::make_labeled(tx, Label::kValid,
                                                    CollectorId(0),
                                                    collector_key));
  detector.age_out();
  detector.age_out();  // label now beyond the two-generation window
  const auto theirs =
      ledger::make_labeled(tx, Label::kInvalid, CollectorId(0), collector_key);
  detector.on_gossip({theirs});
  EXPECT_EQ(metrics.equivocations_detected, 0u);
}

// --- RoundTiming -------------------------------------------------------------

TEST(RoundTiming, DeadlinesStrictlyIncrease) {
  const SimDuration delta = 10 * kMillisecond;
  const auto t = RoundTiming::derive(delta, 5 * kMillisecond, 30 * kMillisecond,
                                     /*label_gossip=*/false);
  EXPECT_EQ(t.election_offset, 0u);
  EXPECT_LT(t.election_offset, t.workload_offset);
  EXPECT_LT(t.workload_offset + t.workload_span, t.gossip_offset);
  EXPECT_LE(t.gossip_offset, t.propose_offset);
  EXPECT_LT(t.propose_offset, t.rewards_offset);
  EXPECT_LT(t.rewards_offset, t.sync_offset);
  EXPECT_LT(t.sync_offset, t.stake_offset);
  EXPECT_LT(t.stake_offset, t.audit_offset);
  EXPECT_LT(t.audit_offset, t.round_span);
}

TEST(RoundTiming, GossipWindowOnlyWhenExtensionEnabled) {
  const SimDuration delta = 10 * kMillisecond;
  const auto off = RoundTiming::derive(delta, 5 * kMillisecond,
                                       30 * kMillisecond, false);
  const auto on = RoundTiming::derive(delta, 5 * kMillisecond,
                                      30 * kMillisecond, true);
  EXPECT_EQ(off.propose_offset, off.gossip_offset);
  EXPECT_EQ(on.propose_offset, on.gossip_offset + 2 * delta);
  EXPECT_EQ(on.round_span - on.audit_offset, off.round_span - off.audit_offset);
}

TEST(RoundTiming, PhaseBudgetsScaleWithDelta) {
  // Every phase budget is keyed to the synchrony bound: doubling Delta must
  // never shrink any offset.
  const auto a = RoundTiming::derive(5 * kMillisecond, 5 * kMillisecond,
                                     20 * kMillisecond, true);
  const auto b = RoundTiming::derive(10 * kMillisecond, 5 * kMillisecond,
                                     20 * kMillisecond, true);
  EXPECT_LT(a.workload_offset, b.workload_offset);
  EXPECT_LT(a.gossip_offset, b.gossip_offset);
  EXPECT_LT(a.stake_offset, b.stake_offset);
  EXPECT_LT(a.round_span, b.round_span);
}

}  // namespace
}  // namespace repchain::protocol
